"""Gate: the batched pattern engine must beat the scalar path >= 5x.

Times the ``macro.conditions_batched_patterns`` /
``macro.conditions_per_pattern`` workload pair from the built-in bench
registry -- the fig9 block-model sweep planned as stacked ``(batch, n,
m)`` grids versus the identical sweep (same seeds) forced down the
per-pattern scalar path -- and fails when the batched best-of is less
than ``--min-speedup`` times faster than the scalar best-of.

The variants run *interleaved* (scalar, batched, scalar, batched, ...)
so machine-load drift on a noisy CI runner hits both sides equally, and
each side is scored by its *minimum*: both do identical deterministic
work, scheduler noise is strictly additive, so min-of-N estimates the
true cost.  Both sweeps also produce the same FigureSeries, which the
gate asserts point for point before timing anything -- a fast engine
that drifts from the scalar semantics is a failure, not a win.

Usage::

    PYTHONPATH=src python benchmarks/check_batched_speedup.py [--quick]
        [--min-speedup 5.0] [--repeats N] [--backend numpy]
        [--out sweep.json]

``--out`` writes the batched sweep's table plus the timing verdict as
JSON (the CI job uploads it as an artifact when the gate fails).

Exit codes: 0 gate met, 1 too slow or series mismatch, 2 bad usage.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.bench import BenchConfig, builtin_registry

BATCHED = "macro.conditions_batched_patterns"
SCALAR = "macro.conditions_per_pattern"


def _timed(run, state) -> tuple[float, object]:
    t0 = time.perf_counter()
    result = run(state)
    return time.perf_counter() - t0, result


def _snapshot(series) -> dict:
    return {
        "figure_id": series.figure_id,
        "xs": list(series.xs),
        "series": {
            name: [(e.value, e.low, e.high) for e in points]
            for name, points in series.series.items()
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-smoke scale (fewer patterns per batch)")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="required scalar/batched wall-time ratio "
                             "(default 5.0)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timed pairs (default 3, quick 2)")
    parser.add_argument("--backend", default="numpy",
                        help="array API backend for the batched side")
    parser.add_argument("--out", default=None,
                        help="write sweep table + verdict JSON here")
    args = parser.parse_args(argv)
    if args.min_speedup <= 0:
        parser.error("--min-speedup must be > 0")
    if args.repeats is not None and args.repeats < 1:
        parser.error("--repeats must be >= 1")
    repeats = args.repeats or (2 if args.quick else 3)

    registry = builtin_registry()
    batched = registry.get(BATCHED)
    scalar = registry.get(SCALAR)
    config = BenchConfig(quick=args.quick, backend=args.backend)

    # warm-ups double as the equivalence check: same seeds, same series.
    batched_series = batched.run(config)
    scalar_series = scalar.run(config)
    same = _snapshot(batched_series) == _snapshot(scalar_series)

    scalar_times: list[float] = []
    batched_times: list[float] = []
    if same:
        for _ in range(repeats):
            scalar_times.append(_timed(scalar.run, config)[0])
            batched_times.append(_timed(batched.run, config)[0])

    best_scalar = min(scalar_times, default=float("nan"))
    best_batched = min(batched_times, default=float("nan"))
    speedup = best_scalar / best_batched if same else 0.0
    ok = same and speedup >= args.min_speedup

    if args.out:
        payload = {
            "batched_workload": BATCHED,
            "scalar_workload": SCALAR,
            "quick": args.quick,
            "backend": args.backend,
            "series_match": same,
            "scalar_best_s": best_scalar,
            "batched_best_s": best_batched,
            "speedup": speedup,
            "min_speedup": args.min_speedup,
            "ok": ok,
            "sweep": _snapshot(batched_series),
        }
        path = pathlib.Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {path}")

    if not same:
        print("FAIL: batched sweep diverged from the scalar series")
        return 1
    print(
        f"{SCALAR} vs {BATCHED}: {repeats} interleaved pairs, "
        f"best {best_scalar * 1e3:.1f}ms -> {best_batched * 1e3:.1f}ms "
        f"(x{speedup:.2f}, gate x{args.min_speedup:.1f})"
    )
    if not ok:
        print("FAIL: batched engine is under the speedup gate")
        return 1
    print("OK: batched engine clears the gate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
