"""Figure 7: expected percentage of affected rows (and columns).

Paper claims to reproduce: the analytical model (Theorem 2) tracks the
simulated percentage closely across the whole fault range; roughly 20% of
rows are affected at k=50, 40% at k=100 and 60% at k=200 (at paper scale).
"""

from repro.experiments import ExperimentConfig, fig7_affected_rows

from conftest import column_mean


def test_fig7_affected_rows(benchmark, record_series):
    config = ExperimentConfig.from_environment()
    series = benchmark.pedantic(
        fig7_affected_rows, args=(config,), rounds=1, iterations=1
    )
    record_series(series)

    analytical = series.column("analytical")
    experimental = series.column("experimental")
    # Shape: analytical ~= experimental pointwise (within a few percent of
    # the row count), and both increase with the fault count.
    for a, e in zip(analytical, experimental):
        assert abs(a - e) < 0.05
    assert analytical == sorted(analytical)
    assert experimental[-1] > experimental[0]
    benchmark.extra_info["mean_abs_gap"] = sum(
        abs(a - e) for a, e in zip(analytical, experimental)
    ) / len(analytical)
