"""Gate: per-tick observatory sampling must cost <= 5% wall-time.

Times the ``sim.formation_large`` workload body (the fast-path formation
+ ESL propagation scenario from the built-in bench registry) with and
without an ambient :class:`~repro.obs.timeseries.Observatory` sampling
every simulated tick, and fails when the sampled best-of exceeds the
plain best-of by more than the tolerance.

Two choices keep the gate honest on a noisy CI runner.  The variants run
*interleaved* on one shared setup (plain, sampled, plain, sampled, ...)
so slow machine-load drift hits both sides equally, and each side is
scored by its *minimum* -- both variants do identical deterministic
work, scheduler noise is strictly additive, so min-of-N estimates the
true cost where a median of a few repeats still swings several percent.

Usage::

    PYTHONPATH=src python benchmarks/check_sampling_overhead.py [--quick]
        [--tolerance 0.05] [--repeats N]

Exit codes: 0 within budget, 1 over budget, 2 bad usage.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench import BenchConfig, builtin_registry
from repro.obs import Observatory, use_observatory

BASELINE = "sim.formation_large"
SAMPLED = "obs.sampling_on"


def _timed(run, state) -> float:
    t0 = time.perf_counter()
    run(state)
    return time.perf_counter() - t0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-smoke scale (smaller mesh, fewer repeats)")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="max allowed relative p50 overhead (default 0.05)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timed pairs per variant (default 7, quick 5)")
    args = parser.parse_args(argv)
    if args.tolerance < 0:
        parser.error("--tolerance must be >= 0")
    if args.repeats is not None and args.repeats < 1:
        parser.error("--repeats must be >= 1")
    repeats = args.repeats or (5 if args.quick else 7)

    registry = builtin_registry()
    baseline = registry.get(BASELINE)
    config = BenchConfig(quick=args.quick)
    state = baseline.setup(config)

    def run_plain(state):
        return baseline.run(state)

    def run_sampled(state):
        with use_observatory(Observatory(rules=())):
            return baseline.run(state)

    run_plain(state)  # warm-up: the first run does the real convergence
    run_sampled(state)
    plain: list[float] = []
    sampled: list[float] = []
    for _ in range(repeats):
        plain.append(_timed(run_plain, state))
        sampled.append(_timed(run_sampled, state))

    best_plain = min(plain)
    best_sampled = min(sampled)
    overhead = best_sampled / best_plain - 1.0
    print(
        f"{BASELINE} vs {SAMPLED}: {repeats} interleaved pairs, "
        f"best {best_plain * 1e3:.2f}ms -> {best_sampled * 1e3:.2f}ms "
        f"({overhead:+.1%}, budget {args.tolerance:.0%})"
    )
    if overhead > args.tolerance:
        print("FAIL: per-tick sampling is over budget")
        return 1
    print("OK: sampling overhead within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
