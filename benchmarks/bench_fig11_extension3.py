"""Figure 11 (a, b): Extension 3 with partition levels 1 / 2 / 3.

Paper claims to reproduce: more pivot levels ensure more minimal paths
(level 3 >= level 2 >= level 1 >= safe source), with visible jumps when a
level is added.
"""

from repro.experiments import ExperimentConfig, fig11_extension3

from conftest import column_mean

TOLERANCE = 0.02


def test_fig11_extension3(benchmark, record_series):
    config = ExperimentConfig.from_environment()
    series = benchmark.pedantic(fig11_extension3, args=(config,), rounds=1, iterations=1)
    record_series(series)

    for suffix in ("", "a"):
        safe = series.column(f"safe_source{suffix}")
        level1 = series.column(f"ext3_level1{suffix}")
        level2 = series.column(f"ext3_level2{suffix}")
        level3 = series.column(f"ext3_level3{suffix}")
        exist = series.column(f"existence{suffix}")
        for s, l1, l2, l3, ex in zip(safe, level1, level2, level3, exist):
            assert l1 >= s - TOLERANCE
            assert l2 >= l1 - TOLERANCE
            assert l3 >= l2 - TOLERANCE
            assert ex >= l3 - TOLERANCE
    # Adding levels buys measurable percentage on average.
    assert column_mean(series, "ext3_level3") >= column_mean(series, "safe_source")
    benchmark.extra_info["level3_mean"] = column_mean(series, "ext3_level3")
