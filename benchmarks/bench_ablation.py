"""Ablation benches for the design choices DESIGN.md calls out.

1. **Segment representative tie-break** (Extension 2): the paper-faithful
   "far" tie-break versus our "near" improvement.  At low fault density most
   safety levels tie at unbounded, so the choice decides whether the
   "(max)" variation's representative is usable -- "near" should close most
   of the gap between "(max)" and full information.

2. **Information cost versus effectiveness** (the paper's stated future
   work): messages spent by each information model (boundary lines, ESL
   formation, region exchange, pivot broadcast) against the percentage of
   minimal paths the corresponding condition ensures.
"""

import numpy as np
import pytest

from repro.core.conditions import DecisionKind, is_safe
from repro.core.extensions import extension2_decision, extension3_decision
from repro.core.pivots import recursive_center_pivots
from repro.core.safety import compute_safety_levels
from repro.experiments import ExperimentConfig
from repro.faults.injection import generate_scenario
from repro.mesh.topology import Mesh2D
from repro.simulator.protocols import (
    run_boundary_distribution,
    run_pivot_broadcast,
    run_region_exchange,
    run_safety_propagation,
)

from conftest import OUT_DIR


def _condition_rates(config, tie_break):
    """Fraction of destinations each Extension-2 variation ensures."""
    rng = np.random.default_rng(config.seed)
    rates = {size: 0 for size in config.segment_sizes}
    trials = 0
    for fault_count in config.fault_counts[len(config.fault_counts) // 2 :]:
        for _ in range(config.patterns_per_count):
            scenario = generate_scenario(config.mesh, fault_count, rng, source=config.source)
            levels = compute_safety_levels(config.mesh, scenario.blocks.unusable)
            for _ in range(config.destinations_per_pattern):
                dest = scenario.pick_destination(
                    rng, config.destination_region, exclude={config.source}
                )
                trials += 1
                for size in config.segment_sizes:
                    decision = extension2_decision(
                        config.mesh, levels, config.source, dest, size, tie_break
                    )
                    if decision.kind is not DecisionKind.UNSAFE:
                        rates[size] += 1
    return {size: count / trials for size, count in rates.items()}


def test_ablation_segment_tie_break(benchmark, capsys):
    """'near' representatives recover most of the loss of coarse segments."""
    config = ExperimentConfig.from_environment()
    far = benchmark.pedantic(_condition_rates, args=(config, "far"), rounds=1, iterations=1)
    near = _condition_rates(config, "near")

    lines = ["segment-size  far(paper)  near(ours)"]
    for size in config.segment_sizes:
        label = "max" if size is None else str(size)
        lines.append(f"{label:>12}  {far[size]:10.4f}  {near[size]:10.4f}")
    report = "\n".join(lines)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "ablation_tie_break.txt").write_text(report + "\n")
    with capsys.disabled():
        print("\n" + report)

    # 'near' never hurts, and helps exactly where sampling is coarse.
    for size in config.segment_sizes:
        assert near[size] >= far[size] - 1e-9
    assert near[None] >= far[None]
    benchmark.extra_info["near_max_rate"] = near[None]
    benchmark.extra_info["far_max_rate"] = far[None]


def test_ablation_information_cost(benchmark, capsys):
    """Messages spent per information model vs the coverage it buys."""
    side = 60 if ExperimentConfig.from_environment().mesh_side < 200 else 200
    mesh = Mesh2D(side, side)
    rng = np.random.default_rng(11)
    fault_count = max(4, round(200 * (side / 200) ** 2))
    scenario = generate_scenario(mesh, fault_count, rng, source=mesh.center)
    blocks = scenario.blocks
    levels = compute_safety_levels(mesh, blocks.unusable)
    pivots = recursive_center_pivots(
        ExperimentConfig.scaled(side, 1, 1).pivot_region, 3
    )

    def run_all():
        esl = run_safety_propagation(mesh, blocks.unusable)
        boundary = run_boundary_distribution(mesh, blocks.rects(), blocks.unusable)
        region = run_region_exchange(mesh, blocks.unusable, levels)
        pivot = run_pivot_broadcast(mesh, blocks.unusable, levels, pivots)
        return esl, boundary, region, pivot

    esl, boundary, region, pivot = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # Effectiveness: sample destinations, measure what each condition ensures.
    source = mesh.center
    hits = {"safe_source": 0, "ext2_full": 0, "ext3_level3": 0}
    trials = 200
    region_rect = ExperimentConfig.scaled(side, 1, 1).destination_region
    for _ in range(trials):
        dest = scenario.pick_destination(rng, region_rect, exclude={source})
        if is_safe(levels, source, dest):
            hits["safe_source"] += 1
        decision = extension2_decision(mesh, levels, source, dest, 1)
        if decision.kind is not DecisionKind.UNSAFE:
            hits["ext2_full"] += 1
        decision = extension3_decision(mesh, levels, blocks.unusable, source, dest, pivots)
        if decision.kind is not DecisionKind.UNSAFE:
            hits["ext3_level3"] += 1

    rows = [
        ("esl-formation (Def.3 / safe source)", esl.stats.messages, hits["safe_source"] / trials),
        ("esl + region exchange (Extension 2)", esl.stats.messages + region.stats.messages, hits["ext2_full"] / trials),
        ("esl + pivot broadcast (Extension 3)", esl.stats.messages + pivot.stats.messages, hits["ext3_level3"] / trials),
        ("boundary lines (routing support)", boundary.stats.messages, float("nan")),
    ]
    lines = [f"{'information model':<38} {'messages':>10} {'ensured':>9}"]
    for name, messages, rate in rows:
        lines.append(f"{name:<38} {messages:>10} {rate:>9.3f}")
    report = "\n".join(lines)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "ablation_info_cost.txt").write_text(report + "\n")
    with capsys.disabled():
        print("\n" + report)

    # Costlier information models ensure at least as many minimal paths.
    assert hits["ext2_full"] >= hits["safe_source"]
    assert hits["ext3_level3"] >= hits["safe_source"]
    # Pivot broadcast floods the whole mesh: costlier than the region sweep.
    assert pivot.stats.messages > region.stats.messages
