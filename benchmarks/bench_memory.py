"""Memory-footprint bench: the paper's scalability argument, quantified.

The introduction claims the coded information model "reduces the memory
requirement to store fault information at each node" versus detailed global
state.  This bench measures words-of-state per node for each information
model on a paper-density scenario and asserts the claimed ordering.
"""

import numpy as np

from repro.experiments import ExperimentConfig
from repro.experiments.memory_model import measure_memory
from repro.faults.injection import generate_scenario

from conftest import OUT_DIR


def test_memory_footprints(benchmark, capsys):
    config = ExperimentConfig.from_environment()
    rng = np.random.default_rng(31)
    scenario = generate_scenario(
        config.mesh, max(config.fault_counts), rng, source=config.source
    )

    report = benchmark.pedantic(
        measure_memory, args=(scenario.blocks,), rounds=1, iterations=1
    )
    table = report.to_table()
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "memory_model.txt").write_text(table + "\n")
    with capsys.disabled():
        print("\n" + table)

    # The paper's ordering: coded-per-node state is orders of magnitude
    # below the routing-table model and below the global fault map once
    # blocks are numerous.
    assert report.esl_per_node < report.routing_table_per_node / 100
    assert report.esl_per_node < report.global_map_per_node
    # Even the max-annotated node stays far below global state.
    assert report.esl_max_node < report.routing_table_per_node / 10
    benchmark.extra_info["esl_words_avg"] = report.esl_per_node
    benchmark.extra_info["routing_table_words"] = report.routing_table_per_node
