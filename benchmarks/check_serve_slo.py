"""Gate: the routing service must hold its latency SLO under fault churn.

Runs the ``serve.qps_sweep`` closed-loop load generator (the same body as
the bench workload) at quick scale and fails when the *first* ramp stage
-- the one whose offered QPS the pipeline is sized to absorb without
shedding -- misses its p99 budget or sheds more than the allowed
fraction, or when *any* stage reports internal errors.  Later stages
deliberately overdrive the service; there the gate only requires that
overload shows up as honest admission-control outcomes (shed / degraded
/ stale), never as errors.

Wall-clock latencies vary with runner load, so the default p99 budget is
generous (150 ms against a 50 ms per-query deadline: even a fully
degraded, retried answer fits several times over).  The gate catches
collapses -- lost wakeups, refresh stalls, unbounded retry loops -- not
single-millisecond drift.

Usage::

    PYTHONPATH=src python benchmarks/check_serve_slo.py [--quick]
        [--p99-budget-ms 150] [--max-shed 0.02] [--seed N]
        [--out serve_slo.json]

``--out`` writes the full sweep report plus the verdict as JSON (the CI
job uploads it as an artifact when the gate fails).

Exit codes: 0 gate met, 1 SLO breach, 2 bad usage.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.serve.loadgen import DEFAULT_STAGES, QUICK_STAGES, run_qps_sweep


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-smoke scale (smaller mesh, shorter stages)")
    parser.add_argument("--p99-budget-ms", type=float, default=150.0,
                        help="first-stage p99 latency budget (default 150)")
    parser.add_argument("--max-shed", type=float, default=0.02,
                        help="first-stage shed-fraction ceiling (default 0.02)")
    parser.add_argument("--seed", type=int, default=2002,
                        help="workload seed (default 2002)")
    parser.add_argument("--out", default=None,
                        help="write sweep report + verdict JSON here")
    args = parser.parse_args(argv)
    if args.p99_budget_ms <= 0:
        parser.error("--p99-budget-ms must be > 0")
    if not 0 <= args.max_shed <= 1:
        parser.error("--max-shed must be in [0, 1]")

    if args.quick:
        report = run_qps_sweep(
            side=16, faults=10, seed=args.seed,
            stages=QUICK_STAGES, chaos_events=8,
        )
    else:
        report = run_qps_sweep(
            side=24, faults=16, seed=args.seed,
            stages=DEFAULT_STAGES, chaos_events=12,
        )

    failures: list[str] = []
    first = report["stages"][0]
    if first["p99_ms"] is None:
        failures.append("first stage produced no successful answers at all")
    elif first["p99_ms"] > args.p99_budget_ms:
        failures.append(
            f"first-stage p99 {first['p99_ms']:.1f}ms over the "
            f"{args.p99_budget_ms:g}ms budget"
        )
    if first["shed_fraction"] > args.max_shed:
        failures.append(
            f"first-stage shed fraction {first['shed_fraction']:.3f} over "
            f"the {args.max_shed:g} ceiling"
        )
    for stage in report["stages"]:
        if stage["errors"]:
            failures.append(
                f"stage qps={stage['qps']:g} reported {stage['errors']} "
                "internal error(s) -- overload must shed, not crash"
            )

    if args.out:
        payload = {
            "quick": args.quick,
            "p99_budget_ms": args.p99_budget_ms,
            "max_shed": args.max_shed,
            "ok": not failures,
            "failures": failures,
            "report": report,
        }
        path = pathlib.Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {path}")

    for stage in report["stages"]:
        p99 = stage["p99_ms"]
        print(
            f"qps={stage['qps']:g}: {stage['ok']}/{stage['queries']} ok, "
            f"shed={stage['shed_fraction']:.3f} "
            f"degraded={stage['degraded_fraction']:.3f} "
            f"stale={stage['stale']} retries={stage['retries']} "
            f"p99={'n/a' if p99 is None else f'{p99:.1f}ms'}"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"OK: first-stage p99 {first['p99_ms']:.1f}ms within "
        f"{args.p99_budget_ms:g}ms, shed {first['shed_fraction']:.3f} <= "
        f"{args.max_shed:g}, zero errors across the ramp"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
