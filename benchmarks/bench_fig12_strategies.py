"""Figure 12 (a, b): routing strategies 1-4 (and 1a-4a).

Paper claims to reproduce: all strategies ensure a minimal path for the
overwhelming majority of cases (> 95%); strategy 4 (all three extensions)
is the best; strategy 3 stays close to strategy 4; the combined strategies
approach the optimal existence baseline.
"""

from repro.experiments import ExperimentConfig, fig12_strategies

from conftest import column_mean

TOLERANCE = 0.02


def test_fig12_strategies(benchmark, record_series):
    config = ExperimentConfig.from_environment()
    series = benchmark.pedantic(fig12_strategies, args=(config,), rounds=1, iterations=1)
    record_series(series)

    for suffix in ("", "a"):
        s1 = series.column(f"strategy1{suffix}")
        s2 = series.column(f"strategy2{suffix}")
        s3 = series.column(f"strategy3{suffix}")
        s4 = series.column(f"strategy4{suffix}")
        exist = series.column(f"existence{suffix}")
        for a, b, c, d, ex in zip(s1, s2, s3, s4, exist):
            assert d >= max(a, b, c) - TOLERANCE  # strategy 4 dominates
            assert ex >= d - TOLERANCE
        mean4 = sum(s4) / len(s4)
        assert mean4 > 0.9  # "> 95%" at paper scale; slack for quick runs
        # Strategy 3 stays relatively close to strategy 4.
        assert max(abs(a - b) for a, b in zip(s3, s4)) < 0.1
    benchmark.extra_info["strategy4_mean"] = column_mean(series, "strategy4")
    benchmark.extra_info["existence_mean"] = column_mean(series, "existence")
