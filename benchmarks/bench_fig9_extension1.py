"""Figure 9 (a, b): percentage of a minimal/sub-minimal path ensured by the
sufficient safe condition and Extension 1, under both fault models.

Paper claims to reproduce: the safe-source curve is the lowest; Extension 1
(min) improves on it; allowing a sub-minimal rescue improves again; the
optimal existence baseline stays close to 1 across the whole fault range;
the MCC-model (``a``) curves track the block-model curves closely.
"""

from repro.experiments import ExperimentConfig, fig9_extension1

from conftest import column_mean

#: Slack for pointwise curve-ordering assertions at reduced trial counts.
TOLERANCE = 0.02


def test_fig9_extension1(benchmark, record_series):
    config = ExperimentConfig.from_environment()
    series = benchmark.pedantic(fig9_extension1, args=(config,), rounds=1, iterations=1)
    record_series(series)

    for suffix in ("", "a"):
        safe = series.column(f"safe_source{suffix}")
        ext1 = series.column(f"ext1_min{suffix}")
        submin = series.column(f"ext1_submin{suffix}")
        exist = series.column(f"existence{suffix}")
        for s, e1, sm, ex in zip(safe, ext1, submin, exist):
            assert e1 >= s - TOLERANCE  # extension 1 subsumes Definition 3
            assert sm >= e1 - TOLERANCE  # sub-minimal subsumes minimal
            assert ex >= e1 - TOLERANCE  # nothing beats the oracle
        assert min(exist) > 0.9  # "stays very high (close to 1)"

    # The two fault models agree closely on scattered faults.
    gap = max(
        abs(a - b)
        for a, b in zip(series.column("ext1_min"), series.column("ext1_mina"))
    )
    assert gap < 0.05
    benchmark.extra_info["safe_source_mean"] = column_mean(series, "safe_source")
    benchmark.extra_info["ext1_min_mean"] = column_mean(series, "ext1_min")
