"""Traffic bench: what minimal routing buys under load.

Not a paper figure -- the paper measures decision percentages, not network
latency -- but the motivation it opens with ("routing time of packets is one
of the key factors") deserves numbers.  This bench drives the same random
workload through three policies on a faulty mesh and reports delivery,
latency, and path stretch:

- Wu's protocol on the safe-condition traffic (minimal, guaranteed);
- the greedy adaptive strawman (minimal when it survives, drops otherwise);
- the XY-with-detours baseline (delivers broadly, pays stretch).
"""

import numpy as np

from repro.core.conditions import is_safe
from repro.core.routing import WuRouter
from repro.core.safety import compute_safety_levels
from repro.experiments import ExperimentConfig
from repro.faults.blocks import build_faulty_blocks
from repro.faults.injection import uniform_faults
from repro.mesh.topology import Mesh2D
from repro.routing.detour import DetourRouter
from repro.routing.router import GreedyAdaptiveRouter
from repro.simulator.traffic import PathPolicy, run_workload, uniform_traffic

from conftest import OUT_DIR


def _setup(side: int, fault_count: int, seed: int):
    mesh = Mesh2D(side, side)
    rng = np.random.default_rng(seed)
    while True:
        faults = uniform_faults(mesh, fault_count, rng)
        blocks = build_faulty_blocks(mesh, faults)
        edge_free = not any(
            b.rect.xmin == 0 or b.rect.ymin == 0
            or b.rect.xmax == side - 1 or b.rect.ymax == side - 1
            for b in blocks
        )
        if edge_free:  # keep the detour baseline comparable
            return mesh, blocks, rng


def test_traffic_policies(benchmark, capsys):
    full = ExperimentConfig.from_environment().mesh_side == 200
    side = 64 if full else 32
    fault_count = round(200 * (side / 200) ** 2)
    mesh, blocks, rng = _setup(side, fault_count, seed=23)
    levels = compute_safety_levels(mesh, blocks.unusable)

    traffic = uniform_traffic(mesh, blocks.unusable, 600 if full else 200, rng, 40)
    safe_traffic = [(s, d, t) for (s, d, t) in traffic if is_safe(levels, s, d)]

    def run_all():
        wu = run_workload(mesh, WuRouter(mesh, blocks), safe_traffic)
        greedy = run_workload(mesh, GreedyAdaptiveRouter(mesh, blocks.unusable), traffic)
        detour = run_workload(mesh, PathPolicy(route=DetourRouter(mesh, blocks).route), traffic)
        return wu, greedy, detour

    wu, greedy, detour = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        f"mesh {side}x{side}, {fault_count} faults, "
        f"{len(traffic)} packets ({len(safe_traffic)} safe-condition pairs)",
        f"{'policy':<22} {'delivered':>10} {'latency':>8} {'stretch':>8}",
        f"{'wu (safe pairs)':<22} {wu.delivery_rate:>10.3f} {wu.average_latency:>8.2f} {wu.average_stretch:>8.3f}",
        f"{'greedy adaptive':<22} {greedy.delivery_rate:>10.3f} {greedy.average_latency:>8.2f} {greedy.average_stretch:>8.3f}",
        f"{'xy + detours':<22} {detour.delivery_rate:>10.3f} {detour.average_latency:>8.2f} {detour.average_stretch:>8.3f}",
    ]
    report = "\n".join(lines)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "traffic.txt").write_text(report + "\n")
    with capsys.disabled():
        print("\n" + report)

    # Shape claims: Wu delivers all safe traffic minimally; the detour
    # baseline delivers everything but pays stretch; greedy sits in between.
    assert wu.delivery_rate == 1.0
    assert wu.average_stretch == 1.0
    assert detour.delivery_rate == 1.0
    assert detour.average_stretch >= 1.0
    assert greedy.delivery_rate <= 1.0
    benchmark.extra_info["detour_stretch"] = detour.average_stretch
    benchmark.extra_info["greedy_delivery"] = greedy.delivery_rate


# ----------------------------------------------------------------------
def register_workloads(registry):
    """``repro bench`` discovery hook: the contention workload under Wu's
    protocol on the safe-condition traffic."""

    def traffic_setup(config):
        side = 24 if config.quick else 48
        fault_count = round(200 * (side / 200) ** 2)
        mesh, blocks, rng = _setup(side, fault_count, seed=config.seed)
        levels = compute_safety_levels(mesh, blocks.unusable)
        packets = 60 if config.quick else 150
        traffic = uniform_traffic(mesh, blocks.unusable, packets, rng, 40)
        safe_traffic = [(s, d, t) for (s, d, t) in traffic if is_safe(levels, s, d)]
        return mesh, blocks, safe_traffic

    @registry.register(
        "macro.traffic_wu", kind="macro", setup=traffic_setup,
        repeats=3, quick_repeats=1,
        description="safe-pair packet batch under link contention (Wu's protocol)",
    )
    def run_traffic(state):
        mesh, blocks, safe_traffic = state
        return run_workload(mesh, WuRouter(mesh, blocks), safe_traffic)
