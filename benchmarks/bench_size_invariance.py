"""Mesh-size invariance: the licence for the reduced-scale presets.

EXPERIMENTS.md compares quick-preset curve *shapes* against the paper's
200x200 results on the grounds that, at fixed fault density, the percentage
metrics barely depend on the mesh side.  This bench measures that claim:
safe-source / Extension-1 / existence percentages across mesh sides at the
paper's top density, asserting the spread stays within a few points.
"""

from repro.experiments import ExperimentConfig
from repro.experiments.sweeps import mesh_size_sweep

from conftest import OUT_DIR


def test_mesh_size_invariance(benchmark, capsys):
    full = ExperimentConfig.from_environment().mesh_side == 200
    sides = (50, 100, 150, 200) if full else (40, 60, 80)
    patterns = 12 if full else 6
    series = benchmark.pedantic(
        mesh_size_sweep,
        kwargs={"sides": sides, "patterns_per_side": patterns},
        rounds=1,
        iterations=1,
    )
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "sweep_size.txt").write_text(series.render())
    with capsys.disabled():
        print()
        print(series.to_table())

    # The metrics stay roughly flat across sides at fixed density.  The
    # existence baseline is the tightest (nearly 1 everywhere); the
    # condition percentages may wobble with pattern luck but not trend away.
    exist = series.column("existence")
    assert max(exist) - min(exist) < 0.05
    ext1 = series.column("ext1_min")
    assert max(ext1) - min(ext1) < 0.15
    benchmark.extra_info["existence_spread"] = max(exist) - min(exist)
    benchmark.extra_info["ext1_spread"] = max(ext1) - min(ext1)
