"""Figure 8: average number of disabled nodes in a faulty block.

Paper claims to reproduce: both models sacrifice very few healthy nodes at
the simulated densities (scattered faults rarely form large blocks), and the
MCC model never sacrifices more than the faulty block model.
"""

from repro.experiments import ExperimentConfig, fig8_disabled_nodes

from conftest import column_mean


def test_fig8_disabled_nodes(benchmark, record_series):
    config = ExperimentConfig.from_environment()
    series = benchmark.pedantic(
        fig8_disabled_nodes, args=(config,), rounds=1, iterations=1
    )
    record_series(series)

    wu = series.column("wu_model")
    mcc = series.column("mcc")
    # Shape: MCC <= Wu's model pointwise; both small on scattered faults.
    for w, m in zip(wu, mcc):
        assert m <= w + 1e-9
    assert max(wu) < 5.0  # "the actual number ... are both very small"
    benchmark.extra_info["wu_mean"] = column_mean(series, "wu_model")
    benchmark.extra_info["mcc_mean"] = column_mean(series, "mcc")
