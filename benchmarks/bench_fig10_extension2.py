"""Figure 10 (a, b): Extension 2 with segment sizes 1 / 5 / 10 / max.

Paper claims to reproduce: finer segmentation ensures more minimal paths
(size 1 >= 5 >= 10 >= max); the single-segment "(max)" variation falls back
to roughly the bare safe-source percentage; the size-1 (full information)
variation ensures the large majority of paths.
"""

from repro.experiments import ExperimentConfig, fig10_extension2

from conftest import column_mean

TOLERANCE = 0.02


def test_fig10_extension2(benchmark, record_series):
    config = ExperimentConfig.from_environment()
    series = benchmark.pedantic(fig10_extension2, args=(config,), rounds=1, iterations=1)
    record_series(series)

    for suffix in ("", "a"):
        safe = series.column(f"safe_source{suffix}")
        fine = series.column(f"ext2_1{suffix}")
        mid = series.column(f"ext2_5{suffix}")
        coarse = series.column(f"ext2_10{suffix}")
        single = series.column(f"ext2_max{suffix}")
        exist = series.column(f"existence{suffix}")
        for s, f, m, c, one, ex in zip(safe, fine, mid, coarse, single, exist):
            assert f >= m - TOLERANCE >= c - 2 * TOLERANCE  # finer is better
            assert one >= s - TOLERANCE  # still subsumes Definition 3
            assert abs(one - s) < 0.1  # "(max)" close to safe source
            assert ex >= f - TOLERANCE
    benchmark.extra_info["ext2_1_mean"] = column_mean(series, "ext2_1")
    benchmark.extra_info["ext2_max_mean"] = column_mean(series, "ext2_max")
