"""Robustness beyond the paper: clustered faults.

The paper evaluates uniformly scattered faults, where blocks stay tiny and
the safe conditions look strong (its own Figure 8 commentary concedes this).
This bench re-runs the Figure-9-style comparison with the *same fault
budget* concentrated in a few damage clusters and checks that the
qualitative story survives: the extensions still improve on the bare
safe-source condition, and every condition remains sound (never exceeds
the existence oracle).

A finding worth recording: at paper scale, clustering *narrows* the
oracle-to-safe-source gap rather than widening it -- 200 faults in ~20 big
blocks leave most rows and columns clean, whereas ~190 scattered blocks
shadow far more of the mesh.  The per-fault damage is lower even though the
per-block damage is higher; the bench reports both gaps instead of
asserting a direction.
"""

import dataclasses

from repro.experiments import ExperimentConfig, fig9_extension1

from conftest import OUT_DIR, column_mean

TOLERANCE = 0.02


def test_clustered_faults_robustness(benchmark, capsys):
    base = ExperimentConfig.from_environment()
    uniform_config = base
    clustered_config = dataclasses.replace(base, workload="clustered")

    def run_both():
        uniform = fig9_extension1(uniform_config)
        clustered = fig9_extension1(clustered_config)
        return uniform, clustered

    uniform, clustered = benchmark.pedantic(run_both, rounds=1, iterations=1)
    clustered.figure_id = "fig9_clustered"
    clustered.title += " (clustered faults)"

    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "fig9_clustered.txt").write_text(clustered.render())
    with capsys.disabled():
        print()
        print(clustered.to_table())

    for series in (uniform, clustered):
        safe = series.column("safe_source")
        ext1 = series.column("ext1_min")
        exist = series.column("existence")
        for s, e1, ex in zip(safe, ext1, exist):
            assert e1 >= s - TOLERANCE
            assert ex >= e1 - TOLERANCE

    # Report the oracle-to-condition gaps under both workloads (see the
    # module docstring for why no direction is asserted).
    uniform_gap = column_mean(uniform, "existence") - column_mean(uniform, "safe_source")
    clustered_gap = column_mean(clustered, "existence") - column_mean(clustered, "safe_source")
    assert uniform_gap >= -TOLERANCE and clustered_gap >= -TOLERANCE
    benchmark.extra_info["uniform_gap"] = uniform_gap
    benchmark.extra_info["clustered_gap"] = clustered_gap
    with capsys.disabled():
        print(
            f"oracle-to-safe-source gap: uniform {uniform_gap:.3f}, "
            f"clustered {clustered_gap:.3f}"
        )
