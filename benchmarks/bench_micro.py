"""Micro-benchmarks of the core building blocks.

Not paper figures -- these time the substrate so regressions in the hot
paths (block formation, ESL computation, the DP oracle, Wu-protocol
routing, the distributed protocols) are visible.
"""

import numpy as np
import pytest

from repro.core.boundaries import BoundaryMap
from repro.core.routing import WuRouter
from repro.core.safety import compute_safety_levels
from repro.faults.blocks import build_faulty_blocks
from repro.faults.coverage import minimal_path_exists
from repro.faults.injection import uniform_faults
from repro.faults.mcc import MCCType, build_mccs
from repro.mesh.topology import Mesh2D
from repro.simulator.protocols import run_block_formation, run_safety_propagation

SIDE = 100
FAULTS = 50


@pytest.fixture(scope="module")
def workload():
    mesh = Mesh2D(SIDE, SIDE)
    rng = np.random.default_rng(7)
    faults = uniform_faults(mesh, FAULTS, rng, forbidden={mesh.center})
    blocks = build_faulty_blocks(mesh, faults)
    levels = compute_safety_levels(mesh, blocks.unusable)
    return mesh, faults, blocks, levels


def test_block_formation_speed(benchmark, workload):
    mesh, faults, _, _ = workload
    result = benchmark(build_faulty_blocks, mesh, faults)
    assert result.num_faulty == FAULTS


def test_mcc_labeling_speed(benchmark, workload):
    mesh, faults, _, _ = workload
    result = benchmark(build_mccs, mesh, faults, MCCType.TYPE_ONE)
    assert result.num_faulty == FAULTS


def test_safety_levels_speed(benchmark, workload):
    mesh, _, blocks, _ = workload
    levels = benchmark(compute_safety_levels, mesh, blocks.unusable)
    assert levels.east.shape == (SIDE, SIDE)


def test_existence_oracle_speed(benchmark, workload):
    mesh, _, blocks, _ = workload
    source = mesh.center
    dest = (SIDE - 2, SIDE - 2)
    benchmark(minimal_path_exists, blocks.unusable, source, dest)


def test_wu_routing_speed(benchmark, workload):
    """Route one long quadrant-I path with Wu's protocol (boundary map
    prebuilt, as a deployed system would hold it)."""
    mesh, _, blocks, levels = workload
    from repro.core.conditions import is_safe

    router = WuRouter(mesh, blocks, boundary_map=BoundaryMap.for_blocks(blocks))
    source = mesh.center
    dest = next(
        (SIDE - 1 - i, SIDE - 1 - i)
        for i in range(SIDE // 2)
        if not blocks.unusable[(SIDE - 1 - i, SIDE - 1 - i)]
        and is_safe(levels, source, (SIDE - 1 - i, SIDE - 1 - i))
    )
    router.route(source, dest)  # warm the canonical boundary cache

    path = benchmark(router.route, source, dest)
    assert path.is_minimal


BATCH = 256


@pytest.fixture(scope="module")
def batched_workload():
    """One stacked fault batch shared by the batched/scalar formation pair,
    so both benches below time the identical patterns."""
    from repro.faults.injection import uniform_faults_batch

    mesh = Mesh2D(SIDE, SIDE)
    seeds = np.random.SeedSequence(7).spawn(BATCH)
    rngs = [np.random.default_rng(seed) for seed in seeds]
    counts = np.full(BATCH, FAULTS)
    grids = uniform_faults_batch(mesh, counts, rngs, forbidden={mesh.center})
    fault_lists = [
        [(int(x), int(y)) for x, y in np.argwhere(grid)] for grid in grids
    ]
    return mesh, grids, fault_lists


def test_block_formation_batched_speed(benchmark, batched_workload):
    from repro.core.batched_patterns import batch_disable_fixpoint

    _, grids, _ = batched_workload
    blocked = benchmark(batch_disable_fixpoint, grids)
    assert blocked.shape == (BATCH, SIDE, SIDE)


def test_block_formation_scalar_loop_speed(benchmark, batched_workload):
    """Per-pattern baseline over the same batch: the ratio against
    ``test_block_formation_batched_speed`` is the lockstep speedup."""
    mesh, _, fault_lists = batched_workload

    def run():
        return [build_faulty_blocks(mesh, faults) for faults in fault_lists]

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(results) == BATCH


def test_block_formation_batched_matches_scalar(batched_workload):
    from repro.core.array_api import to_numpy
    from repro.core.batched_patterns import batch_disable_fixpoint

    mesh, grids, fault_lists = batched_workload
    blocked = to_numpy(batch_disable_fixpoint(grids))
    for index in (0, BATCH // 2, BATCH - 1):
        expected = build_faulty_blocks(mesh, fault_lists[index]).unusable
        np.testing.assert_array_equal(blocked[index], expected)


def test_distributed_block_formation_speed(benchmark):
    mesh = Mesh2D(40, 40)
    rng = np.random.default_rng(7)
    faults = uniform_faults(mesh, 30, rng)
    result = benchmark.pedantic(
        run_block_formation, args=(mesh, faults), rounds=3, iterations=1
    )
    assert result.unusable.sum() >= 30


def test_distributed_safety_formation_speed(benchmark):
    mesh = Mesh2D(40, 40)
    rng = np.random.default_rng(7)
    blocks = build_faulty_blocks(mesh, uniform_faults(mesh, 30, rng))
    result = benchmark.pedantic(
        run_safety_propagation, args=(mesh, blocks.unusable), rounds=3, iterations=1
    )
    assert result.stats.messages > 0


# ----------------------------------------------------------------------
def register_workloads(registry):
    """``repro bench`` discovery hook: this module's workloads that are not
    already built-ins, at the same scales the pytest benches use."""

    def oracle_setup(config):
        side = 60 if config.quick else SIDE
        mesh = Mesh2D(side, side)
        rng = np.random.default_rng(config.seed)
        faults = uniform_faults(mesh, side // 2, rng, forbidden={mesh.center})
        blocks = build_faulty_blocks(mesh, faults)
        return blocks.unusable, mesh.center, (side - 2, side - 2)

    @registry.register(
        "micro.existence_oracle", setup=oracle_setup,
        description="exact DP minimal-path existence oracle over one long pair",
    )
    def run_oracle(state):
        blocked, source, dest = state
        return minimal_path_exists(blocked, source, dest)

    def formation_setup(config):
        side = 24 if config.quick else 40
        mesh = Mesh2D(side, side)
        rng = np.random.default_rng(config.seed)
        return mesh, uniform_faults(mesh, side * side // 50, rng)

    @registry.register(
        "macro.distributed_block_formation", kind="macro", setup=formation_setup,
        repeats=3, quick_repeats=1,
        description="message-passing block formation to convergence",
    )
    def run_formation(state):
        mesh, faults = state
        return run_block_formation(mesh, faults)

    def batched_formation_setup(config):
        from repro.faults.injection import uniform_faults_batch

        side = 48 if config.quick else SIDE
        batch = 64 if config.quick else BATCH
        mesh = Mesh2D(side, side)
        seeds = np.random.SeedSequence(config.seed).spawn(batch)
        rngs = [np.random.default_rng(seed) for seed in seeds]
        counts = np.full(batch, side // 2)
        grids = uniform_faults_batch(mesh, counts, rngs, forbidden={mesh.center})
        fault_lists = [
            [(int(x), int(y)) for x, y in np.argwhere(grid)] for grid in grids
        ]
        return mesh, grids, fault_lists

    @registry.register(
        "micro.block_formation_batched", setup=batched_formation_setup,
        repeats=5, quick_repeats=2,
        description="Definition 1 fixpoint over a stacked fault batch, "
                    "all patterns disabled in lockstep",
    )
    def run_batched_formation(state):
        from repro.core.batched_patterns import batch_disable_fixpoint

        _, grids, _ = state
        return batch_disable_fixpoint(grids)

    @registry.register(
        "micro.block_formation_loop", setup=batched_formation_setup,
        repeats=5, quick_repeats=2,
        description="the same fault batch through per-pattern "
                    "build_faulty_blocks: the batched kernel's baseline",
    )
    def run_loop_formation(state):
        mesh, _, fault_lists = state
        return [build_faulty_blocks(mesh, faults) for faults in fault_lists]
