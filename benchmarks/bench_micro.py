"""Micro-benchmarks of the core building blocks.

Not paper figures -- these time the substrate so regressions in the hot
paths (block formation, ESL computation, the DP oracle, Wu-protocol
routing, the distributed protocols) are visible.
"""

import numpy as np
import pytest

from repro.core.boundaries import BoundaryMap
from repro.core.routing import WuRouter
from repro.core.safety import compute_safety_levels
from repro.faults.blocks import build_faulty_blocks
from repro.faults.coverage import minimal_path_exists
from repro.faults.injection import uniform_faults
from repro.faults.mcc import MCCType, build_mccs
from repro.mesh.topology import Mesh2D
from repro.simulator.protocols import run_block_formation, run_safety_propagation

SIDE = 100
FAULTS = 50


@pytest.fixture(scope="module")
def workload():
    mesh = Mesh2D(SIDE, SIDE)
    rng = np.random.default_rng(7)
    faults = uniform_faults(mesh, FAULTS, rng, forbidden={mesh.center})
    blocks = build_faulty_blocks(mesh, faults)
    levels = compute_safety_levels(mesh, blocks.unusable)
    return mesh, faults, blocks, levels


def test_block_formation_speed(benchmark, workload):
    mesh, faults, _, _ = workload
    result = benchmark(build_faulty_blocks, mesh, faults)
    assert result.num_faulty == FAULTS


def test_mcc_labeling_speed(benchmark, workload):
    mesh, faults, _, _ = workload
    result = benchmark(build_mccs, mesh, faults, MCCType.TYPE_ONE)
    assert result.num_faulty == FAULTS


def test_safety_levels_speed(benchmark, workload):
    mesh, _, blocks, _ = workload
    levels = benchmark(compute_safety_levels, mesh, blocks.unusable)
    assert levels.east.shape == (SIDE, SIDE)


def test_existence_oracle_speed(benchmark, workload):
    mesh, _, blocks, _ = workload
    source = mesh.center
    dest = (SIDE - 2, SIDE - 2)
    benchmark(minimal_path_exists, blocks.unusable, source, dest)


def test_wu_routing_speed(benchmark, workload):
    """Route one long quadrant-I path with Wu's protocol (boundary map
    prebuilt, as a deployed system would hold it)."""
    mesh, _, blocks, levels = workload
    from repro.core.conditions import is_safe

    router = WuRouter(mesh, blocks, boundary_map=BoundaryMap.for_blocks(blocks))
    source = mesh.center
    dest = next(
        (SIDE - 1 - i, SIDE - 1 - i)
        for i in range(SIDE // 2)
        if not blocks.unusable[(SIDE - 1 - i, SIDE - 1 - i)]
        and is_safe(levels, source, (SIDE - 1 - i, SIDE - 1 - i))
    )
    router.route(source, dest)  # warm the canonical boundary cache

    path = benchmark(router.route, source, dest)
    assert path.is_minimal


def test_distributed_block_formation_speed(benchmark):
    mesh = Mesh2D(40, 40)
    rng = np.random.default_rng(7)
    faults = uniform_faults(mesh, 30, rng)
    result = benchmark.pedantic(
        run_block_formation, args=(mesh, faults), rounds=3, iterations=1
    )
    assert result.unusable.sum() >= 30


def test_distributed_safety_formation_speed(benchmark):
    mesh = Mesh2D(40, 40)
    rng = np.random.default_rng(7)
    blocks = build_faulty_blocks(mesh, uniform_faults(mesh, 30, rng))
    result = benchmark.pedantic(
        run_safety_propagation, args=(mesh, blocks.unusable), rounds=3, iterations=1
    )
    assert result.stats.messages > 0


# ----------------------------------------------------------------------
def register_workloads(registry):
    """``repro bench`` discovery hook: this module's workloads that are not
    already built-ins, at the same scales the pytest benches use."""

    def oracle_setup(config):
        side = 60 if config.quick else SIDE
        mesh = Mesh2D(side, side)
        rng = np.random.default_rng(config.seed)
        faults = uniform_faults(mesh, side // 2, rng, forbidden={mesh.center})
        blocks = build_faulty_blocks(mesh, faults)
        return blocks.unusable, mesh.center, (side - 2, side - 2)

    @registry.register(
        "micro.existence_oracle", setup=oracle_setup,
        description="exact DP minimal-path existence oracle over one long pair",
    )
    def run_oracle(state):
        blocked, source, dest = state
        return minimal_path_exists(blocked, source, dest)

    def formation_setup(config):
        side = 24 if config.quick else 40
        mesh = Mesh2D(side, side)
        rng = np.random.default_rng(config.seed)
        return mesh, uniform_faults(mesh, side * side // 50, rng)

    @registry.register(
        "macro.distributed_block_formation", kind="macro", setup=formation_setup,
        repeats=3, quick_repeats=1,
        description="message-passing block formation to convergence",
    )
    def run_formation(state):
        mesh, faults = state
        return run_block_formation(mesh, faults)
