"""Shared helpers for the figure benchmarks.

Each figure bench runs the experiment once under pytest-benchmark timing,
prints the reproduced series (table + ASCII plot), and writes the artifacts
to ``benchmarks/out/<figure>.txt`` / ``.csv`` so the reproduction record
survives output capture.  Set ``REPRO_FULL=1`` for the paper-scale run.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.report import FigureSeries

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture
def record_series(capsys):
    """Persist and display a reproduced figure."""

    def _record(series: FigureSeries) -> None:
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / f"{series.figure_id}.txt").write_text(series.render())
        (OUT_DIR / f"{series.figure_id}.csv").write_text(series.to_csv())
        with capsys.disabled():
            print()
            print(series.to_table())

    return _record


def column_mean(series: FigureSeries, name: str) -> float:
    values = series.column(name)
    return sum(values) / len(values)
