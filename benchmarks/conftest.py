"""Shared helpers for the figure benchmarks.

Each figure bench runs the experiment once under pytest-benchmark timing,
prints the reproduced series (table + ASCII plot), and writes the artifacts
to ``benchmarks/out/<figure>.txt`` / ``.csv`` so the reproduction record
survives output capture.  Set ``REPRO_FULL=1`` for the paper-scale run.

With ``--metrics-out PATH`` the whole run executes under an observability
tracer (see :mod:`repro.obs`) and every recorded figure is merged into one
JSON file at PATH: the figure series (rounded exactly like the CSV artifact)
plus the aggregate trace metrics (event counters, timing spans).
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.experiments.report import FigureSeries
from repro.obs import MetricsSink, Tracer, set_tracer

OUT_DIR = pathlib.Path(__file__).parent / "out"


def pytest_addoption(parser):
    parser.addoption(
        "--metrics-out",
        action="store",
        default=None,
        metavar="PATH",
        help="write figure series + aggregate observability metrics as JSON",
    )


@pytest.fixture(scope="session")
def metrics_sink(request):
    """Session-wide MetricsSink installed as the current tracer when
    ``--metrics-out`` is given; None otherwise (runs stay on the no-op
    tracer and pay no instrumentation cost)."""
    target = request.config.getoption("--metrics-out")
    if target is None:
        yield None
        return
    sink = MetricsSink()
    previous = set_tracer(Tracer(sink))
    try:
        yield sink
    finally:
        set_tracer(previous)


@pytest.fixture
def record_series(capsys, request, metrics_sink):
    """Persist and display a reproduced figure."""

    def _record(series: FigureSeries) -> None:
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / f"{series.figure_id}.txt").write_text(series.render())
        (OUT_DIR / f"{series.figure_id}.csv").write_text(series.to_csv())
        target = request.config.getoption("--metrics-out")
        if target is not None:
            _write_metrics(pathlib.Path(target), series, metrics_sink)
        with capsys.disabled():
            print()
            print(series.to_table())

    return _record


def _write_metrics(path: pathlib.Path, series: FigureSeries, sink: MetricsSink) -> None:
    """Merge one recorded figure into the metrics JSON at ``path``.

    Series values are rounded exactly like ``FigureSeries.to_csv`` (six
    decimals) so the JSON and the CSV artifact agree digit-for-digit.
    """
    payload: dict = {}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except ValueError:
            payload = {}
    figures = payload.setdefault("figures", {})
    figures[series.figure_id] = {
        "title": series.title,
        "x_label": series.x_label,
        "xs": series.xs,
        "series": {
            name: {
                "values": [float(f"{e.value:.6f}") for e in points],
                "ci95": [float(f"{e.half_width:.6f}") for e in points],
            }
            for name, points in series.series.items()
        },
    }
    payload["metrics"] = sink.snapshot()
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2))


def column_mean(series: FigureSeries, name: str) -> float:
    values = series.column(name)
    return sum(values) / len(values)
