"""CI smoke: a live ``repro serve`` must answer, ingest, drain, and exit 0.

Starts ``repro serve`` with background chaos churn and a shutdown notice
window, then walks the whole service surface over real HTTP:

- ``/readyz`` is 200 once the banner prints and the pipeline accepts;
- ``/query`` answers with a full verdict payload (strategy, generation,
  staleness, path witness) and rejects malformed coordinates with 400;
- ``POST /fault`` applies a crash at the mesh centre (never an initial
  fault, never a chaos victim) and bumps the reported generation;
- ``/healthz`` stays 200 (it reports *liveness*; degradation is data);
- ``/metrics`` passes the strict exposition parser from
  ``tests.promtext`` and carries the serve metric families.

Then SIGTERM: during the ``--notice`` window ``/readyz`` must flip to
503 (the load-balancer out-of-rotation signal) while the listener stays
up, and the process must drain and exit 0 -- an operator stop is not a
failure.

On any failure the evidence (responses, server log) is left in the
artifact directory given by ``--artifacts``.

Usage::

    PYTHONPATH=src python .github/scripts/serve_smoke.py
        [--artifacts DIR] [--timeout 90]

Exit codes: 0 healthy, 1 smoke failure.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import shutil
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

REPO = pathlib.Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO))  # for tests.promtext

from tests.promtext import PromParseError, parse  # noqa: E402

SERVE_ARGS = [
    "serve", "--side", "12", "--faults", "5", "--seed", "3",
    "--events", "6", "--event-interval", "0.25",
    "--notice", "3", "--grace", "5",
]
URL_LINE = re.compile(r"serving (http://[^/\s]+)")
SERVE_FAMILIES = {
    "repro_serve_requests_total",
    "repro_serve_latency_seconds",
    "repro_serve_queue_depth",
    "repro_serve_breaker_open",
    "repro_serve_generation",
}


def _get(url: str, method: str = "GET") -> tuple[int, str]:
    request = urllib.request.Request(url, method=method)
    try:
        with urllib.request.urlopen(request, timeout=5) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:  # 4xx/5xx still carry JSON
        return error.code, error.read().decode("utf-8")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--artifacts", default="out/serve-artifacts",
                        help="directory for failure evidence")
    parser.add_argument("--timeout", type=float, default=90.0,
                        help="overall deadline in seconds")
    args = parser.parse_args(argv)
    artifacts = pathlib.Path(args.artifacts)
    artifacts.mkdir(parents=True, exist_ok=True)
    log_path = artifacts / "serve.log"

    log = open(log_path, "w")
    process = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", *SERVE_ARGS],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.monotonic() + args.timeout
    failures: list[str] = []

    def check(name: str, condition: bool, detail: str) -> bool:
        if condition:
            print(f"ok: {name}")
        else:
            failures.append(f"{name}: {detail}")
            (artifacts / f"{name.replace('/', '_')}.txt").write_text(detail)
        return condition

    try:
        base = None
        for line in process.stdout:
            log.write(line)
            match = URL_LINE.search(line)
            if match:
                base = match.group(1)
                break
        if base is None:
            failures.append("server never printed its URL")
            return 1
        print(f"probing {base}")

        status, body = _get(base + "/readyz")
        payload = json.loads(body)
        check("readyz-up", status == 200 and payload["status"] == "ready",
              f"{status} {body}")

        status, body = _get(base + "/query?source=0,0&dest=11,11")
        payload = json.loads(body) if body else {}
        check(
            "query-answer",
            status == 200 and payload.get("status") == "ok"
            and {"verdict", "strategy", "generation", "staleness",
                 "degraded"} <= set(payload.get("answer", {})),
            f"{status} {body}",
        )

        status, body = _get(base + "/query?source=frog&dest=0,0")
        check("query-bad-request", status == 400, f"{status} {body}")

        # The mesh centre is excluded from both initial faults and the
        # chaos schedule, so this crash always applies cleanly.
        status, body = _get(base + "/fault?event=crash&coord=6,6",
                            method="POST")
        payload = json.loads(body) if body else {}
        check("fault-ingest",
              status == 200 and payload.get("generation", 0) >= 1,
              f"{status} {body}")

        status, body = _get(base + "/healthz")
        payload = json.loads(body) if body else {}
        check("healthz", status == 200 and payload.get("status") in
              ("ok", "degraded"), f"{status} {body}")

        status, body = _get(base + "/metrics")
        if check("metrics-status", status == 200, f"{status}"):
            try:
                families = parse(body)
            except PromParseError as exc:
                (artifacts / "metrics.txt").write_text(body)
                failures.append(f"/metrics failed strict parse: {exc}")
            else:
                missing = SERVE_FAMILIES - set(families)
                check("metrics-families", not missing, f"missing {missing}")

        # Graceful shutdown: during the notice window the listener stays
        # up but /readyz must advertise 503 so balancers stop routing.
        process.send_signal(signal.SIGTERM)
        flipped = False
        while time.monotonic() < deadline:
            try:
                status, body = _get(base + "/readyz")
            except (urllib.error.URLError, OSError):
                break  # listener closed: notice window over
            if status == 503:
                flipped = True
                break
            time.sleep(0.1)
        check("readyz-drain", flipped, "never observed 503 after SIGTERM")
    finally:
        try:
            remaining, _ = process.communicate(
                timeout=max(5.0, deadline - time.monotonic()))
            log.write(remaining or "")
        except subprocess.TimeoutExpired:
            process.kill()
            failures.append("server did not exit within the deadline")
        log.close()
    check("exit-zero", process.returncode == 0,
          f"exited {process.returncode}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        print(f"evidence left in {artifacts}")
        return 1
    shutil.rmtree(artifacts, ignore_errors=True)
    print("OK: serve surface healthy, drained clean on SIGTERM")
    return 0


if __name__ == "__main__":
    sys.exit(main())
