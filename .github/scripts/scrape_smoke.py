"""CI smoke: a live ``repro serve-metrics`` run must expose a clean,
strictly-parseable scrape surface.

Starts ``repro serve-metrics`` on a benign loss-only chaos workload (no
crash schedule, so no alert should fire and ``/healthz`` must stay ok),
polls ``/metrics`` and ``/healthz`` over HTTP while the server lingers,
validates the exposition with the strict parser from ``tests.promtext``,
and checks the pushed series file carries every sampler series.

On any failure the series JSON (when the run got far enough to write it)
is left in the artifact directory given by ``--artifacts``.

Usage::

    PYTHONPATH=src python .github/scripts/scrape_smoke.py
        [--artifacts DIR] [--timeout 60]

Exit codes: 0 healthy, 1 smoke failure.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import shutil
import subprocess
import sys
import time
import urllib.error
import urllib.request

REPO = pathlib.Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO))  # for tests.promtext

from tests.promtext import PromParseError, parse  # noqa: E402

SERVE_ARGS = [
    "serve-metrics", "--side", "12", "--faults", "5", "--seed", "3",
    "--loss", "0.05", "--dup", "0.02", "--events", "0",
    "--fail-on-alerts", "--linger", "20",
]
URL_LINE = re.compile(r"serving (http://[^/\s]+)")


def _get(url: str) -> tuple[int, str]:
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.read().decode("utf-8")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--artifacts", default="out/scrape-artifacts",
                        help="directory for failure evidence")
    parser.add_argument("--timeout", type=float, default=60.0,
                        help="overall deadline in seconds")
    args = parser.parse_args(argv)
    artifacts = pathlib.Path(args.artifacts)
    artifacts.mkdir(parents=True, exist_ok=True)
    series_path = artifacts / "series.json"

    process = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", *SERVE_ARGS,
         "--series-out", str(series_path)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.monotonic() + args.timeout
    failures: list[str] = []
    try:
        # The banner with the bound port is the first line out.
        base = None
        for line in process.stdout:
            match = URL_LINE.search(line)
            if match:
                base = match.group(1)
                break
        if base is None:
            failures.append("server never printed its URL")
        else:
            print(f"scraping {base}")
            scrapes = 0
            while time.monotonic() < deadline and scrapes < 3:
                try:
                    status, body = _get(base + "/metrics")
                except (urllib.error.URLError, OSError) as exc:
                    failures.append(f"/metrics unreachable: {exc}")
                    break
                if status != 200:
                    failures.append(f"/metrics returned {status}")
                    break
                try:
                    families = parse(body)
                except PromParseError as exc:
                    failures.append(f"/metrics failed strict parse: {exc}")
                    break
                status, body = _get(base + "/healthz")
                health = json.loads(body)
                if status != 200 or health["status"] != "ok":
                    failures.append(f"/healthz not ok: {status} {health}")
                    break
                scrapes += 1
                print(f"scrape {scrapes}: {len(families)} families, healthz ok")
                time.sleep(1.0)
            else:
                if scrapes < 3:
                    failures.append("deadline before 3 clean scrapes")
    finally:
        try:
            process.wait(timeout=max(5.0, deadline - time.monotonic()))
        except subprocess.TimeoutExpired:
            process.kill()
            failures.append("server did not exit on its own")
    if process.returncode not in (0, None):
        failures.append(f"serve-metrics exited {process.returncode} "
                        "(alert fired or run failed)")

    if not failures and series_path.exists():
        payload = json.loads(series_path.read_text())
        missing = {
            "engine.tick", "net.carried", "net.dropped", "net.retried",
        } - set(payload["series"])
        if missing:
            failures.append(f"series file missing {sorted(missing)}")
    elif not failures:
        failures.append("series file was never written")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        print(f"evidence left in {artifacts}")
        return 1
    shutil.rmtree(artifacts, ignore_errors=True)
    print("OK: scrape surface healthy and silent")
    return 0


if __name__ == "__main__":
    sys.exit(main())
