"""Routing as a service, end to end: queries, churn, degradation, drain.

Boots the full serving stack in-process -- a :class:`RoutingService`
(generation-fenced snapshots over the incremental fault engine), the
:class:`QueryPipeline` (bounded-queue admission, deadline budgets,
stale-snapshot backoff), and the :class:`ServeApp` HTTP front end --
then plays a client against it over real sockets:

- routability queries before and after live fault ingestion, showing the
  verdict/strategy/generation/staleness fields of each answer;
- a burst far beyond the queue bound, showing explicit ``429 overloaded``
  shedding instead of collapse;
- the degraded tier: with the circuit breaker forced open, MCC queries
  fall back to block-model answers marked ``degraded``;
- a graceful shutdown, with ``/readyz`` flipping to 503 while in-flight
  work drains.

Everything runs on one asyncio loop -- the "client" uses raw
``asyncio.open_connection`` so the example needs nothing but the
standard library.

Run:  python examples/serve_queries.py [seed]
"""

import asyncio
import json
import sys

import numpy as np

from repro.faults.injection import uniform_faults
from repro.mesh.topology import Mesh2D
from repro.serve import QueryPipeline, RoutingService, ServeApp


async def http(host, port, target, method="GET"):
    """One tiny HTTP/1.1 exchange; returns (status, parsed JSON body)."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(
        f"{method} {target} HTTP/1.1\r\nHost: {host}\r\n"
        "Connection: close\r\n\r\n".encode()
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(None, 2)[1])
    return status, json.loads(body) if body else {}


def show(tag, payload):
    answer = payload.get("answer", {})
    print(
        f"  {tag:<28} {payload.get('status', '?'):>9}  "
        f"verdict={answer.get('verdict', '-'):<24} "
        f"strategy={answer.get('strategy', '-'):<22} "
        f"gen={answer.get('generation', '-')} "
        f"stale={answer.get('staleness', '-')} "
        f"degraded={answer.get('degraded', '-')}"
    )


async def run(seed: int) -> None:
    mesh = Mesh2D(16, 16)
    faults = uniform_faults(mesh, 10, np.random.default_rng(seed),
                            forbidden={mesh.center})
    service = RoutingService(mesh, faults)
    pipeline = QueryPipeline(service, queue_limit=8, workers=2)
    app = ServeApp(service, pipeline, notice_s=0.2)
    await app.start()
    host, port = app.host, app.port
    print(f"{mesh}: {len(faults)} faults, serving on {app.url('/query')}\n")

    print("fresh answers (generation 0):")
    _, payload = await http(host, port, "/query?source=0,0&dest=15,15")
    show("corner to corner", payload)
    _, payload = await http(host, port, "/query?source=0,0&dest=15,15&model=mcc")
    show("same pair, MCC model", payload)

    print("\ningest a crash at the centre, query again:")
    status, report = await http(
        host, port, "/fault?event=crash&coord=8,8", method="POST")
    print(f"  POST /fault -> {status}, generation {report['generation']}, "
          f"{report['affected_cells']} cells recomputed")
    await asyncio.sleep(0.01)  # let the coalesced refresher publish
    _, payload = await http(host, port, "/query?source=0,0&dest=15,15")
    show("corner to corner", payload)

    print("\na burst 10x the queue bound (admission control, not collapse):")
    responses = await asyncio.gather(*(
        http(host, port, f"/query?source=0,{y % 16}&dest=15,{(y * 7) % 16}")
        for y in range(80)
    ))
    outcomes = {}
    for status, _ in responses:
        outcomes[status] = outcomes.get(status, 0) + 1
    print(f"  HTTP outcomes: {dict(sorted(outcomes.items()))} "
          "(429 = shed with an explicit 'overloaded')")

    print("\nbreaker forced open (degraded tier):")
    pipeline.breaker.open = True
    _, payload = await http(host, port, "/query?source=0,0&dest=15,15&model=mcc")
    show("MCC query, breaker open", payload)
    _, health = await http(host, port, "/healthz")
    print(f"  /healthz status: {health['status']!r} (alive, honest about it)")
    pipeline.breaker.open = False

    print("\ngraceful shutdown:")
    shutdown = asyncio.create_task(app.shutdown())
    await asyncio.sleep(0.05)  # inside the notice window
    status, ready = await http(host, port, "/readyz")
    print(f"  /readyz during drain -> {status} {ready['status']!r}")
    await shutdown
    stats = pipeline.stats()
    print(f"  drained: {stats['counters'].get('served', 0)} served, "
          f"{stats['counters'].get('shed_overload', 0)} shed, "
          f"{stats['counters'].get('degraded', 0)} degraded, "
          f"final generation {service.generation}")


def main(seed: int = 7) -> None:
    asyncio.run(run(seed))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
