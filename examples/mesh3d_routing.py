"""3-D meshes: where the paper's conditions do and don't generalize.

The paper's future work points at 3-D meshes.  This example runs the pieces
that carry over -- the fault-block labelling, extended safety levels, the
exact existence oracle -- and demonstrates the boundary of the theory:

1. the naive "all axis sections clear" condition (sound in 2-D) versus the
   oracle, on random 3-D fault patterns;
2. the provably sound segment-chain condition (the N-D form of Extensions
   2 + 3) and how pivot count buys coverage;
3. the documented arbitrary-obstacle counterexample where clear axes lie.

Run:  python examples/mesh3d_routing.py [seed]
"""

import itertools
import sys

import numpy as np

from repro.ndmesh import (
    MeshND,
    axis_sections_clear,
    build_nd_blocks,
    compute_nd_safety_levels,
    nd_minimal_path_exists,
    nd_monotone_path,
    segment_chain_safe,
)
from repro.ndmesh.conditions import box_corner_pivots


def main(seed: int = 9) -> None:
    mesh = MeshND((16, 16, 16))
    rng = np.random.default_rng(seed)
    faults = set()
    while len(faults) < 60:
        faults.add(tuple(int(x) for x in rng.integers(0, 16, 3)))
    blocks = build_nd_blocks(mesh, sorted(faults))
    levels = compute_nd_safety_levels(mesh, blocks.unusable)
    print(f"{mesh}: {blocks.num_faulty} faults -> {len(blocks)} blocks "
          f"({blocks.num_disabled} disabled, min fill ratio "
          f"{blocks.min_fill_ratio():.2f})")

    source = (2, 2, 2)
    pivot_grid = [
        (x, y, z)
        for x, y, z in itertools.product((4, 7, 10, 13), repeat=3)
        if not blocks.unusable[(x, y, z)]
    ]
    stats = {"trials": 0, "oracle": 0, "axis": 0, "corners": 0, "chain": 0}
    while stats["trials"] < 400:
        dest = tuple(int(x) for x in rng.integers(8, 16, 3))
        if blocks.unusable[dest] or blocks.unusable[source]:
            continue
        stats["trials"] += 1
        if nd_minimal_path_exists(blocks.unusable, source, dest):
            stats["oracle"] += 1
        if axis_sections_clear(levels, source, dest):
            stats["axis"] += 1
            # Heuristic above 2-D; check it against the oracle here.
            assert nd_minimal_path_exists(blocks.unusable, source, dest), (
                "axis-clear counterexample under Definition-1 closure -- "
                "a publishable find; please report it"
            )
        corners = box_corner_pivots(source, dest)
        if segment_chain_safe(levels, source, dest, corners):
            stats["corners"] += 1
        if segment_chain_safe(levels, source, dest, corners + pivot_grid):
            stats["chain"] += 1

    trials = stats["trials"]
    print(f"\n{trials} random destinations from {source}:")
    print(f"  minimal path exists (oracle):          {stats['oracle'] / trials:6.1%}")
    print(f"  axis-sections-clear heuristic:         {stats['axis'] / trials:6.1%}")
    print(f"  chain via box corners (sound):         {stats['corners'] / trials:6.1%}")
    print(f"  chain via corners + pivot grid:        {stats['chain'] / trials:6.1%}")

    # An actual 3-D minimal route, extracted from the oracle.
    for _ in range(100):
        dest = tuple(int(x) for x in rng.integers(10, 16, 3))
        if blocks.unusable[dest]:
            continue
        path = nd_monotone_path(mesh, blocks.unusable, source, dest)
        if path:
            print(f"\nsample minimal route {source} -> {dest} "
                  f"({len(path) - 1} hops):")
            print("  " + " -> ".join(str(p) for p in path[:6])
                  + (" -> ..." if len(path) > 6 else ""))
            break

    # The boundary of the theory: clear axes are not enough in 3-D for
    # arbitrary obstacles.
    blocked = np.zeros((5, 5, 5), dtype=bool)
    for cell in itertools.product(range(5), repeat=3):
        if sum(cell) == 4 and cell not in [(4, 0, 0), (0, 4, 0), (0, 0, 4)]:
            blocked[cell] = True
    for wall in [(4, 1, 0), (4, 0, 1), (1, 4, 0), (0, 4, 1), (1, 0, 4), (0, 1, 4)]:
        blocked[wall] = True
    ce_levels = compute_nd_safety_levels(MeshND((5, 5, 5)), blocked)
    print("\ncounterexample (arbitrary obstacles, 5x5x5, 13 blocked cells):")
    print(f"  axis sections clear: {axis_sections_clear(ce_levels, (0,0,0), (4,4,4))}")
    print(f"  minimal path exists: {nd_minimal_path_exists(blocked, (0,0,0), (4,4,4))}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 9)
