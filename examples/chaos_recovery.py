"""Chaos engineering: lossy channels, crash/revive, provable recovery.

The paper's formation protocols assume reliable channels and fail-stop
faults that only accumulate.  This example removes both assumptions:

- every hop drops, duplicates, corrupts, or delays messages according to
  a seeded ``ChannelFaultPlan``;
- a ``ChaosSchedule`` crashes and revives nodes at arbitrary ticks while
  the protocols are still converging;
- the hardened processes (ack/retransmit + stabilization pulses) absorb
  all of it, and ``verify_convergence`` proves the surviving distributed
  state equals the batch-oracle ground truth for the final fault set.

Run:  python examples/chaos_recovery.py [seed]
"""

import sys

import numpy as np

from repro.chaos import ChannelFaultPlan, ChaosSchedule, verify_convergence
from repro.faults.injection import uniform_faults
from repro.mesh.topology import Mesh2D
from repro.simulator.protocols import run_safety_propagation
from repro.faults.blocks import build_faulty_blocks


def main(seed: int = 7) -> None:
    mesh = Mesh2D(20, 20)
    rng = np.random.default_rng(seed)
    faults = uniform_faults(mesh, 16, rng)
    print(f"{mesh}: {len(faults)} initial faults\n")

    # -- 1. One protocol under an unreliable channel ------------------
    blocks = build_faulty_blocks(mesh, faults)
    plan = ChannelFaultPlan(drop=0.05, duplicate=0.02, corrupt=0.02, jitter=1,
                            seed=seed)
    print(f"channel fault plan: {plan.describe()}")
    result = run_safety_propagation(mesh, blocks.unusable, chaos=plan)
    print(f"hardened ESL formation: {result.stats}")

    reliable = run_safety_propagation(mesh, blocks.unusable)
    free = ~blocks.unusable
    identical = all(
        np.array_equal(getattr(result.levels, g)[free],
                       getattr(reliable.levels, g)[free])
        for g in ("east", "south", "west", "north")
    )
    print(f"levels identical to the reliable run on every free node: {identical}\n")

    # -- 2. Crash/revive churn on top --------------------------------
    plan.reset()  # replay the same channel behaviour
    schedule = ChaosSchedule.random(mesh, rng, events=10, forbidden=set(faults))
    crashes = sum(1 for e in schedule if e.action == "crash")
    print(f"schedule: {len(schedule)} events ({crashes} crashes, "
          f"{len(schedule) - crashes} revivals), horizon t={schedule.horizon:g}")

    report = verify_convergence(mesh, faults, plan, schedule, seed=seed)
    print(report.summary())
    if not report.ok:
        for coord, direction, got, want in report.esl_mismatches[:5]:
            print(f"  ESL mismatch at {coord} {direction}: {got} != {want}")
        raise SystemExit(1)
    print("\ndistributed state provably re-converged to the batch oracles")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
