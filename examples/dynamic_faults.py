"""Live fault injection: the mesh keeps its information consistent.

The paper's information model is incremental -- "when a disturbance occurs,
only those affected nodes update their information".  This example runs a
long-lived mesh, fails nodes one by one at runtime, and shows:

- the ripple cost of every injection (messages, settle time, cascade size);
- that routing decisions made from the live state stay sound throughout
  (checked against the exact oracle after each injection);
- the total incremental cost versus re-forming everything from scratch.

Run:  python examples/dynamic_faults.py [seed]
"""

import sys

import numpy as np

from repro.core.conditions import is_safe
from repro.faults.blocks import build_faulty_blocks
from repro.faults.coverage import minimal_path_exists
from repro.mesh.topology import Mesh2D
from repro.simulator.protocols import run_safety_propagation
from repro.simulator.protocols.dynamic_update import DynamicMesh


def main(seed: int = 13) -> None:
    mesh = Mesh2D(32, 32)
    rng = np.random.default_rng(seed)
    dynamic = DynamicMesh(mesh)
    source = mesh.center

    print(f"live {mesh}; injecting 24 faults one at a time\n")
    print(f"{'fault':>10} {'msgs':>6} {'settle':>7} {'cascade':>8}  soundness check")
    injected = 0
    while injected < 24:
        coord = (int(rng.integers(0, 32)), int(rng.integers(0, 32)))
        if coord == source or coord in dynamic.faults:
            continue
        if dynamic.unusable_grid()[source]:
            break
        try:
            report = dynamic.inject_fault(coord)
        except ValueError:
            continue
        injected += 1

        # Route decisions from the LIVE state, checked against the oracle.
        levels = dynamic.safety_levels()
        grid = dynamic.unusable_grid()
        checked = sound = 0
        for _ in range(30):
            dest = (int(rng.integers(0, 32)), int(rng.integers(0, 32)))
            if grid[dest] or grid[source] or dest == source:
                continue
            if is_safe(levels, source, dest):
                checked += 1
                if minimal_path_exists(grid, source, dest):
                    sound += 1
        cascade = f"+{report.newly_disabled}" if report.newly_disabled else "-"
        print(f"{str(coord):>10} {report.messages:>6} {report.settled_at:>6.0f}t "
              f"{cascade:>8}  {sound}/{checked} safe decisions confirmed")
        assert sound == checked, "live state made an unsound claim!"

    total = dynamic.total_messages
    scratch = run_safety_propagation(
        mesh, build_faulty_blocks(mesh, dynamic.faults).unusable
    ).stats.messages
    print(f"\nincremental total: {total} messages across {injected} injections")
    print(f"one from-scratch ESL formation at the final state: {scratch} messages")
    print(f"(a naive re-form-after-every-fault policy would have paid "
          f"~{injected} x that)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 13)
