"""Quickstart: fault blocks, safety levels, and minimal routing in 90 lines.

Builds a small 2-D mesh with random faults, forms the faulty blocks
(Definition 1), computes every node's extended safety level, checks the
sufficient safe condition for a source/destination pair, and routes a packet
with Wu's boundary-information protocol -- printing the mesh, the decision,
and the delivered path.

Run:  python examples/quickstart.py [seed]
"""

import sys

import numpy as np

from repro import (
    DecisionKind,
    Mesh2D,
    Rect,
    WuRouter,
    compute_safety_levels,
    extension1_decision,
    generate_scenario,
    is_safe,
    route_with_decision,
)
from repro.viz import render_scenario


def main(seed: int = 11) -> None:
    mesh = Mesh2D(24, 24)
    rng = np.random.default_rng(seed)
    scenario = generate_scenario(mesh, num_faults=20, rng=rng)
    blocks = scenario.blocks

    print(f"mesh: {mesh}, faults: {scenario.num_faults}, "
          f"faulty blocks: {len(blocks)} "
          f"({blocks.num_disabled} healthy nodes disabled)")
    for block in blocks:
        print(f"  {block}")

    levels = compute_safety_levels(mesh, blocks.unusable)
    source = mesh.center
    print(f"\nsource {source} extended safety level (E, S, W, N): {levels.esl(source)}")

    # Pick a quadrant-I destination outside every block, as the paper does.
    dest = scenario.pick_destination(
        rng, Rect(source[0], mesh.n - 1, source[1], mesh.m - 1), exclude={source}
    )
    print(f"destination {dest}: "
          f"{'SAFE' if is_safe(levels, source, dest) else 'not safe'} "
          f"by the sufficient safe condition (Definition 3)")

    # Extension 1 falls back to a safe neighbour when the source is unsafe.
    decision = extension1_decision(mesh, levels, blocks.unusable, source, dest)
    print(f"extension 1 decision: {decision.kind.value}"
          + (f" via {decision.via}" if decision.via else ""))

    if decision.kind is DecisionKind.UNSAFE:
        print("no minimal or sub-minimal route ensured; try another seed")
        return

    router = WuRouter(mesh, blocks)
    path = route_with_decision(router, decision, blocked=blocks.unusable)
    kind = "minimal" if path.is_minimal else f"sub-minimal ({path.hops} hops)"
    print(f"routed {kind} path with Wu's protocol: {path.hops} hops\n")
    print(render_scenario(scenario, path=path.nodes, source=source, dest=dest))
    print("\nlegend: S source, D destination, * path, # faulty, x disabled, . free")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 11)
