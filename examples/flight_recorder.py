"""Flight recorder: record a chaos run, replay it bit for bit, bisect.

A recorded run is a complete causal account of everything the simulator
decided: every send, delivery, loss, duplicate, crash, revive, epoch
fence, and restart, each naming the event that caused it.  Because every
source of randomness is seeded, the recording doubles as a proof
obligation -- re-executing its recipe must reproduce the stream exactly.
This example:

- records a seeded chaos run (crash/revive schedule + 5% loss) to disk;
- replays it and machine-checks the streams are bit-identical;
- time-travels to an intermediate tick and inspects the network state;
- walks the causal ancestry of one delivery across retransmits/epochs;
- perturbs one event and lets the bisector pinpoint it through the
  seekable index in O(log ticks) digest probes.

Run:  python examples/flight_recorder.py [seed]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.chaos import ChannelFaultPlan, ChaosRunner, ChaosSchedule
from repro.faults.injection import uniform_faults
from repro.mesh.topology import Mesh2D
from repro.obs import (
    FlightRecorder,
    RecorderSink,
    TraceEvent,
    bisect_logs,
    read_index,
    render_lineage,
    replay_recording,
    state_at,
)


def main(seed: int = 7) -> None:
    workdir = Path(tempfile.mkdtemp(prefix="flight_recorder_"))
    log = workdir / "run.jsonl"

    # -- 1. Record a chaos run ----------------------------------------
    mesh = Mesh2D(12, 12)
    rng = np.random.default_rng(seed)
    faults = uniform_faults(mesh, 6, rng)
    plan = ChannelFaultPlan(drop=0.05, duplicate=0.02, corrupt=0.02,
                            jitter=1, seed=seed)
    schedule = ChaosSchedule.random(mesh, rng, events=8, forbidden=set(faults))

    recorder = FlightRecorder(log)
    runner = ChaosRunner(mesh, faults=faults, plan=plan, schedule=schedule,
                         stabilize_rounds=2, recorder=recorder)
    outcome = runner.run()
    recorder.close()
    index = read_index(log)
    print(f"recorded {len(recorder.events)} events to {log}")
    print(f"  index: {len(index['ticks'])} tick marks, digest {index['digest'][:16]}...")
    print(f"  run: {outcome.summary()}\n")

    # -- 2. Replay: the stream must be bit-identical ------------------
    result = replay_recording(log)
    print(result.summary())
    assert result.identical, "seeded runs must replay exactly"

    # -- 3. Time travel -----------------------------------------------
    midpoint = schedule.horizon / 2
    for tick in (midpoint, schedule.horizon + 50):
        snapshot = state_at(log, tick)
        print(f"  {snapshot.summary()}")
    print()

    # -- 4. Causal lineage of the last delivery -----------------------
    last_delivery = next(
        e for e in reversed(recorder.events) if e.kind == "msg_deliver"
    )
    print(f"lineage of event {last_delivery.seq}:")
    print(render_lineage(recorder.events, last_delivery.seq))
    print()

    # -- 5. Perturb one event; the bisector must name it --------------
    victim = next(
        e for e in recorder.events
        if e.kind == "msg_deliver" and e.seq > len(recorder.events) // 2
    )
    tampered = TraceEvent(kind=victim.kind, seq=victim.seq,
                          data={**dict(victim.data), "msg": "tampered"},
                          cause=victim.cause)
    other = workdir / "perturbed.jsonl"
    sink = RecorderSink(other)
    for event in recorder.events:
        sink.record(tampered if event.seq == victim.seq else event)
    sink.close()

    report = bisect_logs(log, other)
    print(f"bisection ({report.probes} index probes): {report.summary()}")
    assert report.index == victim.seq, "bisector must name the exact event"
    print("\nartifacts left in", workdir)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
