"""Network-on-chip fault tolerance: why boundary information matters.

Scenario: a mesh NoC suffers localized physical damage (clustered faults).
A naive greedy minimal router -- forward to any free preferred neighbour,
the paper's motivating strawman -- walks into the dead region behind the
block and drops packets.  Wu's protocol, using only the distributed
boundary information, delivers every packet the safe condition promises,
minimally.

The script sweeps many source/destination pairs and reports delivery rates
for (1) greedy adaptive routing, (2) Wu's protocol on pairs the sufficient
safe condition clears, and (3) strategy 4 decisions realized with two-phase
routing, against the oracle's ceiling.

Run:  python examples/noc_fault_tolerance.py [seed]
"""

import sys

import numpy as np

from repro import (
    DecisionKind,
    GreedyAdaptiveRouter,
    Mesh2D,
    RoutingError,
    Strategy,
    StrategyConfig,
    WuRouter,
    compute_safety_levels,
    is_safe,
    minimal_path_exists,
    route_with_decision,
    strategy_decision,
)
from repro.core.strategies import select_pivots
from repro.faults.blocks import build_faulty_blocks
from repro.faults.injection import clustered_faults
from repro.mesh.geometry import Rect


def main(seed: int = 3) -> None:
    mesh = Mesh2D(48, 48)
    rng = np.random.default_rng(seed)
    faults = clustered_faults(mesh, 40, rng, clusters=3, radius=4,
                              forbidden={mesh.center})
    blocks = build_faulty_blocks(mesh, faults)
    while blocks.is_unusable(mesh.center):
        faults = clustered_faults(mesh, 40, rng, clusters=3, radius=4,
                                  forbidden={mesh.center})
        blocks = build_faulty_blocks(mesh, faults)
    levels = compute_safety_levels(mesh, blocks.unusable)
    print(f"damage: {len(faults)} faults in 3 clusters -> {len(blocks)} blocks, "
          f"largest {max(b.rect.area for b in blocks)} nodes, "
          f"{blocks.num_disabled} healthy nodes disabled")

    greedy = GreedyAdaptiveRouter(mesh, blocks.unusable)
    wu = WuRouter(mesh, blocks)
    config = StrategyConfig(pivot_scheme="center")

    stats = {
        "pairs": 0, "oracle": 0, "greedy": 0,
        "safe": 0, "wu_delivered": 0,
        "strategy4": 0, "strategy4_delivered": 0,
    }
    pivots_cache: dict[tuple, list] = {}
    for _ in range(800):
        source = (int(rng.integers(0, 48)), int(rng.integers(0, 48)))
        dest = (int(rng.integers(0, 48)), int(rng.integers(0, 48)))
        if source == dest or blocks.is_unusable(source) or blocks.is_unusable(dest):
            continue
        stats["pairs"] += 1
        if minimal_path_exists(blocks.unusable, source, dest):
            stats["oracle"] += 1
        try:
            greedy.route(source, dest)
            stats["greedy"] += 1
        except RoutingError:
            pass
        if is_safe(levels, source, dest):
            stats["safe"] += 1
            path = wu.route(source, dest)
            assert path.is_minimal
            stats["wu_delivered"] += 1
        # Strategy 4: all three extensions, pivots in the destination quadrant.
        sx, sy = source
        dx, dy = dest
        region = Rect(min(sx, dx), max(sx, dx), min(sy, dy), max(sy, dy))
        key = (region.xmin, region.xmax, region.ymin, region.ymax)
        if key not in pivots_cache:
            pivots_cache[key] = select_pivots(config, region)
        decision = strategy_decision(
            Strategy.S4, mesh, levels, blocks.unusable, source, dest,
            pivots_cache[key], config,
        )
        if decision.kind is not DecisionKind.UNSAFE:
            stats["strategy4"] += 1
            path = route_with_decision(wu, decision, blocked=blocks.unusable)
            assert path.is_minimal
            stats["strategy4_delivered"] += 1

    pairs = stats["pairs"]
    print(f"\n{pairs} random source/destination pairs:")
    print(f"  oracle (minimal path exists):        {stats['oracle'] / pairs:6.1%}")
    print(f"  greedy adaptive delivered:           {stats['greedy'] / pairs:6.1%}"
          f"   <- drops packets behind blocks")
    print(f"  safe condition held:                 {stats['safe'] / pairs:6.1%}")
    print(f"  ... Wu's protocol delivered:         "
          f"{stats['wu_delivered']}/{stats['safe']} minimally (guaranteed)")
    print(f"  strategy 4 ensured:                  {stats['strategy4'] / pairs:6.1%}")
    print(f"  ... two-phase routing delivered:     "
          f"{stats['strategy4_delivered']}/{stats['strategy4']} minimally")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
