"""Batched pattern engine: thousands of fault patterns in lockstep.

Three stops:

1. drive the cross-pattern kernels directly -- stack 2000 fault patterns
   into one ``(batch, n, m)`` grid, form every pattern's faulty blocks and
   ESLs in a handful of array ops, and decide Definition 3 / Extension 1
   for a destination batch across all patterns at once;
2. run the same fig9 sweep through ``engine="batched"`` and
   ``engine="scalar"`` and check the series agree point for point (they
   are bit-identical by construction: ``uniform_faults_batch`` advances
   each pattern's generator exactly as the scalar pipeline does);
3. time the two engines on the same seeds.

Run:  python examples/batched_sweep.py [batch]
"""

import sys
import time

import numpy as np

from repro.core.array_api import to_numpy
from repro.core.batched_patterns import (
    batch_disable_fixpoint,
    batch_pattern_extension1,
    batch_pattern_is_safe,
    batch_safety_levels,
)
from repro.faults.injection import uniform_faults_batch
from repro.mesh.topology import Mesh2D


def kernels_demo(batch: int) -> None:
    mesh = Mesh2D(32, 32)
    source = mesh.center
    rngs = np.random.SeedSequence(2002).spawn(batch)
    faulty = uniform_faults_batch(mesh, 40, rngs, forbidden={source})

    t0 = time.perf_counter()
    blocked = to_numpy(batch_disable_fixpoint(faulty))
    levels = batch_safety_levels(blocked)
    elapsed = time.perf_counter() - t0
    disabled = blocked.sum() - faulty.sum()
    print(f"{batch} patterns on {mesh.n}x{mesh.m}: blocks + ESLs in "
          f"{elapsed * 1e3:.1f}ms ({disabled} healthy nodes disabled in total)")

    # One destination batch decided across every pattern at once.
    rng = np.random.default_rng(7)
    dests = rng.integers(source[0], mesh.n, size=(batch, 30, 2)).astype(np.int64)
    safe = to_numpy(batch_pattern_is_safe(levels, source, dests))
    ext1 = to_numpy(batch_pattern_extension1(blocked, levels, source, dests))
    print(f"Def-3 safe: {safe.mean():.1%} of {safe.size} trials; "
          f"Extension 1 (sub-minimal allowed): {ext1.mean():.1%}")


def engines_demo() -> None:
    import dataclasses

    from repro.experiments import ExperimentConfig
    from repro.experiments.figures import fig9_block_metrics
    from repro.experiments.runner import ConditionExperiment

    # The gate configuration from the bench pair: fig9's block-model
    # curves (every one has a cross-pattern kernel) on small dense
    # meshes, where the per-pattern python overhead the batched engine
    # removes dominates the sweep.
    base = ExperimentConfig.scaled(40, 64, 15, seed=2002)
    config = dataclasses.replace(
        base,
        fault_counts=tuple(4 * count for count in base.fault_counts),
        strategy_pivot_levels=1,
    )
    experiment = ConditionExperiment(config, metrics_factory=fig9_block_metrics)

    t0 = time.perf_counter()
    batched = experiment.run("fig9", "batched engine", engine="batched")
    batched_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    scalar = experiment.run("fig9", "scalar engine", engine="scalar")
    scalar_s = time.perf_counter() - t0

    same = batched.xs == scalar.xs and all(
        [(e.value, e.low, e.high) for e in batched.series[name]]
        == [(e.value, e.low, e.high) for e in scalar.series[name]]
        for name in scalar.series
    )
    print(f"\nfig9 sweep, {len(config.fault_counts)} fault counts x "
          f"{config.patterns_per_count} patterns x "
          f"{config.destinations_per_pattern} destinations:")
    print(f"  batched engine: {batched_s * 1e3:7.1f}ms")
    print(f"  scalar engine:  {scalar_s * 1e3:7.1f}ms  "
          f"(batched is {scalar_s / batched_s:.1f}x faster)")
    print(f"  series bit-identical: {same}")


if __name__ == "__main__":
    kernels_demo(int(sys.argv[1]) if len(sys.argv) > 1 else 2000)
    engines_demo()
