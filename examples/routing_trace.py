"""Hop-by-hop trace of Wu's protocol around a faulty block.

Constructs the paper's Figure 3 situation: a destination in the critical
region R6 of a block (East of it, inside its row band), so a packet from
the South-West must stay on the block's L1 boundary line.  The trace prints,
at every hop, the node's boundary tags and which preferred direction the
stay-on rule forbids -- then contrasts the same situation for a destination
above the block, where the node is non-critical.

Run:  python examples/routing_trace.py
"""

from repro import Mesh2D, WuRouter, build_faulty_blocks, compute_safety_levels, is_safe
from repro.core.boundaries import BoundaryMap
from repro.viz import render_mesh


def trace(router: WuRouter, canonical, source, dest) -> None:
    print(f"\nrouting {source} -> {dest}:")
    path = router.route(source, dest)
    for node in path.nodes[:-1]:
        tags = canonical.tags_at(node)
        forbidden = canonical.forbidden_directions(node, dest)
        notes = []
        if tags:
            lines = ", ".join(
                f"{t.line.value}(block {t.block_index})" for t in tags
            )
            notes.append(f"on {lines}")
        if forbidden:
            notes.append(f"detour direction forbidden: "
                         f"{', '.join(d.name for d in forbidden)}")
        print(f"  {node}" + (f"  [{'; '.join(notes)}]" if notes else ""))
    print(f"  {path.dest}  [delivered, {path.hops} hops, "
          f"{'minimal' if path.is_minimal else 'NOT minimal'}]")


def main() -> None:
    mesh = Mesh2D(16, 16)
    faults = [(6, 6), (7, 7), (8, 8)]  # diagonal run -> block [6:8, 6:8]
    blocks = build_faulty_blocks(mesh, faults)
    levels = compute_safety_levels(mesh, blocks.unusable)
    router = WuRouter(mesh, blocks)
    canonical = BoundaryMap.for_blocks(blocks).canonical(False, False)

    print("block:", blocks.blocks[0])
    print(render_mesh(mesh, faulty=blocks.faulty, blocked=blocks.unusable,
                      source=(1, 1)))

    source = (1, 1)
    r6_dest = (13, 7)   # East of the block, inside its row band
    r4_dest = (7, 13)   # North of the block, inside its column band
    free_dest = (13, 13)  # beyond the block entirely

    for dest in (r6_dest, r4_dest, free_dest):
        assert is_safe(levels, source, dest)
        trace(router, canonical, source, dest)


if __name__ == "__main__":
    main()
