"""Run the paper's distributed information protocols and account their cost.

Everything the routing layer consumes -- block labels, boundary lines,
extended safety levels, region knowledge, pivot tables -- is formed here by
actual message passing on the discrete-event simulator, and each protocol
reports its message count and convergence time.  This is the quantitative
side of the paper's "limited global information" argument: the footprint
stays tiny compared to an all-pairs information model.

Run:  python examples/info_distribution_cost.py [seed]
"""

import sys

import numpy as np

from repro import Mesh2D, compute_safety_levels
from repro.analysis.affected_rows import count_affected_columns, count_affected_rows
from repro.core.pivots import recursive_center_pivots
from repro.faults.blocks import build_faulty_blocks
from repro.faults.injection import FaultScenario, clustered_faults
from repro.mesh.geometry import Rect
from repro.simulator.protocols import (
    run_block_formation,
    run_boundary_distribution,
    run_mcc_formation,
    run_pivot_broadcast,
    run_region_exchange,
    run_safety_propagation,
)
from repro.faults.mcc import MCCType


def main(seed: int = 5) -> None:
    mesh = Mesh2D(64, 64)
    rng = np.random.default_rng(seed)
    # Clustered damage so Definition 1 actually has labelling work to do.
    faults = clustered_faults(mesh, 40, rng, clusters=4, radius=3)
    scenario = FaultScenario(mesh=mesh, faults=faults,
                             blocks=build_faulty_blocks(mesh, faults))
    blocks = scenario.blocks
    levels = compute_safety_levels(mesh, blocks.unusable)
    pivots = recursive_center_pivots(Rect(32, 63, 32, 63), 3)

    print(f"mesh {mesh}, {scenario.num_faults} faults, {len(blocks)} blocks")
    affected = count_affected_rows(blocks.unusable) + count_affected_columns(blocks.unusable)
    print(f"affected rows+columns: {affected} of {2 * mesh.n} "
          f"({affected / (2 * mesh.n):.0%}) -- the ESL footprint\n")

    runs = [
        ("block formation (Def. 1)", run_block_formation(mesh, scenario.faults).stats),
        ("MCC labelling (Def. 2, type one)",
         run_mcc_formation(mesh, scenario.faults, MCCType.TYPE_ONE).stats),
        ("ESL formation (Sec. 4 FORMATION)",
         run_safety_propagation(mesh, blocks.unusable).stats),
        ("boundary lines L1/L3 with joins",
         run_boundary_distribution(mesh, blocks.rects(), blocks.unusable).stats),
        ("region exchange (Extension 2)",
         run_region_exchange(mesh, blocks.unusable, levels).stats),
        (f"pivot broadcast x{len(pivots)} (Extension 3)",
         run_pivot_broadcast(mesh, blocks.unusable, levels, pivots).stats),
    ]

    total_links = 2 * (2 * mesh.n * mesh.m - mesh.n - mesh.m)
    print(f"{'protocol':<36} {'messages':>9} {'converged':>10} {'msgs/link':>10}")
    for name, stats in runs:
        print(f"{name:<36} {stats.messages:>9} {stats.converged_at:>9.0f}t "
              f"{stats.messages / total_links:>10.2f}")
    print(f"\n(mesh has {total_links} directed links; an all-pairs routing-table "
          f"model would push O(n^2) = {mesh.size}+ entries per node instead)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 5)
