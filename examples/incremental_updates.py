"""Incremental fault maintenance: pay O(affected), not O(mesh), per event.

The paper's information model is incremental -- "when a disturbance occurs,
only those affected nodes update their information".  The
:class:`IncrementalFaultEngine` applies the same idea to the centralized
state: every fault arrival or revival updates the faulty blocks, extended
safety levels, and MCCs by deltas, and each event reports exactly how much
of the mesh it touched.  This example runs a long mixed inject/revive
schedule and shows:

- the affected window of every event (cells changed, fraction of the mesh);
- that the delta-maintained state stays bit-identical to a from-scratch
  rebuild (checked against the batch builders at every step);
- the wall-clock win over rebuilding everything per event;
- generation-tagged route caching: a fault on the far side of the mesh no
  longer evicts cached routes it cannot touch.

Run:  python examples/incremental_updates.py [seed]
"""

import sys
import time

import numpy as np

from repro.core.safety import compute_safety_levels
from repro.faults.blocks import build_faulty_blocks
from repro.faults.incremental import IncrementalFaultEngine
from repro.faults.injection import injection_events
from repro.mesh.topology import Mesh2D
from repro.obs.prof import Profiler, use_profiler


def main(seed: int = 13) -> None:
    mesh = Mesh2D(48, 48)
    rng = np.random.default_rng(seed)
    events = injection_events(mesh, 30, rng, revive_fraction=0.3)

    print(f"{mesh}: replaying {len(events)} fault events incrementally\n")
    print(f"{'#':>3} {'event':>7} {'coord':>10} {'cells':>6} {'window':>14} "
          f"{'of mesh':>8}")

    engine = IncrementalFaultEngine(mesh)
    profiler = Profiler()
    with use_profiler(profiler):
        for i, (action, coord) in enumerate(events, 1):
            report = engine.apply(action, coord)

            rect = report.affected_rect
            window = f"{rect.xmax - rect.xmin + 1}x{rect.ymax - rect.ymin + 1}"
            print(f"{i:>3} {report.event:>7} {str(coord):>10} "
                  f"{report.affected_cells:>6} {window:>14} "
                  f"{report.affected_fraction:>7.2%}")

            # The engine claims bit-identical equivalence with the batch
            # builders after every event -- hold it to that.
            reference = build_faulty_blocks(mesh, engine.faults)
            assert np.array_equal(engine.unusable, reference.unusable)
            assert engine.block_set().blocks == reference.blocks

    # Price both maintenance strategies on a clean replay (no profiler,
    # no printing): delta maintenance vs full rebuild after every event.
    timed_engine = IncrementalFaultEngine(mesh)
    start = time.perf_counter()
    for action, coord in events:
        timed_engine.apply(action, coord)
    incremental_time = time.perf_counter() - start

    alive: set = set()
    rebuild_time = 0.0
    for action, coord in events:
        alive.add(coord) if action == "inject" else alive.discard(coord)
        faults = sorted(alive)
        start = time.perf_counter()
        built = build_faulty_blocks(mesh, faults)
        compute_safety_levels(mesh, built.unusable)
        rebuild_time += time.perf_counter() - start

    touched = profiler.hot["incr.affected_cells"]
    print(f"\naffected cells across all events: {touched} "
          f"(vs {len(events) * mesh.size} cells a per-event rebuild rescans)")
    print(f"incremental maintenance: {incremental_time * 1e3:7.1f} ms")
    print(f"full rebuild per event:  {rebuild_time * 1e3:7.1f} ms "
          f"({rebuild_time / incremental_time:.1f}x slower)")
    print(f"defensive full rebuilds taken by the engine: "
          f"{engine.full_rebuilds}")

    # Generation-tagged caching: routes untouched by an event survive it.
    from repro.routing.detour import DetourRouter
    from repro.simulator.traffic import PathPolicy

    demo = Mesh2D(16, 16)
    demo_engine = IncrementalFaultEngine(demo)
    computed = []

    def route(source, dest):
        computed.append((source, dest))
        return DetourRouter(demo, demo_engine.block_set()).route(source, dest)

    policy = PathPolicy(route)
    near = policy.path_for((0, 4), (8, 4))
    policy.path_for((15, 0), (15, 15))  # hugs the far column

    victim = near.nodes[len(near.nodes) // 2]
    report = demo_engine.inject(victim)
    policy.note_fault_event(report.affected_rect, report.generation)

    policy.path_for((15, 0), (15, 15))  # revalidated, not recomputed
    fresh = policy.path_for((0, 4), (8, 4))  # through the window: rebuilt
    assert victim not in fresh.nodes

    print("\ngeneration-tagged route cache (16x16 demo mesh):")
    print(f"  fault at {victim} affected window "
          f"{report.affected_rect.xmin},{report.affected_rect.ymin}..."
          f"{report.affected_rect.xmax},{report.affected_rect.ymax}")
    print(f"  route computations: {len(computed)} "
          f"(2 initial + 1 rebuild; the distant route survived)")
    print(f"  cache revalidations: {policy._cache.revalidated}, "
          f"stale rebuilds: {policy._cache.stale}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 13)
