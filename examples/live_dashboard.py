"""Live telemetry: per-tick series, alert rules, and a scrape endpoint.

A chaos run normally reports only its final verdict.  This example
attaches an ``Observatory`` so the run streams per-tick health series
into a ring-buffer TSDB while it executes:

- a ``MetricsServer`` exposes the live store over HTTP (``/metrics`` in
  Prometheus text format, ``/series.json``, ``/healthz``) the whole
  time the simulation runs;
- the default alert rules watch the series (convergence deadline,
  live-retry storms, queue runaway, drop-rate SLO) and any firing lands
  in the chaos report;
- at the end, the collected series render as an ANSI sparkline
  dashboard — the same panel ``python -m repro top`` redraws live.

Run:  python examples/live_dashboard.py [seed]
"""

import sys
import urllib.request

import numpy as np

from repro.chaos import ChannelFaultPlan, ChaosSchedule, verify_convergence
from repro.faults.injection import uniform_faults
from repro.mesh.topology import Mesh2D
from repro.obs import Dashboard, MetricsServer, Observatory


def main(seed: int = 7) -> None:
    mesh = Mesh2D(16, 16)
    rng = np.random.default_rng(seed)
    faults = uniform_faults(mesh, 10, rng)
    plan = ChannelFaultPlan(drop=0.08, duplicate=0.02, seed=seed)
    schedule = ChaosSchedule.random(mesh, rng, events=6, forbidden=set(faults))
    print(f"{mesh}: {len(faults)} faults, {plan.describe()}, "
          f"{len(schedule)} chaos events\n")

    # -- 1. Run the chaos workload under a live observatory -----------
    observatory = Observatory()  # default alert rules, 512-point series
    with MetricsServer(observatory=observatory) as server:
        print(f"scrape endpoint up at {server.url('/metrics')}")
        report = verify_convergence(
            mesh, faults, plan, schedule, seed=seed, observatory=observatory
        )
        # The server is still live: scrape the finished run's metrics.
        with urllib.request.urlopen(server.url("/metrics"), timeout=5) as rsp:
            exposition = rsp.read().decode("utf-8")
        with urllib.request.urlopen(server.url("/healthz"), timeout=5) as rsp:
            health = rsp.read().decode("utf-8")

    live = [s for s in exposition.splitlines() if s.startswith("repro_live_sample")]
    print(f"scraped {len(live)} live series samples; healthz: {health}\n")

    # -- 2. The alert verdict is part of the chaos report -------------
    print(report.summary())
    for alert in report.alerts:
        print(f"  ! [{alert.rule}] t={alert.tick:g} {alert.message}")
    if not report.alerts:
        print("  no alerts: the run stayed inside the benign envelope")

    # -- 3. Render the collected series as the `repro top` panel ------
    print()
    print(Dashboard(observatory, width=48, color=False).render())
    if not report.ok:
        raise SystemExit(1)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
