"""The lineage: safety levels in hypercubes, then extended in 2-D meshes.

The paper's information model started life in binary hypercubes (its
introduction: "if a node's safety level is L, there is at least one Hamming
distance (or minimal) path from this node to any node within
Hamming-distance-L").  This example runs both generations side by side:

1. a faulty Q6 hypercube: compute Wu's safety levels, verify the guarantee
   against the exact oracle, route with the safety-guided router;
2. the same *idea* in a 2-D mesh: the extended safety level is the
   per-direction refinement the paper builds on.

Run:  python examples/hypercube_lineage.py [seed]
"""

import sys

import numpy as np

from repro import Mesh2D, compute_safety_levels, generate_scenario, is_safe
from repro.hypercube import (
    Hypercube,
    compute_hypercube_safety,
    hypercube_minimal_path_exists,
    safety_guided_route,
)


def main(seed: int = 21) -> None:
    # ------------------------------------------------------------------
    # Generation 1: the hypercube.
    # ------------------------------------------------------------------
    cube = Hypercube(6)
    rng = np.random.default_rng(seed)
    faults = set(int(x) for x in rng.choice(cube.size, size=8, replace=False))
    levels = compute_hypercube_safety(cube, faults)

    print(f"{cube}: {len(faults)} faults {sorted(faults)}")
    histogram: dict[int, int] = {}
    for node in cube.nodes():
        if node not in faults:
            histogram[levels[node]] = histogram.get(levels[node], 0) + 1
    print("safety-level histogram (non-faulty nodes):",
          {k: histogram[k] for k in sorted(histogram)})

    # Verify the guarantee and route some safe pairs.
    checked = routed = 0
    for _ in range(500):
        s = int(rng.integers(0, cube.size))
        d = int(rng.integers(0, cube.size))
        if s in faults or d in faults or s == d:
            continue
        h = cube.distance(s, d)
        if levels[s] >= h:
            checked += 1
            assert hypercube_minimal_path_exists(cube, faults, s, d)
            path = safety_guided_route(cube, levels, faults, s, d)
            assert len(path) - 1 == h
            routed += 1
    print(f"safe condition held for {checked} sampled pairs; "
          f"all {routed} routed minimally by the safety-guided router")
    s, d = next(
        (s, d)
        for s in cube.nodes() for d in cube.nodes()
        if s not in faults and d not in faults and cube.distance(s, d) >= 4
        and levels[s] >= cube.distance(s, d)
    )
    path = safety_guided_route(cube, levels, faults, s, d)
    print(f"sample Q6 route {s:06b} -> {d:06b}: "
          + " -> ".join(f"{node:06b}" for node in path))

    # ------------------------------------------------------------------
    # Generation 2: the same idea, refined per direction in a 2-D mesh.
    # ------------------------------------------------------------------
    mesh = Mesh2D(24, 24)
    scenario = generate_scenario(mesh, 18, rng)
    mesh_levels = compute_safety_levels(mesh, scenario.blocks.unusable)
    source = mesh.center
    esl = mesh_levels.esl(source)
    print(f"\n{mesh}: source {source} extended safety level (E,S,W,N) = "
          f"{tuple(v if v < 10**6 else 'inf' for v in esl)}")
    print("the hypercube's single integer became four directional distances —")
    print("that refinement is exactly what the reproduced paper builds on.")
    safe = sum(
        1
        for x in range(source[0], mesh.n)
        for y in range(source[1], mesh.m)
        if not scenario.blocks.is_unusable((x, y))
        and is_safe(mesh_levels, source, (x, y))
    )
    total = sum(
        1
        for x in range(source[0], mesh.n)
        for y in range(source[1], mesh.m)
        if not scenario.blocks.is_unusable((x, y))
    )
    print(f"quadrant-I destinations safe by Definition 3: {safe}/{total}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 21)
