"""Instrumented routing with the observability layer (repro.obs).

Routes a batch of packets through a faulty mesh under a tracer with three
sinks at once:

- a ring buffer, replayed as a per-hop log of the most interesting route;
- a metrics sink, rendered as the aggregate table at the end;
- a JSONL file, so the raw events survive for offline analysis.

Shows the no-op default (routing emits nothing until a tracer is
installed), the per-hop justification carried by ``hop`` events, timing
spans around ESL computation, and the partial trace on a routing failure.

Run:  python examples/traced_routing.py
"""

import numpy as np

from repro import (
    JsonlSink,
    MetricsSink,
    Mesh2D,
    RingBufferSink,
    RoutingError,
    Tracer,
    WuRouter,
    compute_safety_levels,
    extension1_decision,
    generate_scenario,
    read_jsonl,
    route_with_decision,
    use_tracer,
)
from repro.routing.router import GreedyAdaptiveRouter, x_first_tie_breaker


def main() -> None:
    mesh = Mesh2D(24, 24)
    rng = np.random.default_rng(7)
    scenario = generate_scenario(mesh, num_faults=20, rng=rng)
    blocks = scenario.blocks
    blocked = blocks.unusable

    # --- 1. the no-op default: nothing is recorded without a tracer -------
    levels = compute_safety_levels(mesh, blocked)  # span discarded by NullTracer
    router = WuRouter(mesh, blocks)
    router.route((0, 0), (3, 2))
    print("uninstrumented run: no events recorded (null tracer)")

    # --- 2. instrumented batch -------------------------------------------
    ring = RingBufferSink(capacity=256)
    metrics = MetricsSink()
    jsonl_path = "traced_routing.jsonl"
    tracer = Tracer(ring, metrics, JsonlSink(jsonl_path))

    free = [c for c in mesh.nodes() if not blocked[c]]
    with use_tracer(tracer):
        compute_safety_levels(mesh, blocked)  # now timed by an esl.compute span
        for _ in range(40):
            src = free[int(rng.integers(len(free)))]
            dst = free[int(rng.integers(len(free)))]
            if src == dst:
                continue
            decision = extension1_decision(mesh, levels, blocked, src, dst)
            if decision.ensures_sub_minimal:
                route_with_decision(router, decision, blocked=blocked)

        # A greedy router walking into a dead-end records a route_failed
        # event whose partial trace is the whole walk, not just the stuck
        # node (the paper's Figure-3 motivating failure).
        try:
            GreedyAdaptiveRouter(
                Mesh2D(12, 12),
                _two_fault_block(),
                tie_breaker=x_first_tie_breaker,
            ).route((5, 0), (5, 8))
        except RoutingError as error:
            print(f"greedy got stuck; partial trace: {error.partial}")
    tracer.close()

    # --- 3. replay the last route hop by hop ------------------------------
    print("\nlast recorded events (ring buffer):")
    for event in ring.events[-12:]:
        print(f"  {event}")

    # --- 4. aggregate metrics ---------------------------------------------
    print("\naggregate metrics:")
    print(metrics.to_table())

    events = read_jsonl(jsonl_path)
    print(f"\n{len(events)} events round-tripped through {jsonl_path}")


def _two_fault_block() -> np.ndarray:
    from repro import build_faulty_blocks

    return build_faulty_blocks(Mesh2D(12, 12), [(4, 4), (5, 5)]).unusable


if __name__ == "__main__":
    main()
