"""Reproduce the paper's Figure 1: a faulty block versus its MCCs.

The eight faults of the worked example form the faulty block [2:6, 3:6]
(Definition 1).  The type-one MCC (quadrant I/III routing) removes the NW
and SE corner sections of that block; the type-two MCC (quadrant II/IV)
removes the SW and NE corner sections.  The script renders all three and
prints the per-node status pair (status1, status2) for the nodes the paper
discusses.

Run:  python examples/mcc_vs_blocks.py
"""

from repro import Mesh2D, MCCType, build_faulty_blocks, build_mccs
from repro.faults.mcc import NodeStatus
from repro.viz import render_mesh

FIGURE1_FAULTS = [(3, 3), (3, 4), (4, 4), (5, 4), (6, 4), (2, 5), (5, 5), (3, 6)]

STATUS_CHAR = {
    NodeStatus.FAULT_FREE: ".",
    NodeStatus.FAULTY: "#",
    NodeStatus.USELESS: "u",
    NodeStatus.CANT_REACH: "c",
}


def main() -> None:
    mesh = Mesh2D(10, 10)
    blocks = build_faulty_blocks(mesh, FIGURE1_FAULTS)
    type_one = build_mccs(mesh, FIGURE1_FAULTS, MCCType.TYPE_ONE)
    type_two = build_mccs(mesh, FIGURE1_FAULTS, MCCType.TYPE_TWO)

    print("(a) faulty block (Definition 1):", blocks.blocks[0])
    print(render_mesh(mesh, faulty=blocks.faulty, blocked=blocks.unusable))

    for label, mccs in [("(b) type-one MCC", type_one), ("(c) type-two MCC", type_two)]:
        marks = {
            coord: STATUS_CHAR[mccs.status_at(coord)]
            for coord in mesh.nodes()
            if mccs.status_at(coord) is not NodeStatus.FAULT_FREE
        }
        disabled = mccs.num_disabled
        print(f"\n{label}: {disabled} healthy nodes sacrificed "
              f"(vs {blocks.num_disabled} in the block)")
        print(render_mesh(mesh, marks=marks))

    print("\nlegend: # faulty, x disabled, u useless, c can't-reach")
    print("\nper-node status pairs (status1 = quadrant I/III, status2 = II/IV):")
    for node in [(2, 6), (4, 5), (2, 3), (4, 3)]:
        pair = (
            "disabled" if type_one.is_blocked(node) else "fault-free",
            "disabled" if type_two.is_blocked(node) else "fault-free",
        )
        print(f"  {node}: ({pair[0]}, {pair[1]})")
    print(
        "\nnote: the paper's prose lists (4, 3) as (fault-free, fault-free); "
        "that is a typo -- its North and West neighbours are both faulty, so "
        "Definition 2 makes it useless for type two (see tests/test_mcc.py)."
    )


if __name__ == "__main__":
    main()
