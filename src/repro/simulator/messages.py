"""Messages exchanged by node processes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.mesh.geometry import Coord, Direction


@dataclass(frozen=True, slots=True)
class Message:
    """One hop-to-hop message.

    ``kind`` discriminates protocol message types (e.g. ``"esl"``,
    ``"boundary"``); ``payload`` is protocol-specific and must be treated as
    immutable by receivers.  ``arrival_direction`` is the direction the
    message *came from* as seen by the receiver (the paper's FORMATION
    algorithm dispatches on exactly this).  The network's fast path fills
    it in at construction time -- one allocation per hop; external senders
    going through :meth:`delivered_via` get an annotated copy instead.

    ``corrupted`` models a *detected* checksum failure: the payload still
    travels (so accounting sees the hop) but a hardened receiver discards
    the message without acknowledging it, which is what forces the sender's
    retransmit.  Unhardened protocols never see corrupted messages because
    only a :class:`~repro.chaos.plan.ChannelFaultPlan` sets the flag.

    ``trace_id`` is set only while a flight recorder is installed: the
    event id of the ``msg_send`` that put this message on the wire, so the
    delivery can name its cause and lineage survives the hop.
    """

    src: Coord
    dst: Coord
    kind: str
    payload: Any = None
    arrival_direction: Direction | None = None
    corrupted: bool = False
    trace_id: int | None = None

    def delivered_via(self, direction: Direction) -> "Message":
        """A copy annotated with the receiver-side arrival direction."""
        return Message(
            src=self.src,
            dst=self.dst,
            kind=self.kind,
            payload=self.payload,
            arrival_direction=direction,
            corrupted=self.corrupted,
            trace_id=self.trace_id,
        )

    def __str__(self) -> str:
        return f"Message[{self.kind}] {self.src} -> {self.dst}"
