"""Discrete-event message-passing simulator.

The paper's information models are *distributed*: fault-block labelling,
boundary-line distribution, and extended-safety-level formation all run as
local protocols where each node only talks to its four neighbours.  This
package provides the substrate to execute them as such:

- :mod:`repro.simulator.engine` -- a discrete-event engine (time-ordered
  callback queue; tick-bucketed by default, reference heap behind
  ``scheduler="heap"``).
- :mod:`repro.simulator.messages` -- messages exchanged between nodes.
- :mod:`repro.simulator.channels` -- FIFO links with latency and counters
  (state array-backed in the network; lazy per-link views).
- :mod:`repro.simulator.process` -- the per-node process abstraction.
- :mod:`repro.simulator.network` -- a mesh of node processes wired by
  channels.
- :mod:`repro.simulator.protocols` -- the paper's protocols, each validated
  against its centralized counterpart in the test-suite:

  ==========================  =================================================
  protocol                    centralized counterpart
  ==========================  =================================================
  ``block_formation``         :func:`repro.faults.blocks.disable_fixpoint`
  ``mcc_formation``           :func:`repro.faults.mcc.label_statuses`
  ``safety_propagation``      :func:`repro.core.safety.compute_safety_levels`
  ``boundary_distribution``   :class:`repro.core.boundaries.CanonicalBoundaryMap`
  ``region_exchange``         :func:`repro.core.segments.build_axis_segments`
  ``pivot_broadcast``         (pivot ESL table lookup)
  ==========================  =================================================

Each ``run_*`` entry point returns the protocol result plus a
:class:`~repro.simulator.network.NetworkStats` with message and convergence
accounting -- the raw material for the cost-versus-effectiveness ablation
bench (the paper's stated future work).
"""

from repro.simulator.engine import Engine
from repro.simulator.messages import Message
from repro.simulator.network import MeshNetwork, NetworkStats
from repro.simulator.process import NodeProcess

__all__ = ["Engine", "Message", "MeshNetwork", "NetworkStats", "NodeProcess"]
