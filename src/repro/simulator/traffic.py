"""Packet-level traffic simulation with link contention.

The paper motivates minimal routing with end-to-end communication cost; this
module closes the loop by running whole *workloads* of packets through the
mesh under a link-capacity model and measuring what the routing policy
actually delivers:

- time advances in cycles; each directed link carries at most one packet
  per cycle (wormhole-style single-flit packets);
- a packet that loses arbitration for its chosen link stalls one cycle and
  retries (stalls accumulate as queueing latency);
- routers are consulted *per hop*, so adaptive policies (Wu's protocol, the
  greedy baseline, the oracle) re-decide under the same fault information
  they would hold in a deployed mesh; path-based policies (the detour
  baseline) precompute their route and then contend for links like everyone
  else;
- packets whose router gives up (greedy routing stuck against a block) are
  dropped and counted.

:func:`run_workload` returns per-policy delivery/latency/stretch statistics,
the raw material for the latency-versus-load curves in the examples and the
traffic bench.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field
from typing import Callable, Protocol

import numpy as np

from repro.mesh.geometry import Coord, Rect, manhattan_distance
from repro.mesh.topology import Mesh2D
from repro.parallel.cache import ArtifactCache
from repro.routing.packet import Packet, PacketStatus
from repro.routing.path import Path
from repro.routing.router import RoutingError

#: Bound on cached (source, dest) -> Path entries per policy.  Long traffic
#: runs revisit recent pairs far more often than old ones, so an LRU of
#: this size keeps the hit rate while capping memory.
PATH_CACHE_MAXSIZE = 1024

#: How many recent fault events a :class:`PathPolicy` keeps affected-window
#: records for.  An entry older than the window can no longer prove it
#: survived every intervening event and is rebuilt instead of revalidated.
FAULT_EVENT_HISTORY = 64


class RoutingPolicy(Protocol):
    """Anything that can name the next hop of an in-flight packet."""

    def next_hop(self, current: Coord, dest: Coord) -> Coord: ...


@dataclass
class PathPolicy:
    """Adapter: follow a precomputed path (for whole-route routers).

    Routes are memoised in a bounded LRU (:class:`repro.parallel.cache.ArtifactCache`),
    so unbounded workloads cannot grow memory without limit.

    Staleness is tracked per entry, not per cache: every fault event
    reported through :meth:`note_fault_event` bumps a generation counter
    and records the event's affected window, and a cached route built
    under an older generation is served again only if it avoids every
    window recorded since (otherwise just that route is recomputed).  A
    fault on the far side of the mesh therefore no longer evicts routes
    it cannot possibly touch.  :meth:`invalidate` keeps the old blunt
    drop-everything behaviour for callers without affected-window
    information.
    """

    route: Callable[[Coord, Coord], Path]
    _cache: ArtifactCache = field(
        default_factory=lambda: ArtifactCache(maxsize=PATH_CACHE_MAXSIZE), repr=False
    )
    _generation: int = field(default=0, repr=False)
    # (generation, affected Rect) per recent event, oldest first.
    _events: collections.deque = field(
        default_factory=lambda: collections.deque(maxlen=FAULT_EVENT_HISTORY),
        repr=False,
    )
    # Entries tagged below this generation predate the recorded history
    # (or a windowless invalidation) and cannot be revalidated.
    _floor: int = field(default=0, repr=False)

    def next_hop(self, current: Coord, dest: Coord) -> Coord:
        raise NotImplementedError("PathPolicy packets carry their own cursor")

    @property
    def generation(self) -> int:
        """Count of fault events this policy has been told about."""
        return self._generation

    def path_for(self, source: Coord, dest: Coord) -> Path:
        return self._cache.get_or_build(
            (source, dest),
            lambda: self.route(source, dest),
            generation=self._generation,
            revalidate=self._survives,
        )

    def _survives(self, path: Path, tag: int | None) -> bool:
        if tag is None or tag < self._floor:
            return False
        return not any(
            generation > tag and any(rect.contains(node) for node in path.nodes)
            for generation, rect in self._events
        )

    def note_fault_event(
        self, affected: Rect | None = None, generation: int | None = None
    ) -> None:
        """Record one fault arrival/revival.

        ``affected`` is the event's perturbed window (e.g.
        ``UpdateReport.affected_rect`` from
        :class:`repro.faults.incremental.IncrementalFaultEngine`); ``None``
        means "unknown", which marks every existing entry stale.  Passing
        the engine's ``generation`` keeps the policy's counter aligned
        with the mesh's; otherwise the policy counts events itself.
        """
        self._generation = (
            generation if generation is not None else self._generation + 1
        )
        if affected is None:
            self._events.clear()
            self._floor = self._generation
            return
        if len(self._events) == self._events.maxlen:
            # The oldest record falls off: entries tagged before it can no
            # longer check every intervening event.
            self._floor = self._events[0][0]
        self._events.append((self._generation, affected))

    def invalidate(self) -> None:
        """Drop every memoised path (call after the fault set changes).

        Cached paths were computed against the old fault information; a
        route threaded through a newly faulty region would otherwise keep
        being served for up to :data:`PATH_CACHE_MAXSIZE` pairs.  Prefer
        :meth:`note_fault_event` with an affected window when one is
        known -- it only drops the routes the event can actually touch.
        """
        self._cache.clear()
        self._events.clear()
        self._floor = self._generation


@dataclass
class _FlightState:
    packet: Packet
    inject_time: int
    cursor: int = 0  # position within a PathPolicy path
    path: Path | None = None
    stalls: int = 0
    delivered_time: int | None = None


@dataclass
class TrafficStats:
    """Aggregate results of one workload run."""

    offered: int
    delivered: int
    dropped: int
    total_cycles: int
    latencies: list[int] = field(default_factory=list)
    hop_counts: list[int] = field(default_factory=list)
    minimal_hop_counts: list[int] = field(default_factory=list)
    stall_cycles: int = 0

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.offered if self.offered else 0.0

    @property
    def average_latency(self) -> float:
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0

    @property
    def average_stretch(self) -> float:
        """Mean hops divided by Manhattan distance over delivered packets."""
        if not self.hop_counts:
            return 0.0
        ratios = [
            hops / max(1, minimal)
            for hops, minimal in zip(self.hop_counts, self.minimal_hop_counts)
        ]
        return sum(ratios) / len(ratios)

    def __str__(self) -> str:
        return (
            f"{self.delivered}/{self.offered} delivered "
            f"({self.dropped} dropped), avg latency {self.average_latency:.2f} "
            f"cycles, stretch {self.average_stretch:.3f}, "
            f"{self.stall_cycles} stall-cycles in {self.total_cycles} cycles"
        )


def uniform_traffic(
    mesh: Mesh2D,
    blocked: np.ndarray,
    count: int,
    rng: np.random.Generator,
    injection_window: int,
) -> list[tuple[Coord, Coord, int]]:
    """``count`` random (source, dest, inject_time) triples on free nodes."""
    triples: list[tuple[Coord, Coord, int]] = []
    while len(triples) < count:
        source = (int(rng.integers(0, mesh.n)), int(rng.integers(0, mesh.m)))
        dest = (int(rng.integers(0, mesh.n)), int(rng.integers(0, mesh.m)))
        if source == dest or blocked[source] or blocked[dest]:
            continue
        triples.append((source, dest, int(rng.integers(0, injection_window))))
    return triples


def run_workload(
    mesh: Mesh2D,
    policy: RoutingPolicy | PathPolicy,
    traffic: list[tuple[Coord, Coord, int]],
    max_cycles: int | None = None,
) -> TrafficStats:
    """Drive a packet workload through the mesh under link contention."""
    limit = max_cycles if max_cycles is not None else 64 * (mesh.n + mesh.m) + 8 * len(traffic)
    flights: list[_FlightState] = []
    for source, dest, inject_time in traffic:
        packet = Packet(source=source, dest=dest)
        state = _FlightState(packet=packet, inject_time=inject_time)
        if isinstance(policy, PathPolicy):
            try:
                state.path = policy.path_for(source, dest)
            except RoutingError as error:
                packet.drop(str(error))
        flights.append(state)

    stats = TrafficStats(offered=len(traffic), delivered=0, dropped=0, total_cycles=0)
    cycle = 0
    while cycle < limit:
        active = [
            f
            for f in flights
            if f.packet.status is PacketStatus.IN_FLIGHT and f.inject_time <= cycle
        ]
        pending = any(
            f.packet.status is PacketStatus.IN_FLIGHT and f.inject_time > cycle
            for f in flights
        )
        if not active and not pending:
            break
        links_used: set[tuple[Coord, Coord]] = set()
        # Oldest packets win arbitration (age-based priority, starvation-free).
        for state in sorted(active, key=lambda f: f.inject_time):
            packet = state.packet
            current = packet.current
            if state.path is not None:
                nxt = state.path.nodes[state.cursor + 1]
            else:
                try:
                    nxt = policy.next_hop(current, packet.dest)
                except RoutingError as error:
                    packet.drop(str(error))
                    continue
            if (current, nxt) in links_used:
                state.stalls += 1
                stats.stall_cycles += 1
                continue
            links_used.add((current, nxt))
            packet.record_hop(nxt)
            state.cursor += 1
            if packet.status is PacketStatus.DELIVERED:
                state.delivered_time = cycle + 1
        cycle += 1
    stats.total_cycles = cycle

    for state in flights:
        packet = state.packet
        if packet.status is PacketStatus.DELIVERED:
            stats.delivered += 1
            assert state.delivered_time is not None
            stats.latencies.append(state.delivered_time - state.inject_time)
            stats.hop_counts.append(packet.hops)
            stats.minimal_hop_counts.append(
                manhattan_distance(packet.source, packet.dest)
            )
        else:
            if packet.status is PacketStatus.IN_FLIGHT:
                packet.drop("simulation cycle limit reached")
            stats.dropped += 1
    return stats
