"""Distributed within-region ESL exchange (Extension 2's information model).

Each affected row (and column) is partitioned by faulty blocks and mesh
edges into disjoint regions; nodes of a region exchange their extended
safety levels.  The paper's implementation is reproduced literally:

    *A simple implementation of such an exchange starts from two ends of
    each region and pushes the partially accumulated information to the
    other end.  Two partially accumulated information packets initiated
    from two ends form a complete packet.*

A region end (a node whose row-neighbour is blocked or missing) starts a
packet; every node appends its own sample and forwards; when both sweeps
have passed a node, it holds the perpendicular safety level of *every* node
in its region -- the full-information (segment size 1) variant of
Extension 2.  Exactly two messages traverse each intra-region link.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.safety import SafetyLevels
from repro.mesh.geometry import Coord, Direction
from repro.mesh.topology import Mesh2D
from repro.obs import Tracer, get_tracer
from repro.simulator.engine import Engine
from repro.simulator.messages import Message
from repro.simulator.network import MeshNetwork, NetworkStats, adjacent_blocked_dirs
from repro.simulator.process import NodeProcess

_NO_DIRS: frozenset[Direction] = frozenset()


class RegionExchangeProcess(NodeProcess):
    """One node's row- and column-region accumulation state.

    ``row_samples`` maps x-position -> that node's North-level for every
    known node of the row region (itself included); ``column_samples`` maps
    y-position -> East-level.  The perpendicular levels are what Theorem 1b
    consults.
    """

    __slots__ = ("blocked_dirs", "row_samples", "column_samples")

    def __init__(
        self,
        coord: Coord,
        network: MeshNetwork,
        north_level: int,
        east_level: int,
        blocked_dirs: frozenset[Direction],
    ):
        super().__init__(coord, network)
        self.blocked_dirs = blocked_dirs
        self.row_samples: dict[int, int] = {coord[0]: north_level}
        self.column_samples: dict[int, int] = {coord[1]: east_level}

    def _is_region_end(self, direction: Direction) -> bool:
        """No region neighbour beyond us in ``direction``."""
        if direction in self.blocked_dirs:
            return True
        return not self.network.mesh.in_bounds(direction.step(self.coord))

    def start(self) -> None:
        # Row sweeps: the West end starts the East-bound packet and vice versa.
        if self._is_region_end(Direction.WEST):
            self.send(Direction.EAST, "row", dict(self.row_samples))
        if self._is_region_end(Direction.EAST):
            self.send(Direction.WEST, "row", dict(self.row_samples))
        if self._is_region_end(Direction.SOUTH):
            self.send(Direction.NORTH, "column", dict(self.column_samples))
        if self._is_region_end(Direction.NORTH):
            self.send(Direction.SOUTH, "column", dict(self.column_samples))

    def on_message(self, message: Message) -> None:
        assert message.arrival_direction is not None
        forward = message.arrival_direction.opposite
        if message.kind == "row":
            own = self.row_samples[self.coord[0]]
            self.row_samples.update(message.payload)
            self.send(forward, "row", {**message.payload, self.coord[0]: own})
        elif message.kind == "column":
            own = self.column_samples[self.coord[1]]
            self.column_samples.update(message.payload)
            self.send(forward, "column", {**message.payload, self.coord[1]: own})
        else:
            raise ValueError(f"unexpected message kind {message.kind!r}")


@dataclass(frozen=True)
class RegionExchangeResult:
    #: node -> {x position -> North level} over the node's row region
    row_knowledge: dict[Coord, dict[int, int]]
    #: node -> {y position -> East level} over the node's column region
    column_knowledge: dict[Coord, dict[int, int]]
    stats: NetworkStats


def run_region_exchange(
    mesh: Mesh2D,
    unusable: np.ndarray,
    levels: SafetyLevels,
    latency: float = 1.0,
    tracer: Tracer | None = None,
    scheduler: str = "buckets",
    delivery: str = "fast",
) -> RegionExchangeResult:
    """Run the two-end accumulation over every region of the mesh.

    ``levels`` supplies each node's own ESL (formed beforehand by
    :mod:`repro.simulator.protocols.safety_propagation`); the exchange
    spreads the perpendicular components within each region.
    """
    blocked_coords = {(int(x), int(y)) for x, y in zip(*np.nonzero(unusable))}
    blocked_dirs_map = adjacent_blocked_dirs(mesh, blocked_coords)

    def factory(coord: Coord, network: MeshNetwork) -> RegionExchangeProcess:
        return RegionExchangeProcess(
            coord,
            network,
            north_level=int(levels.north[coord]),
            east_level=int(levels.east[coord]),
            blocked_dirs=blocked_dirs_map.get(coord, _NO_DIRS),
        )

    trc = tracer if tracer is not None else get_tracer()
    network = MeshNetwork(
        mesh, Engine(scheduler), factory, faulty=blocked_coords, latency=latency,
        tracer=tracer, delivery=delivery,
    )
    with trc.span("protocol.region_exchange", blocked=len(blocked_coords)):
        stats = network.run()

    row_knowledge: dict[Coord, dict[int, int]] = {}
    column_knowledge: dict[Coord, dict[int, int]] = {}
    for coord, process in network.nodes.items():
        assert isinstance(process, RegionExchangeProcess)
        row_knowledge[coord] = dict(process.row_samples)
        column_knowledge[coord] = dict(process.column_samples)
    return RegionExchangeResult(
        row_knowledge=row_knowledge,
        column_knowledge=column_knowledge,
        stats=stats,
    )
