"""Distributed faulty-block-information distribution along boundary lines.

The paper distributes each block's two opposite corners to the nodes on its
boundary lines; when a line runs into another block it turns and joins that
block's corresponding line.  Here that is a forwarding protocol:

- The nodes adjacent to a block's **South** side (plus the two diagonal
  corner nodes the paper names) are seeded with the block's rectangle as L1
  information and forward it **West**.
- A node whose West neighbour is blocked forwards **South** instead; every
  receiver applies the same rule (West if free, else South), which walks
  exactly the joined polyline of the centralized trace -- descend the
  encountered block's East side, resume West on its L1 row.
- L3 is the mirror image: seeds on the block's West side forward South,
  detouring West along an encountered block's North side.

Each node records, per (block, line), the direction the information arrived
from -- which is precisely the ``toward`` pointer of
:class:`repro.core.boundaries.BoundaryTag`, and the test-suite asserts the
distributed annotations equal the centralized ones node for node.

A node only ever forwards a given (block, line) once, so the message count
is the total polyline length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.boundaries import BoundaryTag, Line
from repro.mesh.geometry import Coord, Direction, Rect
from repro.mesh.topology import Mesh2D
from repro.obs import Tracer, get_tracer
from repro.simulator.engine import Engine
from repro.simulator.messages import Message
from repro.simulator.network import MeshNetwork, NetworkStats, adjacent_blocked_dirs
from repro.simulator.protocols.reliable import (
    ResilientProcess,
    chaos_event_budget,
    stabilize_network,
)

if TYPE_CHECKING:
    from repro.chaos.plan import ChannelFaultPlan

_NO_DIRS: frozenset[Direction] = frozenset()

#: Per line: (primary forwarding direction, detour direction when blocked).
_FORWARDING = {
    Line.L1: (Direction.WEST, Direction.SOUTH),
    Line.L3: (Direction.SOUTH, Direction.WEST),
}


class BoundaryProcess(ResilientProcess):
    __slots__ = ("blocked_dirs", "annotations", "known_rects", "_seeds")

    def __init__(
        self,
        coord: Coord,
        network: MeshNetwork,
        blocked_dirs: frozenset[Direction],
        *,
        hardened: bool = False,
    ):
        super().__init__(coord, network, hardened=hardened)
        self.blocked_dirs = blocked_dirs
        #: (block_index, line) -> toward direction (None at the exit corner)
        self.annotations: dict[tuple[int, Line], Direction | None] = {}
        #: block rectangles this node has learned (seeded or from messages)
        self.known_rects: dict[int, Rect] = {}
        #: seeds survive restarts: they are this node's hard state
        self._seeds: dict[tuple[int, Line], tuple[Direction | None, Rect]] = {}

    def seed(self, block_index: int, line: Line, toward: Direction | None, rect: Rect) -> None:
        """Install seed info; forwarding happens in start() at t=0."""
        self.annotations[(block_index, line)] = toward
        self.known_rects[block_index] = rect
        self._seeds[(block_index, line)] = (toward, rect)

    def start(self) -> None:
        for (block_index, line), _ in list(self.annotations.items()):
            self._forward(block_index, line)

    def protocol_restart(self) -> None:
        self.annotations = {}
        self.known_rects = {}
        for (block_index, line), (toward, rect) in self._seeds.items():
            self.annotations[(block_index, line)] = toward
            self.known_rects[block_index] = rect
        self.start()

    def handle_message(self, message: Message) -> None:
        if message.kind != "boundary":
            raise ValueError(f"unexpected message kind {message.kind!r}")
        block_index, line, rect = message.payload
        key = (block_index, line)
        if key in self.annotations:
            return  # already have this block's info for this line
        assert message.arrival_direction is not None
        self.annotations[key] = message.arrival_direction
        self.known_rects[block_index] = rect
        self._forward(block_index, line)

    def _forward(self, block_index: int, line: Line) -> None:
        primary, detour = _FORWARDING[line]
        payload = (block_index, line, self.known_rects[block_index])
        if primary not in self.blocked_dirs:
            self.rsend(primary, "boundary", payload)
        else:
            self.rsend(detour, "boundary", payload)


@dataclass(frozen=True)
class BoundaryDistributionResult:
    #: node -> list of BoundaryTag, same encoding as the centralized map
    annotations: dict[Coord, list[BoundaryTag]]
    stats: NetworkStats


def run_boundary_distribution(
    mesh: Mesh2D,
    rects: list[Rect],
    unusable: np.ndarray,
    latency: float = 1.0,
    tracer: Tracer | None = None,
    scheduler: str = "buckets",
    delivery: str = "fast",
    chaos: "ChannelFaultPlan | None" = None,
    stabilize_rounds: int = 1,
) -> BoundaryDistributionResult:
    """Distribute L1 and L3 information for every block (canonical
    quadrant-I orientation).

    An active ``chaos`` plan hardens every process and appends
    ``stabilize_rounds`` reset pulses; seeds are hard state, so a restart
    re-forwards them and the polylines re-form."""
    hardened = chaos is not None and chaos.active
    blocked_coords = {(int(x), int(y)) for x, y in zip(*np.nonzero(unusable))}
    blocked_dirs = adjacent_blocked_dirs(mesh, blocked_coords)

    def factory(coord: Coord, network: MeshNetwork) -> BoundaryProcess:
        return BoundaryProcess(
            coord, network, blocked_dirs.get(coord, _NO_DIRS), hardened=hardened
        )

    trc = tracer if tracer is not None else get_tracer()
    network = MeshNetwork(
        mesh, Engine(scheduler), factory, faulty=blocked_coords, latency=latency,
        tracer=tracer, delivery=delivery, chaos=chaos,
    )
    for index, rect in enumerate(rects):
        _seed_l1(mesh, network, index, rect)
        _seed_l3(mesh, network, index, rect)

    with trc.span("protocol.boundary_distribution", blocks=len(rects)):
        stats = network.run(
            max_events=chaos_event_budget(network) if hardened else None
        )
        if hardened and stabilize_rounds:
            stabilize_network(network, rounds=stabilize_rounds)
            stats = network.current_stats()

    annotations: dict[Coord, list[BoundaryTag]] = {}
    for coord, process in network.nodes.items():
        assert isinstance(process, BoundaryProcess)
        if process.annotations:
            annotations[coord] = [
                BoundaryTag(block_index=index, line=line, toward=toward)
                for (index, line), toward in sorted(
                    process.annotations.items(), key=lambda kv: (kv[0][0], kv[0][1].value)
                )
            ]
    return BoundaryDistributionResult(annotations=annotations, stats=stats)


def _seed_l1(mesh: Mesh2D, network: MeshNetwork, index: int, rect: Rect) -> None:
    """Seed the row just South of the block, from the SW diagonal corner to
    the L1 ∩ L4 exit corner."""
    row = rect.ymin - 1
    if row < 0:
        return
    exit_x = rect.xmax + 1
    for x in range(max(rect.xmin - 1, 0), min(exit_x, mesh.n - 1) + 1):
        process = network.nodes.get((x, row))
        if isinstance(process, BoundaryProcess):
            toward = None if x == exit_x else Direction.EAST
            process.seed(index, Line.L1, toward, rect)


def _seed_l3(mesh: Mesh2D, network: MeshNetwork, index: int, rect: Rect) -> None:
    """Seed the column just West of the block, up to the L3 ∩ L2 corner."""
    column = rect.xmin - 1
    if column < 0:
        return
    exit_y = rect.ymax + 1
    for y in range(max(rect.ymin - 1, 0), min(exit_y, mesh.m - 1) + 1):
        process = network.nodes.get((column, y))
        if isinstance(process, BoundaryProcess):
            toward = None if y == exit_y else Direction.NORTH
            process.seed(index, Line.L3, toward, rect)
