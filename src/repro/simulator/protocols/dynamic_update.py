"""Dynamic fault injection with incremental information update.

The paper's information model is *incremental*: "When a disturbance occurs,
only those affected nodes update their information to keep it consistent."
This module realizes that claim as a long-lived network:

- every node runs block labelling (Definition 1) and ESL maintenance
  (the FORMATION algorithm) simultaneously;
- :meth:`DynamicMesh.inject_fault` fail-stops one node at runtime; its
  neighbours detect the failure and the labelling/ESL waves ripple out from
  there -- nobody else is touched;
- faults only ever *shrink* safety levels and *grow* blocks, so min-based
  propagation converges to exactly the from-scratch state (the tests
  compare against the centralized recomputation after every injection);
- the per-injection message count measures update *locality*: far cheaper
  than re-forming all information from scratch, which is the point of the
  distribution-friendly design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.safety import UNBOUNDED, SafetyLevels
from repro.mesh.geometry import Coord, Direction
from repro.mesh.topology import Mesh2D
from repro.simulator.engine import Engine
from repro.simulator.messages import Message
from repro.simulator.network import MeshNetwork
from repro.simulator.protocols.reliable import (
    ResilientProcess,
    chaos_event_budget,
    stabilize_network,
)

if TYPE_CHECKING:
    from repro.chaos.plan import ChannelFaultPlan


class DynamicNode(ResilientProcess):
    """Block labelling plus ESL maintenance under live fault injection."""

    __slots__ = ("unusable_dirs", "disabled", "levels")

    def __init__(self, coord: Coord, network: MeshNetwork, *, hardened: bool = False):
        super().__init__(coord, network, hardened=hardened)
        self.unusable_dirs: set[Direction] = set()
        self.disabled = False
        self.levels: dict[Direction, int] = {d: UNBOUNDED for d in Direction}

    # ------------------------------------------------------------------
    # Failure detection entry point (called by the harness on neighbours of
    # an injected fault, after the detection latency).
    # ------------------------------------------------------------------
    def neighbor_became_unusable(self, direction: Direction) -> None:
        if direction in self.unusable_dirs or self.disabled:
            return
        self.unusable_dirs.add(direction)
        self._tighten_level(direction, 0)
        self._maybe_disable()

    def neighbor_became_usable(self, direction: Direction) -> None:
        """A crashed neighbour revived.  The incremental protocol cannot
        *undo* monotone state (levels only shrink, blocks only grow), so
        this merely clears the local flag; the stabilization pulse that
        follows every revive rebuilds the derived state from scratch."""
        self.unusable_dirs.discard(direction)

    def protocol_restart(self) -> None:
        # Amnesia restart: re-derive the only hard fact a node can sense
        # locally -- which neighbours are dead -- and rebuild the rest by
        # re-running the protocol (standing in for a heartbeat detector).
        self.unusable_dirs = set()
        self.disabled = False
        self.levels = {d: UNBOUNDED for d in Direction}
        for direction, neighbor in self.network.mesh.neighbor_items(self.coord):
            if neighbor in self.network.faulty:
                self.unusable_dirs.add(direction)
        for direction in Direction:
            if direction in self.unusable_dirs:
                self._tighten_level(direction, 0)
        self._maybe_disable()

    def handle_message(self, message: Message) -> None:
        assert message.arrival_direction is not None
        if message.kind == "unusable":
            self.neighbor_became_unusable(message.arrival_direction)
        elif message.kind == "esl":
            if not self.disabled:
                self._tighten_level(message.arrival_direction, int(message.payload) + 1)
        else:
            raise ValueError(f"unexpected message kind {message.kind!r}")

    # ------------------------------------------------------------------
    def _maybe_disable(self) -> None:
        horizontal = any(d.is_horizontal for d in self.unusable_dirs)
        vertical = any(d.is_vertical for d in self.unusable_dirs)
        if horizontal and vertical:
            self.disabled = True
            # From now on this node is part of a block: its neighbours treat
            # it as unusable and it stops relaying safety levels.
            self.rbroadcast("unusable")

    def _tighten_level(self, direction: Direction, value: int) -> None:
        """Safety levels only shrink as faults accumulate, so min-propagation
        converges regardless of message ordering."""
        if value >= self.levels[direction]:
            return
        self.levels[direction] = value
        self.rsend(direction.opposite, "esl", value)


@dataclass(frozen=True)
class InjectionReport:
    """Cost accounting for one injected fault.

    The ``affected_*``/``generation`` fields are filled when the mesh
    maintains its centralized reference incrementally
    (``maintenance="incremental"``): how many cells the event actually
    perturbed, that count over the mesh size, and the mesh's fault-event
    generation after the event.  Under full-rebuild maintenance they stay
    ``None``.
    """

    fault: Coord
    messages: int
    events: int
    newly_disabled: int
    settled_at: float
    affected_cells: int | None = None
    affected_fraction: float | None = None
    generation: int | None = None


class DynamicMesh:
    """A live mesh: inject faults one at a time, information stays consistent.

    ``maintenance`` selects how the *centralized reference state* (blocks
    + ESLs, served by :meth:`reference_blocks` / :meth:`reference_levels`
    and consumed by verification and routing layers) is kept while faults
    arrive and revive:

    - ``"full"`` (default): rebuilt from scratch on demand -- O(n*m) per
      query, the seed behaviour.
    - ``"incremental"``: delta-maintained by an
      :class:`repro.faults.incremental.IncrementalFaultEngine` -- O(affected)
      per event, with per-event affected-window accounting flowing into
      :class:`InjectionReport`.
    """

    def __init__(
        self,
        mesh: Mesh2D,
        latency: float = 1.0,
        scheduler: str = "buckets",
        chaos: "ChannelFaultPlan | None" = None,
        hardened: bool | None = None,
        maintenance: str = "full",
    ):
        if maintenance not in ("full", "incremental"):
            raise ValueError(
                f"maintenance must be 'full' or 'incremental', got {maintenance!r}"
            )
        self.mesh = mesh
        self.latency = latency
        self.maintenance = maintenance
        self.engine = Engine(scheduler)
        self.hardened = (
            hardened if hardened is not None else chaos is not None and chaos.active
        )

        def factory(coord: Coord, network: MeshNetwork) -> DynamicNode:
            return DynamicNode(coord, network, hardened=self.hardened)

        self._factory = factory
        self.network = MeshNetwork(
            mesh, self.engine, factory, latency=latency, chaos=chaos
        )
        self.faults: list[Coord] = []
        self.reports: list[InjectionReport] = []
        if maintenance == "incremental":
            from repro.faults.incremental import IncrementalFaultEngine

            self.fault_engine: "IncrementalFaultEngine | None" = (
                IncrementalFaultEngine(mesh)
            )
        else:
            self.fault_engine = None

    def _event_budget(self) -> int:
        if self.hardened:
            return chaos_event_budget(self.network)
        return 200 * self.mesh.size + 10_000

    # ------------------------------------------------------------------
    def inject_fault(self, coord: Coord) -> InjectionReport:
        """Fail-stop one node and run the ripple to quiescence."""
        self.mesh.require_in_bounds(coord)
        if coord in self.network.faulty:
            raise ValueError(f"{coord} already faulty")
        if coord not in self.network.nodes:
            raise ValueError(f"{coord} holds no live process")
        self.faults.append(coord)

        disabled_before = self._count_disabled()
        # O(1) running totals instead of an O(n*m) per-channel scan.
        messages_before = self.network.messages_carried_total
        events_before = self.engine.events_processed

        self.network.fail_node(coord)
        for direction, neighbor in self.mesh.neighbor_items(coord):
            process = self.network.nodes.get(neighbor)
            if isinstance(process, DynamicNode):
                # Failure detection after one link latency.
                self.engine.schedule(
                    self.latency, process.neighbor_became_unusable, direction.opposite
                )

        self.network.refresh_instrumentation()
        self.engine.run(max_events=self._event_budget())

        update = (
            self.fault_engine.inject(coord) if self.fault_engine is not None else None
        )
        report = InjectionReport(
            fault=coord,
            messages=self.network.messages_carried_total - messages_before,
            events=self.engine.events_processed - events_before,
            newly_disabled=self._count_disabled() - disabled_before,
            settled_at=self.engine.now,
            affected_cells=update.affected_cells if update else None,
            affected_fraction=update.affected_fraction if update else None,
            generation=update.generation if update else None,
        )
        self.reports.append(report)
        return report

    def revive_node(self, coord: Coord, stabilize_rounds: int = 1) -> None:
        """Bring a previously injected fault back and re-converge.

        The incremental protocol is monotone (levels only shrink, blocks
        only grow), so a revival cannot be absorbed by more ripples; it
        is handled by a reset-based stabilization pulse that restarts
        every live node against the *new* fault set (see
        :func:`repro.simulator.protocols.reliable.stabilize_network`).
        """
        if coord not in self.faults:
            raise ValueError(f"{coord} was never injected")
        self.network.restore_node(coord, self._factory)
        self.faults.remove(coord)
        if self.fault_engine is not None:
            self.fault_engine.revive(coord)
        for direction, neighbor in self.mesh.neighbor_items(coord):
            process = self.network.nodes.get(neighbor)
            if isinstance(process, DynamicNode):
                process.neighbor_became_usable(direction.opposite)
        self.network.refresh_instrumentation()
        stabilize_network(self.network, rounds=max(1, stabilize_rounds))

    # ------------------------------------------------------------------
    # State accessors (for verification against the centralized model)
    # ------------------------------------------------------------------
    def _count_disabled(self) -> int:
        return sum(
            1
            for process in self.network.nodes.values()
            if isinstance(process, DynamicNode) and process.disabled
        )

    def unusable_grid(self) -> np.ndarray:
        grid = np.zeros((self.mesh.n, self.mesh.m), dtype=bool)
        for coord in self.faults:
            grid[coord] = True
        for coord, process in self.network.nodes.items():
            if isinstance(process, DynamicNode) and process.disabled:
                grid[coord] = True
        return grid

    def safety_levels(self) -> SafetyLevels:
        """Current per-node levels (entries of blocked nodes carry no meaning)."""
        grids = {d: np.zeros((self.mesh.n, self.mesh.m), dtype=np.int64) for d in Direction}
        for coord, process in self.network.nodes.items():
            if not isinstance(process, DynamicNode):
                continue
            for direction in Direction:
                grids[direction][coord] = process.levels[direction]
        return SafetyLevels(
            mesh=self.mesh,
            east=grids[Direction.EAST],
            south=grids[Direction.SOUTH],
            west=grids[Direction.WEST],
            north=grids[Direction.NORTH],
        )

    @property
    def total_messages(self) -> int:
        """Lifetime carried-message count (O(1) running total)."""
        return self.network.messages_carried_total

    def reference_blocks(self):
        """Centralized ground-truth blocks for the current fault set.

        Under ``maintenance="incremental"`` this is a snapshot of the
        delta-maintained engine state; under ``"full"`` it rebuilds from
        scratch (the seed behaviour)."""
        if self.fault_engine is not None:
            return self.fault_engine.block_set()
        from repro.faults.blocks import build_faulty_blocks

        return build_faulty_blocks(self.mesh, self.faults)

    def reference_levels(self) -> SafetyLevels:
        """Centralized ground-truth ESLs (see :meth:`reference_blocks`);
        the incremental engine serves its live grids in O(1)."""
        if self.fault_engine is not None:
            return self.fault_engine.safety_levels()
        from repro.core.safety import compute_safety_levels

        return compute_safety_levels(self.mesh, self.reference_blocks().unusable)
