"""Distributed MCC formation (Definition 2 as a local protocol).

A node learns its neighbours' faulty bits at detection time; *useless* and
*can't-reach* statuses then spread by announcements, each label only to the
two neighbours whose own labelling could depend on it (the label rules of
:data:`repro.faults.mcc._LABEL_RULES`).  Both closures run concurrently and
independently -- a node may acquire both labels, matching the centralized
semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.mcc import _LABEL_RULES, MCCType, NodeStatus
from repro.mesh.geometry import Coord, Direction
from repro.mesh.topology import Mesh2D
from repro.obs import Tracer, get_tracer
from repro.simulator.engine import Engine
from repro.simulator.messages import Message
from repro.simulator.network import MeshNetwork, NetworkStats, adjacent_blocked_dirs
from repro.simulator.process import NodeProcess

_NO_DIRS: frozenset[Direction] = frozenset()


def _rule_directions(mcc_type: MCCType, label: NodeStatus) -> tuple[Direction, Direction]:
    """The two neighbour directions whose blockage triggers ``label``."""
    offsets = _LABEL_RULES[(mcc_type, label)]
    return tuple(Direction((dx, dy)) for dx, dy in offsets)  # type: ignore[return-value]


class MCCFormationProcess(NodeProcess):
    __slots__ = ("mcc_type", "blocked_dirs", "labels")

    def __init__(
        self,
        coord: Coord,
        network: MeshNetwork,
        faulty_dirs: frozenset[Direction],
        mcc_type: MCCType,
    ):
        super().__init__(coord, network)
        self.mcc_type = mcc_type
        # Per label: which trigger neighbours are known blocked for it.
        self.blocked_dirs: dict[NodeStatus, set[Direction]] = {
            NodeStatus.USELESS: set(faulty_dirs),
            NodeStatus.CANT_REACH: set(faulty_dirs),
        }
        self.labels: set[NodeStatus] = set()

    def start(self) -> None:
        for label in (NodeStatus.USELESS, NodeStatus.CANT_REACH):
            self._maybe_label(label)

    def on_message(self, message: Message) -> None:
        label = NodeStatus[message.kind.upper()]
        assert message.arrival_direction is not None
        self.blocked_dirs[label].add(message.arrival_direction)
        self._maybe_label(label)

    def _maybe_label(self, label: NodeStatus) -> None:
        if label in self.labels:
            return
        triggers = _rule_directions(self.mcc_type, label)
        if all(direction in self.blocked_dirs[label] for direction in triggers):
            self.labels.add(label)
            # Only the nodes for which we are a trigger neighbour care.
            for direction in triggers:
                self.send(direction.opposite, label.name.lower())


@dataclass(frozen=True)
class MCCFormationResult:
    status: np.ndarray  # NodeStatus grid, matching label_statuses()
    blocked: np.ndarray
    stats: NetworkStats


def run_mcc_formation(
    mesh: Mesh2D, faults: list[Coord], mcc_type: MCCType, latency: float = 1.0,
    tracer: Tracer | None = None, scheduler: str = "buckets",
    delivery: str = "fast",
) -> MCCFormationResult:
    fault_set = set(faults)
    faulty_dirs = adjacent_blocked_dirs(mesh, fault_set)

    def factory(coord: Coord, network: MeshNetwork) -> MCCFormationProcess:
        return MCCFormationProcess(
            coord, network, faulty_dirs.get(coord, _NO_DIRS), mcc_type
        )

    trc = tracer if tracer is not None else get_tracer()
    network = MeshNetwork(
        mesh, Engine(scheduler), factory, faulty=fault_set, latency=latency,
        tracer=tracer, delivery=delivery,
    )
    with trc.span("protocol.mcc_formation", faults=len(fault_set)):
        stats = network.run()

    status = np.zeros((mesh.n, mesh.m), dtype=np.int8)
    for coord in fault_set:
        status[coord] = NodeStatus.FAULTY
    for coord, process in network.nodes.items():
        assert isinstance(process, MCCFormationProcess)
        if NodeStatus.USELESS in process.labels:
            status[coord] = NodeStatus.USELESS
        elif NodeStatus.CANT_REACH in process.labels:
            status[coord] = NodeStatus.CANT_REACH
    return MCCFormationResult(
        status=status,
        blocked=status != NodeStatus.FAULT_FREE,
        stats=stats,
    )
