"""The paper's distributed information protocols.

Each module exposes a ``run_*`` entry point that builds a
:class:`~repro.simulator.network.MeshNetwork`, executes the protocol to
quiescence, and returns the distributed result together with
:class:`~repro.simulator.network.NetworkStats` cost accounting.  The
test-suite validates every protocol against its centralized counterpart
(see the table in :mod:`repro.simulator`).
"""

from repro.simulator.protocols.block_formation import run_block_formation
from repro.simulator.protocols.mcc_formation import run_mcc_formation
from repro.simulator.protocols.safety_propagation import run_safety_propagation
from repro.simulator.protocols.boundary_distribution import run_boundary_distribution
from repro.simulator.protocols.region_exchange import run_region_exchange
from repro.simulator.protocols.pivot_broadcast import run_pivot_broadcast

__all__ = [
    "run_block_formation",
    "run_boundary_distribution",
    "run_mcc_formation",
    "run_pivot_broadcast",
    "run_region_exchange",
    "run_safety_propagation",
]
