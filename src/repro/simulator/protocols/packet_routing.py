"""Packet routing as a distributed protocol.

Everything in :mod:`repro.core.routing` is a *local* decision rule; this
module makes that operational by running it on the message-passing
simulator: every node is a process, a packet is a message, and each hop is
one delivery event.  The hop decision at a node consults only that node's
view (its boundary tags, via the shared hop function) and the packet's
destination -- the process never reads another node's state.

Used by the tests to show the whole pipeline end-to-end *in one network*:
fault detection -> block formation -> boundary distribution -> packet
delivery, with the hop latency and message counts falling out of the
simulation rather than being asserted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mesh.geometry import Coord, Direction
from repro.mesh.topology import Mesh2D
from repro.routing.packet import Packet, PacketStatus
from repro.routing.router import HopRouter, RoutingError
from repro.simulator.engine import Engine
from repro.simulator.messages import Message
from repro.simulator.network import MeshNetwork, NetworkStats
from repro.simulator.process import NodeProcess


class PacketForwardingProcess(NodeProcess):
    """Forwards packets one hop per delivery using a shared hop function."""

    __slots__ = ("hop_router", "delivered")

    def __init__(self, coord: Coord, network: MeshNetwork, hop_router: HopRouter):
        super().__init__(coord, network)
        self.hop_router = hop_router
        self.delivered: list[tuple[Packet, float]] = []

    def accept(self, packet: Packet) -> None:
        """Entry point for locally injected packets."""
        self._handle(packet)

    def on_message(self, message: Message) -> None:
        if message.kind != "packet":
            raise ValueError(f"unexpected message kind {message.kind!r}")
        packet = message.payload
        packet.record_hop(self.coord)
        if packet.status is PacketStatus.DELIVERED:
            self.delivered.append((packet, self.network.engine.now))
            return
        self._handle(packet)

    def _handle(self, packet: Packet) -> None:
        if packet.dest == self.coord:  # zero-hop delivery (source == dest)
            packet.status = PacketStatus.DELIVERED
            self.delivered.append((packet, self.network.engine.now))
            return
        try:
            nxt = self.hop_router.next_hop(self.coord, packet.dest)
        except RoutingError as error:
            packet.drop(str(error))
            return
        self.send(Direction.between(self.coord, nxt), "packet", packet)


@dataclass
class DistributedRoutingRun:
    """Outcome of routing a batch of packets on the simulator."""

    packets: list[Packet]
    delivery_times: dict[int, float]  # packet_id -> simulated time
    stats: NetworkStats

    @property
    def delivered(self) -> int:
        return sum(1 for p in self.packets if p.status is PacketStatus.DELIVERED)

    @property
    def dropped(self) -> int:
        return len(self.packets) - self.delivered


def run_distributed_routing(
    mesh: Mesh2D,
    hop_router: HopRouter,
    unusable_coords: set[Coord],
    traffic: list[tuple[Coord, Coord]],
    latency: float = 1.0,
    scheduler: str = "buckets",
) -> DistributedRoutingRun:
    """Route ``traffic`` (source, dest pairs) as simulator messages.

    ``unusable_coords`` (faulty plus disabled nodes) get no processes; a
    packet mistakenly forwarded at them would be dropped by the channel,
    but a correct hop function never does that.
    """
    engine = Engine(scheduler)
    network = MeshNetwork(
        mesh,
        engine,
        lambda coord, net: PacketForwardingProcess(coord, net, hop_router),
        faulty=unusable_coords,
        latency=latency,
    )
    packets: list[Packet] = []
    for source, dest in traffic:
        packet = Packet(source=source, dest=dest)
        packets.append(packet)
        process = network.nodes.get(source)
        if not isinstance(process, PacketForwardingProcess):
            packet.drop(f"source {source} is unusable")
            continue
        engine.schedule(0.0, process.accept, packet)
    stats = network.run()

    delivery_times: dict[int, float] = {}
    for process in network.nodes.values():
        if isinstance(process, PacketForwardingProcess):
            for packet, when in process.delivered:
                delivery_times[packet.packet_id] = when
    return DistributedRoutingRun(packets=packets, delivery_times=delivery_times, stats=stats)
