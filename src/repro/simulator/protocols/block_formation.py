"""Distributed faulty-block formation (Definition 1 as a local protocol).

Every healthy node knows only which of its neighbours are faulty (fail-stop
detection).  A node whose unusable neighbours span both dimensions disables
itself and announces the change; announcements ripple until no node changes
-- exactly the fixpoint of :func:`repro.faults.blocks.disable_fixpoint`,
which the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.geometry import Coord, Direction
from repro.mesh.topology import Mesh2D
from repro.obs import Tracer, get_tracer
from repro.simulator.engine import Engine
from repro.simulator.messages import Message
from repro.simulator.network import MeshNetwork, NetworkStats, adjacent_blocked_dirs
from repro.simulator.process import NodeProcess

_NO_DIRS: frozenset[Direction] = frozenset()


class BlockFormationProcess(NodeProcess):
    """State machine for one healthy node."""

    __slots__ = ("unusable_dirs", "disabled")

    def __init__(self, coord: Coord, network: MeshNetwork, faulty_dirs: frozenset[Direction]):
        super().__init__(coord, network)
        self.unusable_dirs: set[Direction] = set(faulty_dirs)
        self.disabled = False

    def start(self) -> None:
        self._maybe_disable()

    def on_message(self, message: Message) -> None:
        if message.kind != "disabled":
            raise ValueError(f"unexpected message kind {message.kind!r}")
        assert message.arrival_direction is not None
        self.unusable_dirs.add(message.arrival_direction)
        self._maybe_disable()

    def _maybe_disable(self) -> None:
        if self.disabled:
            return
        horizontal = any(d.is_horizontal for d in self.unusable_dirs)
        vertical = any(d.is_vertical for d in self.unusable_dirs)
        if horizontal and vertical:
            self.disabled = True
            self.broadcast("disabled")


@dataclass(frozen=True)
class BlockFormationResult:
    unusable: np.ndarray  # faulty or disabled, as the protocol converged to it
    stats: NetworkStats


def run_block_formation(
    mesh: Mesh2D, faults: list[Coord], latency: float = 1.0,
    tracer: Tracer | None = None, scheduler: str = "buckets",
    delivery: str = "fast",
) -> BlockFormationResult:
    """Run the labelling protocol to quiescence."""
    fault_set = set(faults)
    # Sparse O(faults) map instead of a neighbour scan per node: only
    # fault-adjacent nodes start with a non-empty direction set.
    faulty_dirs = adjacent_blocked_dirs(mesh, fault_set)

    def factory(coord: Coord, network: MeshNetwork) -> BlockFormationProcess:
        return BlockFormationProcess(coord, network, faulty_dirs.get(coord, _NO_DIRS))

    trc = tracer if tracer is not None else get_tracer()
    network = MeshNetwork(
        mesh, Engine(scheduler), factory, faulty=fault_set, latency=latency,
        tracer=tracer, delivery=delivery,
    )
    with trc.span("protocol.block_formation", faults=len(fault_set)):
        stats = network.run()

    unusable = np.zeros((mesh.n, mesh.m), dtype=bool)
    for coord in fault_set:
        unusable[coord] = True
    for coord, process in network.nodes.items():
        if isinstance(process, BlockFormationProcess) and process.disabled:
            unusable[coord] = True
    return BlockFormationResult(unusable=unusable, stats=stats)
