"""Distributed faulty-block formation (Definition 1 as a local protocol).

Every healthy node knows only which of its neighbours are faulty (fail-stop
detection).  A node whose unusable neighbours span both dimensions disables
itself and announces the change; announcements ripple until no node changes
-- exactly the fixpoint of :func:`repro.faults.blocks.disable_fixpoint`,
which the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.mesh.geometry import Coord, Direction
from repro.mesh.topology import Mesh2D
from repro.obs import Tracer, get_tracer
from repro.simulator.engine import Engine
from repro.simulator.messages import Message
from repro.simulator.network import MeshNetwork, NetworkStats, adjacent_blocked_dirs
from repro.simulator.protocols.reliable import (
    ResilientProcess,
    chaos_event_budget,
    stabilize_network,
)

if TYPE_CHECKING:
    from repro.chaos.plan import ChannelFaultPlan

_NO_DIRS: frozenset[Direction] = frozenset()


class BlockFormationProcess(ResilientProcess):
    """State machine for one healthy node."""

    __slots__ = ("unusable_dirs", "disabled", "_faulty_dirs")

    def __init__(
        self,
        coord: Coord,
        network: MeshNetwork,
        faulty_dirs: frozenset[Direction],
        *,
        hardened: bool = False,
    ):
        super().__init__(coord, network, hardened=hardened)
        self.unusable_dirs: set[Direction] = set(faulty_dirs)
        self.disabled = False
        self._faulty_dirs = faulty_dirs

    def start(self) -> None:
        self._maybe_disable()

    def protocol_restart(self) -> None:
        self.unusable_dirs = set(self._faulty_dirs)
        self.disabled = False
        self.start()

    def handle_message(self, message: Message) -> None:
        if message.kind != "disabled":
            raise ValueError(f"unexpected message kind {message.kind!r}")
        assert message.arrival_direction is not None
        self.unusable_dirs.add(message.arrival_direction)
        self._maybe_disable()

    def _maybe_disable(self) -> None:
        if self.disabled:
            return
        horizontal = any(d.is_horizontal for d in self.unusable_dirs)
        vertical = any(d.is_vertical for d in self.unusable_dirs)
        if horizontal and vertical:
            self.disabled = True
            self.rbroadcast("disabled")


@dataclass(frozen=True)
class BlockFormationResult:
    unusable: np.ndarray  # faulty or disabled, as the protocol converged to it
    stats: NetworkStats


def run_block_formation(
    mesh: Mesh2D, faults: list[Coord], latency: float = 1.0,
    tracer: Tracer | None = None, scheduler: str = "buckets",
    delivery: str = "fast", chaos: "ChannelFaultPlan | None" = None,
    stabilize_rounds: int = 1,
) -> BlockFormationResult:
    """Run the labelling protocol to quiescence.

    An active ``chaos`` plan hardens every process and appends
    ``stabilize_rounds`` reset pulses (see :mod:`.reliable`)."""
    hardened = chaos is not None and chaos.active
    fault_set = set(faults)
    # Sparse O(faults) map instead of a neighbour scan per node: only
    # fault-adjacent nodes start with a non-empty direction set.
    faulty_dirs = adjacent_blocked_dirs(mesh, fault_set)

    def factory(coord: Coord, network: MeshNetwork) -> BlockFormationProcess:
        return BlockFormationProcess(
            coord, network, faulty_dirs.get(coord, _NO_DIRS), hardened=hardened
        )

    trc = tracer if tracer is not None else get_tracer()
    network = MeshNetwork(
        mesh, Engine(scheduler), factory, faulty=fault_set, latency=latency,
        tracer=tracer, delivery=delivery, chaos=chaos,
    )
    with trc.span("protocol.block_formation", faults=len(fault_set)):
        stats = network.run(
            max_events=chaos_event_budget(network) if hardened else None
        )
        if hardened and stabilize_rounds:
            stabilize_network(network, rounds=stabilize_rounds)
            stats = network.current_stats()

    unusable = np.zeros((mesh.n, mesh.m), dtype=bool)
    for coord in fault_set:
        unusable[coord] = True
    for coord, process in network.nodes.items():
        if isinstance(process, BlockFormationProcess) and process.disabled:
            unusable[coord] = True
    return BlockFormationResult(unusable=unusable, stats=stats)
