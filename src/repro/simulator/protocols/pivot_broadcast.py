"""Pivot ESL broadcasting (Extension 3's information model).

Selected pivot nodes broadcast their extended safety level to all nodes of
the 2-D mesh (paper Sec. 4).  Implemented as a per-pivot flood: the pivot
sends to its neighbours; every node forwards each pivot's announcement the
first time it sees it.  Blocked nodes neither receive nor forward, so the
flood also demonstrates that pivot information reaches every *connected*
free node (unreachable pockets simply miss it, which the decision layer
tolerates by skipping unknown pivots).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.safety import SafetyLevels
from repro.mesh.geometry import Coord
from repro.mesh.topology import Mesh2D
from repro.obs import Tracer, get_tracer
from repro.simulator.engine import Engine
from repro.simulator.messages import Message
from repro.simulator.network import MeshNetwork, NetworkStats
from repro.simulator.process import NodeProcess

ESL = tuple[int, int, int, int]


class PivotBroadcastProcess(NodeProcess):
    __slots__ = ("own_esl", "is_pivot", "pivot_table")

    def __init__(self, coord: Coord, network: MeshNetwork, own_esl: ESL, is_pivot: bool):
        super().__init__(coord, network)
        self.own_esl = own_esl
        self.is_pivot = is_pivot
        #: pivot coordinate -> its broadcast ESL
        self.pivot_table: dict[Coord, ESL] = {}

    def start(self) -> None:
        if self.is_pivot:
            self.pivot_table[self.coord] = self.own_esl
            self.broadcast("pivot", (self.coord, self.own_esl))

    def on_message(self, message: Message) -> None:
        if message.kind != "pivot":
            raise ValueError(f"unexpected message kind {message.kind!r}")
        pivot, esl = message.payload
        if pivot in self.pivot_table:
            return
        self.pivot_table[pivot] = esl
        self.broadcast("pivot", (pivot, esl))


@dataclass(frozen=True)
class PivotBroadcastResult:
    #: node -> {pivot -> ESL} as collected by the flood
    tables: dict[Coord, dict[Coord, ESL]]
    stats: NetworkStats


def run_pivot_broadcast(
    mesh: Mesh2D,
    unusable: np.ndarray,
    levels: SafetyLevels,
    pivots: list[Coord],
    latency: float = 1.0,
    tracer: Tracer | None = None,
    scheduler: str = "buckets",
    delivery: str = "fast",
) -> PivotBroadcastResult:
    """Flood every pivot's ESL through the free part of the mesh.

    Pivots inside blocks are skipped (they have no process), matching the
    decision layer's rule that blocked pivots are unusable.
    """
    blocked_coords = {(int(x), int(y)) for x, y in zip(*np.nonzero(unusable))}
    pivot_set = {p for p in pivots if p not in blocked_coords}
    for pivot in pivot_set:
        mesh.require_in_bounds(pivot)

    def factory(coord: Coord, network: MeshNetwork) -> PivotBroadcastProcess:
        esl: ESL = (
            int(levels.east[coord]),
            int(levels.south[coord]),
            int(levels.west[coord]),
            int(levels.north[coord]),
        )
        return PivotBroadcastProcess(coord, network, esl, is_pivot=coord in pivot_set)

    trc = tracer if tracer is not None else get_tracer()
    network = MeshNetwork(
        mesh, Engine(scheduler), factory, faulty=blocked_coords, latency=latency,
        tracer=tracer, delivery=delivery,
    )
    with trc.span("protocol.pivot_broadcast", pivots=len(pivot_set)):
        stats = network.run()

    tables = {
        coord: dict(process.pivot_table)
        for coord, process in network.nodes.items()
        if isinstance(process, PivotBroadcastProcess)
    }
    return PivotBroadcastResult(tables=tables, stats=stats)
