"""Distributed extended-safety-level formation (the paper's
FORMATION-EXTENDED-SAFETY-LEVEL-INFORMATION algorithm, Sec. 4).

Runs *after* block formation: every node knows which of its neighbours sit
inside a faulty block.  A node with a blocked East neighbour sets ``E = 0``
and tells its West neighbour, which sets ``E = 0 + 1`` and forwards further
West -- the paper's case dispatch on the sender's direction, with the
default level being unbounded so clear rows/columns exchange nothing.

Nodes inside blocks do not participate (their channels are down), which is
also what partitions each affected row/column into the disjoint regions the
paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.safety import UNBOUNDED, SafetyLevels
from repro.mesh.geometry import Coord, Direction
from repro.mesh.topology import Mesh2D
from repro.obs import Tracer, get_tracer
from repro.simulator.engine import Engine
from repro.simulator.messages import Message
from repro.simulator.network import MeshNetwork, NetworkStats, adjacent_blocked_dirs
from repro.simulator.protocols.reliable import (
    ResilientProcess,
    chaos_event_budget,
    stabilize_network,
)

if TYPE_CHECKING:
    from repro.chaos.plan import ChannelFaultPlan

_NO_DIRS: frozenset[Direction] = frozenset()


class SafetyFormationProcess(ResilientProcess):
    __slots__ = ("levels", "_blocked_dirs")

    def __init__(
        self,
        coord: Coord,
        network: MeshNetwork,
        blocked_dirs: frozenset[Direction],
        *,
        hardened: bool = False,
    ):
        super().__init__(coord, network, hardened=hardened)
        self.levels: dict[Direction, int] = {d: UNBOUNDED for d in Direction}
        self._blocked_dirs = blocked_dirs

    def start(self) -> None:
        for direction in self._blocked_dirs:
            self._update(direction, 0)

    def protocol_restart(self) -> None:
        self.levels = {d: UNBOUNDED for d in Direction}
        self.start()

    def handle_message(self, message: Message) -> None:
        if message.kind != "esl":
            raise ValueError(f"unexpected message kind {message.kind!r}")
        assert message.arrival_direction is not None
        # A level arriving from the East is an E-chain value, etc.
        self._update(message.arrival_direction, int(message.payload) + 1)

    def _update(self, direction: Direction, value: int) -> None:
        """Adopt a tighter level for ``direction`` and forward it onward."""
        if value >= self.levels[direction]:
            return
        self.levels[direction] = value
        self.rsend(direction.opposite, "esl", value)

    def esl(self) -> tuple[int, int, int, int]:
        return (
            self.levels[Direction.EAST],
            self.levels[Direction.SOUTH],
            self.levels[Direction.WEST],
            self.levels[Direction.NORTH],
        )


@dataclass(frozen=True)
class SafetyPropagationResult:
    levels: SafetyLevels  # same container the centralized computation fills
    stats: NetworkStats


def run_safety_propagation(
    mesh: Mesh2D, unusable: np.ndarray, latency: float = 1.0,
    tracer: Tracer | None = None, scheduler: str = "buckets",
    delivery: str = "fast", chaos: "ChannelFaultPlan | None" = None,
    stabilize_rounds: int = 1,
) -> SafetyPropagationResult:
    """Run the FORMATION algorithm over the blocked-node grid.

    Entries for blocked nodes are left at 0 in the result grids; they carry
    no meaning (the centralized counterpart is only compared on free nodes).

    An active ``chaos`` plan hardens every process (ack/retransmit) and
    appends ``stabilize_rounds`` reset pulses so lost messages cannot leave
    the grid short of the fixpoint.
    """
    hardened = chaos is not None and chaos.active
    blocked_coords = {(int(x), int(y)) for x, y in zip(*np.nonzero(unusable))}
    blocked_dirs = adjacent_blocked_dirs(mesh, blocked_coords)

    def factory(coord: Coord, network: MeshNetwork) -> SafetyFormationProcess:
        return SafetyFormationProcess(
            coord, network, blocked_dirs.get(coord, _NO_DIRS), hardened=hardened
        )

    trc = tracer if tracer is not None else get_tracer()
    network = MeshNetwork(
        mesh, Engine(scheduler), factory, faulty=blocked_coords, latency=latency,
        tracer=tracer, delivery=delivery, chaos=chaos,
    )
    with trc.span("protocol.safety_propagation", blocked=len(blocked_coords)):
        stats = network.run(
            max_events=chaos_event_budget(network) if hardened else None
        )
        if hardened and stabilize_rounds:
            stabilize_network(network, rounds=stabilize_rounds)
            stats = network.current_stats()

    grids = {d: np.zeros((mesh.n, mesh.m), dtype=np.int64) for d in Direction}
    for coord, process in network.nodes.items():
        assert isinstance(process, SafetyFormationProcess)
        for direction in Direction:
            grids[direction][coord] = process.levels[direction]
    levels = SafetyLevels(
        mesh=mesh,
        east=grids[Direction.EAST],
        south=grids[Direction.SOUTH],
        west=grids[Direction.WEST],
        north=grids[Direction.NORTH],
    )
    return SafetyPropagationResult(levels=levels, stats=stats)
