"""Ack/timeout/retransmit hardening for the information protocols.

The paper's formation/propagation algorithms assume reliable channels and
a membership that only shrinks.  :class:`ResilientProcess` wraps the
protocol logic of a :class:`~repro.simulator.process.NodeProcess` in a
stop-and-wait reliability shim so the same algorithms survive a
:class:`~repro.chaos.plan.ChannelFaultPlan` and mid-run crash/revive:

- every payload-bearing send travels inside an :class:`Envelope` stamped
  with a per-sender sequence number and the network's *chaos epoch*;
- receivers acknowledge every envelope (acks travel raw: an ack of an
  ack would never terminate), discard corrupted deliveries without
  acking (forcing the retransmit), deduplicate via per-direction seen
  sets (idempotent receive), and drop envelopes from stale epochs;
- senders retransmit unacked envelopes with exponential backoff in
  ticks, bounded by ``max_retries`` (a give-up is counted, not fatal:
  the stabilization pulse is the backstop);
- :func:`stabilize_network` is that backstop -- a reset-based
  self-stabilization pulse in the Arora-Gouda style: bump the epoch
  (fencing off every in-flight message and pending retransmit), restart
  all live processes from locally-derivable state, and drain.  Because
  the protocols are monotone and restart from scratch against the
  *final* fault set, the pulse converges to exactly the
  Definition-1/ESL fixpoint the batch oracles compute.

Hardening is opt-in per process (``hardened=False`` keeps ``rsend`` a
plain ``send``), so default runs stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.mesh.geometry import Direction
from repro.obs.prof import get_profiler
from repro.simulator.messages import Message
from repro.simulator.network import MeshNetwork
from repro.simulator.process import NodeProcess

#: Message kind reserved for reliability acknowledgements.  Protocol
#: handlers never see it: the shim consumes acks before dispatch.
ACK_KIND = "chaos-ack"

#: Retransmit timeout as a multiple of the link latency (round trip plus
#: scheduling slack), doubled on every attempt.
DEFAULT_TIMEOUT_FACTOR = 4.0

DEFAULT_MAX_RETRIES = 6


@dataclass(frozen=True, slots=True)
class Envelope:
    """A protocol payload wrapped for reliable delivery."""

    epoch: int
    seq: int
    payload: Any


class ResilientProcess(NodeProcess):
    """A node process with optional stop-and-wait reliable delivery.

    Subclasses implement :meth:`handle_message` (the protocol logic that
    plain processes put in ``on_message``) and send via :meth:`rsend` /
    :meth:`rbroadcast`; with ``hardened=False`` those degrade to the raw
    primitives and this class adds nothing but a dict or two.
    """

    __slots__ = (
        "_rel_on",
        "_rel_seq",
        "_rel_outbox",
        "_rel_seen",
        "_rel_timeout",
        "_rel_max_retries",
    )

    def __init__(
        self,
        coord,
        network: MeshNetwork,
        *,
        hardened: bool = False,
        ack_timeout: float | None = None,
        max_retries: int = DEFAULT_MAX_RETRIES,
    ):
        super().__init__(coord, network)
        self._rel_on = hardened
        self._rel_seq = 0
        #: (direction, epoch, seq) -> [kind, envelope, attempts, sent_id]
        #: (sent_id: the last attempt's msg_send event id under a flight
        #: recorder, else None -- retransmit lineage)
        self._rel_outbox: dict[tuple[Direction, int, int], list] = {}
        #: direction -> set of delivered (epoch, seq)
        self._rel_seen: dict[Direction, set[tuple[int, int]]] = {}
        self._rel_timeout = (
            ack_timeout if ack_timeout is not None
            else DEFAULT_TIMEOUT_FACTOR * network.latency
        )
        self._rel_max_retries = max_retries

    # ------------------------------------------------------------------
    # Reliable send primitives
    # ------------------------------------------------------------------
    def rsend(self, direction: Direction, kind: str, payload: Any = None) -> bool:
        if not self._rel_on:
            return self.send(direction, kind, payload)
        network = self.network
        epoch = network.chaos_epoch
        self._rel_seq += 1
        envelope = Envelope(epoch, self._rel_seq, payload)
        if not self.send(direction, kind, envelope):
            return False  # mesh edge: nothing to retry
        key = (direction, epoch, self._rel_seq)
        # Under a flight recorder the outbox remembers the send's event id
        # so a retransmit can name the attempt it is retrying as its cause.
        sent_id = network._trc.last_send_id if network._rec_on else None
        self._rel_outbox[key] = [kind, envelope, 0, sent_id]
        network.engine.schedule(self._rel_timeout, self._rel_check, key, self._rel_timeout)
        return True

    def rbroadcast(self, kind: str, payload: Any = None) -> int:
        count = 0
        for direction in Direction:
            if self.rsend(direction, kind, payload):
                count += 1
        return count

    def _rel_check(self, key: tuple[Direction, int, int], timeout: float) -> None:
        entry = self._rel_outbox.get(key)
        if entry is None:
            return  # acked
        if self.network.nodes.get(self.coord) is not self:
            return  # this incarnation crashed or was replaced
        direction, epoch, _seq = key
        if epoch != self.network.chaos_epoch:
            # A pulse or revive fenced this traffic off; the restart
            # re-derives whatever it was carrying.
            del self._rel_outbox[key]
            return
        kind, envelope, attempts, sent_id = entry
        if attempts >= self._rel_max_retries:
            del self._rel_outbox[key]
            prof = get_profiler()
            if prof.enabled:
                prof.count("chaos.gave_up")
            return
        entry[2] = attempts + 1
        network = self.network
        network.note_retry(self.coord, direction)
        if network._rec_on and sent_id is not None:
            recorder = network._trc
            with recorder.cause_scope(sent_id):
                self.send(direction, kind, envelope)
            entry[3] = recorder.last_send_id
        else:
            self.send(direction, kind, envelope)
        network.engine.schedule(timeout * 2.0, self._rel_check, key, timeout * 2.0)

    # ------------------------------------------------------------------
    # Receive shim
    # ------------------------------------------------------------------
    def on_message(self, message: Message) -> None:
        if not self._rel_on:
            self.handle_message(message)
            return
        prof = get_profiler()
        direction = message.arrival_direction
        if message.kind == ACK_KIND:
            if not message.corrupted and direction is not None:
                epoch, seq = message.payload
                self._rel_outbox.pop((direction, epoch, seq), None)
            return
        if message.corrupted:
            # Detected checksum failure: discard unacked; the sender's
            # timeout drives the retransmit.
            if prof.enabled:
                prof.count("chaos.corrupt_discarded")
            return
        payload = message.payload
        if not isinstance(payload, Envelope):
            self.handle_message(message)  # e.g. legacy/raw senders
            return
        if payload.epoch != self.network.chaos_epoch:
            if prof.enabled:
                prof.count("chaos.stale_discarded")
            return
        if direction is not None:
            # Ack before the dedup check: the original ack may have been
            # lost, and re-acking is what stops the retransmits.
            self.send(direction, ACK_KIND, (payload.epoch, payload.seq))
            seen = self._rel_seen.setdefault(direction, set())
            if (payload.epoch, payload.seq) in seen:
                if prof.enabled:
                    prof.count("chaos.dup_suppressed")
                return
            seen.add((payload.epoch, payload.seq))
        self.handle_message(
            Message(
                message.src, message.dst, message.kind,
                payload.payload, direction,
            )
        )

    def handle_message(self, message: Message) -> None:
        """Protocol logic; override exactly as ``on_message`` elsewhere."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Restart (self-stabilization)
    # ------------------------------------------------------------------
    def local_restart(self) -> None:
        """Forget everything soft and rebuild from locally-derivable state."""
        self._rel_outbox.clear()
        self._rel_seen.clear()
        self._rel_seq = 0
        self.protocol_restart()

    def protocol_restart(self) -> None:
        """Reset protocol state and re-run the initial sends.  Subclasses
        with soft state must override; stateless starters get this."""
        self.start()


def chaos_event_budget(network: MeshNetwork) -> int:
    """An event budget generous enough for hardened runs.

    Hardening multiplies traffic (ack + at least one timer per message,
    plus retransmits), and stabilization pulses re-run the whole
    formation; scale the default budget accordingly.
    """
    return 2_000 * network.mesh.size + 100_000


def stabilize_network(network: MeshNetwork, rounds: int = 1) -> int:
    """Run ``rounds`` reset-based stabilization pulses to quiescence.

    Each pulse bumps the chaos epoch (discarding all in-flight traffic
    and pending retransmits -- whatever they carried is re-derived) and
    restarts every live :class:`ResilientProcess` in deterministic
    coordinate order.  Returns the number of engine events processed;
    the simulated time the pulses took is counted into the
    ``chaos.reconverge_ticks`` hot counter.
    """
    engine = network.engine
    started_at = engine.now
    events = 0
    budget = chaos_event_budget(network)
    recorder = network._trc if network._rec_on else None
    for _ in range(max(0, rounds)):
        network.chaos_epoch += 1
        pulse_id = None
        if recorder is not None:
            pulse_id = recorder.emit(
                "epoch_bump", epoch=network.chaos_epoch, reason="stabilize",
                time=engine.now,
            )
        for coord in sorted(network.nodes):
            process = network.nodes[coord]
            if isinstance(process, ResilientProcess):
                if recorder is not None:
                    restart_id = recorder.emit(
                        "proc_restart", cause=pulse_id, at=coord, time=engine.now
                    )
                    with recorder.cause_scope(restart_id):
                        process.local_restart()
                else:
                    process.local_restart()
        events += engine.run(max_events=budget)
    prof = get_profiler()
    if prof.enabled and engine.now > started_at:
        prof.count("chaos.reconverge_ticks", int(engine.now - started_at))
    return events
