"""A mesh of node processes wired by channels."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.mesh.geometry import Coord, Direction
from repro.mesh.topology import Mesh2D
from repro.obs import Tracer, get_tracer
from repro.obs.prof import get_profiler
from repro.simulator.channels import Channel
from repro.simulator.engine import Engine
from repro.simulator.messages import Message
from repro.simulator.process import NodeProcess


@dataclass(frozen=True)
class NetworkStats:
    """Protocol cost accounting, read after a run converges."""

    messages: int
    dropped: int
    events: int
    converged_at: float

    def __str__(self) -> str:
        return (
            f"{self.messages} messages ({self.dropped} dropped), "
            f"{self.events} events, converged at t={self.converged_at:g}"
        )


class MeshNetwork:
    """All node processes of one mesh plus the directed channels between
    them.

    ``faulty`` nodes get no process and their incident channels are down:
    they neither originate, forward, nor receive (the fail-stop model the
    paper assumes).
    """

    def __init__(
        self,
        mesh: Mesh2D,
        engine: Engine,
        node_factory: Callable[[Coord, "MeshNetwork"], NodeProcess],
        faulty: Iterable[Coord] = (),
        latency: float = 1.0,
        tracer: Tracer | None = None,
    ):
        self.mesh = mesh
        self.engine = engine
        self.latency = latency
        self.tracer = tracer
        self.faulty: set[Coord] = set(faulty)
        for coord in self.faulty:
            mesh.require_in_bounds(coord)

        self.nodes: dict[Coord, NodeProcess] = {
            coord: node_factory(coord, self)
            for coord in mesh.nodes()
            if coord not in self.faulty
        }
        self.channels: dict[tuple[Coord, Direction], Channel] = {}
        for coord in mesh.nodes():
            for direction, neighbor in mesh.neighbor_items(coord):
                channel = Channel(
                    src=coord,
                    dst=neighbor,
                    direction=direction,
                    latency=latency,
                    engine=engine,
                    deliver=self._deliver,
                    up=coord not in self.faulty and neighbor not in self.faulty,
                )
                self.channels[(coord, direction)] = channel

    # ------------------------------------------------------------------
    # Message plumbing
    # ------------------------------------------------------------------
    def _tracer(self) -> Tracer:
        return self.tracer if self.tracer is not None else get_tracer()

    def send_from(self, src: Coord, direction: Direction, kind: str, payload) -> bool:
        """Send one hop; False if the link does not exist (mesh edge)."""
        channel = self.channels.get((src, direction))
        if channel is None:
            return False
        trc = self._tracer()
        if trc.enabled:
            trc.emit("protocol_msg", msg=kind, src=src, direction=direction.name,
                     time=self.engine.now, queue=self.engine.pending,
                     dropped=not channel.up)
        prof = get_profiler()
        if prof.enabled:
            prof.count("sim.messages")
        channel.send(Message(src=src, dst=channel.dst, kind=kind, payload=payload))
        return True

    def _deliver(self, dst: Coord, message: Message) -> None:
        process = self.nodes.get(dst)
        if process is not None:
            process.on_message(message)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, max_events: int | None = None) -> NetworkStats:
        """Start every process and drain the engine to quiescence."""
        trc = self._tracer()
        with trc.span("network.run", nodes=len(self.nodes)):
            for process in self.nodes.values():
                process.start()
            budget = max_events if max_events is not None else 200 * self.mesh.size + 10_000
            events = self.engine.run(max_events=budget)
        if trc.enabled:
            trc.emit("engine_run", events=events, **self.engine.metrics_snapshot())
        return NetworkStats(
            messages=sum(c.messages_carried for c in self.channels.values()),
            dropped=sum(c.messages_dropped for c in self.channels.values()),
            events=events,
            converged_at=self.engine.now,
        )

    def process_at(self, coord: Coord) -> NodeProcess:
        return self.nodes[coord]
