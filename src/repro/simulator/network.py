"""A mesh of node processes wired by channels.

Channel state is array-backed: three numpy arrays of shape ``(n, m, 4)``
(indexed ``[x, y, direction]``) hold every directed link's up flag and
carried/dropped counters, and two running totals make whole-network
accounting O(1) instead of an O(n*m) channel scan.  ``network.channels``
remains a mapping of API-compatible :class:`~repro.simulator.channels.ChannelView`
objects, built lazily on access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable

import numpy as np

from repro.mesh.geometry import Coord, Direction
from repro.mesh.topology import Mesh2D
from repro.obs import Tracer, get_tracer
from repro.obs.prof import get_profiler
from repro.obs.timeseries import get_observatory
from repro.simulator.channels import Channel, ChannelMap, ChannelView
from repro.simulator.engine import Engine
from repro.simulator.messages import Message
from repro.simulator.process import NodeProcess

if TYPE_CHECKING:
    from repro.chaos.plan import ChannelFaultPlan

#: Array index of each direction (definition order: E, S, W, N).
_DIR_INDEX: dict[Direction, int] = {d: i for i, d in enumerate(Direction)}

#: Delivery paths selectable via ``MeshNetwork(delivery=...)``: ``"fast"``
#: is the zero-copy array-backed path; ``"legacy"`` is the seed
#: implementation (eager per-channel objects, a ``delivered_via`` message
#: copy per hop, tracer/profiler resolution per send, O(n*m) stats scans),
#: kept for cross-validation and as the bench reference.
DELIVERY_MODES = ("fast", "legacy")

_NO_DIRS: frozenset[Direction] = frozenset()


def adjacent_blocked_dirs(
    mesh: Mesh2D, blocked: Iterable[Coord]
) -> dict[Coord, frozenset[Direction]]:
    """For each neighbour of a blocked node: the directions it sees blocked.

    Protocol factories need ``{direction: neighbour is blocked}`` per node;
    scanning ``neighbor_items`` for all ``n*m`` nodes is O(mesh), while
    only fault-adjacent nodes ever have a non-empty set.  This builds the
    sparse map in O(blocked); absent nodes mean "no blocked neighbour".
    """
    out: dict[Coord, set[Direction]] = {}
    for coord in blocked:
        for direction, neighbor in mesh.neighbor_items(coord):
            out.setdefault(neighbor, set()).add(direction.opposite)
    return {coord: frozenset(dirs) for coord, dirs in out.items()}


@dataclass(frozen=True)
class NetworkStats:
    """Protocol cost accounting, read after a run converges.

    The chaos fields default to zero so reliable runs (and pre-chaos
    baselines) compare equal regardless of whether they were produced
    before or after the chaos layer existed.  ``dropped`` counts sends
    into a *down* channel (fail-stop semantics); ``lost`` counts messages
    a live channel discarded under a
    :class:`~repro.chaos.plan.ChannelFaultPlan`.
    """

    messages: int
    dropped: int
    events: int
    converged_at: float
    lost: int = 0
    duplicated: int = 0
    retried: int = 0

    def __str__(self) -> str:
        text = (
            f"{self.messages} messages ({self.dropped} dropped), "
            f"{self.events} events, converged at t={self.converged_at:g}"
        )
        if self.lost or self.duplicated or self.retried:
            text += (
                f" [chaos: {self.lost} lost, {self.duplicated} duplicated, "
                f"{self.retried} retried]"
            )
        return text


class MeshNetwork:
    """All node processes of one mesh plus the directed channels between
    them.

    ``faulty`` nodes get no process and their incident channels are down:
    they neither originate, forward, nor receive (the fail-stop model the
    paper assumes).
    """

    def __init__(
        self,
        mesh: Mesh2D,
        engine: Engine,
        node_factory: Callable[[Coord, "MeshNetwork"], NodeProcess],
        faulty: Iterable[Coord] = (),
        latency: float = 1.0,
        tracer: Tracer | None = None,
        delivery: str = "fast",
        chaos: "ChannelFaultPlan | None" = None,
    ):
        if delivery not in DELIVERY_MODES:
            raise ValueError(
                f"unknown delivery mode {delivery!r}; expected one of {DELIVERY_MODES}"
            )
        if chaos is not None and chaos.active and delivery == "legacy":
            raise ValueError(
                "chaos plans require the fast delivery path (delivery='fast')"
            )
        self.mesh = mesh
        self.engine = engine
        self.latency = latency
        self.tracer = tracer
        self.delivery = delivery
        self.chaos = chaos
        #: Live-telemetry hookup: when set (directly, or ambiently via
        #: :func:`repro.obs.timeseries.use_observatory`), :meth:`run`
        #: binds it to this network and installs the engine tick hook.
        #: None (the default) leaves the engine's unhooked fast path
        #: untouched.
        self.observatory = None
        #: Bumped on every membership change that invalidates in-flight
        #: traffic (node revival, stabilization pulse).  Hardened
        #: processes stamp their envelopes with the epoch at send time
        #: and discard deliveries from older epochs.
        self.chaos_epoch = 0
        self.faulty: set[Coord] = set(faulty)
        for coord in self.faulty:
            mesh.require_in_bounds(coord)

        self.nodes: dict[Coord, NodeProcess] = {
            coord: node_factory(coord, self)
            for coord in mesh.nodes()
            if coord not in self.faulty
        }

        n, m = mesh.n, mesh.m
        self._n, self._m = n, m
        healthy = np.ones((n, m), dtype=bool)
        for coord in self.faulty:
            healthy[coord] = False
        # A link is up iff it exists (neighbour in bounds) and both ends
        # are healthy; out-of-bounds slots simply stay False forever.
        up = np.zeros((n, m, 4), dtype=bool)
        if n > 1:
            up[:-1, :, _DIR_INDEX[Direction.EAST]] = healthy[:-1, :] & healthy[1:, :]
            up[1:, :, _DIR_INDEX[Direction.WEST]] = healthy[1:, :] & healthy[:-1, :]
        if m > 1:
            up[:, 1:, _DIR_INDEX[Direction.SOUTH]] = healthy[:, 1:] & healthy[:, :-1]
            up[:, :-1, _DIR_INDEX[Direction.NORTH]] = healthy[:, :-1] & healthy[:, 1:]
        self.channel_up = up
        #: Running population count of ``channel_up`` (kept by
        #: :meth:`take_down_channel` / :meth:`bring_up_channel`, the only
        #: mutation points), so the per-tick sampler never pays a
        #: whole-array reduction.
        self.channels_up_total = int(up.sum())
        self.channel_carried = np.zeros((n, m, 4), dtype=np.int64)
        self.channel_dropped = np.zeros((n, m, 4), dtype=np.int64)
        #: Chaos accounting per directed link: messages a *live* channel
        #: discarded under the fault plan, and retransmissions pushed by
        #: hardened senders.  All-zero (and never touched) without chaos.
        self.channel_lost = np.zeros((n, m, 4), dtype=np.int64)
        self.channel_retried = np.zeros((n, m, 4), dtype=np.int64)
        #: Running totals: O(1) whole-network accounting (stable API).
        self.messages_carried_total = 0
        self.messages_dropped_total = 0
        self.messages_lost_total = 0
        self.messages_duplicated_total = 0
        self.messages_retried_total = 0

        if delivery == "legacy":
            # The seed implementation: one eagerly built Channel object per
            # directed link, re-resolved instrumentation and a per-hop
            # ``delivered_via`` message copy on every send.  Kept for
            # cross-validation against the fast path and as the bench
            # reference (``sim.formation_large_heap``).
            faulty = self.faulty
            self.channels = {
                (coord, direction): Channel(
                    src=coord,
                    dst=neighbor,
                    direction=direction,
                    latency=latency,
                    engine=engine,
                    deliver=self._deliver,
                    up=coord not in faulty and neighbor not in faulty,
                )
                for coord in mesh.nodes()
                for direction, neighbor in mesh.neighbor_items(coord)
            }
            # Instance attribute shadows the class method for this network.
            self.send_from = self._send_from_legacy  # type: ignore[method-assign]
        else:
            self.channels = ChannelMap(self)
        self.refresh_instrumentation()

    # ------------------------------------------------------------------
    # Channel plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def direction_index(direction: Direction) -> int:
        """Index of ``direction`` in the channel state arrays."""
        return _DIR_INDEX[direction]

    def channel_view(self, src: Coord, direction: Direction) -> ChannelView | None:
        """A view of the ``src -> direction`` link; None at the mesh edge."""
        dst = direction.step(src)
        if not (self.mesh.in_bounds(src) and self.mesh.in_bounds(dst)):
            return None
        return ChannelView(self, src, dst, direction)

    def take_down_channel(self, src: Coord, direction: Direction) -> None:
        """Mark one directed link down (messages to it are dropped)."""
        x, y = src
        di = _DIR_INDEX[direction]
        if self.channel_up[x, y, di]:
            self.channel_up[x, y, di] = False
            self.channels_up_total -= 1
        if self.delivery == "legacy":
            channel = self.channels.get((src, direction))
            if channel is not None:
                channel.take_down()

    def bring_up_channel(self, src: Coord, direction: Direction) -> None:
        """Re-enable one directed link (the inverse of take_down_channel)."""
        dst = direction.step(src)
        if not self.mesh.in_bounds(dst):
            return
        x, y = src
        di = _DIR_INDEX[direction]
        if not self.channel_up[x, y, di]:
            self.channel_up[x, y, di] = True
            self.channels_up_total += 1
        if self.delivery == "legacy":
            channel = self.channels.get((src, direction))
            if channel is not None:
                channel.up = True

    # ------------------------------------------------------------------
    # Runtime membership (chaos crash/revive)
    # ------------------------------------------------------------------
    def fail_node(self, coord: Coord) -> NodeProcess | None:
        """Fail-stop one node at runtime: its process is removed and every
        incident directed link goes down.  Returns the removed process
        (None if the node never had one, e.g. it was disabled-only)."""
        self.mesh.require_in_bounds(coord)
        if coord in self.faulty:
            raise ValueError(f"{coord} already faulty")
        process = self.nodes.pop(coord, None)
        self.faulty.add(coord)
        for direction, neighbor in self.mesh.neighbor_items(coord):
            self.take_down_channel(coord, direction)
            self.take_down_channel(neighbor, direction.opposite)
        return process

    def restore_node(
        self, coord: Coord, node_factory: Callable[[Coord, "MeshNetwork"], NodeProcess]
    ) -> NodeProcess:
        """Revive a failed node with a *fresh* process (amnesia: crashed
        state is gone).  Links come back up only where the far end is also
        healthy."""
        if coord not in self.faulty:
            raise ValueError(f"{coord} is not faulty")
        self.faulty.discard(coord)
        for direction, neighbor in self.mesh.neighbor_items(coord):
            if neighbor not in self.faulty:
                self.bring_up_channel(coord, direction)
                self.bring_up_channel(neighbor, direction.opposite)
        process = node_factory(coord, self)
        self.nodes[coord] = process
        return process

    # ------------------------------------------------------------------
    # Message plumbing
    # ------------------------------------------------------------------
    def _tracer(self) -> Tracer:
        return self.tracer if self.tracer is not None else get_tracer()

    def refresh_instrumentation(self) -> None:
        """Re-resolve the tracer/profiler into per-send fast-path flags.

        ``send_from`` consults these cached flags instead of doing a
        registry lookup per message; callers that install a tracer or
        profiler *after* construction get them picked up at the next
        :meth:`run` (which refreshes automatically) or by calling this.
        """
        trc = self.tracer if self.tracer is not None else get_tracer()
        self._trc = trc
        self._trace_on = trc.enabled
        self._rec_on = trc.recording
        prof = get_profiler()
        self._prof = prof
        self._prof_on = prof.enabled
        self._chaos_on = self.chaos is not None and self.chaos.active
        self._obs = self.observatory if self.observatory is not None else get_observatory()

    def send_from(self, src: Coord, direction: Direction, kind: str, payload) -> bool:
        """Send one hop; False if the link does not exist (mesh edge)."""
        if self._rec_on:
            return self._send_from_recorded(src, direction, kind, payload)
        if self._chaos_on:
            return self._send_from_chaos(src, direction, kind, payload)
        x, y = src
        dx, dy = direction.value
        nx, ny = x + dx, y + dy
        if nx < 0 or ny < 0 or nx >= self._n or ny >= self._m:
            return False
        di = _DIR_INDEX[direction]
        link_up = self.channel_up[x, y, di]
        if self._trace_on:
            self._trc.emit("protocol_msg", msg=kind, src=src, direction=direction.name,
                           time=self.engine.now, queue=self.engine.pending,
                           dropped=not link_up)
        if self._prof_on:
            self._prof.count("sim.messages")
        if not link_up:
            self.channel_dropped[x, y, di] += 1
            self.messages_dropped_total += 1
            if self._prof_on:
                self._prof.count("sim.dropped")
            return True
        self.channel_carried[x, y, di] += 1
        self.messages_carried_total += 1
        # One allocation per hop: the arrival direction is known here, so
        # the message is born annotated (no delivered_via copy on arrival).
        self.engine.schedule(
            self.latency,
            self._deliver,
            (nx, ny),
            Message(src, (nx, ny), kind, payload, direction.opposite),
        )
        return True

    def _send_from_chaos(
        self, src: Coord, direction: Direction, kind: str, payload
    ) -> bool:
        """The fast path plus per-hop misbehaviour from the fault plan.

        Taken only when an *active* :class:`~repro.chaos.plan.ChannelFaultPlan`
        is installed, so the default path stays byte-identical.  Fault-plan
        verdicts are drawn even for messages a down channel would drop, so
        the perturbation stream depends only on the send sequence, not on
        the evolving link state.
        """
        x, y = src
        dx, dy = direction.value
        nx, ny = x + dx, y + dy
        if nx < 0 or ny < 0 or nx >= self._n or ny >= self._m:
            return False
        di = _DIR_INDEX[direction]
        link_up = self.channel_up[x, y, di]
        if self._trace_on:
            self._trc.emit("protocol_msg", msg=kind, src=src, direction=direction.name,
                           time=self.engine.now, queue=self.engine.pending,
                           dropped=not link_up)
        if self._prof_on:
            self._prof.count("sim.messages")
        dropped, duplicated, corrupted, extra = self.chaos.draw()
        if not link_up:
            self.channel_dropped[x, y, di] += 1
            self.messages_dropped_total += 1
            if self._prof_on:
                self._prof.count("sim.dropped")
            return True
        self.channel_carried[x, y, di] += 1
        self.messages_carried_total += 1
        if dropped:
            self.channel_lost[x, y, di] += 1
            self.messages_lost_total += 1
            if self._prof_on:
                self._prof.count("chaos.drops")
            return True
        delay = self.latency * (1 + extra)
        message = Message(src, (nx, ny), kind, payload, direction.opposite, corrupted)
        if corrupted and self._prof_on:
            self._prof.count("chaos.corrupted")
        self.engine.schedule(delay, self._deliver, (nx, ny), message)
        if duplicated:
            self.messages_duplicated_total += 1
            if self._prof_on:
                self._prof.count("chaos.duplicates")
            # The ghost copy trails the original by one latency.
            self.engine.schedule(delay + self.latency, self._deliver, (nx, ny), message)
        return True

    def _send_from_recorded(
        self, src: Coord, direction: Direction, kind: str, payload
    ) -> bool:
        """The send path while a flight recorder is installed.

        Behaviourally identical to the plain/chaos fast paths (same
        accounting, same verdict-draw order, same scheduling pattern), but
        every outcome is emitted as a lineage-carrying event -- in place
        of the coarser ``protocol_msg`` -- and the scheduled delivery goes
        through :meth:`_deliver_recorded`, which stamps the receiving
        handler's causal scope.  Never taken without a recorder, so the
        uninstrumented hot path pays only the one cached-flag check in
        :meth:`send_from`.
        """
        x, y = src
        dx, dy = direction.value
        nx, ny = x + dx, y + dy
        if nx < 0 or ny < 0 or nx >= self._n or ny >= self._m:
            return False
        rec = self._trc
        di = _DIR_INDEX[direction]
        link_up = self.channel_up[x, y, di]
        if self._prof_on:
            self._prof.count("sim.messages")
        if self._chaos_on:
            # Verdicts are drawn before the link check (matching
            # _send_from_chaos) so the perturbation stream is position-
            # invariant whether or not a recorder is watching.
            dropped, duplicated, corrupted, extra = self.chaos.draw()
        else:
            dropped = duplicated = corrupted = False
            extra = 0
        now = self.engine.now
        dst = (nx, ny)
        if not link_up:
            event_id = rec.emit(
                "msg_drop", cause=rec.cause, src=src, dst=dst,
                direction=direction.name, msg=kind, time=now,
            )
            rec.last_send_id = event_id
            self.channel_dropped[x, y, di] += 1
            self.messages_dropped_total += 1
            if self._prof_on:
                self._prof.count("sim.dropped")
            return True
        event_id = rec.emit(
            "msg_send", cause=rec.cause, src=src, dst=dst,
            direction=direction.name, msg=kind, time=now, payload=payload,
        )
        rec.last_send_id = event_id
        self.channel_carried[x, y, di] += 1
        self.messages_carried_total += 1
        if dropped:
            rec.emit("msg_lost", cause=event_id, src=src, dst=dst, msg=kind, time=now)
            self.channel_lost[x, y, di] += 1
            self.messages_lost_total += 1
            if self._prof_on:
                self._prof.count("chaos.drops")
            return True
        delay = self.latency * (1 + extra)
        message = Message(src, dst, kind, payload, direction.opposite, corrupted, event_id)
        if corrupted and self._prof_on:
            self._prof.count("chaos.corrupted")
        self.engine.schedule(delay, self._deliver_recorded, dst, message)
        if duplicated:
            dup_id = rec.emit(
                "msg_dup", cause=event_id, src=src, dst=dst, msg=kind, time=now
            )
            self.messages_duplicated_total += 1
            if self._prof_on:
                self._prof.count("chaos.duplicates")
            # The ghost copy trails the original by one latency; it gets
            # its own message object so its delivery chains to the
            # msg_dup event rather than the original send.
            ghost = Message(src, dst, kind, payload, direction.opposite, corrupted, dup_id)
            self.engine.schedule(delay + self.latency, self._deliver_recorded, dst, ghost)
        return True

    def _deliver_recorded(self, dst: Coord, message: Message) -> None:
        """Delivery under a flight recorder: emit the arrival (caused by
        its send) and run the handler inside that causal scope, so every
        send the handler makes chains to the message that provoked it."""
        rec = self._trc
        event_id = rec.emit(
            "msg_deliver", cause=message.trace_id, at=dst, msg=message.kind,
            time=self.engine.now, corrupted=message.corrupted,
        )
        process = self.nodes.get(dst)
        if process is None:
            return
        previous = rec.cause
        rec.cause = event_id
        try:
            process.on_message(message)
        finally:
            rec.cause = previous

    def note_retry(self, src: Coord, direction: Direction) -> None:
        """Account one retransmission on the ``src -> direction`` link."""
        x, y = src
        self.channel_retried[x, y, _DIR_INDEX[direction]] += 1
        self.messages_retried_total += 1
        if self._prof_on:
            self._prof.count("chaos.retries")

    def _send_from_legacy(
        self, src: Coord, direction: Direction, kind: str, payload
    ) -> bool:
        """The seed send path, preserved verbatim for ``delivery="legacy"``:
        channel-dict lookup, tracer/profiler resolution per message, and a
        second Message allocation on arrival (``delivered_via``)."""
        channel = self.channels.get((src, direction))
        if channel is None:
            return False
        trc = self._tracer()
        if trc.enabled:
            trc.emit("protocol_msg", msg=kind, src=src, direction=direction.name,
                     time=self.engine.now, queue=self.engine.pending,
                     dropped=not channel.up)
        prof = get_profiler()
        if prof.enabled:
            prof.count("sim.messages")
            if not channel.up:
                prof.count("sim.dropped")
        channel.send(Message(src=src, dst=channel.dst, kind=kind, payload=payload))
        return True

    def _deliver(self, dst: Coord, message: Message) -> None:
        process = self.nodes.get(dst)
        if process is not None:
            process.on_message(message)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, max_events: int | None = None) -> NetworkStats:
        """Start every process and drain the engine to quiescence."""
        self.refresh_instrumentation()
        if self._obs is not None:
            self._obs.watch(self)
        trc = self._trc
        with trc.span("network.run", nodes=len(self.nodes)):
            for process in self.nodes.values():
                process.start()
            budget = max_events if max_events is not None else 200 * self.mesh.size + 10_000
            events = self.engine.run(max_events=budget)
        if trc.enabled:
            trc.emit("engine_run", events=events, **self.engine.metrics_snapshot())
        if self.delivery == "legacy":
            # The seed accounting: an O(n*m) scan over per-channel counters.
            messages = sum(c.messages_carried for c in self.channels.values())
            dropped = sum(c.messages_dropped for c in self.channels.values())
        else:
            messages = self.messages_carried_total
            dropped = self.messages_dropped_total
        return NetworkStats(
            messages=messages,
            dropped=dropped,
            events=events,
            converged_at=self.engine.now,
            lost=self.messages_lost_total,
            duplicated=self.messages_duplicated_total,
            retried=self.messages_retried_total,
        )

    def current_stats(self) -> NetworkStats:
        """Lifetime accounting without running anything (``events`` is the
        engine's lifetime total, unlike the per-run count :meth:`run`
        reports)."""
        if self.delivery == "legacy":
            messages = sum(c.messages_carried for c in self.channels.values())
            dropped = sum(c.messages_dropped for c in self.channels.values())
        else:
            messages = self.messages_carried_total
            dropped = self.messages_dropped_total
        return NetworkStats(
            messages=messages,
            dropped=dropped,
            events=self.engine.events_processed,
            converged_at=self.engine.now,
            lost=self.messages_lost_total,
            duplicated=self.messages_duplicated_total,
            retried=self.messages_retried_total,
        )

    def process_at(self, coord: Coord) -> NodeProcess:
        return self.nodes[coord]
