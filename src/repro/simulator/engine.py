"""Discrete-event engine.

A minimal, deterministic event queue: callbacks scheduled at simulated
times, executed in time order (FIFO among equal timestamps via a
monotonically increasing sequence number, so runs are reproducible).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True)
class _Event:
    time: float
    sequence: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())


class Engine:
    """Time-ordered callback executor."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self.events_processed: int = 0
        self._queue: list[_Event] = []
        self._sequence = itertools.count()

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` simulated time units."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(
            self._queue, _Event(self.now + delay, next(self._sequence), callback, args)
        )

    @property
    def pending(self) -> int:
        return len(self._queue)

    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        if not self._queue:
            return False
        event = heapq.heappop(self._queue)
        self.now = event.time
        self.events_processed += 1
        event.callback(*event.args)
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Drain the queue; returns the number of events processed.

        ``until`` stops before events later than the given time;
        ``max_events`` bounds runaway protocols (raises if exceeded).

        ``events_processed`` (incremented by :meth:`step`) is the single
        source of truth; this method counts against a snapshot of it, so the
        lifetime total and the per-run count can never drift apart.
        """
        start = self.events_processed
        while self._queue:
            if until is not None and self._queue[0].time > until:
                break
            if max_events is not None and self.events_processed - start >= max_events:
                raise RuntimeError(
                    f"event budget of {max_events} exhausted at t={self.now} "
                    f"({self.pending} events pending)"
                )
            self.step()
        return self.events_processed - start

    def metrics_snapshot(self) -> dict[str, float | int]:
        """Counters for the observability layer's ``engine_run`` events."""
        return {
            "now": self.now,
            "pending": self.pending,
            "events_processed": self.events_processed,
        }
