"""Discrete-event engine.

A minimal, deterministic event queue: callbacks scheduled at simulated
times, executed in time order (FIFO among equal timestamps, so runs are
reproducible).

Two interchangeable scheduler implementations sit behind ``Engine``:

- ``"buckets"`` (the default) -- a tick-bucketed calendar queue in the
  spirit of Brown's calendar queues (CACM 1988).  Every distinct timestamp
  owns one FIFO bucket; a small heap orders the *distinct* timestamps.  The
  mesh protocols all schedule at ``now + latency`` with one uniform
  latency, so the heap holds only a handful of entries while the per-event
  cost collapses to a dict probe plus a deque append/popleft -- no O(log n)
  sift and no per-event wrapper object.
- ``"heap"`` -- the classic binary heap over per-event records, kept as the
  cross-validation reference (the property tests assert both schedulers
  produce bit-identical event orders, message counts, and convergence
  times).

Both order events by (time, insertion order), so they are observationally
identical for *any* timestamp pattern, not just uniform latencies.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

#: Scheduler implementations selectable via ``Engine(scheduler=...)``.
SCHEDULERS = ("buckets", "heap")


@dataclass(order=True)
class _Event:
    time: float
    sequence: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())


class _HeapScheduler:
    """The reference scheduler: one heap entry per event."""

    __slots__ = ("_queue", "_sequence")

    def __init__(self) -> None:
        self._queue: list[_Event] = []
        self._sequence = itertools.count()

    def push(self, time: float, callback: Callable[..., None], args: tuple[Any, ...]) -> None:
        heapq.heappush(self._queue, _Event(time, next(self._sequence), callback, args))

    def peek_time(self) -> float:
        return self._queue[0].time

    def pop(self) -> tuple[float, Callable[..., None], tuple[Any, ...]]:
        event = heapq.heappop(self._queue)
        return event.time, event.callback, event.args

    def __len__(self) -> int:
        return len(self._queue)


class _BucketScheduler:
    """Per-timestamp FIFO buckets; a heap orders only the distinct times.

    Uniform-latency protocols keep at most two distinct timestamps pending
    (``now`` and ``now + latency``), so pushes and pops are O(1) amortised.
    Buckets are keyed by the exact float timestamp: equal floats share a
    bucket (FIFO, matching the heap's sequence tiebreak) and distinct
    floats are ordered by the times-heap (matching the heap's time order).
    """

    __slots__ = ("_buckets", "_times", "_count")

    def __init__(self) -> None:
        self._buckets: dict[float, deque[tuple[Callable[..., None], tuple[Any, ...]]]] = {}
        self._times: list[float] = []
        self._count = 0

    def push(self, time: float, callback: Callable[..., None], args: tuple[Any, ...]) -> None:
        bucket = self._buckets.get(time)
        if bucket is None:
            bucket = self._buckets[time] = deque()
            heapq.heappush(self._times, time)
        bucket.append((callback, args))
        self._count += 1

    def peek_time(self) -> float:
        return self._times[0]

    def pop(self) -> tuple[float, Callable[..., None], tuple[Any, ...]]:
        time = self._times[0]
        bucket = self._buckets[time]
        callback, args = bucket.popleft()
        if not bucket:
            del self._buckets[time]
            heapq.heappop(self._times)
        self._count -= 1
        return time, callback, args

    def __len__(self) -> int:
        return self._count


class Engine:
    """Time-ordered callback executor."""

    __slots__ = (
        "now", "events_processed", "scheduler", "_impl",
        "_tick_hook", "_tick_interval", "_next_tick",
    )

    def __init__(self, scheduler: str = "buckets") -> None:
        if scheduler not in SCHEDULERS:
            raise ValueError(f"unknown scheduler {scheduler!r} (use one of {SCHEDULERS})")
        self.now: float = 0.0
        self.events_processed: int = 0
        self.scheduler = scheduler
        self._impl = _BucketScheduler() if scheduler == "buckets" else _HeapScheduler()
        self._tick_hook: Callable[[float], None] | None = None
        self._tick_interval: float = 1.0
        self._next_tick: float = 0.0

    def set_tick_hook(
        self, hook: Callable[[float], None] | None, interval: float = 1.0
    ) -> None:
        """Install (or clear, with None) a per-tick sampling hook.

        While a hook is installed, :meth:`run` calls ``hook(tick)`` once
        for every multiple of ``interval`` the simulated clock crosses,
        *before* executing the first event at-or-past that boundary, plus
        once at the end of each drain (same tick as the last event, so
        ring-buffer stores that replace equal-tick samples see the final
        state).  Tick values depend only on the event sequence, never on
        wall clock, so a recorded run and its replay produce identical
        hook calls.

        The unhooked ``run`` paths are untouched -- clearing the hook
        restores the exact pre-existing loops -- and the hooked loop pays
        one float compare per event.  A boundary sample observes the
        queue *after* the triggering event was dequeued (``pending``
        excludes the event being dispatched).  :meth:`step` never fires
        the hook.
        """
        if hook is not None and not interval > 0:
            raise ValueError(f"tick interval must be positive (got {interval})")
        self._tick_hook = hook
        self._tick_interval = float(interval)
        self._next_tick = self.now

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` simulated time units."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._impl.push(self.now + delay, callback, args)

    @property
    def pending(self) -> int:
        return len(self._impl)

    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        if not len(self._impl):
            return False
        time, callback, args = self._impl.pop()
        self.now = time
        self.events_processed += 1
        callback(*args)
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Drain the queue; returns the number of events processed.

        ``until`` stops before events later than the given time and leaves
        the clock *at* the requested horizon (``now == until`` even when
        the queue runs dry or the next event lies beyond it); an event
        whose timestamp equals the horizon *is* delivered, including
        timestamps that drifted a few ulps past it through float
        accumulation (three chained 0.1 delays land at
        0.30000000000000004, which must still count as "at" 0.3 --
        otherwise the event is neither delivered nor ever deliverable by
        a later ``run(until=0.3)``).
        ``max_events`` bounds runaway protocols (raises if exceeded).

        ``events_processed`` (incremented here and by :meth:`step`) is the
        single source of truth; this method counts against a snapshot of
        it, so the lifetime total and the per-run count can never drift
        apart.
        """
        if self._tick_hook is not None:
            return self._run_hooked(until, max_events)
        start = self.events_processed
        impl = self._impl
        if until is None and max_events is None:
            # Hot path: nothing to check per event.
            while len(impl):
                time, callback, args = impl.pop()
                self.now = time
                self.events_processed += 1
                callback(*args)
        elif until is None:
            limit = start + max_events
            while len(impl):
                if self.events_processed >= limit:
                    raise RuntimeError(
                        f"event budget of {max_events} exhausted at t={self.now} "
                        f"({self.pending} events pending)"
                    )
                time, callback, args = impl.pop()
                self.now = time
                self.events_processed += 1
                callback(*args)
        else:
            # Scale-aware slack: large enough to absorb accumulated
            # rounding over thousands of chained delays, far smaller than
            # any tick granularity the protocols use.
            horizon = until + 4096.0 * math.ulp(max(1.0, abs(until)))
            while len(impl):
                if impl.peek_time() > horizon:
                    break
                if max_events is not None and self.events_processed - start >= max_events:
                    raise RuntimeError(
                        f"event budget of {max_events} exhausted at t={self.now} "
                        f"({self.pending} events pending)"
                    )
                time, callback, args = impl.pop()
                self.now = time
                self.events_processed += 1
                callback(*args)
            if self.now < until:
                self.now = until
        return self.events_processed - start

    def _run_hooked(self, until: float | None, max_events: int | None) -> int:
        """The :meth:`run` drain with the tick hook live (see
        :meth:`set_tick_hook` for the boundary semantics).  One loop covers
        all three argument shapes; the per-event cost over the plain loops
        is a single ``time >= next_tick`` compare against a local."""
        start = self.events_processed
        impl = self._impl
        hook = self._tick_hook
        interval = self._tick_interval
        nt = self._next_tick
        horizon = None
        if until is not None:
            horizon = until + 4096.0 * math.ulp(max(1.0, abs(until)))
        limit = None if max_events is None else start + max_events
        try:
            while len(impl):
                if horizon is not None and impl.peek_time() > horizon:
                    break
                if limit is not None and self.events_processed >= limit:
                    raise RuntimeError(
                        f"event budget of {max_events} exhausted at t={self.now} "
                        f"({self.pending} events pending)"
                    )
                time, callback, args = impl.pop()
                if time >= nt:
                    while nt <= time:
                        hook(nt)
                        nt += interval
                self.now = time
                self.events_processed += 1
                callback(*args)
            if until is not None and self.now < until:
                self.now = until
            if self.events_processed > start:
                # Trailing idle boundaries (an ``until`` horizon past the
                # last event), then a terminal sample of the post-drain
                # state.  Skip the terminal call only when one of *these*
                # idle boundaries already landed exactly on ``now`` -- a
                # boundary fired pop-side before the final event sampled
                # pre-event state and must not suppress it.
                sampled_now = False
                while nt <= self.now:
                    hook(nt)
                    sampled_now = nt == self.now
                    nt += interval
                if not sampled_now:
                    hook(self.now)
        finally:
            self._next_tick = nt
        return self.events_processed - start

    def metrics_snapshot(self) -> dict[str, float | int]:
        """Counters for the observability layer's ``engine_run`` events."""
        return {
            "now": self.now,
            "pending": self.pending,
            "events_processed": self.events_processed,
        }
