"""The per-node process abstraction.

A :class:`NodeProcess` owns one mesh node's protocol state.  It can only
``send`` to its four neighbours and react to deliveries in
:meth:`on_message`; anything beyond that (reading global grids, touching
other processes) would break the distributed-information premise the paper
is about, so the protocols deliberately avoid it.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any

from repro.mesh.geometry import Coord, Direction
from repro.simulator.messages import Message

if TYPE_CHECKING:
    from repro.simulator.network import MeshNetwork


class NodeProcess(abc.ABC):
    """Protocol state machine bound to one mesh node."""

    __slots__ = ("coord", "network")

    def __init__(self, coord: Coord, network: "MeshNetwork"):
        self.coord = coord
        self.network = network

    # ------------------------------------------------------------------
    # Lifecycle hooks
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Called once at t=0; schedule initial sends here."""

    @abc.abstractmethod
    def on_message(self, message: Message) -> None:
        """React to a delivery; ``message.arrival_direction`` says whence."""

    # ------------------------------------------------------------------
    # Primitives available to protocol code
    # ------------------------------------------------------------------
    def send(self, direction: Direction, kind: str, payload: Any = None) -> bool:
        """Send to the neighbour in ``direction``.

        Returns False (a no-op) at mesh edges, so protocol code can write
        "forward in direction d (if any)" exactly as the paper does.
        """
        return self.network.send_from(self.coord, direction, kind, payload)

    def broadcast(self, kind: str, payload: Any = None) -> int:
        """Send to every existing neighbour; returns how many were sent."""
        count = 0
        for direction in Direction:
            if self.send(direction, kind, payload):
                count += 1
        return count

    def neighbor_directions(self) -> list[Direction]:
        return [
            direction
            for direction in Direction
            if self.network.mesh.in_bounds(direction.step(self.coord))
        ]
