"""Point-to-point links between neighbouring nodes.

A channel models one directed mesh link: fixed latency, FIFO delivery,
per-channel counters.  Failed nodes simply have their channels marked down;
messages to a down channel are dropped (and counted), which is how the
simulator expresses that faulty nodes neither receive nor forward.

Channel *state* no longer lives in per-channel objects: a
:class:`~repro.simulator.network.MeshNetwork` keeps the up/carried/dropped
state of all ``4*n*m`` directed links in three numpy arrays indexed by
``(x, y, direction)``.  :class:`Channel` remains the standalone link (own
counters, explicit engine/deliver wiring) for direct use and tests;
:class:`ChannelView` is the thin API-compatible facade over one network
array slot, handed out lazily by :class:`ChannelMap` so building a network
allocates no per-channel objects at all.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import TYPE_CHECKING, Callable, Iterator

from repro.mesh.geometry import Coord, Direction
from repro.simulator.messages import Message

if TYPE_CHECKING:
    from repro.simulator.engine import Engine
    from repro.simulator.network import MeshNetwork


class Channel:
    """A directed link ``src -> dst`` with fixed latency (standalone)."""

    __slots__ = (
        "src", "dst", "direction", "latency", "engine", "deliver",
        "up", "messages_carried", "messages_dropped",
    )

    def __init__(
        self,
        src: Coord,
        dst: Coord,
        direction: Direction,  # as seen from src
        latency: float,
        engine: "Engine",
        deliver: Callable[[Coord, Message], None],
        up: bool = True,
        messages_carried: int = 0,
        messages_dropped: int = 0,
    ):
        self.src = src
        self.dst = dst
        self.direction = direction
        self.latency = latency
        self.engine = engine
        self.deliver = deliver
        self.up = up
        self.messages_carried = messages_carried
        self.messages_dropped = messages_dropped

    def send(self, message: Message) -> None:
        """Queue a message for delivery after the link latency."""
        if not self.up:
            self.messages_dropped += 1
            return
        self.messages_carried += 1
        # The receiver sees the message arriving from the opposite side.
        annotated = message.delivered_via(self.direction.opposite)
        self.engine.schedule(self.latency, self.deliver, self.dst, annotated)

    def take_down(self) -> None:
        self.up = False

    def __str__(self) -> str:
        state = "up" if self.up else "down"
        return f"Channel {self.src} -> {self.dst} ({state}, {self.messages_carried} msgs)"


class ChannelView(Channel):
    """One network link, viewed through the network's state arrays.

    Same surface as :class:`Channel` (``up``/counters/``send``/
    ``take_down``), but every read and write goes to the owning
    :class:`~repro.simulator.network.MeshNetwork`'s arrays, so views can be
    created and discarded freely without losing state.
    """

    __slots__ = ("_network", "_x", "_y", "_di")

    def __init__(self, network: "MeshNetwork", src: Coord, dst: Coord, direction: Direction):
        self._network = network
        self._x, self._y = src
        self._di = network.direction_index(direction)
        self.src = src
        self.dst = dst
        self.direction = direction
        self.latency = network.latency
        self.engine = network.engine
        self.deliver = network._deliver

    @property
    def up(self) -> bool:  # type: ignore[override]
        return bool(self._network.channel_up[self._x, self._y, self._di])

    @property
    def messages_carried(self) -> int:  # type: ignore[override]
        return int(self._network.channel_carried[self._x, self._y, self._di])

    @property
    def messages_dropped(self) -> int:  # type: ignore[override]
        return int(self._network.channel_dropped[self._x, self._y, self._di])

    def send(self, message: Message) -> None:
        """External-caller path: annotate, count into the arrays, deliver."""
        network = self._network
        if not network.channel_up[self._x, self._y, self._di]:
            network.channel_dropped[self._x, self._y, self._di] += 1
            network.messages_dropped_total += 1
            return
        network.channel_carried[self._x, self._y, self._di] += 1
        network.messages_carried_total += 1
        annotated = message.delivered_via(self.direction.opposite)
        self.engine.schedule(self.latency, self.deliver, self.dst, annotated)

    def take_down(self) -> None:
        # Route through the network so its running up-link count stays true.
        self._network.take_down_channel(self.src, self.direction)


def link_totals(network: "MeshNetwork") -> dict[str, int]:
    """Whole-network link accounting, delivery-mode agnostic.

    The per-tick sampler (:mod:`repro.obs.timeseries`) reads this once per
    simulated tick.  On the fast path everything -- including the up-link
    population count -- is an O(1) running total; on the legacy path the
    carried/dropped/up numbers live only in the per-channel objects, so it
    falls back to the seed's O(n*m) scan.
    """
    if network.delivery == "legacy":
        channels = network.channels.values()
        carried = sum(c.messages_carried for c in channels)
        dropped = sum(c.messages_dropped for c in channels)
        links_up = sum(1 for c in channels if c.up)
    else:
        carried = network.messages_carried_total
        dropped = network.messages_dropped_total
        links_up = network.channels_up_total
    return {
        "links_up": links_up,
        "carried": carried,
        "dropped": dropped,
        "lost": network.messages_lost_total,
        "duplicated": network.messages_duplicated_total,
        "retried": network.messages_retried_total,
    }


class ChannelMap(Mapping):
    """Read-through mapping ``(src, direction) -> ChannelView``.

    Keys exist for every in-bounds directed link (up or down); views are
    built on access instead of eagerly at network construction.
    """

    __slots__ = ("_network",)

    def __init__(self, network: "MeshNetwork"):
        self._network = network

    def __getitem__(self, key: tuple[Coord, Direction]) -> ChannelView:
        src, direction = key
        view = self._network.channel_view(src, direction)
        if view is None:
            raise KeyError(key)
        return view

    def __iter__(self) -> Iterator[tuple[Coord, Direction]]:
        mesh = self._network.mesh
        for coord in mesh.nodes():
            for direction, _neighbor in mesh.neighbor_items(coord):
                yield (coord, direction)

    def __len__(self) -> int:
        mesh = self._network.mesh
        # Two directed channels per undirected mesh edge.
        return 2 * (mesh.n * (mesh.m - 1) + mesh.m * (mesh.n - 1))
