"""Point-to-point links between neighbouring nodes.

A channel models one directed mesh link: fixed latency, FIFO delivery,
per-channel counters.  Failed nodes simply have their channels marked down;
messages to a down channel are dropped (and counted), which is how the
simulator expresses that faulty nodes neither receive nor forward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.mesh.geometry import Coord, Direction
from repro.simulator.messages import Message

if TYPE_CHECKING:
    from repro.simulator.engine import Engine


@dataclass
class Channel:
    """A directed link ``src -> dst`` with fixed latency."""

    src: Coord
    dst: Coord
    direction: Direction  # as seen from src
    latency: float
    engine: "Engine"
    deliver: Callable[[Coord, Message], None]
    up: bool = True
    messages_carried: int = 0
    messages_dropped: int = 0

    def send(self, message: Message) -> None:
        """Queue a message for delivery after the link latency."""
        if not self.up:
            self.messages_dropped += 1
            return
        self.messages_carried += 1
        # The receiver sees the message arriving from the opposite side.
        annotated = message.delivered_via(self.direction.opposite)
        self.engine.schedule(self.latency, self.deliver, self.dst, annotated)

    def take_down(self) -> None:
        self.up = False

    def __str__(self) -> str:
        state = "up" if self.up else "down"
        return f"Channel {self.src} -> {self.dst} ({state}, {self.messages_carried} msgs)"
