"""Existence of a minimal path: exact oracle and Wang's condition.

Two independent implementations of the same predicate, used as the paper's
*optimal* baseline ("existence of a minimal path" in Figures 9-12):

1. :func:`minimal_path_exists` -- an exact dynamic program.  A minimal route
   in a mesh is exactly a monotone staircase path inside the source/
   destination bounding rectangle, so reachability under the recurrence
   ``reach[x, y] = free[x, y] and (reach[x-1, y] or reach[x, y-1])`` decides
   existence for *any* obstacle shape (rectangular blocks or MCC staircases).

2. :func:`minimal_path_exists_wang` -- Wang's necessary and sufficient
   condition via *coverage sequences* of rectangular blocks.  A sequence of
   blocks covers source and destination on y when each block sits strictly
   above its predecessor and close enough in x that no monotone path can
   slip between them; symmetric on x.  A minimal path exists iff no covering
   sequence exists on either axis.

The printed inequality in the paper's coverage definition is ambiguous after
OCR; we use the discrete form derived from first principles -- block ``i+1``
covers block ``i`` on y iff::

    y(i+1)min > y(i)max   and   x(i+1)min <= x(i)max + 1

(a path forced East of block ``i`` leaves its band at column
``>= x(i)max + 1``; it can slip West of block ``i+1`` only if a free column
separates them, i.e. ``x(i+1)min >= x(i)max + 2``).  The property-based test
suite asserts this implementation agrees with the dynamic program on
randomized instances, which pins the semantics independent of the OCR.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.mesh.frames import Frame
from repro.mesh.geometry import Coord, Rect

__all__ = [
    "batch_minimal_path_exists",
    "covering_sequence_on_x",
    "covering_sequence_on_y",
    "minimal_path_exists",
    "minimal_path_exists_wang",
    "monotone_reachability",
    "monotone_reachability_map",
]


def monotone_reachability(blocked: np.ndarray, source: Coord, dest: Coord) -> np.ndarray:
    """Reachability grid for monotone (minimal) paths from source to dest.

    ``blocked`` is the full-mesh obstacle grid, ``(n, m)`` indexed ``[x, y]``.
    The result has the shape of the source/destination bounding rectangle,
    *oriented* so index ``[0, 0]`` is the source and ``[-1, -1]`` the
    destination; entry ``[i, j]`` says whether a minimal path from the source
    reaches the node ``i`` columns and ``j`` rows toward the destination.

    The per-column transfer is vectorised: within one column, a cell is
    reachable iff it is free and some free-run predecessor below it was
    seeded from the previous column.
    """
    frame = Frame.for_pair(source, dest)
    xd, yd = frame.to_local(dest)

    xs = slice(source[0], dest[0] + 1) if not frame.flip_x else slice(dest[0], source[0] + 1)
    ys = slice(source[1], dest[1] + 1) if not frame.flip_y else slice(dest[1], source[1] + 1)
    sub = blocked[xs, ys]
    if frame.flip_x:
        sub = sub[::-1, :]
    if frame.flip_y:
        sub = sub[:, ::-1]

    free = ~sub
    reach = np.zeros((xd + 1, yd + 1), dtype=bool)
    if not free[0, 0]:
        return reach

    column = np.zeros(yd + 1, dtype=bool)
    column[0] = True
    reach[0] = _climb_column(column, free[0])
    for x in range(1, xd + 1):
        reach[x] = _climb_column(reach[x - 1], free[x])
    return reach


def _climb_column(base: np.ndarray, free: np.ndarray) -> np.ndarray:
    """One DP column: enter from the West (``base``) and climb North.

    ``base`` is the previous column's reachability (for x = 0, the seed
    column with only the source cell set).  A cell is reachable iff it is
    free and, within its contiguous free run, some cell at or below it is
    seeded by ``base``.
    """
    seed = base & free
    acc = np.cumsum(seed)
    # acc value at the most recent blocked cell at-or-below each position;
    # a cell is reachable iff a seed occurred after that block.
    block_acc = np.where(~free, acc, 0)
    last_block_acc = np.maximum.accumulate(block_acc)
    return free & (acc > last_block_acc)


def monotone_reachability_map(
    blocked: np.ndarray, source: Coord, flip_x: bool = False, flip_y: bool = False
) -> np.ndarray:
    """Monotone reachability over one *entire* quadrant of the source.

    Like :func:`monotone_reachability`, but destination-independent: the
    grid runs from the source to the mesh edge along the quadrant selected
    by ``flip_x``/``flip_y`` (local orientation, ``[0, 0]`` is the source).
    Entry ``[i, j]`` equals ``monotone_reachability(blocked, source,
    dest)[-1, -1]`` for the destination ``i`` columns and ``j`` rows into
    that quadrant -- the DP is a prefix computation, so the map serves
    every destination of the quadrant at once.
    """
    xs = slice(source[0], None, -1) if flip_x else slice(source[0], None)
    ys = slice(source[1], None, -1) if flip_y else slice(source[1], None)
    free = ~blocked[xs, ys]
    reach = np.zeros_like(free)
    if not free[0, 0]:
        return reach
    column = np.zeros(free.shape[1], dtype=bool)
    column[0] = True
    reach[0] = _climb_column(column, free[0])
    for x in range(1, free.shape[0]):
        reach[x] = _climb_column(reach[x - 1], free[x])
    return reach


def batch_minimal_path_exists(
    blocked: np.ndarray,
    source: Coord,
    dests: np.ndarray,
    maps: dict[tuple[bool, bool], np.ndarray] | None = None,
) -> np.ndarray:
    """:func:`minimal_path_exists` over a ``(k, 2)`` destination array.

    Builds at most one quadrant map per destination quadrant and gathers;
    pass ``maps`` (a dict keyed ``(flip_x, flip_y)``) to reuse the maps
    across calls against the same ``(blocked, source)`` -- the experiment
    runner keeps them on the cached scenario artifacts.
    """
    dest_arr = np.asarray(dests, dtype=np.int64)
    if dest_arr.ndim != 2 or dest_arr.shape[1] != 2:
        raise ValueError(f"dests must have shape (k, 2), got {dest_arr.shape}")
    dx = dest_arr[:, 0] - source[0]
    dy = dest_arr[:, 1] - source[1]
    out = np.zeros(len(dest_arr), dtype=bool)
    for flip_x in (False, True):
        for flip_y in (False, True):
            sel = ((dx < 0) == flip_x) & ((dy < 0) == flip_y)
            if not sel.any():
                continue
            key = (flip_x, flip_y)
            if maps is not None and key in maps:
                quadrant = maps[key]
            else:
                quadrant = monotone_reachability_map(blocked, source, flip_x, flip_y)
                if maps is not None:
                    maps[key] = quadrant
            out[sel] = quadrant[np.abs(dx[sel]), np.abs(dy[sel])]
    return out


def minimal_path_exists(blocked: np.ndarray, source: Coord, dest: Coord) -> bool:
    """True iff a minimal (Manhattan-shortest) path avoids every blocked node.

    Exact for arbitrary obstacle shapes; endpoints must be free.
    """
    if blocked[source] or blocked[dest]:
        return False
    if source == dest:
        return True
    reach = monotone_reachability(blocked, source, dest)
    return bool(reach[-1, -1])


# ----------------------------------------------------------------------
# Wang's necessary and sufficient condition (rectangular blocks)
# ----------------------------------------------------------------------


def _covers_on_y(lower: Rect, upper: Rect) -> bool:
    """Block ``upper`` covers block ``lower`` on y (see module docstring)."""
    return upper.ymin > lower.ymax and upper.xmin <= lower.xmax + 1


def _covers_on_x(left: Rect, right: Rect) -> bool:
    """Block ``right`` covers block ``left`` on x (roles of x and y swapped)."""
    return right.xmin > left.xmax and right.ymin <= left.ymax + 1


def covering_sequence_on_y(local_blocks: Sequence[Rect], dest: Coord) -> list[Rect] | None:
    """A covering sequence on y for source ``(0, 0)`` and ``dest``, if any.

    ``local_blocks`` must already be in the canonical frame (source at the
    origin, destination at non-negative offsets).  Returns the blocking chain
    bottom-up, or ``None``.
    """
    xd, yd = dest
    relevant = [b for b in local_blocks if b.ymin > 0 and b.ymin <= yd]

    def is_start(block: Rect) -> bool:
        # The path cannot pass West of the block (its x-range reaches the
        # source's column or beyond).
        return block.xmin <= 0

    def is_end(block: Rect) -> bool:
        # The path cannot pass East of the block (its x-range reaches the
        # destination's column or beyond).
        return block.xmax >= xd

    return _chain_search(relevant, is_start, is_end, _covers_on_y, key=lambda b: b.ymin)


def covering_sequence_on_x(local_blocks: Sequence[Rect], dest: Coord) -> list[Rect] | None:
    """A covering sequence on x for source ``(0, 0)`` and ``dest``, if any."""
    xd, yd = dest
    relevant = [b for b in local_blocks if b.xmin > 0 and b.xmin <= xd]

    def is_start(block: Rect) -> bool:
        return block.ymin <= 0

    def is_end(block: Rect) -> bool:
        return block.ymax >= yd

    return _chain_search(relevant, is_start, is_end, _covers_on_x, key=lambda b: b.xmin)


def _chain_search(blocks, is_start, is_end, covers, key) -> list[Rect] | None:
    """BFS over the covers relation from start blocks to an end block."""
    order = sorted(blocks, key=key)
    parent: dict[int, int | None] = {}
    frontier: list[int] = []
    for i, block in enumerate(order):
        if is_start(block):
            parent[i] = None
            frontier.append(i)
    while frontier:
        next_frontier: list[int] = []
        for i in frontier:
            if is_end(order[i]):
                chain = [order[i]]
                p = parent[i]
                while p is not None:
                    chain.append(order[p])
                    p = parent[p]
                chain.reverse()
                return chain
            for j, candidate in enumerate(order):
                if j in parent:
                    continue
                if covers(order[i], candidate):
                    parent[j] = i
                    next_frontier.append(j)
        frontier = next_frontier
    return None


def minimal_path_exists_wang(blocks: Sequence[Rect], source: Coord, dest: Coord) -> bool:
    """Wang's necessary and sufficient condition for rectangular blocks.

    A minimal route from ``source`` to ``dest`` exists iff no sequence of
    blocks covers them on x and none covers them on y.  ``blocks`` are given
    in global coordinates; endpoints must lie outside every block.
    """
    for block in blocks:
        if block.contains(source) or block.contains(dest):
            return False
    frame = Frame.for_pair(source, dest)
    local_blocks = [frame.to_local_rect(b) for b in blocks]
    local_dest = frame.to_local(dest)
    if covering_sequence_on_y(local_blocks, local_dest) is not None:
        return False
    if covering_sequence_on_x(local_blocks, local_dest) is not None:
        return False
    return True
