"""Fault models for 2-D meshes.

Three cooperating modules:

- :mod:`repro.faults.injection` -- random fault workload generators (the
  paper's "randomly generated faults" with the source/destination-outside-
  blocks constraint).
- :mod:`repro.faults.blocks` -- the **faulty block** model (paper Def. 1):
  iterative disabling of nodes with faulty/disabled neighbours in both
  dimensions, converging to disjoint rectangular blocks.
- :mod:`repro.faults.mcc` -- Wang's **minimal-connected-component** model
  (paper Def. 2): quadrant-aware *useless* / *can't-reach* labelling giving
  rectilinear-monotone polygonal blocks that disable fewer healthy nodes.
- :mod:`repro.faults.coverage` -- the optimal baseline: Wang's necessary and
  sufficient condition for the existence of a minimal path (coverage
  sequences), plus an exact monotone-path dynamic program used as ground
  truth throughout the test-suite.
"""

from repro.faults.blocks import BlockSet, FaultyBlock, build_faulty_blocks
from repro.faults.mcc import MCCComponent, MCCSet, MCCType, NodeStatus, build_mccs
from repro.faults.coverage import (
    minimal_path_exists,
    minimal_path_exists_wang,
    covering_sequence_on_x,
    covering_sequence_on_y,
)
from repro.faults.injection import (
    FaultScenario,
    clustered_faults,
    generate_scenario,
    uniform_faults,
    wall_faults,
)

__all__ = [
    "BlockSet",
    "FaultScenario",
    "FaultyBlock",
    "MCCComponent",
    "MCCSet",
    "MCCType",
    "NodeStatus",
    "build_faulty_blocks",
    "build_mccs",
    "clustered_faults",
    "covering_sequence_on_x",
    "covering_sequence_on_y",
    "generate_scenario",
    "minimal_path_exists",
    "minimal_path_exists_wang",
    "uniform_faults",
    "wall_faults",
]
