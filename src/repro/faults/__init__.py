"""Fault models for 2-D meshes.

Three cooperating modules:

- :mod:`repro.faults.injection` -- random fault workload generators (the
  paper's "randomly generated faults" with the source/destination-outside-
  blocks constraint).
- :mod:`repro.faults.blocks` -- the **faulty block** model (paper Def. 1):
  iterative disabling of nodes with faulty/disabled neighbours in both
  dimensions, converging to disjoint rectangular blocks.
- :mod:`repro.faults.mcc` -- Wang's **minimal-connected-component** model
  (paper Def. 2): quadrant-aware *useless* / *can't-reach* labelling giving
  rectilinear-monotone polygonal blocks that disable fewer healthy nodes.
- :mod:`repro.faults.coverage` -- the optimal baseline: Wang's necessary and
  sufficient condition for the existence of a minimal path (coverage
  sequences), plus an exact monotone-path dynamic program used as ground
  truth throughout the test-suite.
- :mod:`repro.faults.incremental` -- O(affected) delta maintenance of
  blocks, MCCs, and ESLs under live fault arrival/revival, with
  generation-tagged cache invalidation.
"""

from repro.faults.blocks import BlockSet, FaultyBlock, build_faulty_blocks
from repro.faults.mcc import MCCComponent, MCCSet, MCCType, NodeStatus, build_mccs
from repro.faults.coverage import (
    minimal_path_exists,
    minimal_path_exists_wang,
    covering_sequence_on_x,
    covering_sequence_on_y,
)
from repro.faults.incremental import (
    IncrementalFaultEngine,
    IncrementalMCCState,
    UpdateReport,
)
from repro.faults.injection import (
    FaultScenario,
    clustered_faults,
    generate_scenario,
    injection_events,
    injection_sequence,
    uniform_faults,
    wall_faults,
)

__all__ = [
    "BlockSet",
    "FaultScenario",
    "FaultyBlock",
    "IncrementalFaultEngine",
    "IncrementalMCCState",
    "MCCComponent",
    "MCCSet",
    "MCCType",
    "NodeStatus",
    "UpdateReport",
    "build_faulty_blocks",
    "build_mccs",
    "clustered_faults",
    "covering_sequence_on_x",
    "covering_sequence_on_y",
    "generate_scenario",
    "injection_events",
    "injection_sequence",
    "minimal_path_exists",
    "minimal_path_exists_wang",
    "uniform_faults",
    "wall_faults",
]
