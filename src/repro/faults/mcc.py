"""Wang's minimal-connected-component (MCC) fault model (paper Definition 2).

MCCs refine faulty blocks: instead of disabling every healthy node that is
"pinched" by faults in both dimensions, a node is included in an MCC only if
its use *provably* breaks minimality for a given destination quadrant:

- A **useless** node, once entered, forces the next move West or South (for a
  quadrant-I destination), so no minimal route may *enter* it.
- A **can't-reach** node can only be *entered* by a West or South move, so no
  minimal route may pass through it.

The labelling is quadrant-specific.  Quadrants I and III share the *type-one*
labelling; quadrants II and IV share the *type-two* labelling obtained by
exchanging the roles of the East and West neighbours.  Every node therefore
carries a status **pair** ``(status1, status2)``.

Definition 2 (type one, quadrant-I wording):

    *Initially, all faulty nodes are labeled as faulty and all non-faulty
    nodes as fault-free.  If node u is fault-free, but its north neighbor and
    east neighbor are faulty or useless, u is labeled useless.  If node u is
    fault-free, but its south neighbor and west neighbor are faulty or
    can't-reach, u is labeled can't-reach.  Connected faulty, useless, and
    can't-reach nodes form an MCC.*

Missing neighbours at mesh edges count as fault-free, so a node on the mesh
boundary is never labelled because of the edge alone.  Each labelling rule is
monotone along a fixed diagonal sweep direction, so one linear pass computes
the fixpoint exactly (verified against a naive fixpoint in the tests).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.mesh.geometry import Coord, Quadrant, Rect
from repro.mesh.topology import Mesh2D
from repro.obs import get_tracer
from repro.obs.prof import get_profiler


class NodeStatus(enum.IntEnum):
    """Per-node, per-quadrant-type MCC status."""

    FAULT_FREE = 0
    FAULTY = 1
    USELESS = 2
    CANT_REACH = 3

    @property
    def in_mcc(self) -> bool:
        return self is not NodeStatus.FAULT_FREE


class MCCType(enum.IntEnum):
    """Which corner sections Definition 2 removes from the faulty block.

    Type one serves quadrant I/III destinations (NW and SE corner sections
    removed); type two serves quadrant II/IV destinations (SW and NE corner
    sections removed).
    """

    TYPE_ONE = 1
    TYPE_TWO = 2

    @staticmethod
    def for_quadrant(quadrant: Quadrant) -> "MCCType":
        return MCCType.TYPE_ONE if quadrant.uses_type_one_mcc else MCCType.TYPE_TWO


# Per (MCC type, label): the two neighbour offsets that must both be blocked
# for a fault-free node to acquire the label (paper Def. 2 and its quadrant-II
# East/West exchange).  A node's labelling can only be triggered by a change
# at one of these neighbours, so a worklist closure touching O(#blocked)
# cells computes the fixpoint exactly.
_LABEL_RULES: dict[tuple[MCCType, NodeStatus], tuple[tuple[int, int], tuple[int, int]]] = {
    (MCCType.TYPE_ONE, NodeStatus.USELESS): ((0, 1), (1, 0)),  # North & East
    (MCCType.TYPE_ONE, NodeStatus.CANT_REACH): ((0, -1), (-1, 0)),  # South & West
    (MCCType.TYPE_TWO, NodeStatus.USELESS): ((0, 1), (-1, 0)),  # North & West
    (MCCType.TYPE_TWO, NodeStatus.CANT_REACH): ((0, -1), (1, 0)),  # South & East
}


def _label_closure(
    mesh: Mesh2D,
    faulty: np.ndarray,
    offsets: tuple[tuple[int, int], tuple[int, int]],
) -> np.ndarray:
    """One label's fixpoint (useless *or* can't-reach) as a boolean grid.

    ``offsets`` are the two neighbour directions that must both be blocked
    (faulty or already carrying the same label).  The two closures are
    *independent* -- a node may end up in both (e.g. node (3, 5) of the
    paper's Figure 1 example is useless and can't-reach for type two), so
    each runs on its own blocked grid seeded only from the faults.  Starts
    from the faulty cells and walks opposite the trigger directions, so the
    cost is proportional to the number of blocked cells.
    """
    n, m = mesh.n, mesh.m
    (ax, ay), (bx, by) = offsets
    blocked = faulty.copy()  # faulty or labelled

    def try_label(x: int, y: int, worklist: list[Coord]) -> None:
        if not (0 <= x < n and 0 <= y < m) or blocked[x, y]:
            return
        nax, nay = x + ax, y + ay
        nbx, nby = x + bx, y + by
        if not (0 <= nax < n and 0 <= nay < m and blocked[nax, nay]):
            return
        if not (0 <= nbx < n and 0 <= nby < m and blocked[nbx, nby]):
            return
        blocked[x, y] = True
        worklist.append((x, y))

    worklist: list[Coord] = [(int(x), int(y)) for x, y in zip(*np.nonzero(faulty))]
    while worklist:
        next_worklist: list[Coord] = []
        for x, y in worklist:
            # A newly blocked cell can only trigger the cells for which it is
            # one of the two required neighbours.
            try_label(x - ax, y - ay, next_worklist)
            try_label(x - bx, y - by, next_worklist)
        worklist = next_worklist
    return blocked & ~faulty


def label_statuses(mesh: Mesh2D, faulty: np.ndarray, mcc_type: MCCType) -> np.ndarray:
    """Compute Definition 2's status grid for one MCC type.

    Returns an ``int8`` grid of :class:`NodeStatus` values, shape ``(n, m)``.
    A node satisfying both closures reports ``USELESS`` (one status per node;
    the blocked-set semantics are unaffected).
    """
    status = np.zeros((mesh.n, mesh.m), dtype=np.int8)
    status[faulty] = NodeStatus.FAULTY
    useless = _label_closure(mesh, faulty, _LABEL_RULES[(mcc_type, NodeStatus.USELESS)])
    cant_reach = _label_closure(mesh, faulty, _LABEL_RULES[(mcc_type, NodeStatus.CANT_REACH)])
    status[useless] = NodeStatus.USELESS
    status[cant_reach & ~useless] = NodeStatus.CANT_REACH
    return status


@dataclass(frozen=True)
class MCCComponent:
    """One connected MCC: faulty plus useless plus can't-reach nodes."""

    mcc_type: MCCType
    coords: frozenset[Coord]
    rect: Rect  # bounding box; the component itself is a staircase polygon
    faulty: frozenset[Coord]
    useless: frozenset[Coord]
    cant_reach: frozenset[Coord]

    @property
    def num_disabled(self) -> int:
        """Healthy nodes sacrificed by the MCC (useless + can't-reach)."""
        return len(self.useless) + len(self.cant_reach)

    @property
    def size(self) -> int:
        return len(self.coords)

    def contains(self, coord: Coord) -> bool:
        return coord in self.coords

    def is_orthogonally_convex(self) -> bool:
        """True if every row and column slice of the component is contiguous.

        Rectilinear-monotone polygons (the shape Definition 2 produces) are
        orthogonally convex; the property tests assert this invariant.
        """
        by_column: dict[int, list[int]] = {}
        by_row: dict[int, list[int]] = {}
        for x, y in self.coords:
            by_column.setdefault(x, []).append(y)
            by_row.setdefault(y, []).append(x)
        for values in list(by_column.values()) + list(by_row.values()):
            values.sort()
            if values[-1] - values[0] + 1 != len(values):
                return False
        return True

    def __str__(self) -> str:
        return (
            f"MCC(type {self.mcc_type.value}, bbox {self.rect}, "
            f"{len(self.faulty)} faulty, {len(self.useless)} useless, "
            f"{len(self.cant_reach)} can't-reach)"
        )


@dataclass
class MCCSet:
    """MCC decomposition of a mesh for one MCC type.

    ``blocked`` is the union grid of all components: exactly the nodes a
    minimal routing (for the corresponding quadrants) must avoid.
    """

    mesh: Mesh2D
    mcc_type: MCCType
    components: list[MCCComponent]
    faulty: np.ndarray
    status: np.ndarray
    blocked: np.ndarray
    component_id: np.ndarray

    def __iter__(self) -> Iterator[MCCComponent]:
        return iter(self.components)

    def __len__(self) -> int:
        return len(self.components)

    @property
    def num_faulty(self) -> int:
        return int(self.faulty.sum())

    @property
    def num_disabled(self) -> int:
        return int(self.blocked.sum()) - self.num_faulty

    def status_at(self, coord: Coord) -> NodeStatus:
        return NodeStatus(int(self.status[coord]))

    def is_blocked(self, coord: Coord) -> bool:
        return bool(self.blocked[coord])

    def component_at(self, coord: Coord) -> MCCComponent | None:
        idx = int(self.component_id[coord])
        return self.components[idx] if idx >= 0 else None

    def average_disabled_per_component(self) -> float:
        """Figure 8's metric under the MCC model."""
        if not self.components:
            return 0.0
        return self.num_disabled / len(self.components)


def build_mccs(mesh: Mesh2D, faults: Iterable[Coord], mcc_type: MCCType) -> MCCSet:
    """Construct the MCCs of ``mesh`` for the given faults and MCC type.

    Runs under an ``mcc.build`` timing span when a tracer is installed
    (see :mod:`repro.obs`).
    """
    prof = get_profiler()
    if prof.enabled:
        prof.count("mcc.build")
    with get_tracer().span("mcc.build", n=mesh.n, m=mesh.m, type=mcc_type.name):
        return _build_mccs(mesh, faults, mcc_type)


def _build_mccs(mesh: Mesh2D, faults: Iterable[Coord], mcc_type: MCCType) -> MCCSet:
    faulty = np.zeros((mesh.n, mesh.m), dtype=bool)
    for coord in faults:
        mesh.require_in_bounds(coord)
        faulty[coord] = True

    status = label_statuses(mesh, faulty, mcc_type)
    blocked = status != NodeStatus.FAULT_FREE

    from repro.faults.blocks import _connected_components  # shared helper

    components: list[MCCComponent] = []
    component_id = np.full((mesh.n, mesh.m), -1, dtype=np.int32)
    for coords in sorted(_connected_components(blocked), key=min):
        coord_set = frozenset(coords)
        component = MCCComponent(
            mcc_type=mcc_type,
            coords=coord_set,
            rect=Rect.bounding(coords),
            faulty=frozenset(c for c in coords if status[c] == NodeStatus.FAULTY),
            useless=frozenset(c for c in coords if status[c] == NodeStatus.USELESS),
            cant_reach=frozenset(c for c in coords if status[c] == NodeStatus.CANT_REACH),
        )
        index = len(components)
        components.append(component)
        for coord in coords:
            component_id[coord] = index

    return MCCSet(
        mesh=mesh,
        mcc_type=mcc_type,
        components=components,
        faulty=faulty,
        status=status,
        blocked=blocked,
        component_id=component_id,
    )


def build_status_pairs(mesh: Mesh2D, faults: Iterable[Coord]) -> tuple[MCCSet, MCCSet]:
    """Both MCC decompositions at once.

    Returns ``(type_one, type_two)`` so callers can attach the paper's status
    pair ``(status1, status2)`` to each node: ``status1`` governs quadrant
    I/III routing, ``status2`` quadrant II/IV routing.
    """
    fault_list = list(faults)
    return (
        build_mccs(mesh, fault_list, MCCType.TYPE_ONE),
        build_mccs(mesh, fault_list, MCCType.TYPE_TWO),
    )
