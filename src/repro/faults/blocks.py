"""The faulty block model (paper Definition 1).

    *In a 2-D mesh, a non-faulty node is initially labeled enabled; however,
    its status is changed to disabled if there are two or more disabled or
    faulty neighbors in different dimensions.  Connected disabled and faulty
    nodes form a faulty block.*

The labelling runs to a fixpoint.  In a 2-D mesh with node faults the
converged connected regions are rectangles -- the worked example of the
paper (eight faults forming block ``[2:6, 3:6]``) is reproduced in the test
suite.  :func:`build_faulty_blocks` nevertheless *verifies* rectangularity of
every component and, should a non-rectangular component ever arise, closes it
to its bounding box and re-runs the fixpoint (a monotone, terminating
completion).  The counter :attr:`BlockSet.rectangularization_rounds` records
whether that fallback ever fired; the property tests assert it stays 0.

All heavy state is kept in numpy boolean grids of shape ``(n, m)`` indexed
``[x, y]`` so the fixpoint is a handful of vectorised array operations per
round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.mesh.geometry import Coord, Rect
from repro.mesh.topology import Mesh2D
from repro.obs import get_tracer
from repro.obs.prof import get_profiler


def _shifted(mask: np.ndarray, dx: int, dy: int) -> np.ndarray:
    """``out[x, y] = mask[x + dx, y + dy]`` with out-of-range reads as False."""
    out = np.zeros_like(mask)
    n, m = mask.shape
    xsrc = slice(max(dx, 0), n + min(dx, 0))
    xdst = slice(max(-dx, 0), n + min(-dx, 0))
    ysrc = slice(max(dy, 0), m + min(dy, 0))
    ydst = slice(max(-dy, 0), m + min(-dy, 0))
    out[xdst, ydst] = mask[xsrc, ysrc]
    return out


def disable_fixpoint(faulty: np.ndarray, method: str = "frontier") -> np.ndarray:
    """Run Definition 1's disabling rule to a fixpoint.

    Returns the *unusable* mask (faulty or disabled).  A healthy node becomes
    disabled when it has at least one unusable neighbour in the x dimension
    **and** at least one in the y dimension ("two or more ... in different
    dimensions").  Missing neighbours at mesh edges count as healthy.

    ``method`` selects the implementation: ``"frontier"`` (default) seeds
    with one vectorised full-grid pass, then only re-examines cells
    adjacent to the previous round's newly-disabled set, so every round
    after the first costs O(frontier) instead of O(n*m); ``"dense"`` is
    the original all-full-grid-passes loop, kept for cross-validation in
    the tests.
    """
    if method == "dense":
        return _disable_fixpoint_dense(faulty)
    if method != "frontier":
        raise ValueError(f"unknown fixpoint method {method!r}")
    n, m = faulty.shape
    unusable = faulty.copy()
    # Round 1 as a dense pass: scattered faults usually converge here, and
    # the vectorised whole-grid rule is cheaper than per-fault gathers.
    horizontal = _shifted(unusable, 1, 0) | _shifted(unusable, -1, 0)
    vertical = _shifted(unusable, 0, 1) | _shifted(unusable, 0, -1)
    seeded = ~unusable & horizontal & vertical
    unusable |= seeded
    # A cell can first satisfy the rule only in the round after one of its
    # neighbours became unusable, so from here on scanning the frontier's
    # neighbourhood finds every newly-disabled cell.
    frontier_x, frontier_y = np.nonzero(seeded)
    while frontier_x.size:
        cand_x = np.concatenate([frontier_x - 1, frontier_x + 1, frontier_x, frontier_x])
        cand_y = np.concatenate([frontier_y, frontier_y, frontier_y - 1, frontier_y + 1])
        keep = (cand_x >= 0) & (cand_x < n) & (cand_y >= 0) & (cand_y < m)
        flat = np.unique(cand_x[keep] * m + cand_y[keep])
        cand_x, cand_y = flat // m, flat % m
        enabled = ~unusable[cand_x, cand_y]
        cand_x, cand_y = cand_x[enabled], cand_y[enabled]
        if not cand_x.size:
            break
        horizontal = np.zeros(cand_x.shape, dtype=bool)
        vertical = np.zeros(cand_x.shape, dtype=bool)
        west = cand_x > 0
        horizontal[west] = unusable[cand_x[west] - 1, cand_y[west]]
        east = cand_x < n - 1
        horizontal[east] |= unusable[cand_x[east] + 1, cand_y[east]]
        south = cand_y > 0
        vertical[south] = unusable[cand_x[south], cand_y[south] - 1]
        north = cand_y < m - 1
        vertical[north] |= unusable[cand_x[north], cand_y[north] + 1]
        newly = horizontal & vertical
        frontier_x, frontier_y = cand_x[newly], cand_y[newly]
        unusable[frontier_x, frontier_y] = True
    return unusable


def _disable_fixpoint_dense(faulty: np.ndarray) -> np.ndarray:
    """Full-grid fixpoint passes (the pre-frontier implementation)."""
    unusable = faulty.copy()
    while True:
        horizontal = _shifted(unusable, 1, 0) | _shifted(unusable, -1, 0)
        vertical = _shifted(unusable, 0, 1) | _shifted(unusable, 0, -1)
        grown = unusable | (horizontal & vertical)
        if np.array_equal(grown, unusable):
            return unusable
        unusable = grown


def _connected_components(mask: np.ndarray, method: str = "runs") -> list[list[Coord]]:
    """4-connected components of True cells, as coordinate lists.

    ``method="runs"`` (default) labels maximal y-runs per column and unions
    overlapping runs between adjacent columns -- O(#runs) Python work
    instead of O(#cells); ``method="bfs"`` is the original per-coordinate
    flood fill, kept for cross-validation in the tests.
    """
    if method == "bfs":
        return _connected_components_bfs(mask)
    if method != "runs":
        raise ValueError(f"unknown components method {method!r}")
    if not mask.any():
        return []
    pad = np.zeros((mask.shape[0], 1), dtype=bool)
    starts = mask & ~np.concatenate([pad, mask[:, :-1]], axis=1)
    ends = mask & ~np.concatenate([mask[:, 1:], pad], axis=1)
    # Row-major nonzero yields runs sorted by (x, y); starts and ends align
    # one-to-one because every run has exactly one of each.
    run_x, run_y0 = np.nonzero(starts)
    _, run_y1 = np.nonzero(ends)
    # Python ints from here on: the merge/group loops touch every run a few
    # times, and list indexing is several times cheaper than numpy scalars.
    x_list, y0_list, y1_list = run_x.tolist(), run_y0.tolist(), run_y1.tolist()

    parent = list(range(run_x.size))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    rows = np.unique(run_x)
    bounds = np.searchsorted(run_x, np.concatenate([rows, [rows[-1] + 1]]))
    row_slice = {int(row): (int(bounds[i]), int(bounds[i + 1])) for i, row in enumerate(rows)}
    for row in rows.tolist():
        if row + 1 not in row_slice:
            continue
        a, a_end = row_slice[row]
        b, b_end = row_slice[row + 1]
        while a < a_end and b < b_end:
            if y1_list[a] < y0_list[b]:
                a += 1
            elif y1_list[b] < y0_list[a]:
                b += 1
            else:  # overlapping y intervals: same component
                root_a, root_b = find(a), find(b)
                if root_a != root_b:
                    parent[root_b] = root_a
                if y1_list[a] <= y1_list[b]:
                    a += 1
                else:
                    b += 1
    grouped: dict[int, list[Coord]] = {}
    for i, x in enumerate(x_list):
        bucket = grouped.setdefault(find(i), [])
        y0, y1 = y0_list[i], y1_list[i]
        if y0 == y1:  # single-cell runs dominate at scattered fault density
            bucket.append((x, y0))
        else:
            bucket.extend((x, y) for y in range(y0, y1 + 1))
    return list(grouped.values())


def _connected_components_bfs(mask: np.ndarray) -> list[list[Coord]]:
    """Per-coordinate flood fill (the pre-vectorisation implementation)."""
    n, m = mask.shape
    seen = np.zeros_like(mask)
    components: list[list[Coord]] = []
    xs, ys = np.nonzero(mask)
    for x0, y0 in zip(xs.tolist(), ys.tolist()):
        if seen[x0, y0]:
            continue
        stack = [(x0, y0)]
        seen[x0, y0] = True
        component: list[Coord] = []
        while stack:
            x, y = stack.pop()
            component.append((x, y))
            if x > 0 and mask[x - 1, y] and not seen[x - 1, y]:
                seen[x - 1, y] = True
                stack.append((x - 1, y))
            if x + 1 < n and mask[x + 1, y] and not seen[x + 1, y]:
                seen[x + 1, y] = True
                stack.append((x + 1, y))
            if y > 0 and mask[x, y - 1] and not seen[x, y - 1]:
                seen[x, y - 1] = True
                stack.append((x, y - 1))
            if y + 1 < m and mask[x, y + 1] and not seen[x, y + 1]:
                seen[x, y + 1] = True
                stack.append((x, y + 1))
        components.append(component)
    return components


@dataclass(frozen=True)
class FaultyBlock:
    """One rectangular faulty block ``[xmin:xmax, ymin:ymax]``.

    ``faulty`` holds the genuinely failed nodes inside the block; ``disabled``
    the healthy nodes sacrificed by Definition 1.  Their union fills the
    rectangle exactly.
    """

    rect: Rect
    faulty: frozenset[Coord]
    disabled: frozenset[Coord]

    @property
    def num_faulty(self) -> int:
        return len(self.faulty)

    @property
    def num_disabled(self) -> int:
        return len(self.disabled)

    @property
    def size(self) -> int:
        return self.rect.area

    def contains(self, coord: Coord) -> bool:
        return self.rect.contains(coord)

    def adjacent_nodes(self, mesh) -> list[Coord]:
        """Enabled nodes with a faulty/disabled neighbour in this block
        (paper Sec. 2: "an enabled node is an adjacent node of a faulty
        block if it has one faulty or disabled neighbor in that block")."""
        out: list[Coord] = []
        rect = self.rect
        for x in rect.column_range():
            for y in (rect.ymin - 1, rect.ymax + 1):
                if mesh.in_bounds((x, y)):
                    out.append((x, y))
        for y in rect.row_range():
            for x in (rect.xmin - 1, rect.xmax + 1):
                if mesh.in_bounds((x, y)):
                    out.append((x, y))
        return out

    def corner_nodes(self, mesh) -> list[Coord]:
        """The paper's block *corners*: enabled nodes with two adjacent
        nodes of the block in different dimensions -- the four diagonal
        neighbours of the rectangle's corners that lie inside the mesh."""
        rect = self.rect
        candidates = [
            (rect.xmin - 1, rect.ymin - 1),
            (rect.xmin - 1, rect.ymax + 1),
            (rect.xmax + 1, rect.ymin - 1),
            (rect.xmax + 1, rect.ymax + 1),
        ]
        return [coord for coord in candidates if mesh.in_bounds(coord)]

    def __str__(self) -> str:
        return (
            f"FaultyBlock{self.rect} "
            f"({self.num_faulty} faulty, {self.num_disabled} disabled)"
        )


@dataclass
class BlockSet:
    """All faulty blocks of a mesh plus the derived occupancy grids.

    Attributes
    ----------
    mesh:
        The underlying mesh.
    blocks:
        The disjoint rectangular blocks.
    faulty:
        Boolean grid of genuinely faulty nodes.
    unusable:
        Boolean grid of faulty-or-disabled nodes (the union of all blocks).
    block_id:
        Integer grid; ``block_id[x, y]`` is the index into :attr:`blocks`
        of the block containing ``(x, y)``, or ``-1``.
    rectangularization_rounds:
        How many times the bounding-box completion fallback fired (expected 0;
        see module docstring).
    """

    mesh: Mesh2D
    blocks: list[FaultyBlock]
    faulty: np.ndarray
    unusable: np.ndarray
    block_id: np.ndarray
    rectangularization_rounds: int = 0

    def __iter__(self) -> Iterator[FaultyBlock]:
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)

    @property
    def num_faulty(self) -> int:
        return int(self.faulty.sum())

    @property
    def num_disabled(self) -> int:
        return int(self.unusable.sum()) - self.num_faulty

    def is_unusable(self, coord: Coord) -> bool:
        """True if the node is inside a faulty block (faulty or disabled)."""
        return bool(self.unusable[coord])

    def is_faulty(self, coord: Coord) -> bool:
        return bool(self.faulty[coord])

    def block_at(self, coord: Coord) -> FaultyBlock | None:
        """The block containing ``coord``, if any."""
        idx = int(self.block_id[coord])
        return self.blocks[idx] if idx >= 0 else None

    def rects(self) -> list[Rect]:
        return [block.rect for block in self.blocks]

    def average_disabled_per_block(self) -> float:
        """Figure 8's metric: mean number of disabled nodes per block."""
        if not self.blocks:
            return 0.0
        return self.num_disabled / len(self.blocks)


def build_faulty_blocks(mesh: Mesh2D, faults: Iterable[Coord]) -> BlockSet:
    """Construct the faulty blocks of ``mesh`` for the given faulty nodes.

    Runs Definition 1's disabling rule to a fixpoint, extracts 4-connected
    components of unusable nodes, and packages each as a rectangular
    :class:`FaultyBlock`.  Runs under a ``blocks.build`` timing span when a
    tracer is installed (see :mod:`repro.obs`).
    """
    prof = get_profiler()
    if prof.enabled:
        prof.count("blocks.build")
    with get_tracer().span("blocks.build", n=mesh.n, m=mesh.m):
        return _build_faulty_blocks(mesh, faults)


def _build_faulty_blocks(mesh: Mesh2D, faults: Iterable[Coord]) -> BlockSet:
    faulty = np.zeros((mesh.n, mesh.m), dtype=bool)
    for coord in faults:
        mesh.require_in_bounds(coord)
        faulty[coord] = True

    unusable = disable_fixpoint(faulty)
    rounds = 0
    while True:
        components = _connected_components(unusable)
        irregular = [c for c in components if len(c) != Rect.bounding(c).area]
        if not irregular:
            break
        # Defensive completion: close non-rectangular components to their
        # bounding boxes and re-run the fixpoint (see module docstring).
        rounds += 1
        for component in irregular:
            rect = Rect.bounding(component)
            unusable[rect.xmin : rect.xmax + 1, rect.ymin : rect.ymax + 1] = True
        unusable = disable_fixpoint(unusable)

    blocks: list[FaultyBlock] = []
    block_id = np.full((mesh.n, mesh.m), -1, dtype=np.int32)
    # `components` is the extraction that passed the rectangularity check.
    for component in sorted(components, key=min):
        rect = Rect.bounding(component)
        block_faulty = frozenset(c for c in component if faulty[c])
        block_disabled = frozenset(c for c in component if not faulty[c])
        index = len(blocks)
        blocks.append(FaultyBlock(rect=rect, faulty=block_faulty, disabled=block_disabled))
        block_id[rect.xmin : rect.xmax + 1, rect.ymin : rect.ymax + 1] = index

    return BlockSet(
        mesh=mesh,
        blocks=blocks,
        faulty=faulty,
        unusable=unusable,
        block_id=block_id,
        rectangularization_rounds=rounds,
    )
