"""The faulty block model (paper Definition 1).

    *In a 2-D mesh, a non-faulty node is initially labeled enabled; however,
    its status is changed to disabled if there are two or more disabled or
    faulty neighbors in different dimensions.  Connected disabled and faulty
    nodes form a faulty block.*

The labelling runs to a fixpoint.  In a 2-D mesh with node faults the
converged connected regions are rectangles -- the worked example of the
paper (eight faults forming block ``[2:6, 3:6]``) is reproduced in the test
suite.  :func:`build_faulty_blocks` nevertheless *verifies* rectangularity of
every component and, should a non-rectangular component ever arise, closes it
to its bounding box and re-runs the fixpoint (a monotone, terminating
completion).  The counter :attr:`BlockSet.rectangularization_rounds` records
whether that fallback ever fired; the property tests assert it stays 0.

All heavy state is kept in numpy boolean grids of shape ``(n, m)`` indexed
``[x, y]`` so the fixpoint is a handful of vectorised array operations per
round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.mesh.geometry import Coord, Rect
from repro.mesh.topology import Mesh2D
from repro.obs import get_tracer
from repro.obs.prof import get_profiler


def _shifted(mask: np.ndarray, dx: int, dy: int) -> np.ndarray:
    """``out[x, y] = mask[x + dx, y + dy]`` with out-of-range reads as False."""
    out = np.zeros_like(mask)
    n, m = mask.shape
    xsrc = slice(max(dx, 0), n + min(dx, 0))
    xdst = slice(max(-dx, 0), n + min(-dx, 0))
    ysrc = slice(max(dy, 0), m + min(dy, 0))
    ydst = slice(max(-dy, 0), m + min(-dy, 0))
    out[xdst, ydst] = mask[xsrc, ysrc]
    return out


def disable_fixpoint(faulty: np.ndarray) -> np.ndarray:
    """Run Definition 1's disabling rule to a fixpoint.

    Returns the *unusable* mask (faulty or disabled).  A healthy node becomes
    disabled when it has at least one unusable neighbour in the x dimension
    **and** at least one in the y dimension ("two or more ... in different
    dimensions").  Missing neighbours at mesh edges count as healthy.
    """
    unusable = faulty.copy()
    while True:
        horizontal = _shifted(unusable, 1, 0) | _shifted(unusable, -1, 0)
        vertical = _shifted(unusable, 0, 1) | _shifted(unusable, 0, -1)
        grown = unusable | (horizontal & vertical)
        if np.array_equal(grown, unusable):
            return unusable
        unusable = grown


def _connected_components(mask: np.ndarray) -> list[list[Coord]]:
    """4-connected components of True cells, as coordinate lists."""
    n, m = mask.shape
    seen = np.zeros_like(mask)
    components: list[list[Coord]] = []
    xs, ys = np.nonzero(mask)
    for x0, y0 in zip(xs.tolist(), ys.tolist()):
        if seen[x0, y0]:
            continue
        stack = [(x0, y0)]
        seen[x0, y0] = True
        component: list[Coord] = []
        while stack:
            x, y = stack.pop()
            component.append((x, y))
            if x > 0 and mask[x - 1, y] and not seen[x - 1, y]:
                seen[x - 1, y] = True
                stack.append((x - 1, y))
            if x + 1 < n and mask[x + 1, y] and not seen[x + 1, y]:
                seen[x + 1, y] = True
                stack.append((x + 1, y))
            if y > 0 and mask[x, y - 1] and not seen[x, y - 1]:
                seen[x, y - 1] = True
                stack.append((x, y - 1))
            if y + 1 < m and mask[x, y + 1] and not seen[x, y + 1]:
                seen[x, y + 1] = True
                stack.append((x, y + 1))
        components.append(component)
    return components


@dataclass(frozen=True)
class FaultyBlock:
    """One rectangular faulty block ``[xmin:xmax, ymin:ymax]``.

    ``faulty`` holds the genuinely failed nodes inside the block; ``disabled``
    the healthy nodes sacrificed by Definition 1.  Their union fills the
    rectangle exactly.
    """

    rect: Rect
    faulty: frozenset[Coord]
    disabled: frozenset[Coord]

    @property
    def num_faulty(self) -> int:
        return len(self.faulty)

    @property
    def num_disabled(self) -> int:
        return len(self.disabled)

    @property
    def size(self) -> int:
        return self.rect.area

    def contains(self, coord: Coord) -> bool:
        return self.rect.contains(coord)

    def adjacent_nodes(self, mesh) -> list[Coord]:
        """Enabled nodes with a faulty/disabled neighbour in this block
        (paper Sec. 2: "an enabled node is an adjacent node of a faulty
        block if it has one faulty or disabled neighbor in that block")."""
        out: list[Coord] = []
        rect = self.rect
        for x in rect.column_range():
            for y in (rect.ymin - 1, rect.ymax + 1):
                if mesh.in_bounds((x, y)):
                    out.append((x, y))
        for y in rect.row_range():
            for x in (rect.xmin - 1, rect.xmax + 1):
                if mesh.in_bounds((x, y)):
                    out.append((x, y))
        return out

    def corner_nodes(self, mesh) -> list[Coord]:
        """The paper's block *corners*: enabled nodes with two adjacent
        nodes of the block in different dimensions -- the four diagonal
        neighbours of the rectangle's corners that lie inside the mesh."""
        rect = self.rect
        candidates = [
            (rect.xmin - 1, rect.ymin - 1),
            (rect.xmin - 1, rect.ymax + 1),
            (rect.xmax + 1, rect.ymin - 1),
            (rect.xmax + 1, rect.ymax + 1),
        ]
        return [coord for coord in candidates if mesh.in_bounds(coord)]

    def __str__(self) -> str:
        return (
            f"FaultyBlock{self.rect} "
            f"({self.num_faulty} faulty, {self.num_disabled} disabled)"
        )


@dataclass
class BlockSet:
    """All faulty blocks of a mesh plus the derived occupancy grids.

    Attributes
    ----------
    mesh:
        The underlying mesh.
    blocks:
        The disjoint rectangular blocks.
    faulty:
        Boolean grid of genuinely faulty nodes.
    unusable:
        Boolean grid of faulty-or-disabled nodes (the union of all blocks).
    block_id:
        Integer grid; ``block_id[x, y]`` is the index into :attr:`blocks`
        of the block containing ``(x, y)``, or ``-1``.
    rectangularization_rounds:
        How many times the bounding-box completion fallback fired (expected 0;
        see module docstring).
    """

    mesh: Mesh2D
    blocks: list[FaultyBlock]
    faulty: np.ndarray
    unusable: np.ndarray
    block_id: np.ndarray
    rectangularization_rounds: int = 0

    def __iter__(self) -> Iterator[FaultyBlock]:
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)

    @property
    def num_faulty(self) -> int:
        return int(self.faulty.sum())

    @property
    def num_disabled(self) -> int:
        return int(self.unusable.sum()) - self.num_faulty

    def is_unusable(self, coord: Coord) -> bool:
        """True if the node is inside a faulty block (faulty or disabled)."""
        return bool(self.unusable[coord])

    def is_faulty(self, coord: Coord) -> bool:
        return bool(self.faulty[coord])

    def block_at(self, coord: Coord) -> FaultyBlock | None:
        """The block containing ``coord``, if any."""
        idx = int(self.block_id[coord])
        return self.blocks[idx] if idx >= 0 else None

    def rects(self) -> list[Rect]:
        return [block.rect for block in self.blocks]

    def average_disabled_per_block(self) -> float:
        """Figure 8's metric: mean number of disabled nodes per block."""
        if not self.blocks:
            return 0.0
        return self.num_disabled / len(self.blocks)


def build_faulty_blocks(mesh: Mesh2D, faults: Iterable[Coord]) -> BlockSet:
    """Construct the faulty blocks of ``mesh`` for the given faulty nodes.

    Runs Definition 1's disabling rule to a fixpoint, extracts 4-connected
    components of unusable nodes, and packages each as a rectangular
    :class:`FaultyBlock`.  Runs under a ``blocks.build`` timing span when a
    tracer is installed (see :mod:`repro.obs`).
    """
    prof = get_profiler()
    if prof.enabled:
        prof.count("blocks.build")
    with get_tracer().span("blocks.build", n=mesh.n, m=mesh.m):
        return _build_faulty_blocks(mesh, faults)


def _build_faulty_blocks(mesh: Mesh2D, faults: Iterable[Coord]) -> BlockSet:
    faulty = np.zeros((mesh.n, mesh.m), dtype=bool)
    for coord in faults:
        mesh.require_in_bounds(coord)
        faulty[coord] = True

    unusable = disable_fixpoint(faulty)
    rounds = 0
    while True:
        components = _connected_components(unusable)
        irregular = [c for c in components if len(c) != Rect.bounding(c).area]
        if not irregular:
            break
        # Defensive completion: close non-rectangular components to their
        # bounding boxes and re-run the fixpoint (see module docstring).
        rounds += 1
        for component in irregular:
            rect = Rect.bounding(component)
            unusable[rect.xmin : rect.xmax + 1, rect.ymin : rect.ymax + 1] = True
        unusable = disable_fixpoint(unusable)

    blocks: list[FaultyBlock] = []
    block_id = np.full((mesh.n, mesh.m), -1, dtype=np.int32)
    for component in sorted(_connected_components(unusable), key=min):
        rect = Rect.bounding(component)
        block_faulty = frozenset(c for c in component if faulty[c])
        block_disabled = frozenset(c for c in component if not faulty[c])
        index = len(blocks)
        blocks.append(FaultyBlock(rect=rect, faulty=block_faulty, disabled=block_disabled))
        block_id[rect.xmin : rect.xmax + 1, rect.ymin : rect.ymax + 1] = index

    return BlockSet(
        mesh=mesh,
        blocks=blocks,
        faulty=faulty,
        unusable=unusable,
        block_id=block_id,
        rectangularization_rounds=rounds,
    )
