"""Fault workload generators.

The paper's evaluation uses uniformly random node faults in a 200x200 mesh
with the source and destination constrained to lie outside every faulty
block.  :func:`generate_scenario` reproduces that protocol (including the
rare rejection/resampling when the fixed source lands inside a block); the
other generators provide the additional workloads used by the examples and
the ablation benches (clustered failures modelling localized damage, wall
workloads stressing the covering-sequence machinery).

All randomness flows through an explicit :class:`numpy.random.Generator` so
every experiment is reproducible from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.faults.blocks import BlockSet, build_faulty_blocks
from repro.faults.mcc import MCCSet, MCCType, build_mccs
from repro.mesh.geometry import Coord, Rect, chebyshev_distance
from repro.mesh.topology import Mesh2D

__all__ = [
    "FaultScenario",
    "clustered_faults",
    "generate_scenario",
    "injection_events",
    "injection_sequence",
    "uniform_faults",
    "uniform_faults_batch",
    "wall_faults",
]


def uniform_faults(
    mesh: Mesh2D,
    count: int,
    rng: np.random.Generator,
    forbidden: frozenset[Coord] | set[Coord] = frozenset(),
) -> list[Coord]:
    """``count`` distinct uniformly random faulty nodes avoiding ``forbidden``.

    Sparse draws (the paper's regime: a few hundred faults in a 200x200
    mesh) use batched rejection sampling.  Dense draws -- ``count`` within
    a factor of two of the available nodes -- would make rejection spin
    almost forever on the last few slots, so they switch to a single
    without-replacement :meth:`~numpy.random.Generator.choice` over the
    allowed flat indices instead.  Both paths are uniform over the same
    support; they do consume the generator differently, so a given seed
    yields different (equally valid) draws on either side of the
    threshold.
    """
    available = mesh.size - sum(1 for c in forbidden if mesh.in_bounds(c))
    if count > available:
        raise ValueError(f"cannot place {count} faults in {available} available nodes")
    if 2 * count >= available:
        # Dense regime: rejection would thrash on near-full meshes.
        allowed = np.ones(mesh.size, dtype=bool)
        for x, y in forbidden:
            if mesh.in_bounds((x, y)):
                allowed[x * mesh.m + y] = False
        picks = rng.choice(np.flatnonzero(allowed), size=count, replace=False)
        return sorted((int(flat) // mesh.m, int(flat) % mesh.m) for flat in picks)
    faults: set[Coord] = set()
    while len(faults) < count:
        # Draw in batches; duplicates and forbidden nodes are simply retried.
        draws = rng.integers(0, mesh.size, size=2 * (count - len(faults)) + 8)
        for flat in draws.tolist():
            coord = (flat // mesh.m, flat % mesh.m)
            if coord in forbidden or coord in faults:
                continue
            faults.add(coord)
            if len(faults) == count:
                break
    return sorted(faults)


def uniform_faults_batch(
    mesh: Mesh2D,
    counts: int | Sequence[int],
    rngs: Sequence[np.random.Generator | np.random.SeedSequence | int],
    forbidden: frozenset[Coord] | set[Coord] = frozenset(),
) -> np.ndarray:
    """Stacked ``(batch, n, m)`` fault grids, one pattern per generator.

    ``grids[b]`` is **bit-identical** to ``uniform_faults(mesh, counts[b],
    rngs[b], forbidden)`` rendered as a boolean grid, and each generator is
    advanced exactly as the scalar call advances it -- draws made *after*
    this call (pivots, destinations) therefore match the scalar pipeline
    draw for draw.  That equivalence is what lets the batched experiment
    engine (:mod:`repro.experiments.runner`) reproduce the per-pattern
    sweeps bit for bit; the property tests assert it over 100 seeds.

    ``counts`` may be a single count shared by every pattern or one count
    per generator.  Generators may be given as :class:`numpy.random.
    Generator` (consumed in place), seed ints, or ``SeedSequence`` s.

    The per-round bookkeeping (dedup, forbidden filtering, acceptance) is
    vectorised; only the generator draws stay per pattern, because each
    pattern owns an independent RNG stream by design.
    """
    batch = len(rngs)
    count_list = [counts] * batch if isinstance(counts, int) else list(counts)
    if len(count_list) != batch:
        raise ValueError(
            f"got {len(count_list)} counts for {batch} generators"
        )
    forbidden_flat = np.array(
        sorted(x * mesh.m + y for x, y in forbidden if mesh.in_bounds((x, y))),
        dtype=np.int64,
    )
    available = mesh.size - len(forbidden_flat)
    grids = np.zeros((batch, mesh.n, mesh.m), dtype=bool)
    for b, (rng_like, count) in enumerate(zip(rngs, count_list)):
        rng = (
            rng_like
            if isinstance(rng_like, np.random.Generator)
            else np.random.default_rng(rng_like)
        )
        if count > available:
            raise ValueError(
                f"cannot place {count} faults in {available} available nodes"
            )
        flat_grid = grids[b].reshape(-1)
        if 2 * count >= available:
            # Dense regime: the same without-replacement choice as the
            # scalar path (identical generator consumption).
            allowed = np.ones(mesh.size, dtype=bool)
            allowed[forbidden_flat] = False
            picks = rng.choice(np.flatnonzero(allowed), size=count, replace=False)
            flat_grid[picks] = True
            continue
        taken = np.zeros(mesh.size, dtype=bool)
        taken[forbidden_flat] = True
        placed = 0
        while placed < count:
            draws = rng.integers(0, mesh.size, size=2 * (count - placed) + 8)
            # First occurrence of each value, in draw order -- the
            # vectorised equivalent of the scalar accept loop.
            _, first_index = np.unique(draws, return_index=True)
            candidates = draws[np.sort(first_index)]
            candidates = candidates[~taken[candidates]]
            accepted = candidates[: count - placed]
            taken[accepted] = True
            flat_grid[accepted] = True
            placed += len(accepted)
    return grids


def injection_sequence(
    mesh: Mesh2D,
    count: int,
    rng: np.random.Generator,
    source: Coord | None = None,
) -> list[Coord]:
    """``count`` distinct faults in a random *injection order*.

    :func:`uniform_faults` returns its draw sorted (set semantics for the
    static scenarios); live-injection workloads --
    :class:`repro.simulator.protocols.dynamic_update.DynamicMesh` and the
    ``sim.dynamic_injection`` bench -- additionally need the order in which
    the faults strike, so this shuffles the draw under the same generator.
    """
    forbidden: frozenset[Coord] = frozenset({source} if source is not None else ())
    faults = uniform_faults(mesh, count, rng, forbidden=forbidden)
    order = rng.permutation(len(faults))
    return [faults[int(i)] for i in order]


def injection_events(
    mesh: Mesh2D,
    count: int,
    rng: np.random.Generator,
    source: Coord | None = None,
    revive_fraction: float = 0.0,
) -> list[tuple[str, Coord]]:
    """A mixed ``("inject" | "revive", coord)`` event stream.

    Extends :func:`injection_sequence` for delta-maintenance workloads
    (:class:`repro.faults.incremental.IncrementalFaultEngine`, the
    ``faults.incremental_update`` bench): ``count`` distinct faults strike
    in a random order, and after each arrival a currently faulty node is
    revived with probability ``revive_fraction`` (drawn under the same
    generator, so the stream is reproducible from the seed).  Every revive
    targets a fault that is live at that point, so the stream is valid to
    replay from an empty mesh.
    """
    if not 0.0 <= revive_fraction <= 1.0:
        raise ValueError(f"revive_fraction must be in [0, 1], got {revive_fraction}")
    events: list[tuple[str, Coord]] = []
    alive: list[Coord] = []
    for coord in injection_sequence(mesh, count, rng, source=source):
        events.append(("inject", coord))
        alive.append(coord)
        if revive_fraction > 0 and alive and rng.random() < revive_fraction:
            victim = alive.pop(int(rng.integers(len(alive))))
            events.append(("revive", victim))
    return events


def clustered_faults(
    mesh: Mesh2D,
    count: int,
    rng: np.random.Generator,
    clusters: int = 4,
    radius: int = 3,
    forbidden: frozenset[Coord] | set[Coord] = frozenset(),
) -> list[Coord]:
    """Faults concentrated around ``clusters`` random epicentres.

    Each fault is placed uniformly within Chebyshev distance ``radius`` of a
    randomly chosen epicentre; models localized physical damage, which
    produces larger faulty blocks than the uniform workload.
    """
    if clusters < 1:
        raise ValueError("need at least one cluster")
    centers = [
        (int(rng.integers(0, mesh.n)), int(rng.integers(0, mesh.m))) for _ in range(clusters)
    ]
    faults: set[Coord] = set()
    attempts = 0
    max_attempts = 1000 * count + 1000
    while len(faults) < count:
        attempts += 1
        if attempts > max_attempts:
            raise RuntimeError(
                f"could not place {count} clustered faults "
                f"(clusters={clusters}, radius={radius}); region too small"
            )
        cx, cy = centers[int(rng.integers(0, clusters))]
        coord = (
            int(cx + rng.integers(-radius, radius + 1)),
            int(cy + rng.integers(-radius, radius + 1)),
        )
        if not mesh.in_bounds(coord) or coord in forbidden or coord in faults:
            continue
        faults.add(coord)
    assert all(
        any(chebyshev_distance(f, c) <= radius for c in centers) for f in faults
    )
    return sorted(faults)


def wall_faults(
    mesh: Mesh2D,
    rng: np.random.Generator,
    walls: int = 2,
    length: int = 10,
    gap_probability: float = 0.0,
) -> list[Coord]:
    """Straight fault segments ("walls") with optional gaps.

    Stresses the covering-sequence logic: walls spanning the region between a
    source and destination create exactly the barriers Wang's condition
    detects.  A gap probability above zero punches holes that minimal routes
    can slip through.
    """
    faults: set[Coord] = set()
    for _ in range(walls):
        horizontal = bool(rng.integers(0, 2))
        if horizontal:
            y = int(rng.integers(0, mesh.m))
            x0 = int(rng.integers(0, max(1, mesh.n - length)))
            cells = [(x0 + i, y) for i in range(min(length, mesh.n - x0))]
        else:
            x = int(rng.integers(0, mesh.n))
            y0 = int(rng.integers(0, max(1, mesh.m - length)))
            cells = [(x, y0 + i) for i in range(min(length, mesh.m - y0))]
        for cell in cells:
            if gap_probability > 0 and rng.random() < gap_probability:
                continue
            faults.add(cell)
    return sorted(faults)


@dataclass
class FaultScenario:
    """A fully built fault scenario: faults, blocks, and both MCC types.

    The MCC decompositions are built lazily (many experiments only need the
    faulty block model).
    """

    mesh: Mesh2D
    faults: list[Coord]
    blocks: BlockSet
    _mcc_cache: dict[MCCType, MCCSet] = field(default_factory=dict, repr=False)

    @property
    def num_faults(self) -> int:
        return len(self.faults)

    def mccs(self, mcc_type: MCCType = MCCType.TYPE_ONE) -> MCCSet:
        if mcc_type not in self._mcc_cache:
            self._mcc_cache[mcc_type] = build_mccs(self.mesh, self.faults, mcc_type)
        return self._mcc_cache[mcc_type]

    def block_rects(self) -> list[Rect]:
        return self.blocks.rects()

    def pick_destination(
        self,
        rng: np.random.Generator,
        region: Rect,
        exclude: frozenset[Coord] | set[Coord] = frozenset(),
        max_attempts: int = 10_000,
    ) -> Coord:
        """A uniformly random destination in ``region`` outside every block.

        Mirrors the paper's protocol: "we randomly pick a destination in the
        first quadrant ... the source and destination are outside of any
        faulty block".
        """
        clipped = region.clip(self.mesh.bounds)
        if clipped is None:
            raise ValueError(f"region {region} lies outside the mesh")
        for _ in range(max_attempts):
            coord = (
                int(rng.integers(clipped.xmin, clipped.xmax + 1)),
                int(rng.integers(clipped.ymin, clipped.ymax + 1)),
            )
            if coord in exclude:
                continue
            if not self.blocks.is_unusable(coord):
                return coord
        raise RuntimeError(
            f"no block-free destination found in {clipped} after {max_attempts} draws"
        )


def generate_scenario(
    mesh: Mesh2D,
    num_faults: int,
    rng: np.random.Generator,
    source: Coord | None = None,
    max_rejections: int = 1000,
    workload: str = "uniform",
    clusters: int = 4,
    cluster_radius: int = 3,
) -> FaultScenario:
    """The paper's random-fault scenario with a block-free source.

    Faults never land on the source itself, and fault patterns whose blocks
    grow to swallow the source are rejected and resampled (rare for the
    paper's parameters: scattered faults form mostly 1x1 blocks).

    ``workload`` selects the fault distribution: ``"uniform"`` is the
    paper's; ``"clustered"`` concentrates the same fault budget around
    ``clusters`` epicentres (radius ``cluster_radius``), modelling localized
    damage -- used by the beyond-the-paper robustness sweeps.
    """
    if workload not in ("uniform", "clustered"):
        raise ValueError(f"unknown workload {workload!r}")
    src = source if source is not None else mesh.center
    mesh.require_in_bounds(src)
    forbidden = frozenset({src})
    for _ in range(max_rejections):
        if workload == "uniform":
            faults = uniform_faults(mesh, num_faults, rng, forbidden=forbidden)
        else:
            # Keep the cluster regions comfortably larger than the fault
            # budget (3x slack) so dense budgets remain placeable.
            import math

            needed = math.ceil(math.sqrt(3 * num_faults / clusters))
            radius = max(cluster_radius, (needed - 1) // 2 + 1)
            faults = clustered_faults(
                mesh,
                num_faults,
                rng,
                clusters=clusters,
                radius=radius,
                forbidden=forbidden,
            )
        blocks = build_faulty_blocks(mesh, faults)
        if not blocks.is_unusable(src):
            return FaultScenario(mesh=mesh, faults=faults, blocks=blocks)
    raise RuntimeError(
        f"source {src} kept falling inside a faulty block after {max_rejections} resamples"
    )
