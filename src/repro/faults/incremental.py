"""Incremental fault-update engine: O(affected) delta maintenance.

The paper's information model is incremental -- "when a disturbance
occurs, only those affected nodes update their information" -- and its
Theorem 2 bounds how small the perturbed set is: one fault arrival
touches the rows/columns of its own extent plus whatever blocks it can
merge with.  The from-scratch builders (:func:`repro.faults.blocks.
build_faulty_blocks`, :func:`repro.core.safety.compute_safety_levels`,
:func:`repro.faults.mcc.build_mccs`) nevertheless pay O(n*m) per call,
which is what every fault arrival/revival in a live mesh used to cost.

This module maintains the same state by *deltas*:

- **Arrival** is monotone: Definition 1's disabling rule only grows the
  unusable set, and every newly disabled cell is triggered through a
  chain of newly unusable neighbours back to the arriving fault.  A
  frontier walk seeded at the fault therefore finds the exact new
  fixpoint in O(delta); the touched cells can only merge the blocks
  4-adjacent to them, so stitching is O(area of the merged blocks).
- **Revival** is local: distinct blocks are never 4-adjacent (they would
  be one component), so re-running the fixpoint inside the dead block's
  own rectangle -- with the mesh-edge boundary convention -- reproduces
  the global fixpoint exactly.  The block shrinks, splits, or vanishes;
  nothing outside its footprint moves.
- **ESLs** follow the affected-rows model: a blocked-status change at
  ``(x, y)`` perturbs only the East/West scans of row ``y`` and the
  North/South scans of column ``x``; those lines are rescanned with the
  same vectorised pass as the full computation
  (:func:`repro.core.safety.refresh_safety_levels`), bit-identically.
- **MCCs** (Definition 2) get the same treatment per closure: the two
  labelling rules are monotone under fault arrival, so a worklist seeded
  at the new fault computes each closure's new fixpoint in O(delta);
  revival re-runs both closures inside the dead component's cell set.

Every event bumps a per-mesh **generation counter** and yields an
:class:`UpdateReport` naming the affected window, so caches
(:class:`repro.parallel.cache.ArtifactCache`,
:class:`repro.simulator.traffic.PathPolicy`) can drop exactly the
entries a fault actually invalidated instead of clearing wholesale.

Should a non-rectangular component ever arise (the same defensive case
:func:`build_faulty_blocks` guards against), the engine falls back to
one full rebuild for that event and says so in the report
(``full_rebuild=True``, tallied on the ``incr.full_rebuilds`` hot
counter); the equivalence suite asserts the fallback never fires on the
tested schedules.  Incremental maintenance is cross-validated against
the full rebuild bit-identically in ``tests/test_incremental.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.core.safety import (
    SafetyLevels,
    compute_safety_levels,
    refresh_safety_levels,
)
from repro.faults.blocks import (
    BlockSet,
    FaultyBlock,
    _connected_components,
    build_faulty_blocks,
    disable_fixpoint,
)
from repro.faults.mcc import (
    _LABEL_RULES,
    MCCComponent,
    MCCSet,
    MCCType,
    NodeStatus,
    build_mccs,
)
from repro.mesh.geometry import Coord, Rect
from repro.mesh.topology import Mesh2D
from repro.obs.prof import get_profiler

__all__ = [
    "IncrementalFaultEngine",
    "IncrementalMCCState",
    "UpdateReport",
]


@dataclass(frozen=True)
class UpdateReport:
    """What one fault arrival/revival touched.

    ``affected_rect`` bounds every cell whose blocked status (or block
    membership) changed -- the window a cached artifact must be checked
    against; ``affected_cells`` counts the cells inside it that actually
    changed, and ``affected_fraction`` normalises that by the mesh size
    (the paper's locality claim, measured).  ``full_rebuild`` flags the
    defensive fallback (see module docstring).
    """

    event: str  # "inject" | "revive"
    coord: Coord
    generation: int
    affected_rect: Rect
    affected_cells: int
    affected_fraction: float
    full_rebuild: bool = False


def _count_affected(prof, report: UpdateReport) -> UpdateReport:
    if prof.enabled:
        prof.count("incr.events")
        prof.count("incr.affected_cells", report.affected_cells)
        if report.full_rebuild:
            prof.count("incr.full_rebuilds")
    return report


class IncrementalMCCState:
    """Delta-maintained MCC decomposition for one MCC type.

    Mirrors :func:`repro.faults.mcc.build_mccs` state (status grid,
    blocked union, components) and updates it per fault event; the
    :meth:`mcc_set` snapshot is bit-identical to a from-scratch build.
    Owned and driven by :class:`IncrementalFaultEngine`.
    """

    def __init__(self, mesh: Mesh2D, faults: Iterable[Coord], mcc_type: MCCType):
        self.mesh = mesh
        self.mcc_type = mcc_type
        built = build_mccs(mesh, faults, mcc_type)
        self.faulty = built.faulty.copy()
        self.status = built.status.copy()
        self.blocked = built.blocked.copy()
        # Per-closure blocked grids (faulty | that label); the two closures
        # are independent (a node may carry both labels), so each keeps its
        # own grid exactly like the from-scratch `_label_closure`.
        self._closure: dict[NodeStatus, np.ndarray] = {}
        for label in (NodeStatus.USELESS, NodeStatus.CANT_REACH):
            from repro.faults.mcc import _label_closure

            self._closure[label] = self.faulty | _label_closure(
                mesh, self.faulty, _LABEL_RULES[(mcc_type, label)]
            )
        # Stable component slots: the grid holds slot ids, the dict maps
        # slot -> component; slots never shift on unrelated events.
        self._slots: dict[int, MCCComponent] = {}
        self._slot_grid = np.full((mesh.n, mesh.m), -1, dtype=np.int32)
        self._next_slot = 0
        for component in built.components:
            slot = self._next_slot
            self._next_slot += 1
            self._slots[slot] = component
            for coord in component.coords:
                self._slot_grid[coord] = slot

    # ------------------------------------------------------------------
    def _closure_propagate(
        self, grid: np.ndarray, label: NodeStatus, seed: Coord
    ) -> list[Coord]:
        """Extend one closure's fixpoint after ``seed`` became blocked.

        A cell can newly satisfy the rule only if one of its two required
        neighbours is newly blocked *in this closure*, so walking opposite
        the trigger offsets from each newly blocked cell finds the exact
        new fixpoint (same worklist shape as ``_label_closure``).
        """
        (ax, ay), (bx, by) = _LABEL_RULES[(self.mcc_type, label)]
        n, m = self.mesh.n, self.mesh.m
        newly: list[Coord] = []
        worklist = [seed]
        while worklist:
            nxt: list[Coord] = []
            for x, y in worklist:
                for px, py in ((x - ax, y - ay), (x - bx, y - by)):
                    if not (0 <= px < n and 0 <= py < m) or grid[px, py]:
                        continue
                    nax, nay = px + ax, py + ay
                    nbx, nby = px + bx, py + by
                    if not (0 <= nax < n and 0 <= nay < m and grid[nax, nay]):
                        continue
                    if not (0 <= nbx < n and 0 <= nby < m and grid[nbx, nby]):
                        continue
                    grid[px, py] = True
                    newly.append((px, py))
                    nxt.append((px, py))
            worklist = nxt
        return newly

    def _component_cells(self, slot: int) -> frozenset[Coord]:
        return self._slots[slot].coords

    def _make_component(self, coords: frozenset[Coord]) -> MCCComponent:
        status = self.status
        return MCCComponent(
            mcc_type=self.mcc_type,
            coords=coords,
            rect=Rect.bounding(sorted(coords)),
            faulty=frozenset(c for c in coords if status[c] == NodeStatus.FAULTY),
            useless=frozenset(c for c in coords if status[c] == NodeStatus.USELESS),
            cant_reach=frozenset(
                c for c in coords if status[c] == NodeStatus.CANT_REACH
            ),
        )

    def _install(self, coords: frozenset[Coord]) -> None:
        slot = self._next_slot
        self._next_slot += 1
        self._slots[slot] = self._make_component(coords)
        for coord in coords:
            self._slot_grid[coord] = slot

    # ------------------------------------------------------------------
    def inject(self, coord: Coord) -> None:
        self.faulty[coord] = True
        touched: list[Coord] = [coord]
        for label in (NodeStatus.USELESS, NodeStatus.CANT_REACH):
            grid = self._closure[label]
            if grid[coord]:
                continue  # already blocked in this closure (was labelled)
            grid[coord] = True
            newly = self._closure_propagate(grid, label, coord)
            for cell in newly:
                if label is NodeStatus.USELESS:
                    self.status[cell] = NodeStatus.USELESS
                elif self.status[cell] != NodeStatus.USELESS:
                    self.status[cell] = NodeStatus.CANT_REACH
            touched.extend(newly)
        self.status[coord] = NodeStatus.FAULTY

        new_blocked = [c for c in touched if not self.blocked[c]]
        for cell in new_blocked:
            self.blocked[cell] = True
        # Every touched cell chains back to the fault through blocked
        # cells, so the fault's component absorbs every component holding
        # or 4-adjacent to a touched cell.
        merge: set[int] = set()
        for cell in touched:
            slot = int(self._slot_grid[cell])
            if slot >= 0:
                merge.add(slot)
        n, m = self.mesh.n, self.mesh.m
        for x, y in new_blocked:
            for px, py in ((x - 1, y), (x + 1, y), (x, y - 1), (x, y + 1)):
                if 0 <= px < n and 0 <= py < m:
                    slot = int(self._slot_grid[px, py])
                    if slot >= 0:
                        merge.add(slot)
        coords = set(new_blocked)
        for slot in merge:
            coords |= self._slots.pop(slot).coords
        self._install(frozenset(coords))

    # ------------------------------------------------------------------
    def revive(self, coord: Coord) -> None:
        self.faulty[coord] = False
        slot = int(self._slot_grid[coord])
        component = self._slots.pop(slot)
        rect = component.rect
        window = (
            slice(rect.xmin, rect.xmax + 1),
            slice(rect.ymin, rect.ymax + 1),
        )
        # Another component may own cells inside this bounding box (the
        # staircase shapes interleave), so every write below is masked to
        # the component's own cells.
        in_comp = np.zeros((rect.width, rect.height), dtype=bool)
        for x, y in component.coords:
            in_comp[x - rect.xmin, y - rect.ymin] = True
        sub_faulty = self.faulty[window] & in_comp

        # Re-run both closures restricted to the component: its cells are
        # never 4-adjacent to another component, so treating everything
        # outside as fault-free matches the global fixpoint.
        from repro.faults.blocks import _shifted

        new_closures: dict[NodeStatus, np.ndarray] = {}
        for label in (NodeStatus.USELESS, NodeStatus.CANT_REACH):
            (ax, ay), (bx, by) = _LABEL_RULES[(self.mcc_type, label)]
            closed = sub_faulty.copy()
            while True:
                grown = (
                    in_comp
                    & ~closed
                    & _shifted(closed, ax, ay)
                    & _shifted(closed, bx, by)
                )
                if not grown.any():
                    break
                closed |= grown
            new_closures[label] = closed

        sub_status = np.zeros_like(self.status[window])
        sub_status[new_closures[NodeStatus.CANT_REACH] & ~sub_faulty] = (
            NodeStatus.CANT_REACH
        )
        sub_status[new_closures[NodeStatus.USELESS] & ~sub_faulty] = NodeStatus.USELESS
        sub_status[sub_faulty] = NodeStatus.FAULTY
        sub_blocked = (
            sub_faulty
            | new_closures[NodeStatus.USELESS]
            | new_closures[NodeStatus.CANT_REACH]
        )

        for label in (NodeStatus.USELESS, NodeStatus.CANT_REACH):
            grid = self._closure[label][window]
            grid[in_comp] = new_closures[label][in_comp]
            self._closure[label][window] = grid
        status = self.status[window]
        status[in_comp] = sub_status[in_comp]
        self.status[window] = status
        blocked = self.blocked[window]
        blocked[in_comp] = sub_blocked[in_comp]
        self.blocked[window] = blocked
        slot_grid = self._slot_grid[window]
        slot_grid[in_comp] = -1
        self._slot_grid[window] = slot_grid

        for cells in _connected_components(sub_blocked & in_comp):
            self._install(
                frozenset((x + rect.xmin, y + rect.ymin) for x, y in cells)
            )

    # ------------------------------------------------------------------
    def rebuild(self, faults: Iterable[Coord]) -> None:
        """Full rebuild fallback (driven by the engine's defensive path)."""
        self.__init__(self.mesh, faults, self.mcc_type)

    def mcc_set(self) -> MCCSet:
        """Materialize the current state as a from-scratch-ordered
        :class:`MCCSet` snapshot (components sorted by minimal coordinate,
        arrays copied)."""
        components = sorted(self._slots.values(), key=lambda c: min(c.coords))
        component_id = np.full((self.mesh.n, self.mesh.m), -1, dtype=np.int32)
        for index, component in enumerate(components):
            for coord in component.coords:
                component_id[coord] = index
        return MCCSet(
            mesh=self.mesh,
            mcc_type=self.mcc_type,
            components=components,
            faulty=self.faulty.copy(),
            status=self.status.copy(),
            blocked=self.blocked.copy(),
            component_id=component_id,
        )


class IncrementalFaultEngine:
    """Delta-maintained ``(faulty, blocks, ESL[, MCCs])`` state for a live mesh.

    Build once from an initial fault set (one full construction), then
    feed it fault arrivals (:meth:`inject`) and revivals (:meth:`revive`);
    each event costs O(affected) instead of O(n*m) and returns an
    :class:`UpdateReport` describing the perturbed window.  Snapshots
    (:meth:`block_set`, :meth:`mcc_set`) materialize views bit-identical
    to the from-scratch builders for the same fault set.
    """

    def __init__(
        self,
        mesh: Mesh2D,
        faults: Iterable[Coord] = (),
        mcc_types: Iterable[MCCType] = (),
    ):
        self.mesh = mesh
        self.generation = 0
        self.full_rebuilds = 0
        built = build_faulty_blocks(mesh, faults)
        self.faulty = built.faulty
        self.unusable = built.unusable
        self.levels = compute_safety_levels(mesh, built.unusable)
        self._slots: dict[int, FaultyBlock] = dict(enumerate(built.blocks))
        self._slot_grid = built.block_id.copy()
        self._next_slot = len(built.blocks)
        self._mccs: dict[MCCType, IncrementalMCCState] = {}
        for mcc_type in mcc_types:
            self.track_mcc(mcc_type)

    # ------------------------------------------------------------------
    @property
    def faults(self) -> list[Coord]:
        """The current fault set, sorted."""
        return [(int(x), int(y)) for x, y in np.argwhere(self.faulty)]

    def track_mcc(self, mcc_type: MCCType) -> IncrementalMCCState:
        """Start delta-maintaining the MCC decomposition of ``mcc_type``
        (built once from the current fault set; kept in sync from then on)."""
        if mcc_type not in self._mccs:
            self._mccs[mcc_type] = IncrementalMCCState(
                self.mesh, self.faults, mcc_type
            )
        return self._mccs[mcc_type]

    def apply(self, event: str, coord: Coord) -> UpdateReport:
        """Apply one named event: ``inject``/``crash`` or ``revive``."""
        if event in ("inject", "crash"):
            return self.inject(coord)
        if event == "revive":
            return self.revive(coord)
        raise ValueError(f"unknown fault event {event!r}")

    # ------------------------------------------------------------------
    def inject(self, coord: Coord) -> UpdateReport:
        """One fault arrival; O(affected) delta maintenance."""
        self.mesh.require_in_bounds(coord)
        if self.faulty[coord]:
            raise ValueError(f"{coord} already faulty")
        self.generation += 1
        self.faulty[coord] = True

        if self.unusable[coord]:
            # The fault landed on an already-disabled node: no mask, block
            # shape, or ESL changes -- only the faulty/disabled partition
            # of its block moves.
            slot = int(self._slot_grid[coord])
            block = self._slots[slot]
            self._slots[slot] = FaultyBlock(
                rect=block.rect,
                faulty=block.faulty | {coord},
                disabled=block.disabled - {coord},
            )
            for mcc in self._mccs.values():
                mcc.inject(coord)
            x, y = coord
            return self._report("inject", coord, [coord], Rect(x, x, y, y))

        new_cells = self._propagate_disable(coord)
        merge: set[int] = set()
        n, m = self.mesh.n, self.mesh.m
        for x, y in new_cells:
            for px, py in ((x - 1, y), (x + 1, y), (x, y - 1), (x, y + 1)):
                if 0 <= px < n and 0 <= py < m:
                    slot = int(self._slot_grid[px, py])
                    if slot >= 0:
                        merge.add(slot)
        merged: set[Coord] = set(new_cells)
        for slot in merge:
            block = self._slots[slot]
            merged |= block.faulty
            merged |= block.disabled
        rect = Rect.bounding(sorted(merged))
        if len(merged) != rect.area:
            # Defensive completion (same guard as build_faulty_blocks);
            # never observed, but correctness beats locality here.
            return self._full_rebuild("inject", coord)
        for slot in merge:
            del self._slots[slot]
        block_faulty = frozenset(c for c in merged if self.faulty[c])
        slot = self._next_slot
        self._next_slot += 1
        self._slots[slot] = FaultyBlock(
            rect=rect,
            faulty=block_faulty,
            disabled=frozenset(merged) - block_faulty,
        )
        self._slot_grid[rect.xmin : rect.xmax + 1, rect.ymin : rect.ymax + 1] = slot
        refresh_safety_levels(
            self.levels,
            self.unusable,
            xs={c[0] for c in new_cells},
            ys={c[1] for c in new_cells},
        )
        for mcc in self._mccs.values():
            mcc.inject(coord)
        return self._report("inject", coord, new_cells, rect)

    def _propagate_disable(self, coord: Coord) -> list[Coord]:
        """Definition 1's fixpoint extension after ``coord`` turned faulty.

        Every newly disabled cell is triggered through a chain of newly
        unusable neighbours back to ``coord`` (otherwise it would already
        have been disabled), so a frontier walk from the fault finds the
        exact new global fixpoint in O(delta).
        """
        n, m = self.mesh.n, self.mesh.m
        unusable = self.unusable
        unusable[coord] = True
        new_cells = [coord]
        frontier = [coord]
        while frontier:
            nxt: list[Coord] = []
            for x, y in frontier:
                for cx, cy in ((x - 1, y), (x + 1, y), (x, y - 1), (x, y + 1)):
                    if not (0 <= cx < n and 0 <= cy < m) or unusable[cx, cy]:
                        continue
                    horizontal = (cx > 0 and unusable[cx - 1, cy]) or (
                        cx + 1 < n and unusable[cx + 1, cy]
                    )
                    vertical = (cy > 0 and unusable[cx, cy - 1]) or (
                        cy + 1 < m and unusable[cx, cy + 1]
                    )
                    if horizontal and vertical:
                        unusable[cx, cy] = True
                        new_cells.append((cx, cy))
                        nxt.append((cx, cy))
            frontier = nxt
        return new_cells

    # ------------------------------------------------------------------
    def revive(self, coord: Coord) -> UpdateReport:
        """One fault revival; recomputes only inside the dead block."""
        self.mesh.require_in_bounds(coord)
        if not self.faulty[coord]:
            raise ValueError(f"{coord} is not faulty")
        self.generation += 1
        self.faulty[coord] = False
        slot = int(self._slot_grid[coord])
        rect = self._slots.pop(slot).rect
        window = (
            slice(rect.xmin, rect.xmax + 1),
            slice(rect.ymin, rect.ymax + 1),
        )
        # Distinct blocks are never 4-adjacent and a block fills its
        # rectangle exactly, so every cell bordering the window is enabled
        # -- the subgrid fixpoint (edges read as healthy) is the global one.
        sub_unusable = disable_fixpoint(self.faulty[window])
        freed = [
            (int(x) + rect.xmin, int(y) + rect.ymin)
            for x, y in np.argwhere(~sub_unusable)
        ]
        self.unusable[window] = sub_unusable
        self._slot_grid[window] = -1
        for cells in _connected_components(sub_unusable):
            shifted = [(x + rect.xmin, y + rect.ymin) for x, y in cells]
            crect = Rect.bounding(shifted)
            if len(shifted) != crect.area:
                return self._full_rebuild("revive", coord)
            block_faulty = frozenset(c for c in shifted if self.faulty[c])
            new_slot = self._next_slot
            self._next_slot += 1
            self._slots[new_slot] = FaultyBlock(
                rect=crect,
                faulty=block_faulty,
                disabled=frozenset(shifted) - block_faulty,
            )
            self._slot_grid[
                crect.xmin : crect.xmax + 1, crect.ymin : crect.ymax + 1
            ] = new_slot
        if freed:
            refresh_safety_levels(
                self.levels,
                self.unusable,
                xs={c[0] for c in freed},
                ys={c[1] for c in freed},
            )
        for mcc in self._mccs.values():
            mcc.revive(coord)
        return self._report("revive", coord, freed or [coord], rect)

    # ------------------------------------------------------------------
    def _full_rebuild(self, event: str, coord: Coord) -> UpdateReport:
        """Rebuild everything from the current fault set (defensive path)."""
        self.full_rebuilds += 1
        faults = self.faults
        built = build_faulty_blocks(self.mesh, faults)
        self.faulty = built.faulty
        self.unusable = built.unusable
        self.levels = compute_safety_levels(self.mesh, built.unusable)
        self._slots = dict(enumerate(built.blocks))
        self._slot_grid = built.block_id.copy()
        self._next_slot = len(built.blocks)
        for mcc in self._mccs.values():
            mcc.rebuild(faults)
        return _count_affected(
            get_profiler(),
            UpdateReport(
                event=event,
                coord=coord,
                generation=self.generation,
                affected_rect=self.mesh.bounds,
                affected_cells=self.mesh.size,
                affected_fraction=1.0,
                full_rebuild=True,
            ),
        )

    def _report(
        self, event: str, coord: Coord, changed: list[Coord], rect: Rect
    ) -> UpdateReport:
        return _count_affected(
            get_profiler(),
            UpdateReport(
                event=event,
                coord=coord,
                generation=self.generation,
                affected_rect=rect,
                affected_cells=len(changed),
                affected_fraction=len(changed) / self.mesh.size,
            ),
        )

    # ------------------------------------------------------------------
    # Snapshots (bit-identical to the from-scratch builders)
    # ------------------------------------------------------------------
    def block_set(self) -> BlockSet:
        """Materialize the current blocks as a :class:`BlockSet` snapshot
        ordered like :func:`build_faulty_blocks` (blocks sorted by minimal
        cell, arrays copied)."""
        blocks = sorted(
            self._slots.values(), key=lambda b: min(b.faulty | b.disabled)
        )
        block_id = np.full((self.mesh.n, self.mesh.m), -1, dtype=np.int32)
        for index, block in enumerate(blocks):
            rect = block.rect
            block_id[rect.xmin : rect.xmax + 1, rect.ymin : rect.ymax + 1] = index
        return BlockSet(
            mesh=self.mesh,
            blocks=blocks,
            faulty=self.faulty.copy(),
            unusable=self.unusable.copy(),
            block_id=block_id,
        )

    def safety_levels(self) -> SafetyLevels:
        """The live (delta-maintained) ESL grids; mutated in place by
        subsequent events -- snapshot the arrays if you need stability."""
        return self.levels

    def mcc_set(self, mcc_type: MCCType) -> MCCSet:
        """Snapshot of one tracked MCC decomposition (starts tracking it
        on first use)."""
        return self.track_mcc(mcc_type).mcc_set()
