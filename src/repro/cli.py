"""Command-line interface: ``python -m repro <command>``.

Subcommands cover the library's workflows:

- ``figures``   reproduce the paper's figures (tables + ASCII plots + CSV);
- ``scenario``  render a random fault scenario (blocks or MCCs);
- ``route``     route one packet and show the path on the mesh;
- ``trace``     hop-by-hop decision log: which safe condition / extension
  justified the route, and the rule behind every forwarding step;
- ``stats``     aggregate observability metrics (routes, protocol messages,
  timing spans) for one scenario, as a table, JSON, or Prometheus text
  (``--prom``), optionally with profiling (``--profile``);
- ``protocols`` run the distributed information protocols and report cost;
- ``chaos``     torment the hardened protocols with message loss and
  crash/revive schedules, then verify re-convergence against the batch
  oracles (non-zero exit on divergence); ``--record`` flight-records the
  run to a replayable log;
- ``replay``    re-execute a flight-recorder log and assert bit-identical
  event streams; ``--at`` time-travels to any tick, ``--lineage`` prints
  an event's causal ancestry, ``--bisect`` finds the first divergent
  event between two logs;
- ``top``       the same chaos workload under a live ANSI dashboard:
  per-tick sparklines of queue depth and channel counters with an alert
  banner (``--once`` prints a single final frame for scripts);
- ``serve-metrics``  run the chaos workload with a live HTTP exporter:
  ``/metrics`` (Prometheus text), ``/series.json``, ``/healthz``,
  ``/readyz``; ``--linger`` keeps serving after the run so scrapers can
  poll (SIGTERM/SIGINT during the linger flips ``/readyz`` to 503,
  drains within ``--grace``, and exits 0),
  ``--push``/``--series-out`` atomically write the final state to files;
- ``serve``     routability queries as a service: an asyncio HTTP front
  end answering "is (s,d) minimally routable, and by which strategy?"
  against a live incremental fault engine, with admission control,
  per-request deadlines, staleness-aware degraded answers, and a
  circuit breaker (``/query``, ``/fault``, ``/healthz``, ``/readyz``,
  ``/metrics``); SIGTERM/SIGINT drain gracefully and exit 0;
- ``bench``     run the benchmark registry, write ``BENCH_<n>.json`` at the
  repo root, and optionally gate against a baseline (``--compare``).

Exit codes follow one convention everywhere: 0 success, 1 the run itself
went wrong (divergence, routing failure, ``--fail-on-alerts`` firing, an
output file that cannot be written), 2 bad usage (invalid arguments,
missing inputs).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Callable, Sequence

import numpy as np


def _parse_coord(text: str) -> tuple[int, int]:
    try:
        x, y = text.split(",")
        return (int(x), int(y))
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected 'x,y', got {text!r}") from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Extended minimal routing in 2-D meshes with faulty blocks "
        "(Wu & Jiang, ICDCS 2002) -- reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser("figures", help="reproduce the paper's figures")
    figures.add_argument(
        "which",
        nargs="*",
        default=["all"],
        choices=["all", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12"],
        help="figures to run (default: all)",
    )
    figures.add_argument("--full", action="store_true", help="paper scale (200x200)")
    figures.add_argument("--plot", action="store_true", help="include ASCII plots")
    figures.add_argument("--csv", type=pathlib.Path, help="directory for CSV dumps")
    figures.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the condition sweeps fig9-fig12 "
        "(default 1; results are identical at any worker count)",
    )
    figures.add_argument(
        "--engine", choices=["auto", "batched", "scalar"], default="auto",
        help="shard evaluator for fig9-fig12: 'batched' stacks each shard's "
        "fault patterns and runs the cross-pattern kernels, 'scalar' loops "
        "per pattern; results are bit-identical (default: auto = batched)",
    )
    figures.add_argument(
        "--backend", choices=["numpy", "strict", "cupy", "torch"], default="numpy",
        help="array API backend for the batched engine (default: numpy)",
    )

    scenario = sub.add_parser("scenario", help="render a random fault scenario")
    _common_scenario_args(scenario)
    scenario.add_argument("--mcc", action="store_true", help="show type-one MCCs")

    route = sub.add_parser("route", help="route one packet and draw the path")
    _common_scenario_args(route)
    route.add_argument("--source", type=_parse_coord, help="x,y (default: centre)")
    route.add_argument("--dest", type=_parse_coord, required=True, help="x,y")
    route.add_argument(
        "--router",
        choices=["wu", "greedy", "detour", "oracle"],
        default="wu",
        help="routing policy (default: wu)",
    )

    trace = sub.add_parser(
        "trace", help="hop-by-hop routing decision log (safe conditions + rules)"
    )
    trace.add_argument("source", type=_parse_coord, help="x,y")
    trace.add_argument("dest", type=_parse_coord, help="x,y")
    _common_scenario_args(trace)
    trace.add_argument(
        "--jsonl", type=pathlib.Path, help="also dump the raw trace events as JSONL"
    )
    trace.add_argument(
        "--kind", action="append", metavar="KIND",
        help="only show events of this kind (repeatable; see EVENT_KINDS)",
    )
    trace.add_argument(
        "--node", type=_parse_coord, action="append", metavar="X,Y",
        help="only show events touching this node (repeatable)",
    )

    stats = sub.add_parser(
        "stats", help="aggregate routing/protocol metrics for one scenario"
    )
    _common_scenario_args(stats)
    stats.add_argument(
        "--routes", type=int, default=50, help="random routes to drive (default 50)"
    )
    stats.add_argument("--json", action="store_true", help="emit the snapshot as JSON")
    stats.add_argument(
        "--prom", action="store_true",
        help="emit the snapshot in Prometheus text exposition format",
    )
    stats.add_argument(
        "--out", type=pathlib.Path, metavar="PATH",
        help="with --prom: atomically write the exposition to PATH instead "
        "of stdout (exit 2 without --prom, exit 1 if PATH is unwritable)",
    )
    stats.add_argument(
        "--profile", action="store_true",
        help="profile the run (hot-path counters + per-section cProfile)",
    )
    stats.add_argument(
        "--jsonl", type=pathlib.Path, help="also dump the raw trace events as JSONL"
    )
    stats.add_argument(
        "--chaos", type=float, metavar="LOSS", default=None,
        help="run the protocols hardened under this per-hop loss rate "
        "(installs a profiler so chaos.* counters appear in the output)",
    )

    chaos = sub.add_parser(
        "chaos", help="chaos-test the hardened protocols and verify convergence"
    )
    _common_scenario_args(chaos)
    _chaos_workload_args(chaos)
    chaos.add_argument(
        "--record", type=pathlib.Path, metavar="LOG",
        help="flight-record the run to this JSONL log (plus a seekable "
        ".idx sidecar); a diverging report then includes a record/replay "
        "bisection to the first divergent event",
    )

    replay = sub.add_parser(
        "replay", help="replay, inspect, or bisect a flight-recorder log"
    )
    replay.add_argument(
        "log", type=pathlib.Path, help="a recording made with 'chaos --record'"
    )
    replay.add_argument(
        "--at", type=float, metavar="TICK",
        help="time-travel: reconstruct the network state at this simulated tick",
    )
    replay.add_argument(
        "--lineage", type=int, metavar="EVENT_ID",
        help="print the causal ancestry tree of one event",
    )
    replay.add_argument(
        "--bisect", type=pathlib.Path, metavar="OTHER",
        help="binary-search this log against OTHER for the first divergent event",
    )
    replay.add_argument(
        "--print", action="store_true", dest="print_events",
        help="dump the recorded events instead of replaying",
    )
    replay.add_argument(
        "--kind", action="append", metavar="KIND",
        help="with --print: only show events of this kind (repeatable)",
    )
    replay.add_argument(
        "--node", type=_parse_coord, action="append", metavar="X,Y",
        help="with --print: only show events touching this node (repeatable)",
    )

    top = sub.add_parser(
        "top", help="chaos workload under a live ANSI dashboard (sparklines + alerts)"
    )
    _common_scenario_args(top)
    _chaos_workload_args(top)
    top.add_argument(
        "--refresh", type=int, default=16,
        help="redraw every N sampled ticks (default 16)",
    )
    top.add_argument(
        "--delay", type=float, default=0.0, metavar="SECONDS",
        help="sleep after each redraw so the live view is watchable "
        "(default 0: run at full speed)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="print a single final frame instead of live redraws",
    )
    top.add_argument(
        "--no-color", action="store_true",
        help="plain text: no ANSI colors or cursor control",
    )
    top.add_argument(
        "--width", type=int, default=48, help="sparkline width (default 48)"
    )

    serve = sub.add_parser(
        "serve-metrics",
        help="run the chaos workload behind a live /metrics scrape endpoint",
    )
    _common_scenario_args(serve)
    _chaos_workload_args(serve)
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve.add_argument(
        "--port", type=int, default=0,
        help="port to serve on (default 0: pick a free ephemeral port)",
    )
    serve.add_argument(
        "--linger", type=float, default=0.0, metavar="SECONDS",
        help="keep serving this long after the run completes so scrapers "
        "can poll the final state (default 0)",
    )
    serve.add_argument(
        "--push", type=pathlib.Path, metavar="PATH",
        help="atomically write the final /metrics exposition to PATH",
    )
    serve.add_argument(
        "--series-out", type=pathlib.Path, metavar="PATH",
        help="atomically write the final /series.json body to PATH",
    )
    serve.add_argument(
        "--fail-on-alerts", action="store_true",
        help="exit 1 if any alert rule fired during the run",
    )
    serve.add_argument(
        "--grace", type=float, default=2.0, metavar="SECONDS",
        help="drain grace period for in-flight scrapes on shutdown (default 2)",
    )

    serve_live = sub.add_parser(
        "serve",
        help="answer routability queries over HTTP against live fault state",
    )
    _common_scenario_args(serve_live)
    serve_live.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve_live.add_argument(
        "--port", type=int, default=0,
        help="port to serve on (default 0: pick a free ephemeral port)",
    )
    serve_live.add_argument(
        "--queue-limit", type=int, default=256,
        help="admission queue bound; beyond it requests shed with "
        "'overloaded' (default 256)",
    )
    serve_live.add_argument(
        "--workers", type=int, default=4,
        help="async query workers draining the queue (default 4)",
    )
    serve_live.add_argument(
        "--deadline-ms", type=float, default=50.0,
        help="per-request deadline budget in milliseconds (default 50)",
    )
    serve_live.add_argument(
        "--max-staleness", type=int, default=4,
        help="snapshot generations a query tolerates before backoff-retry "
        "(default 4)",
    )
    serve_live.add_argument(
        "--no-mcc", action="store_true",
        help="block model only: skip MCC tracking and the mcc query model",
    )
    serve_live.add_argument(
        "--events", type=int, default=0,
        help="background chaos events injected while serving (default 0: none)",
    )
    serve_live.add_argument(
        "--event-interval", type=float, default=0.5, metavar="SECONDS",
        help="delay between background chaos events (default 0.5)",
    )
    serve_live.add_argument(
        "--chaos-seed", type=int, default=0,
        help="seed for the background chaos schedule (default 0)",
    )
    serve_live.add_argument(
        "--ttl", type=float, default=None, metavar="SECONDS",
        help="shut down gracefully after SECONDS (default: serve until signalled)",
    )
    serve_live.add_argument(
        "--grace", type=float, default=5.0, metavar="SECONDS",
        help="drain grace period for queued queries on shutdown (default 5)",
    )
    serve_live.add_argument(
        "--notice", type=float, default=0.0, metavar="SECONDS",
        help="hold /readyz at 503 this long before draining, so load "
        "balancers observe the flip (default 0)",
    )

    bench = sub.add_parser(
        "bench", help="run the benchmark registry and write BENCH_<n>.json"
    )
    bench.add_argument(
        "--quick", action="store_true", help="CI-smoke scale (smaller, fewer repeats)"
    )
    bench.add_argument(
        "--repeats", type=int, help="override the per-workload timed repeats"
    )
    bench.add_argument(
        "--only", nargs="+", metavar="PATTERN",
        help="run only workloads matching these shell patterns (e.g. 'micro.*')",
    )
    bench.add_argument("--list", action="store_true", help="list workloads and exit")
    bench.add_argument(
        "--bench-dir", type=pathlib.Path, default=pathlib.Path("benchmarks"),
        help="directory scanned for bench_*.py workload hooks (default: benchmarks)",
    )
    bench.add_argument(
        "--out", type=pathlib.Path,
        help="result path (default: next free BENCH_<n>.json in the cwd)",
    )
    bench.add_argument(
        "--no-write", action="store_true", help="run without writing a result file"
    )
    bench.add_argument(
        "--compare", type=pathlib.Path, metavar="BASELINE",
        help="gate this run against a previous BENCH_*.json; non-zero exit on regression",
    )
    bench.add_argument(
        "--tolerance", type=float, default=0.15,
        help="relative p50 wall-time tolerance for --compare (default 0.15)",
    )
    bench.add_argument("--seed", type=int, default=2002, help="workload seed")
    bench.add_argument(
        "--backend", choices=["numpy", "strict", "cupy", "torch"], default="numpy",
        help="array API backend for the batched-engine workloads (default: numpy)",
    )

    protocols = sub.add_parser("protocols", help="distributed info-formation costs")
    _common_scenario_args(protocols)

    memory = sub.add_parser("memory", help="per-node state for each information model")
    _common_scenario_args(memory)

    sweep = sub.add_parser("sweep", help="mesh-size invariance sweep")
    sweep.add_argument(
        "--sides", type=int, nargs="+", default=[40, 60, 80], help="mesh sides to sweep"
    )
    sweep.add_argument("--patterns", type=int, default=6, help="patterns per side")
    sweep.add_argument(
        "--backend", choices=["numpy", "strict", "cupy", "torch"], default="numpy",
        help="array API backend for the batched sweep engine (default: numpy)",
    )
    return parser


def _common_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--side", type=int, default=24, help="mesh side (default 24)")
    parser.add_argument("--faults", type=int, default=20, help="fault count (default 20)")
    parser.add_argument("--seed", type=int, default=7, help="RNG seed (default 7)")


def _chaos_workload_args(parser: argparse.ArgumentParser) -> None:
    """The knobs shared by every verb that drives a chaos run."""
    parser.add_argument(
        "--loss", type=float, default=0.05, help="per-hop drop probability (default 0.05)"
    )
    parser.add_argument(
        "--dup", type=float, default=0.0, help="per-hop duplication probability"
    )
    parser.add_argument(
        "--corrupt", type=float, default=0.0, help="per-hop corruption probability"
    )
    parser.add_argument(
        "--jitter", type=int, default=0, help="max extra delivery latency in ticks"
    )
    parser.add_argument(
        "--chaos-seed", type=int, default=0,
        help="seed for the channel fault plan (default 0)",
    )
    parser.add_argument(
        "--events", type=int, default=10,
        help="crash/revive events in the schedule (default 10; 0 disables)",
    )
    parser.add_argument(
        "--pulses", type=int, default=2,
        help="stabilization pulses after the schedule (default 2)",
    )
    parser.add_argument(
        "--maintenance", choices=("full", "incremental"), default="full",
        help="how the verification oracle is maintained: rebuilt from "
        "scratch ('full', default) or delta-maintained per applied "
        "crash/revive ('incremental', O(affected) per event)",
    )


# ----------------------------------------------------------------------


def _cmd_figures(args, out: Callable[[str], None]) -> int:
    from repro.experiments import (
        ExperimentConfig,
        fig7_affected_rows,
        fig8_disabled_nodes,
        fig9_extension1,
        fig10_extension2,
        fig11_extension3,
        fig12_strategies,
    )

    runners = {
        "fig7": fig7_affected_rows,
        "fig8": fig8_disabled_nodes,
        "fig9": fig9_extension1,
        "fig10": fig10_extension2,
        "fig11": fig11_extension3,
        "fig12": fig12_strategies,
    }
    wanted = list(runners) if "all" in args.which else list(dict.fromkeys(args.which))
    config = ExperimentConfig.paper() if args.full else ExperimentConfig.quick()
    if args.workers < 1:
        out(f"error: --workers must be >= 1, got {args.workers}")
        return 2
    sharded = {"fig9", "fig10", "fig11", "fig12"}
    out(config.describe())
    for name in wanted:
        kwargs = (
            {"workers": args.workers, "engine": args.engine, "backend": args.backend}
            if name in sharded
            else {}
        )
        series = runners[name](config, progress=lambda msg: out(f"  {msg}"), **kwargs)
        out(series.render(with_plot=args.plot))
        if args.csv:
            args.csv.mkdir(parents=True, exist_ok=True)
            (args.csv / f"{name}.csv").write_text(series.to_csv())
            out(f"wrote {args.csv / f'{name}.csv'}")
    return 0


def _build_scenario(args):
    from repro.faults.injection import generate_scenario
    from repro.mesh.topology import Mesh2D

    mesh = Mesh2D(args.side, args.side)
    rng = np.random.default_rng(args.seed)
    return generate_scenario(mesh, args.faults, rng), rng


def _cmd_scenario(args, out: Callable[[str], None]) -> int:
    from repro.faults.mcc import MCCType, NodeStatus
    from repro.viz.ascii_art import render_mesh, render_scenario

    scenario, _ = _build_scenario(args)
    out(
        f"{scenario.mesh}: {scenario.num_faults} faults -> "
        f"{len(scenario.blocks)} blocks ({scenario.blocks.num_disabled} disabled)"
    )
    if args.mcc:
        mccs = scenario.mccs(MCCType.TYPE_ONE)
        marks = {
            coord: {"u": "u", "c": "c"}[
                "u" if mccs.status_at(coord) is NodeStatus.USELESS else "c"
            ]
            for coord in scenario.mesh.nodes()
            if mccs.status_at(coord) in (NodeStatus.USELESS, NodeStatus.CANT_REACH)
        }
        out(render_mesh(scenario.mesh, faulty=mccs.faulty, marks=marks))
        out("legend: # faulty, u useless, c can't-reach, . free")
    else:
        out(render_scenario(scenario))
        out("legend: # faulty, x disabled, . free")
    return 0


def _cmd_route(args, out: Callable[[str], None]) -> int:
    from repro.core.routing import WuRouter
    from repro.core.safety import compute_safety_levels
    from repro.core.conditions import is_safe
    from repro.routing.detour import DetourRouter
    from repro.routing.oracle import MonotoneOracleRouter
    from repro.routing.router import GreedyAdaptiveRouter, RoutingError
    from repro.viz.ascii_art import render_scenario

    scenario, _ = _build_scenario(args)
    mesh, blocks = scenario.mesh, scenario.blocks
    source = args.source if args.source is not None else mesh.center
    dest = args.dest
    for endpoint, name in ((source, "source"), (dest, "destination")):
        if not mesh.in_bounds(endpoint):
            out(f"error: {name} {endpoint} is outside the mesh")
            return 2
        if blocks.is_unusable(endpoint):
            out(f"error: {name} {endpoint} lies inside a faulty block")
            return 2

    levels = compute_safety_levels(mesh, blocks.unusable)
    out(f"safe condition (Definition 3): {is_safe(levels, source, dest)}")
    routers = {
        "wu": lambda: WuRouter(mesh, blocks),
        "greedy": lambda: GreedyAdaptiveRouter(mesh, blocks.unusable),
        "detour": lambda: DetourRouter(mesh, blocks),
        "oracle": lambda: MonotoneOracleRouter(mesh, blocks.unusable),
    }
    try:
        path = routers[args.router]().route(source, dest)
    except RoutingError as error:
        out(f"{args.router} routing failed: {error}")
        return 1
    kind = "minimal" if path.is_minimal else f"{path.detours}-detour"
    out(f"{args.router} delivered in {path.hops} hops ({kind})")
    out(render_scenario(scenario, path=path.nodes, source=source, dest=dest))
    return 0


def _format_trace_event(event) -> str | None:
    """One pretty line per replayed trace event (None: not user-facing).

    Timing spans are deliberately omitted so the trace output is
    deterministic under a fixed seed.
    """
    from repro.mesh.geometry import Direction

    data = event.data
    if event.kind == "extension_fired":
        via = f", helper {data['via']}" if data["via"] is not None else ""
        return f"route plan: {data['decision']}{via} (+{data['overhead']} hops allowed)"
    if event.kind == "route_start":
        return f"leg: {data['source']} -> {data['dest']} [{data['router']}, D={data['distance']}]"
    if event.kind == "hop":
        direction = Direction.between(tuple(data["at"]), tuple(data["to"])).name
        bits = []
        if "rule" in data:
            bits.append(data["rule"])
        if "candidates" in data:
            bits.append(f"{data['candidates']} choice(s)")
        if "forbidden" in data:
            bits.append("forbidden " + "/".join(data["forbidden"]))
        note = f"  [{', '.join(bits)}]" if bits else ""
        return f"  hop {data['index'] + 1:>3}: {data['at']} -> {data['to']} {direction}{note}"
    if event.kind == "detour":
        return "        ^ detour: this hop moves away from the destination"
    if event.kind == "block_hit":
        return (
            f"  block: preferred {data['direction']} neighbour {data['blocked']} "
            f"of {data['at']} is unusable"
        )
    if event.kind == "route_end":
        quality = "minimal" if data["minimal"] else f"{data['detours']} detour(s)"
        return f"leg delivered: {data['hops']} hops ({quality})"
    if event.kind == "route_failed":
        return f"leg failed at {data['at']}: {data['reason']}"
    return None


#: Payload fields that can hold a node coordinate (``--node`` filtering).
_COORD_FIELDS = ("at", "to", "src", "dst", "source", "dest", "blocked", "via")


def _event_touches_node(event, nodes) -> bool:
    """True if any coordinate-valued payload field names one of ``nodes``."""
    for key in _COORD_FIELDS:
        value = event.data.get(key)
        if value is None:
            continue
        try:
            coord = (int(value[0]), int(value[1]))
        except (TypeError, ValueError, IndexError, KeyError):
            continue
        if coord in nodes:
            return True
    return False


def _check_kind_filter(kinds, out: Callable[[str], None]) -> int:
    """Validate ``--kind`` values against the event vocabulary (0 = ok)."""
    from repro.obs import EVENT_KINDS

    unknown = [kind for kind in kinds or () if kind not in EVENT_KINDS]
    if unknown:
        out(
            f"error: unknown event kind(s) {', '.join(unknown)}; "
            f"valid kinds: {', '.join(sorted(EVENT_KINDS))}"
        )
        return 2
    return 0


def _cmd_trace(args, out: Callable[[str], None]) -> int:
    from repro.core.conditions import DecisionKind, safe_source_decision
    from repro.core.extensions import (
        extension1_decision,
        extension2_decision,
        extension3_decision,
    )
    from repro.core.pivots import recursive_center_pivots
    from repro.core.routing import WuRouter, route_with_decision
    from repro.core.safety import UNBOUNDED, compute_safety_levels
    from repro.mesh.geometry import Rect, manhattan_distance
    from repro.obs import JsonlSink, MetricsSink, RingBufferSink, Tracer, use_tracer
    from repro.routing.detour import DetourRouter
    from repro.routing.router import RoutingError

    if _check_kind_filter(args.kind, out):
        return 2
    scenario, _ = _build_scenario(args)
    mesh, blocks = scenario.mesh, scenario.blocks
    source, dest = args.source, args.dest
    for endpoint, name in ((source, "source"), (dest, "destination")):
        if not mesh.in_bounds(endpoint):
            out(f"error: {name} {endpoint} is outside the mesh")
            return 2
        if blocks.is_unusable(endpoint):
            out(f"error: {name} {endpoint} lies inside a faulty block")
            return 2

    blocked = blocks.unusable
    levels = compute_safety_levels(mesh, blocked)
    out(
        f"{mesh}: {scenario.num_faults} faults -> {len(blocks)} blocks; "
        f"routing {source} -> {dest} (D = {manhattan_distance(source, dest)})"
    )
    esl = ", ".join(
        "clear" if level >= UNBOUNDED else str(level) for level in levels.esl(source)
    )
    out(f"source ESL (E, S, W, N): ({esl})")

    # The decision cascade mirrors the paper's escalation: Definition 3,
    # then Extensions 1-3 (minimal), then Extension 1's sub-minimal rule.
    bbox = Rect(
        min(source[0], dest[0]),
        max(source[0], dest[0]),
        min(source[1], dest[1]),
        max(source[1], dest[1]),
    )
    cascade = [
        (
            "Definition 3 (safe source)",
            lambda: safe_source_decision(levels, source, dest),
        ),
        (
            "Extension 1 (safe preferred neighbour, minimal)",
            lambda: extension1_decision(
                mesh, levels, blocked, source, dest, allow_sub_minimal=False
            ),
        ),
        (
            "Extension 2 (known axis node)",
            lambda: extension2_decision(mesh, levels, source, dest, segment_size=None),
        ),
        (
            "Extension 3 (broadcast pivots)",
            lambda: extension3_decision(
                mesh, levels, blocked, source, dest, recursive_center_pivots(bbox, 3)
            ),
        ),
        (
            "Extension 1 (safe spare neighbour, sub-minimal)",
            lambda: extension1_decision(mesh, levels, blocked, source, dest),
        ),
    ]
    decision = None
    for label, check in cascade:
        candidate = check()
        if candidate.kind is DecisionKind.UNSAFE:
            out(f"  {label}: does not apply")
        else:
            via = f" via {candidate.via}" if candidate.via is not None else ""
            out(f"  {label}: fires ({candidate.kind.value}{via})")
            decision = candidate
            break

    ring = RingBufferSink(capacity=8192)
    metrics = MetricsSink()
    sinks: list = [ring, metrics]
    if args.jsonl:
        sinks.append(JsonlSink(args.jsonl))
    tracer = Tracer(*sinks)
    status = 0
    path = None
    error_partial: list = []
    try:
        with use_tracer(tracer):
            if decision is not None:
                path = route_with_decision(
                    WuRouter(mesh, blocks), decision, blocked=blocked
                )
            else:
                out("  no safe condition applies -- falling back to XY-detour routing")
                path = DetourRouter(mesh, blocks).route(source, dest)
    except RoutingError as error:
        status = 1
        error_partial = error.partial
    finally:
        tracer.close()

    out("")
    kinds = set(args.kind) if args.kind else None
    nodes = set(args.node) if args.node else None
    filtered = kinds is not None or nodes is not None
    for event in ring:
        if kinds is not None and event.kind not in kinds:
            continue
        if nodes is not None and not _event_touches_node(event, nodes):
            continue
        line = _format_trace_event(event)
        if line is None and filtered:
            # Under an explicit filter, kinds without a pretty form (e.g.
            # protocol_msg) are still wanted: show the raw event.
            line = str(event)
        if line is not None:
            out(line)

    out("")
    if path is not None:
        extra = path.hops - manhattan_distance(source, dest)
        quality = "minimal" if extra == 0 else f"sub-minimal, +{extra}"
        out(
            f"delivered in {path.hops} hops ({quality}); events: "
            f"{metrics.event_counts.get('hop', 0)} hop, "
            f"{metrics.event_counts.get('detour', 0)} detour, "
            f"{metrics.event_counts.get('block_hit', 0)} block_hit"
        )
    else:
        out(f"routing failed; partial trace: {' -> '.join(str(c) for c in error_partial)}")
    if args.jsonl:
        out(f"wrote {sinks[-1].events_written} events to {args.jsonl}")
    return status


def _cmd_stats(args, out: Callable[[str], None]) -> int:
    import json

    from repro.core.conditions import DecisionKind
    from repro.core.extensions import extension1_decision
    from repro.core.routing import WuRouter, route_with_decision
    from repro.core.safety import compute_safety_levels
    from repro.obs import JsonlSink, MetricsSink, Tracer, use_tracer
    from repro.obs.prof import NULL_PROFILER, Profiler, use_profiler
    from repro.routing.detour import DetourRouter
    from repro.routing.router import RoutingError
    from repro.simulator.protocols import (
        run_block_formation,
        run_boundary_distribution,
        run_safety_propagation,
    )

    if args.out is not None and not args.prom:
        out("error: --out only applies to the Prometheus exposition; add --prom")
        return 2
    scenario, rng = _build_scenario(args)
    mesh, blocks = scenario.mesh, scenario.blocks
    blocked = blocks.unusable
    chaos_plan = None
    if args.chaos is not None:
        from repro.chaos import ChannelFaultPlan

        chaos_plan = ChannelFaultPlan(drop=args.chaos, seed=args.seed)
    metrics = MetricsSink()
    sinks: list = [metrics]
    if args.jsonl:
        sinks.append(JsonlSink(args.jsonl))
    tracer = Tracer(*sinks)
    # --chaos always installs a profiler: the chaos.* counters are the
    # whole point of a hardened stats run.
    if args.profile or chaos_plan is not None:
        profiler = Profiler(detailed=args.profile)
    else:
        profiler = NULL_PROFILER
    free = [coord for coord in mesh.nodes() if not blocked[coord]]
    try:
        with use_tracer(tracer), use_profiler(profiler):
            with profiler.section("stats.esl"):
                levels = compute_safety_levels(mesh, blocked)
            with profiler.section("stats.protocols"):
                run_block_formation(mesh, scenario.faults, chaos=chaos_plan)
                run_safety_propagation(mesh, blocked, chaos=chaos_plan)
                run_boundary_distribution(
                    mesh, blocks.rects(), blocked, chaos=chaos_plan
                )
            with profiler.section("stats.incremental"):
                # Replay the scenario's faults one arrival at a time through
                # the delta-maintenance engine so the incr.* hot counters
                # (events, affected cells, fallback rebuilds) land in the
                # snapshot alongside the batch numbers.
                from repro.faults.incremental import IncrementalFaultEngine

                fault_engine = IncrementalFaultEngine(mesh)
                for fault in scenario.faults:
                    fault_engine.inject(fault)
            router = WuRouter(mesh, blocks)
            fallback = DetourRouter(mesh, blocks)
            with profiler.section("stats.routing"):
                for _ in range(args.routes):
                    src = free[int(rng.integers(len(free)))]
                    dst = free[int(rng.integers(len(free)))]
                    if src == dst:
                        continue
                    decision = extension1_decision(mesh, levels, blocked, src, dst)
                    try:
                        if decision.kind is DecisionKind.UNSAFE:
                            fallback.route(src, dst)
                        else:
                            route_with_decision(router, decision, blocked=blocked)
                    except RoutingError:
                        pass  # recorded by the tracer as a route_failed event
    finally:
        tracer.close()

    profile = profiler.snapshot() if profiler.enabled else None
    if args.prom:
        text = metrics.to_prometheus(profile=profile)
        if args.out is not None:
            from repro.obs import atomic_write_text

            try:
                atomic_write_text(args.out, text)
            except OSError as error:
                out(f"error: cannot write {args.out}: {error}")
                return 1
            out(f"wrote {args.out}")
        else:
            out(text.rstrip("\n"))
    elif args.json:
        snapshot = metrics.snapshot()
        if profile is not None:
            snapshot["profile"] = profile
        out(json.dumps(snapshot, indent=2))
    else:
        out(
            f"{mesh}: {scenario.num_faults} faults, {len(blocks)} blocks, "
            f"{args.routes} routes"
        )
        out(metrics.to_table())
        if args.profile:
            out(profiler.to_table())
    if args.jsonl:
        out(f"wrote {sinks[-1].events_written} events to {args.jsonl}")
    return 0


def _cmd_bench(args, out: Callable[[str], None]) -> int:
    from repro.bench import (
        BenchConfig,
        builtin_registry,
        compare_results,
        next_bench_path,
        run_benchmarks,
    )
    from repro.bench.runner import load_result, write_result

    registry = builtin_registry()
    for warning in registry.load_directory(args.bench_dir):
        out(f"warning: {warning}")
    if args.list:
        width = max(len(name) for name in registry.names())
        for workload in registry.select(None):
            out(f"{workload.name:<{width}}  [{workload.kind}]  {workload.description}")
        return 0

    workloads = registry.select(args.only)
    config = BenchConfig(
        quick=args.quick, repeats=args.repeats, seed=args.seed, backend=args.backend
    )
    result = run_benchmarks(workloads, config, progress=out)
    if not args.no_write:
        path = args.out if args.out is not None else next_bench_path()
        write_result(result, path)
        out(f"wrote {path}")

    if args.compare:
        try:
            baseline = load_result(args.compare)
        except FileNotFoundError:
            out(f"error: baseline {args.compare} does not exist "
                "(pass an earlier BENCH_<n>.json, or drop --compare)")
            return 2
        except OSError as error:
            out(f"error: cannot read baseline {args.compare}: {error}")
            return 2
        except ValueError as error:  # covers json.JSONDecodeError
            out(f"error: baseline {args.compare} is not valid JSON: {error}")
            return 2
        if not isinstance(baseline, dict) or not isinstance(
            baseline.get("workloads"), dict
        ):
            out(f"error: baseline {args.compare} is not a BENCH_<n>.json result "
                "(missing the 'workloads' table)")
            return 2
        lines, regressed = compare_results(result, baseline, tolerance=args.tolerance)
        out(f"compare vs {args.compare}:")
        for line in lines:
            out(line)
        if regressed:
            out(f"FAIL: {len(regressed)} workload(s) regressed beyond "
                f"tolerance {args.tolerance:g}: {', '.join(regressed)}")
            return 1
        out("compare: ok")
    return 0


def _chaos_ingredients(args, out: Callable[[str], None]):
    """(mesh, faults, plan, schedule) for a chaos-style verb, or None on
    invalid arguments (the caller returns exit code 2)."""
    from repro.chaos import ChannelFaultPlan, ChaosSchedule
    from repro.faults.injection import uniform_faults
    from repro.mesh.topology import Mesh2D

    for name, value in (("loss", args.loss), ("dup", args.dup), ("corrupt", args.corrupt)):
        if not 0.0 <= value <= 1.0:
            out(f"error: --{name} must be a probability in [0, 1], got {value}")
            return None
    mesh = Mesh2D(args.side, args.side)
    rng = np.random.default_rng(args.seed)
    faults = uniform_faults(mesh, args.faults, rng)
    plan = ChannelFaultPlan(
        drop=args.loss, duplicate=args.dup, corrupt=args.corrupt,
        jitter=args.jitter, seed=args.chaos_seed,
    )
    schedule = None
    if args.events > 0:
        schedule = ChaosSchedule.random(
            mesh, rng, events=args.events, forbidden=set(faults)
        )
    out(
        f"{mesh}: {len(faults)} initial faults; plan: {plan.describe()}; "
        f"schedule: {args.events} events; {args.pulses} stabilization pulse(s)"
    )
    return mesh, faults, plan, schedule


def _cmd_chaos(args, out: Callable[[str], None]) -> int:
    from repro.chaos import verify_convergence

    ingredients = _chaos_ingredients(args, out)
    if ingredients is None:
        return 2
    mesh, faults, plan, schedule = ingredients
    recorder = None
    if args.record is not None:
        from repro.obs import FlightRecorder

        recorder = FlightRecorder(args.record)
    try:
        report = verify_convergence(
            mesh, faults, plan, schedule,
            stabilize_rounds=args.pulses, seed=args.chaos_seed,
            recorder=recorder, maintenance=args.maintenance,
        )
    finally:
        if recorder is not None:
            recorder.close()
    if recorder is not None:
        out(
            f"recorded {len(recorder.events)} events to {args.record} "
            f"(index: {args.record.name}.idx)"
        )
    out(report.summary())
    if not report.ok:
        for coord in report.block_mismatches[:10]:
            out(f"  block mismatch at {coord}")
        for coord, direction, got, want in report.esl_mismatches[:10]:
            out(f"  ESL mismatch at {coord} {direction}: distributed {got}, oracle {want}")
        for source, dest in report.safety_mismatches[:10]:
            out(f"  safety verdict mismatch for {source} -> {dest}")
        if report.bisection is not None:
            out(report.bisection.render())
        return 1
    return 0


def _cmd_top(args, out: Callable[[str], None]) -> int:
    import time

    from repro.chaos import verify_convergence
    from repro.obs import Dashboard, Observatory

    if args.refresh < 1:
        out(f"error: --refresh must be >= 1, got {args.refresh}")
        return 2
    if args.width < 1:
        out(f"error: --width must be >= 1, got {args.width}")
        return 2
    if args.delay < 0:
        out(f"error: --delay must be >= 0, got {args.delay}")
        return 2
    ingredients = _chaos_ingredients(args, out)
    if ingredients is None:
        return 2
    mesh, faults, plan, schedule = ingredients

    observatory = Observatory()
    dashboard = Dashboard(observatory, width=args.width, color=not args.no_color)
    if not args.once:
        samples = [0]

        def redraw(tick: float) -> None:
            samples[0] += 1
            if samples[0] % args.refresh:
                return
            out(dashboard.frame())
            if args.delay > 0:
                time.sleep(args.delay)

        observatory.on_sample = redraw

    report = verify_convergence(
        mesh, faults, plan, schedule,
        stabilize_rounds=args.pulses, seed=args.chaos_seed,
        observatory=observatory, maintenance=args.maintenance,
    )
    out(dashboard.frame())
    out(report.summary())
    return 0 if report.ok else 1


def _cmd_serve_metrics(args, out: Callable[[str], None]) -> int:
    import contextlib
    import signal
    import threading

    from repro.chaos import verify_convergence
    from repro.obs import MetricsServer, MetricsSink, Observatory, Tracer, use_tracer

    if args.linger < 0:
        out(f"error: --linger must be >= 0, got {args.linger}")
        return 2
    if args.grace < 0:
        out(f"error: --grace must be >= 0, got {args.grace}")
        return 2
    ingredients = _chaos_ingredients(args, out)
    if ingredients is None:
        return 2
    mesh, faults, plan, schedule = ingredients

    # Graceful shutdown: SIGTERM/SIGINT during the linger flips /readyz
    # to 503 and ends the wait early; the drain below bounds in-flight
    # scrapes and the verb still exits 0 (an operator stop is not a
    # failure).  Signal handlers only install on the main thread --
    # elsewhere (tests driving main() from a worker) the linger simply
    # runs its full course.
    stop = threading.Event()

    @contextlib.contextmanager
    def _graceful_signals():
        previous = {}
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                previous[sig] = signal.signal(sig, lambda *_: stop.set())
            except ValueError:
                pass
        try:
            yield
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)

    # The metrics sink doubles as a tracer sink (protocol message
    # families on /metrics) and the sampler's per-kind message source.
    metrics = MetricsSink()
    observatory = Observatory(metrics=metrics)
    tracer = Tracer(metrics)
    status = 0
    try:
        server = MetricsServer(
            observatory=observatory, metrics=metrics,
            host=args.host, port=args.port,
        )
        with _graceful_signals():
            server.start()
            try:
                out(
                    f"serving {server.url('/metrics')} "
                    "(also /series.json, /healthz, /readyz)"
                )
                try:
                    with use_tracer(tracer):
                        report = verify_convergence(
                            mesh, faults, plan, schedule,
                            stabilize_rounds=args.pulses, seed=args.chaos_seed,
                            observatory=observatory, maintenance=args.maintenance,
                        )
                finally:
                    tracer.close()
                out(report.summary())
                if not report.ok:
                    status = 1
                if args.fail_on_alerts and report.alerts:
                    fired = ", ".join(sorted({alert.rule for alert in report.alerts}))
                    out(f"FAIL: {len(report.alerts)} alert(s) fired: {fired}")
                    status = 1
                if args.linger > 0 and not stop.is_set():
                    out(f"lingering {args.linger:g}s for scrapers")
                    stop.wait(args.linger)
                if stop.is_set():
                    server.mark_draining()
                    out("shutdown requested: /readyz now 503, draining")
                if args.push is not None:
                    server.write_metrics(args.push)
                    out(f"wrote {args.push}")
                if args.series_out is not None:
                    server.write_series(args.series_out)
                    out(f"wrote {args.series_out}")
            finally:
                drained = server.drain(grace=args.grace)
                if not drained:
                    out(f"drain grace ({args.grace:g}s) expired with scrapes in flight")
    except OSError as error:
        out(f"error: {error}")
        return 1
    return status


def _cmd_serve(args, out: Callable[[str], None]) -> int:
    import asyncio

    from repro.chaos.schedule import ChaosSchedule
    from repro.faults.injection import uniform_faults
    from repro.mesh.topology import Mesh2D
    from repro.serve import QueryPipeline, RoutingService, ServeApp, run_app

    for name, value, minimum in (
        ("--queue-limit", args.queue_limit, 1),
        ("--workers", args.workers, 1),
        ("--max-staleness", args.max_staleness, 0),
        ("--grace", args.grace, 0),
        ("--notice", args.notice, 0),
        ("--events", args.events, 0),
    ):
        if value < minimum:
            out(f"error: {name} must be >= {minimum}, got {value}")
            return 2
    if args.deadline_ms <= 0:
        out(f"error: --deadline-ms must be > 0, got {args.deadline_ms}")
        return 2
    if args.ttl is not None and args.ttl <= 0:
        out(f"error: --ttl must be > 0, got {args.ttl}")
        return 2

    mesh = Mesh2D(args.side, args.side)
    rng = np.random.default_rng(args.seed)
    faults = uniform_faults(mesh, args.faults, rng, forbidden={mesh.center})
    service = RoutingService(mesh, faults, mcc_model=not args.no_mcc)
    pipeline = QueryPipeline(
        service,
        queue_limit=args.queue_limit,
        workers=args.workers,
        deadline_s=args.deadline_ms / 1e3,
        max_staleness=args.max_staleness,
    )
    app = ServeApp(
        service, pipeline,
        host=args.host, port=args.port,
        grace_s=args.grace, notice_s=args.notice,
    )

    schedule = None
    if args.events > 0:
        schedule = ChaosSchedule.random(
            mesh, np.random.default_rng(args.chaos_seed),
            events=args.events, horizon=max(2.0, float(args.events)),
            forbidden=set(faults) | {mesh.center},
        )

    async def _main() -> int:
        churn_task = None

        def on_ready(ready_app: ServeApp) -> None:
            nonlocal churn_task
            out(
                f"serving {ready_app.url('/query')} "
                "(also /fault, /healthz, /readyz, /metrics)"
            )
            out(
                f"{mesh}: {len(faults)} faults at generation 0; "
                f"queue={args.queue_limit} workers={args.workers} "
                f"deadline={args.deadline_ms:g}ms max-staleness={args.max_staleness}"
            )
            if schedule is not None:
                out(
                    f"background churn: {len(schedule)} chaos events every "
                    f"{args.event_interval:g}s"
                )

                async def _churn() -> None:
                    for event in schedule:
                        await asyncio.sleep(args.event_interval)
                        try:
                            pipeline.ingest_fault(event.action, event.coord)
                        except ValueError:
                            pass  # absorbed by block formation already

                churn_task = asyncio.create_task(_churn())

        try:
            status = await run_app(app, ttl_s=args.ttl, on_ready=on_ready)
        finally:
            if churn_task is not None:
                churn_task.cancel()
        stats = pipeline.stats()
        counters = stats["counters"]
        out(
            f"drained: {counters.get('served', 0)} served, "
            f"{counters.get('shed_overload', 0) + counters.get('shed_deadline', 0)} shed, "
            f"{counters.get('degraded', 0)} degraded, "
            f"{counters.get('faults_ingested', 0)} fault events, "
            f"generation {service.generation}"
        )
        return status

    try:
        return asyncio.run(_main())
    except OSError as error:
        out(f"error: {error}")
        return 1


def _cmd_replay(args, out: Callable[[str], None]) -> int:
    from repro.obs.recorder import read_recording
    from repro.obs.replay import bisect_logs, render_lineage, replay_events, state_at
    from repro.obs.sinks import JsonlDecodeError

    if _check_kind_filter(args.kind, out):
        return 2
    if not args.log.exists():
        out(f"error: recording {args.log} does not exist")
        return 2
    try:
        events = read_recording(args.log)
    except JsonlDecodeError as error:
        out(f"error: {error}")
        return 2

    if args.bisect is not None:
        if not args.bisect.exists():
            out(f"error: recording {args.bisect} does not exist")
            return 2
        report = bisect_logs(args.log, args.bisect)
        out(f"{args.log} vs {args.bisect} ({report.probes} index probes):")
        out(report.render())
        return 0 if report.identical else 1

    if args.lineage is not None:
        try:
            out(render_lineage(events, args.lineage))
        except KeyError:
            out(
                f"error: event {args.lineage} is not in this recording "
                f"(ids 0..{len(events) - 1})"
            )
            return 2
        return 0

    if args.at is not None:
        try:
            snapshot = state_at(events, args.at)
        except ValueError as error:
            out(f"error: {error}")
            return 2
        out(snapshot.summary())
        if snapshot.faults:
            out("faults: " + ", ".join(str(c) for c in snapshot.faults))
        disabled = [c for c in snapshot.unusable if c not in set(snapshot.faults)]
        if disabled:
            out("block-disabled: " + ", ".join(str(c) for c in disabled))
        return 0

    kinds = set(args.kind) if args.kind else None
    nodes = set(args.node) if args.node else None
    if args.print_events:
        shown = 0
        for event in events:
            if kinds is not None and event.kind not in kinds:
                continue
            if nodes is not None and not _event_touches_node(event, nodes):
                continue
            out(str(event))
            shown += 1
        out(f"({shown} of {len(events)} events)")
        return 0

    try:
        result = replay_events(events)
    except ValueError as error:
        out(f"error: {error}")
        return 2
    out(result.summary())
    if not result.identical:
        out(result.divergence.render())
        return 1
    return 0


def _cmd_protocols(args, out: Callable[[str], None]) -> int:
    from repro.core.pivots import recursive_center_pivots
    from repro.core.safety import compute_safety_levels
    from repro.faults.mcc import MCCType
    from repro.mesh.geometry import Rect
    from repro.simulator.protocols import (
        run_block_formation,
        run_boundary_distribution,
        run_mcc_formation,
        run_pivot_broadcast,
        run_region_exchange,
        run_safety_propagation,
    )

    scenario, _ = _build_scenario(args)
    mesh, blocks = scenario.mesh, scenario.blocks
    levels = compute_safety_levels(mesh, blocks.unusable)
    center = mesh.center
    pivots = recursive_center_pivots(
        Rect(center[0], mesh.n - 1, center[1], mesh.m - 1), 3
    )
    runs = [
        ("block formation", run_block_formation(mesh, scenario.faults).stats),
        ("MCC labelling", run_mcc_formation(mesh, scenario.faults, MCCType.TYPE_ONE).stats),
        ("ESL formation", run_safety_propagation(mesh, blocks.unusable).stats),
        ("boundary lines", run_boundary_distribution(mesh, blocks.rects(), blocks.unusable).stats),
        ("region exchange", run_region_exchange(mesh, blocks.unusable, levels).stats),
        (f"pivot broadcast x{len(pivots)}", run_pivot_broadcast(mesh, blocks.unusable, levels, pivots).stats),
    ]
    out(f"{scenario.mesh}: {scenario.num_faults} faults, {len(blocks)} blocks")
    out(f"{'protocol':<24} {'messages':>9} {'converged':>10}")
    for name, stats in runs:
        out(f"{name:<24} {stats.messages:>9} {stats.converged_at:>9.0f}t")
    return 0


def _cmd_memory(args, out: Callable[[str], None]) -> int:
    from repro.experiments.memory_model import measure_memory

    scenario, _ = _build_scenario(args)
    out(
        f"{scenario.mesh}: {scenario.num_faults} faults, "
        f"{len(scenario.blocks)} blocks"
    )
    out(measure_memory(scenario.blocks).to_table())
    return 0


def _cmd_sweep(args, out: Callable[[str], None]) -> int:
    from repro.experiments.sweeps import mesh_size_sweep

    series = mesh_size_sweep(
        sides=tuple(args.sides), patterns_per_side=args.patterns, backend=args.backend
    )
    out(series.to_table())
    return 0


_COMMANDS = {
    "figures": _cmd_figures,
    "scenario": _cmd_scenario,
    "route": _cmd_route,
    "trace": _cmd_trace,
    "stats": _cmd_stats,
    "chaos": _cmd_chaos,
    "replay": _cmd_replay,
    "top": _cmd_top,
    "serve-metrics": _cmd_serve_metrics,
    "serve": _cmd_serve,
    "bench": _cmd_bench,
    "protocols": _cmd_protocols,
    "memory": _cmd_memory,
    "sweep": _cmd_sweep,
}


def main(argv: Sequence[str] | None = None, out: Callable[[str], None] = print) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
