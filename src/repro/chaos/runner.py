"""Drive the hardened dynamic-update protocol under chaos.

A :class:`ChaosRunner` owns one mesh network of hardened
:class:`~repro.simulator.protocols.dynamic_update.DynamicNode` processes
and subjects it to a :class:`~repro.chaos.plan.ChannelFaultPlan` (per-hop
drop/duplicate/corrupt/jitter) plus a
:class:`~repro.chaos.schedule.ChaosSchedule` (crash/revive at arbitrary
ticks) in a single drain -- unlike
:class:`~repro.simulator.protocols.dynamic_update.DynamicMesh`, events
are *not* separated by quiescent points, so protocol waves and membership
changes genuinely interleave.

After the schedule plays out, reset-based stabilization pulses (see
:mod:`repro.simulator.protocols.reliable`) restart every live node
against the final fault set; :func:`repro.chaos.verify.verify_convergence`
then compares the surviving distributed state with the batch oracles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable

import numpy as np

from repro.chaos.plan import ChannelFaultPlan
from repro.chaos.schedule import ChaosEvent, ChaosSchedule
from repro.core.safety import SafetyLevels
from repro.mesh.geometry import Coord, Direction
from repro.mesh.topology import Mesh2D
from repro.obs.prof import get_profiler
from repro.obs.recorder import FlightRecorder
from repro.simulator.engine import Engine
from repro.simulator.network import MeshNetwork, NetworkStats
from repro.simulator.protocols.dynamic_update import DynamicNode
from repro.simulator.protocols.reliable import chaos_event_budget, stabilize_network

if TYPE_CHECKING:
    from repro.obs.timeseries import Observatory


@dataclass(frozen=True)
class ChaosOutcome:
    """What one chaos run did and what it cost."""

    stats: NetworkStats
    applied: int
    skipped: int
    crashed: tuple[Coord, ...]
    revived: tuple[Coord, ...]
    final_faults: tuple[Coord, ...]
    reconverge_events: int
    reconverge_ticks: float

    def summary(self) -> str:
        return (
            f"{self.applied} chaos events applied ({self.skipped} skipped): "
            f"{len(self.crashed)} crashes, {len(self.revived)} revivals -> "
            f"{len(self.final_faults)} final faults; "
            f"reconverged in {self.reconverge_events} events / "
            f"{self.reconverge_ticks:g} ticks; {self.stats}"
        )


class ChaosRunner:
    """One hardened network plus the machinery to torment it."""

    def __init__(
        self,
        mesh: Mesh2D,
        faults: Iterable[Coord] = (),
        plan: ChannelFaultPlan | None = None,
        schedule: ChaosSchedule | None = None,
        latency: float = 1.0,
        scheduler: str = "buckets",
        stabilize_rounds: int = 1,
        recorder: FlightRecorder | None = None,
        observatory: "Observatory | None" = None,
    ):
        self.mesh = mesh
        self.plan = plan
        self.schedule = schedule if schedule is not None else ChaosSchedule()
        self.latency = latency
        self.scheduler = scheduler
        self.stabilize_rounds = stabilize_rounds
        self.recorder = recorder
        self.observatory = observatory
        self.engine = Engine(scheduler)

        def factory(coord: Coord, network: MeshNetwork) -> DynamicNode:
            return DynamicNode(coord, network, hardened=True)

        self._factory = factory
        self.network = MeshNetwork(
            mesh, self.engine, factory, faulty=faults, latency=latency, chaos=plan,
            tracer=recorder,
        )
        # Sampling is a pure read of deterministic sim state keyed by the
        # sim clock, so it neither perturbs a recording nor the replay:
        # the same observatory attached to a rebuilt runner yields
        # bit-identical series.
        self.network.observatory = observatory
        self.crashed: list[Coord] = []
        self.revived: list[Coord] = []
        self.skipped: list[ChaosEvent] = []
        #: Every *applied* (non-skipped) event in application order -- the
        #: exact delta stream an incremental maintenance engine must replay
        #: to reach the final fault set from the initial one.
        self.applied_events: list[ChaosEvent] = []
        self._primed = False
        self._ran = False

    # ------------------------------------------------------------------
    def recipe(self) -> dict[str, Any]:
        """The replayable description of this run: everything
        :func:`repro.obs.replay.build_runner` needs to reconstruct it.
        Must be taken before :meth:`run` mutates the fault set."""
        plan_spec = None
        if self.plan is not None:
            plan_spec = {
                "drop": self.plan.drop,
                "duplicate": self.plan.duplicate,
                "corrupt": self.plan.corrupt,
                "jitter": self.plan.jitter,
                "seed": self.plan.seed,
            }
        return {
            "kind": "chaos",
            "n": self.mesh.n,
            "m": self.mesh.m,
            "faults": [list(coord) for coord in sorted(self.network.faulty)],
            "plan": plan_spec,
            "schedule": [
                [event.time, event.action, list(event.coord)]
                for event in self.schedule
            ],
            "latency": self.latency,
            "scheduler": self.scheduler,
            "stabilize_rounds": self.stabilize_rounds,
        }

    def prime(self) -> None:
        """Schedule the initial fault notifications and the chaos script
        (everything :meth:`run` does before draining), without draining.

        Split out so the replay layer can prime a runner and then drive
        the engine to an arbitrary ``until=`` horizon (time travel).
        """
        if self._primed:
            raise RuntimeError("a ChaosRunner is single-use; build a new one")
        self._primed = True
        network, engine = self.network, self.engine

        root: int | None = None
        recorder = self.recorder
        if recorder is not None:
            if self.plan is not None:
                # The recording's recipe rebuilds the plan from its seed;
                # start the recorded run from the same point so replay
                # sees the identical verdict stream.
                self.plan.reset()
            root = recorder.emit("run_meta", recipe=self.recipe())

        # Initial faults are detected by their neighbours after one link
        # latency, like a DynamicMesh injection at t=0.
        for coord in sorted(network.faulty):
            for direction, neighbor in self.mesh.neighbor_items(coord):
                engine.schedule(
                    self.latency, self._notify_down, neighbor, direction.opposite, root
                )
        # Chaos events land at absolute ticks, interleaved with protocol
        # traffic (engine.now is 0 here, so delay == absolute time).
        for event in self.schedule:
            engine.schedule(event.time, self._apply, event)

    # ------------------------------------------------------------------
    def run(self) -> ChaosOutcome:
        """Play the schedule under the plan and stabilize; idempotent."""
        if self._ran:
            raise RuntimeError("a ChaosRunner is single-use; build a new one")
        self._ran = True
        network, engine = self.network, self.engine
        if not self._primed:
            self.prime()

        budget = chaos_event_budget(network)
        network.run(max_events=budget)
        chaos_settled_at = engine.now

        reconverge_events = stabilize_network(network, rounds=self.stabilize_rounds)

        return ChaosOutcome(
            stats=network.current_stats(),
            applied=len(self.crashed) + len(self.revived),
            skipped=len(self.skipped),
            crashed=tuple(self.crashed),
            revived=tuple(self.revived),
            final_faults=tuple(sorted(network.faulty)),
            reconverge_events=reconverge_events,
            reconverge_ticks=engine.now - chaos_settled_at,
        )

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------
    def _apply(self, event: ChaosEvent) -> None:
        prof = get_profiler()
        recorder = self.recorder
        if event.action == "crash":
            if event.coord in self.network.faulty:
                self.skipped.append(event)
                return
            self.network.fail_node(event.coord)
            self.crashed.append(event.coord)
            self.applied_events.append(event)
            cause: int | None = None
            if recorder is not None:
                cause = recorder.emit(
                    "chaos_crash", at=event.coord, time=self.engine.now
                )
            if prof.enabled:
                prof.count("chaos.crashes")
            for direction, neighbor in self.mesh.neighbor_items(event.coord):
                self.engine.schedule(
                    self.latency, self._notify_down, neighbor, direction.opposite, cause
                )
        else:  # revive
            if event.coord not in self.network.faulty or event.coord not in self.crashed:
                # Never revive an *initial* fault: those model permanently
                # dead hardware, not crashed software.
                self.skipped.append(event)
                return
            # Fence off every in-flight message and pending retransmit:
            # the revived node restarts its sequence numbers, and stale
            # (epoch, seq) pairs must not collide with fresh ones.
            self.network.chaos_epoch += 1
            cause = None
            if recorder is not None:
                cause = recorder.emit(
                    "chaos_revive", at=event.coord, time=self.engine.now
                )
                recorder.emit(
                    "epoch_bump", cause=cause, epoch=self.network.chaos_epoch,
                    reason="revive", time=self.engine.now,
                )
            process = self.network.restore_node(event.coord, self._factory)
            self.revived.append(event.coord)
            self.applied_events.append(event)
            if prof.enabled:
                prof.count("chaos.revives")
            if recorder is not None:
                restart_id = recorder.emit(
                    "proc_restart", cause=cause, at=event.coord, time=self.engine.now
                )
                with recorder.cause_scope(restart_id):
                    process.local_restart()
            else:
                process.local_restart()
            for direction, neighbor in self.mesh.neighbor_items(event.coord):
                self.engine.schedule(
                    self.latency, self._notify_up, neighbor, direction.opposite, cause
                )

    def _notify_down(
        self, coord: Coord, direction: Direction, cause: int | None = None
    ) -> None:
        """Failure detection: resolved at fire time, because the observer
        itself may have crashed (or been replaced) in the meantime."""
        process = self.network.nodes.get(coord)
        if isinstance(process, DynamicNode):
            if cause is not None and self.recorder is not None:
                with self.recorder.cause_scope(cause):
                    process.neighbor_became_unusable(direction)
            else:
                process.neighbor_became_unusable(direction)

    def _notify_up(
        self, coord: Coord, direction: Direction, cause: int | None = None
    ) -> None:
        process = self.network.nodes.get(coord)
        if isinstance(process, DynamicNode):
            if cause is not None and self.recorder is not None:
                with self.recorder.cause_scope(cause):
                    process.neighbor_became_usable(direction)
            else:
                process.neighbor_became_usable(direction)

    # ------------------------------------------------------------------
    # Final-state accessors (for the verifier)
    # ------------------------------------------------------------------
    def unusable_grid(self) -> np.ndarray:
        grid = np.zeros((self.mesh.n, self.mesh.m), dtype=bool)
        for coord in self.network.faulty:
            grid[coord] = True
        for coord, process in self.network.nodes.items():
            if isinstance(process, DynamicNode) and process.disabled:
                grid[coord] = True
        return grid

    def safety_levels(self) -> SafetyLevels:
        """Per-node levels (entries of blocked nodes carry no meaning)."""
        grids = {
            d: np.zeros((self.mesh.n, self.mesh.m), dtype=np.int64) for d in Direction
        }
        for coord, process in self.network.nodes.items():
            if not isinstance(process, DynamicNode):
                continue
            for direction in Direction:
                grids[direction][coord] = process.levels[direction]
        return SafetyLevels(
            mesh=self.mesh,
            east=grids[Direction.EAST],
            south=grids[Direction.SOUTH],
            west=grids[Direction.WEST],
            north=grids[Direction.NORTH],
        )
