"""Chaos engineering for the distributed information protocols.

The simulator's default world is kind: channels never lose a message and
faults are frozen before any protocol starts.  The paper's premise --
routing that survives faults -- deserves a harsher test bench, so this
package injects the unkindness and then *checks* that the protocols
earn their keep:

- :class:`~repro.chaos.plan.ChannelFaultPlan` -- seeded per-hop message
  drop / duplicate / corrupt / jitter, threaded through the network
  fast path (the default plan is reliable: existing runs stay
  bit-identical);
- :class:`~repro.chaos.schedule.ChaosSchedule` -- crash/revive events at
  arbitrary ticks *while* the protocols run;
- :class:`~repro.chaos.runner.ChaosRunner` -- drives the hardened
  dynamic-update protocol under a plan plus a schedule;
- :func:`~repro.chaos.verify.verify_convergence` -- replays the final
  distributed state against the batch oracles (:mod:`repro.core.batched`,
  :mod:`repro.faults.coverage`) and proves ESLs and blocks re-converged
  to the ground truth of the post-chaos fault set.
"""

from repro.chaos.plan import ChannelFaultPlan
from repro.chaos.schedule import ChaosEvent, ChaosSchedule
from repro.chaos.runner import ChaosOutcome, ChaosRunner
from repro.chaos.verify import ConvergenceReport, verify_convergence

__all__ = [
    "ChannelFaultPlan",
    "ChaosEvent",
    "ChaosOutcome",
    "ChaosRunner",
    "ChaosSchedule",
    "ConvergenceReport",
    "verify_convergence",
]
