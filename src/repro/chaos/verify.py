"""Convergence verification: distributed chaos survivors vs batch oracles.

A chaos run ends with whatever per-node state survived message loss,
duplication, corruption, and mid-run crash/revive.  This module replays
the *final* fault set through the centralized oracles
(:func:`repro.faults.blocks.build_faulty_blocks`,
:func:`repro.core.safety.compute_safety_levels`) and checks, node for
node, that the distributed state re-converged to the ground truth:

- the faulty-or-disabled grid matches Definition 1's fixpoint;
- every live node's four extended safety levels match the batch ESLs;
- on a seeded sample of source/destination pairs, the distributed
  levels reach the same Definition-3 safety verdicts as the oracle,
  and every pair the distributed state calls safe really has a minimal
  path (Theorem 1 cross-check via
  :func:`repro.faults.coverage.batch_minimal_path_exists`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.chaos.plan import ChannelFaultPlan
from repro.chaos.runner import ChaosOutcome, ChaosRunner
from repro.chaos.schedule import ChaosSchedule

if TYPE_CHECKING:
    from repro.obs.alerts import Alert
    from repro.obs.recorder import FlightRecorder
    from repro.obs.replay import DivergenceReport
    from repro.obs.timeseries import Observatory
from repro.core.batched import batch_is_safe
from repro.core.safety import compute_safety_levels
from repro.faults.blocks import build_faulty_blocks
from repro.faults.coverage import batch_minimal_path_exists
from repro.mesh.geometry import Coord
from repro.mesh.topology import Mesh2D


@dataclass(frozen=True)
class ConvergenceReport:
    """Outcome of one chaos run checked against the batch oracles."""

    blocks_ok: bool
    esl_ok: bool
    safety_ok: bool
    #: coords where faulty-or-disabled disagrees with Definition 1
    block_mismatches: tuple[Coord, ...]
    #: (coord, direction, distributed, oracle) for free-node ESL diffs
    esl_mismatches: tuple[tuple[Coord, str, int, int], ...]
    #: (source, dest) pairs with diverging Definition-3 verdicts or a
    #: safe verdict that no minimal path backs up
    safety_mismatches: tuple[tuple[Coord, Coord], ...]
    final_faults: tuple[Coord, ...]
    pairs_checked: int
    outcome: ChaosOutcome = field(repr=False)
    #: Attached only when the run was flight-recorded *and* diverged: the
    #: recorded run replayed against itself, bisected to the first
    #: divergent event.  An identical replay means the divergence is a
    #: genuine protocol/oracle disagreement, not nondeterminism.
    bisection: "DivergenceReport | None" = field(default=None, repr=False)
    #: Alert-rule firings observed while the run drained (only when an
    #: observatory was attached).  Informational: a firing does not flip
    #: ``ok`` -- a run can stall mid-chaos and still re-converge -- but a
    #: red gate's report now says *when* the run went sideways.
    alerts: "tuple[Alert, ...]" = ()

    @property
    def ok(self) -> bool:
        return self.blocks_ok and self.esl_ok and self.safety_ok

    def summary(self) -> str:
        verdict = "CONVERGED" if self.ok else "DIVERGED"
        parts = [
            f"{verdict}: blocks {'ok' if self.blocks_ok else f'{len(self.block_mismatches)} mismatches'}",
            f"ESLs {'ok' if self.esl_ok else f'{len(self.esl_mismatches)} mismatches'}",
            f"safety verdicts {'ok' if self.safety_ok else f'{len(self.safety_mismatches)} mismatches'}"
            f" over {self.pairs_checked} pairs",
        ]
        text = "; ".join(parts) + f"; {self.outcome.summary()}"
        if self.alerts:
            fired = ", ".join(sorted({alert.rule for alert in self.alerts}))
            text += f"; {len(self.alerts)} alert(s) fired: {fired}"
        if self.bisection is not None:
            text += f"; record/replay bisection: {self.bisection.summary()}"
        return text


def verify_convergence(
    mesh: Mesh2D,
    faults: Iterable[Coord] = (),
    plan: ChannelFaultPlan | None = None,
    schedule: ChaosSchedule | None = None,
    *,
    latency: float = 1.0,
    scheduler: str = "buckets",
    stabilize_rounds: int = 2,
    sample_pairs: int = 32,
    seed: int = 0,
    recorder: "FlightRecorder | None" = None,
    observatory: "Observatory | None" = None,
    maintenance: str = "full",
) -> ConvergenceReport:
    """Run chaos, stabilize, and prove the distributed state re-converged.

    ``stabilize_rounds`` defaults to 2: one pulse is sufficient when no
    membership changed during the pulse itself, two make the check robust
    to anything the first drain left behind.

    ``maintenance`` selects how the oracle state is produced:
    ``"full"`` (default) rebuilds blocks and ESLs from the final fault
    set from scratch; ``"incremental"`` starts an
    :class:`repro.faults.incremental.IncrementalFaultEngine` from the
    *initial* fault set and replays every applied crash/revive through
    it -- O(affected) per event, the delta-maintenance path this module
    cross-validates in the equivalence suite.

    Passing a ``recorder`` flight-records the run; if the report then
    diverges, the recording is immediately replayed and bisected against
    itself and the verdict is attached as ``report.bisection`` -- so a
    red chaos gate ships the exact first divergent event (or proof the
    run was deterministic) along with the state diff.

    Passing an ``observatory`` samples the run per tick (series stay on
    ``observatory.store``) and lands any alert-rule firings on
    ``report.alerts``.
    """
    if maintenance not in ("full", "incremental"):
        raise ValueError(
            f"maintenance must be 'full' or 'incremental', got {maintenance!r}"
        )
    initial_faults = sorted(faults)
    runner = ChaosRunner(
        mesh,
        faults=initial_faults,
        plan=plan,
        schedule=schedule,
        latency=latency,
        scheduler=scheduler,
        stabilize_rounds=stabilize_rounds,
        recorder=recorder,
        observatory=observatory,
    )
    outcome = runner.run()

    # --- Oracle replay of the final fault set --------------------------
    if maintenance == "incremental":
        from repro.faults.incremental import IncrementalFaultEngine

        engine = IncrementalFaultEngine(mesh, initial_faults)
        for event in runner.applied_events:
            engine.apply(event.action, event.coord)
        oracle_blocks = engine.block_set()
        oracle_levels = engine.safety_levels()
    else:
        oracle_blocks = build_faulty_blocks(mesh, sorted(outcome.final_faults))
        oracle_levels = compute_safety_levels(mesh, oracle_blocks.unusable)

    # --- Block (Definition 1) comparison -------------------------------
    distributed_unusable = runner.unusable_grid()
    diff = distributed_unusable != oracle_blocks.unusable
    block_mismatches = tuple(
        (int(x), int(y)) for x, y in zip(*np.nonzero(diff))
    )

    # --- ESL comparison on free nodes ----------------------------------
    distributed_levels = runner.safety_levels()
    free = ~oracle_blocks.unusable
    esl_mismatches: list[tuple[Coord, str, int, int]] = []
    grids = {
        "E": (distributed_levels.east, oracle_levels.east),
        "S": (distributed_levels.south, oracle_levels.south),
        "W": (distributed_levels.west, oracle_levels.west),
        "N": (distributed_levels.north, oracle_levels.north),
    }
    for label, (got, want) in grids.items():
        bad = (got != want) & free
        for x, y in zip(*np.nonzero(bad)):
            esl_mismatches.append(
                ((int(x), int(y)), label, int(got[x, y]), int(want[x, y]))
            )
    esl_mismatches.sort()

    # --- Sampled Definition-3 / Theorem-1 cross-check ------------------
    safety_mismatches: list[tuple[Coord, Coord]] = []
    pairs_checked = 0
    free_coords = np.argwhere(free)
    if sample_pairs > 0 and len(free_coords) >= 2:
        rng = np.random.default_rng(seed)
        sources = min(8, len(free_coords))
        per_source = max(1, sample_pairs // sources)
        source_rows = rng.choice(len(free_coords), size=sources, replace=False)
        for row in source_rows:
            source = (int(free_coords[row, 0]), int(free_coords[row, 1]))
            dest_rows = rng.choice(
                len(free_coords),
                size=min(per_source, len(free_coords)),
                replace=False,
            )
            dests = free_coords[dest_rows]
            got_safe = batch_is_safe(distributed_levels, source, dests)
            want_safe = batch_is_safe(oracle_levels, source, dests)
            reachable = batch_minimal_path_exists(
                oracle_blocks.unusable, source, dests
            )
            pairs_checked += len(dests)
            for i in range(len(dests)):
                dest = (int(dests[i, 0]), int(dests[i, 1]))
                if bool(got_safe[i]) != bool(want_safe[i]):
                    safety_mismatches.append((source, dest))
                elif got_safe[i] and not reachable[i]:
                    # Distributed state claims safety but no minimal path
                    # exists: a soundness violation, not just staleness.
                    safety_mismatches.append((source, dest))

    bisection = None
    diverged = bool(block_mismatches or esl_mismatches or safety_mismatches)
    if recorder is not None and diverged:
        from repro.obs.replay import replay_events

        bisection = replay_events(recorder.events).divergence

    return ConvergenceReport(
        blocks_ok=not block_mismatches,
        esl_ok=not esl_mismatches,
        safety_ok=not safety_mismatches,
        block_mismatches=block_mismatches,
        esl_mismatches=tuple(esl_mismatches),
        safety_mismatches=tuple(safety_mismatches),
        final_faults=outcome.final_faults,
        pairs_checked=pairs_checked,
        outcome=outcome,
        bisection=bisection,
        alerts=() if observatory is None else tuple(observatory.alerts.firings),
    )
