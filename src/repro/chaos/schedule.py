"""Crash/revive schedules applied while protocols run.

:func:`repro.faults.injection.injection_sequence` orders a static fault
draw; a :class:`ChaosSchedule` goes further: it is a timed script of
``crash`` and ``revive`` events applied at arbitrary simulated ticks, so
membership changes land *mid-protocol* -- exactly the disturbance model
the incremental information update is supposed to absorb.

Schedules are data (sorted tuples of :class:`ChaosEvent`), so they can
be generated from a seed, written into reports, and replayed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.mesh.geometry import Coord
from repro.mesh.topology import Mesh2D

ACTIONS = ("crash", "revive")


@dataclass(frozen=True)
class ChaosEvent:
    """One membership change at an absolute simulated time."""

    time: float
    action: str
    coord: Coord

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(f"unknown action {self.action!r} (use one of {ACTIONS})")
        if self.time < 0:
            raise ValueError(f"cannot schedule at negative time {self.time}")


class ChaosSchedule:
    """A time-sorted sequence of crash/revive events.

    Sorting is stable: events at equal times keep their given order, so a
    crash and a revive scripted for the same tick apply in script order.
    """

    def __init__(self, events: Iterable[ChaosEvent] = ()):
        self.events: tuple[ChaosEvent, ...] = tuple(
            sorted(events, key=lambda e: e.time)
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[ChaosEvent]:
        return iter(self.events)

    @property
    def horizon(self) -> float:
        """The time of the last event (0.0 when empty)."""
        return self.events[-1].time if self.events else 0.0

    def final_faults(self, initial: Iterable[Coord] = ()) -> set[Coord]:
        """The fault set after replaying every event over ``initial``."""
        faults = set(initial)
        for event in self.events:
            if event.action == "crash":
                faults.add(event.coord)
            else:
                faults.discard(event.coord)
        return faults

    @classmethod
    def random(
        cls,
        mesh: Mesh2D,
        rng: np.random.Generator,
        events: int = 10,
        horizon: float = 20.0,
        revive_fraction: float = 0.5,
        forbidden: Sequence[Coord] | set[Coord] | frozenset[Coord] = frozenset(),
    ) -> "ChaosSchedule":
        """A seeded schedule of ``events`` membership changes.

        Victims are distinct nodes outside ``forbidden``; each crash lands
        at an integer tick in ``[1, horizon)`` and is followed (with
        probability ``revive_fraction``, while the event budget lasts) by
        a revival of the same node at a strictly later tick.
        """
        if events < 1:
            raise ValueError("need at least one event")
        if horizon < 2:
            raise ValueError(f"horizon must be >= 2 ticks, got {horizon}")
        blocked = set(forbidden)
        out: list[ChaosEvent] = []
        attempts = 0
        max_attempts = 100 * events + 1000
        while len(out) < events:
            attempts += 1
            if attempts > max_attempts:
                raise RuntimeError(
                    f"could not place {events} chaos events "
                    f"({len(blocked)} nodes excluded in {mesh})"
                )
            flat = int(rng.integers(0, mesh.size))
            coord = (flat // mesh.m, flat % mesh.m)
            if coord in blocked:
                continue
            blocked.add(coord)  # one crash per victim keeps replay simple
            crash_at = float(int(rng.integers(1, int(horizon))))
            out.append(ChaosEvent(crash_at, "crash", coord))
            if len(out) < events and float(rng.random()) < revive_fraction:
                gap = float(int(rng.integers(1, max(2, int(horizon) // 2))))
                out.append(ChaosEvent(crash_at + gap, "revive", coord))
        return cls(out)

    def __repr__(self) -> str:
        return f"ChaosSchedule({len(self.events)} events, horizon={self.horizon:g})"
