"""Per-hop channel fault plans.

A :class:`ChannelFaultPlan` decides, for every message entering a live
channel, whether the channel misbehaves: drop the message, deliver a
duplicate, flip the corruption flag (a detected checksum failure), or add
integer latency jitter.  All randomness flows through one seeded
:class:`numpy.random.Generator`, and the network consults the plan in a
fixed per-send order, so a given (protocol, seed) pair always produces
the same perturbations -- chaos runs are exactly as reproducible as
clean ones.

The default plan is *reliable* (all probabilities zero); the network
only takes the chaos send path when :attr:`ChannelFaultPlan.active` is
true, so existing runs stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class ChannelFaultPlan:
    """Seeded per-hop misbehaviour probabilities.

    ``drop``, ``duplicate`` and ``corrupt`` are independent per-message
    probabilities (a message is first tested for drop; survivors are
    tested for duplication and corruption).  ``jitter`` adds a uniform
    integer number of extra latency units in ``[0, jitter]`` to each
    delivery.  ``seed`` fixes the draw sequence.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    corrupt: float = 0.0
    jitter: int = 0
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "corrupt"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} probability must be in [0, 1], got {value}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")
        self._rng = np.random.default_rng(self.seed)

    @property
    def active(self) -> bool:
        """Whether this plan can perturb anything at all."""
        return (
            self.drop > 0.0
            or self.duplicate > 0.0
            or self.corrupt > 0.0
            or self.jitter > 0
        )

    def reset(self) -> None:
        """Rewind the draw sequence to the seed (for repeated runs)."""
        self._rng = np.random.default_rng(self.seed)

    def draw(self) -> tuple[bool, bool, bool, int]:
        """One per-message verdict: ``(dropped, duplicated, corrupted, extra)``.

        Always consumes exactly three uniforms (plus one integer when
        jitter is enabled) so the verdict stream is independent of the
        verdicts themselves -- dropping a message does not shift the
        randomness seen by later messages.
        """
        u = self._rng.random(3)
        extra = int(self._rng.integers(0, self.jitter + 1)) if self.jitter else 0
        return (
            bool(u[0] < self.drop),
            bool(u[1] < self.duplicate),
            bool(u[2] < self.corrupt),
            extra,
        )

    def describe(self) -> str:
        return (
            f"drop={self.drop:g} duplicate={self.duplicate:g} "
            f"corrupt={self.corrupt:g} jitter={self.jitter} seed={self.seed}"
        )
