"""Text-mode visualization: mesh maps and line plots.

No plotting backend is available offline, so figures render as ASCII line
plots and meshes as character maps -- enough to eyeball block shapes, MCC
staircases, boundary lines, and routed paths in a terminal or a test log.
"""

from repro.viz.ascii_art import render_boundaries, render_mesh, render_scenario
from repro.viz.plots import line_plot

__all__ = ["line_plot", "render_boundaries", "render_mesh", "render_scenario"]
