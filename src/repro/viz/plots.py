"""ASCII line plots for figure series.

Good enough to see curve ordering and crossovers in a terminal: each series
gets a distinct glyph, points are placed on a character canvas with linear
interpolation between consecutive points, and a legend maps glyphs back to
series names.
"""

from __future__ import annotations

from typing import Mapping, Sequence

_GLYPHS = "ox+*#@%&^~"


def _scale(value: float, lo: float, hi: float, steps: int) -> int:
    if hi <= lo:
        return 0
    fraction = (value - lo) / (hi - lo)
    return max(0, min(steps - 1, round(fraction * (steps - 1))))


def line_plot(
    data: Mapping[str, Sequence[tuple[float, float]]],
    title: str = "",
    x_label: str = "x",
    width: int = 72,
    height: int = 20,
) -> str:
    """Plot named series of (x, y) points on a character canvas."""
    if not data:
        raise ValueError("nothing to plot")
    all_points = [p for series in data.values() for p in series]
    if not all_points:
        raise ValueError("all series are empty")
    x_lo = min(p[0] for p in all_points)
    x_hi = max(p[0] for p in all_points)
    y_lo = min(p[1] for p in all_points)
    y_hi = max(p[1] for p in all_points)
    if y_hi == y_lo:  # flat plot: pad the range so the line sits mid-canvas
        y_lo -= 0.5
        y_hi += 0.5

    canvas = [[" " for _ in range(width)] for _ in range(height)]
    for glyph, (name, series) in zip(_GLYPHS, data.items()):
        previous: tuple[int, int] | None = None
        for x, y in series:
            col = _scale(x, x_lo, x_hi, width)
            row = _scale(y, y_lo, y_hi, height)
            if previous is not None:
                # Interpolate between consecutive points so curves read as
                # lines rather than scattered dots.
                pc, pr = previous
                steps = max(abs(col - pc), abs(row - pr))
                for i in range(1, steps):
                    ic = pc + round(i * (col - pc) / steps)
                    ir = pr + round(i * (row - pr) / steps)
                    if canvas[ir][ic] == " ":
                        canvas[ir][ic] = glyph
            canvas[row][col] = glyph
            previous = (col, row)

    lines = []
    if title:
        lines.append(title)
    label_hi = f"{y_hi:.3g}"
    label_lo = f"{y_lo:.3g}"
    margin = max(len(label_hi), len(label_lo))
    for row in range(height - 1, -1, -1):
        if row == height - 1:
            prefix = label_hi.rjust(margin)
        elif row == 0:
            prefix = label_lo.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(prefix + " |" + "".join(canvas[row]))
    lines.append(" " * margin + " +" + "-" * width)
    x_axis = f"{x_lo:g}".ljust(width - 12) + f"{x_hi:g} ({x_label})"
    lines.append(" " * (margin + 2) + x_axis)
    legend = "   ".join(
        f"{glyph}={name}" for glyph, name in zip(_GLYPHS, data.keys())
    )
    lines.append(" " * (margin + 2) + legend)
    return "\n".join(lines)
