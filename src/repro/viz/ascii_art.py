"""Character-map rendering of meshes.

Legend (later marks override earlier ones):

- ``.`` free node
- ``#`` faulty node
- ``x`` disabled node (in a block / MCC but healthy)
- ``*`` node on a routed path
- ``S`` / ``D`` source / destination
- custom ``marks`` override everything

The y axis prints top-down (largest y first) so North is up, matching the
paper's figures.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.mesh.geometry import Coord
from repro.mesh.topology import Mesh2D


def render_mesh(
    mesh: Mesh2D,
    faulty: np.ndarray | None = None,
    blocked: np.ndarray | None = None,
    path: Iterable[Coord] = (),
    source: Coord | None = None,
    dest: Coord | None = None,
    marks: Mapping[Coord, str] | None = None,
    axes: bool = True,
) -> str:
    """Render the mesh as a character map (North up)."""
    grid = [["." for _ in range(mesh.n)] for _ in range(mesh.m)]

    def put(coord: Coord, char: str) -> None:
        x, y = coord
        if mesh.in_bounds(coord):
            grid[y][x] = char

    if blocked is not None:
        for x, y in zip(*np.nonzero(blocked)):
            put((int(x), int(y)), "x")
    if faulty is not None:
        for x, y in zip(*np.nonzero(faulty)):
            put((int(x), int(y)), "#")
    for coord in path:
        put(coord, "*")
    if source is not None:
        put(source, "S")
    if dest is not None:
        put(dest, "D")
    if marks:
        for coord, char in marks.items():
            put(coord, char[0])

    lines = []
    label_width = len(str(mesh.m - 1)) if axes else 0
    for y in range(mesh.m - 1, -1, -1):
        prefix = f"{y:>{label_width}} " if axes else ""
        lines.append(prefix + " ".join(grid[y]))
    if axes:
        # Column labels: last digit of each x, aligned under the columns.
        digits = " ".join(str(x % 10) for x in range(mesh.n))
        lines.append(" " * (label_width + 1) + digits)
    return "\n".join(lines)


def render_scenario(scenario, path: Iterable[Coord] = (), **kwargs) -> str:
    """Render a :class:`~repro.faults.injection.FaultScenario`."""
    return render_mesh(
        scenario.mesh,
        faulty=scenario.blocks.faulty,
        blocked=scenario.blocks.unusable,
        path=path,
        **kwargs,
    )


def render_boundaries(mesh: Mesh2D, blocks, canonical) -> str:
    """Render a block set with its L1/L3 boundary lines overlaid.

    ``canonical`` is a :class:`~repro.core.boundaries.CanonicalBoundaryMap`;
    L1 nodes print as ``-``, L3 as ``|``, nodes on both as ``+`` (the
    exit-intersection corners included).  Visualizes paper Figure 3.
    """
    from repro.core.boundaries import Line

    marks: dict[Coord, str] = {}
    for coord, tags in canonical.annotations.items():
        lines = {tag.line for tag in tags}
        if Line.L1 in lines and Line.L3 in lines:
            marks[coord] = "+"
        elif Line.L1 in lines:
            marks[coord] = "-"
        else:
            marks[coord] = "|"
    return render_mesh(
        mesh,
        faulty=blocks.faulty,
        blocked=blocks.unusable,
        marks=marks,
    )
