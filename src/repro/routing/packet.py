"""Packets: the routed unit shared by the routers and the simulator."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.mesh.geometry import Coord

_packet_ids = itertools.count()


class PacketStatus(enum.Enum):
    IN_FLIGHT = "in-flight"
    DELIVERED = "delivered"
    DROPPED = "dropped"


@dataclass
class Packet:
    """A routed packet with its accumulated hop trace.

    The trace always starts at the source; :meth:`record_hop` appends each
    visited node so a delivered packet's trace is exactly its path.
    """

    source: Coord
    dest: Coord
    payload: Any = None
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    status: PacketStatus = PacketStatus.IN_FLIGHT
    trace: list[Coord] = field(default_factory=list)
    drop_reason: str | None = None

    def __post_init__(self) -> None:
        if not self.trace:
            self.trace.append(self.source)

    @property
    def current(self) -> Coord:
        return self.trace[-1]

    @property
    def hops(self) -> int:
        return len(self.trace) - 1

    def record_hop(self, node: Coord) -> None:
        if self.status is not PacketStatus.IN_FLIGHT:
            raise RuntimeError(f"packet {self.packet_id} is {self.status.value}")
        self.trace.append(node)
        if node == self.dest:
            self.status = PacketStatus.DELIVERED

    def drop(self, reason: str) -> None:
        self.status = PacketStatus.DROPPED
        self.drop_reason = reason

    def __str__(self) -> str:
        return (
            f"Packet#{self.packet_id}({self.source} -> {self.dest}, "
            f"{self.status.value}, {self.hops} hops)"
        )
