"""Global-information reference routers.

These routers see the whole fault map, so they serve as ground truth:

- :func:`shortest_path_bfs` -- unrestricted shortest path (minimal *or*
  detouring), used to measure how much longer non-minimal routes get.
- :class:`MonotoneOracleRouter` -- a *minimal* router that precomputes, per
  (source, destination) pair, which nodes can still reach the destination by
  a monotone path, and only ever steps onto such nodes.  Exact for any
  obstacle shape (rectangular blocks or MCC staircases), it realizes every
  existence verdict of :func:`repro.faults.coverage.minimal_path_exists`
  with an actual path.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.faults.coverage import monotone_reachability
from repro.mesh.frames import Frame
from repro.mesh.geometry import Coord, manhattan_distance
from repro.mesh.topology import Mesh2D
from repro.routing.path import Path
from repro.routing.router import HopRouter, RoutingError, TieBreaker, balanced_tie_breaker


def shortest_path_bfs(mesh: Mesh2D, blocked: np.ndarray, source: Coord, dest: Coord) -> Path | None:
    """Breadth-first shortest path avoiding blocked nodes; ``None`` if cut off."""
    if blocked[source] or blocked[dest]:
        return None
    if source == dest:
        return Path.of([source])
    parent: dict[Coord, Coord] = {source: source}
    queue: deque[Coord] = deque([source])
    while queue:
        current = queue.popleft()
        for neighbor in mesh.neighbors(current):
            if neighbor in parent or blocked[neighbor]:
                continue
            parent[neighbor] = current
            if neighbor == dest:
                nodes = [neighbor]
                while nodes[-1] != source:
                    nodes.append(parent[nodes[-1]])
                nodes.reverse()
                return Path.of(nodes)
            queue.append(neighbor)
    return None


class MonotoneOracleRouter(HopRouter):
    """Minimal routing with full fault knowledge (any obstacle shape).

    Per (source, destination) pair it computes the monotone reachability
    grid *from the destination's side*: reversing a monotone path shows a
    node can reach the destination minimally iff the destination reaches it
    in the mirrored problem.  Every hop then steps to a preferred neighbour
    that still has that property, so the delivered path is always minimal.
    """

    def __init__(
        self,
        mesh: Mesh2D,
        blocked: np.ndarray,
        tie_breaker: TieBreaker = balanced_tie_breaker,
    ):
        super().__init__(mesh)
        self.blocked = blocked
        self.tie_breaker = tie_breaker
        self._cache: tuple[Coord, Coord, Frame, np.ndarray] | None = None

    def _can_reach_dest(self, node: Coord, source: Coord, dest: Coord) -> bool:
        """Whether a minimal path from ``node`` to ``dest`` exists, reading
        the cached reverse-reachability grid."""
        cache = self._cache
        if cache is None or cache[0] != source or cache[1] != dest:
            frame = Frame.for_pair(dest, source)  # reversed: grid grows from dest
            reach = monotone_reachability(self.blocked, dest, source)
            self._cache = (source, dest, frame, reach)
            cache = self._cache
        _, _, frame, reach = cache
        local = frame.to_local(node)
        if not (0 <= local[0] < reach.shape[0] and 0 <= local[1] < reach.shape[1]):
            return False
        return bool(reach[local])

    def next_hop(self, current: Coord, dest: Coord) -> Coord:
        raise NotImplementedError(
            "MonotoneOracleRouter needs the route() entry point (per-pair cache)"
        )

    def route(self, source: Coord, dest: Coord, max_hops: int | None = None) -> Path:
        self.mesh.require_in_bounds(source)
        self.mesh.require_in_bounds(dest)
        if not self._can_reach_dest(source, source, dest):
            raise RoutingError(f"no minimal path from {source} to {dest}")
        trace = [source]
        current = source
        while current != dest:
            candidates = [
                direction
                for direction in self.mesh.preferred_directions(current, dest)
                if not self.blocked[direction.step(current)]
                and self._can_reach_dest(direction.step(current), source, dest)
            ]
            if not candidates:
                raise RoutingError(
                    f"oracle invariant violated at {current} toward {dest}", partial=trace
                )
            current = self.tie_breaker(current, dest, candidates).step(current)
            trace.append(current)
        path = Path.of(trace)
        assert path.hops == manhattan_distance(source, dest)
        return path
