"""Channel-dependency-graph deadlock analysis.

The paper leaves deadlock to its citations ([1], [6], [13] handle wormhole
deadlock with virtual channels); a routing *library* should still let a user
check the classical Dally-Seitz condition: a routing function is
deadlock-free on wormhole networks iff its **channel dependency graph**
(CDG) is acyclic.  Nodes of the CDG are directed links; there is an edge
from link `a -> b` when some routed packet can hold `a` while requesting
`b`, i.e. the routing function forwards some (current, destination) state
over `a` and then over `b`.

:func:`channel_dependency_graph` enumerates dependencies by driving a hop
function over every (source, destination) pair's actual route --
appropriate for the deterministic/one-choice routers here.  For adaptive
routers it explores *every* choice the router could make at each node when
``expand_choices`` provides them.

Classical results this module lets the tests re-establish on actual
machinery:

- XY (dimension-ordered) routing is deadlock-free (no y-to-x dependency);
- fully adaptive minimal routing has CDG cycles (the four "turn cycles");
- quadrant-restricted monotone routing (every Wu-protocol route for a fixed
  destination quadrant) only ever turns between +x and +y, so its CDG is
  acyclic -- per-quadrant traffic cannot deadlock.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.mesh.geometry import Coord, Direction
from repro.mesh.topology import Mesh2D
from repro.routing.path import Path

Link = tuple[Coord, Coord]

#: Yields the candidate next hops of some router state (current, dest).
ChoiceExpander = Callable[[Coord, Coord], Iterable[Coord]]


def dependencies_from_paths(paths: Iterable[Path]) -> set[tuple[Link, Link]]:
    """CDG edges contributed by concrete routed paths."""
    edges: set[tuple[Link, Link]] = set()
    for path in paths:
        hops = list(zip(path.nodes, path.nodes[1:]))
        for held, requested in zip(hops, hops[1:]):
            edges.add((held, requested))
    return edges


def dependencies_from_choices(
    mesh: Mesh2D,
    expander: ChoiceExpander,
    pairs: Iterable[tuple[Coord, Coord]],
) -> set[tuple[Link, Link]]:
    """CDG edges from exploring every routing choice for the given pairs.

    Walks the choice DAG of each (source, destination) pair: whenever the
    expander allows hop ``u -> v`` followed by ``v -> w``, the dependency
    ``(u,v) -> (v,w)`` is recorded.  States are memoized per destination.
    """
    edges: set[tuple[Link, Link]] = set()
    for source, dest in pairs:
        seen: set[Coord] = set()
        frontier = [source]
        while frontier:
            current = frontier.pop()
            if current in seen or current == dest:
                continue
            seen.add(current)
            for nxt in expander(current, dest):
                for onward in expander(nxt, dest) if nxt != dest else ():
                    edges.add(((current, nxt), (nxt, onward)))
                frontier.append(nxt)
    return edges


def find_cycle(edges: set[tuple[Link, Link]]) -> list[Link] | None:
    """A cycle in the dependency graph, or ``None`` if acyclic.

    Iterative DFS with colour marking; returns the cycle's links in order.
    """
    graph: dict[Link, list[Link]] = {}
    for held, requested in edges:
        graph.setdefault(held, []).append(requested)
        graph.setdefault(requested, [])

    WHITE, GREY, BLACK = 0, 1, 2
    color: dict[Link, int] = {link: WHITE for link in graph}
    parent: dict[Link, Link] = {}

    for root in graph:
        if color[root] != WHITE:
            continue
        stack: list[tuple[Link, int]] = [(root, 0)]
        color[root] = GREY
        while stack:
            node, index = stack[-1]
            successors = graph[node]
            if index < len(successors):
                stack[-1] = (node, index + 1)
                successor = successors[index]
                if color[successor] == GREY:
                    # Found a cycle: unwind it from the stack.
                    cycle = [successor, node]
                    cursor = node
                    while cursor != successor:
                        cursor = parent[cursor]
                        cycle.append(cursor)
                    cycle.reverse()
                    return cycle[:-1]
                if color[successor] == WHITE:
                    color[successor] = GREY
                    parent[successor] = node
                    stack.append((successor, 0))
            else:
                color[node] = BLACK
                stack.pop()
    return None


def is_deadlock_free(edges: set[tuple[Link, Link]]) -> bool:
    """Dally-Seitz: acyclic channel dependency graph."""
    return find_cycle(edges) is None


# ----------------------------------------------------------------------
# Ready-made choice expanders
# ----------------------------------------------------------------------


def xy_choices(mesh: Mesh2D) -> ChoiceExpander:
    """Dimension-ordered routing: x to completion, then y."""

    def expand(current: Coord, dest: Coord) -> list[Coord]:
        if current == dest:
            return []
        if dest[0] != current[0]:
            direction = Direction.EAST if dest[0] > current[0] else Direction.WEST
        else:
            direction = Direction.NORTH if dest[1] > current[1] else Direction.SOUTH
        nxt = direction.step(current)
        return [nxt] if mesh.in_bounds(nxt) else []

    return expand


def fully_adaptive_minimal_choices(mesh: Mesh2D) -> ChoiceExpander:
    """Any preferred neighbour (the unrestricted adaptive strawman)."""

    def expand(current: Coord, dest: Coord) -> list[Coord]:
        return mesh.preferred_neighbors(current, dest)

    return expand
