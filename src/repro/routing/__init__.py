"""Packet-level routing substrate.

- :mod:`repro.routing.path` -- hop-by-hop path records with validity and
  minimality checks.
- :mod:`repro.routing.packet` -- packets as routed units (also used by the
  distributed simulator protocols).
- :mod:`repro.routing.router` -- the hop-function router driver and the
  greedy adaptive baseline (which demonstrably fails without boundary
  information, reproducing the paper's Figure 3 (a) discussion).
- :mod:`repro.routing.oracle` -- global-information reference routers: plain
  BFS shortest paths and the monotone-DP-guided minimal router (exact for
  any obstacle shape, used for the MCC model and as ground truth).
- :mod:`repro.routing.detour` -- the non-minimal guaranteed-delivery
  baseline: XY routing that rounds faulty blocks along their perimeter
  rings (the f-ring lineage the paper contrasts itself with).
"""

from repro.routing.detour import DetourRouter
from repro.routing.packet import Packet, PacketStatus
from repro.routing.path import Path
from repro.routing.router import GreedyAdaptiveRouter, HopRouter, RoutingError
from repro.routing.oracle import MonotoneOracleRouter, shortest_path_bfs

__all__ = [
    "DetourRouter",
    "GreedyAdaptiveRouter",
    "HopRouter",
    "MonotoneOracleRouter",
    "Packet",
    "PacketStatus",
    "Path",
    "RoutingError",
    "shortest_path_bfs",
]
