"""Non-minimal fault-tolerant baseline: XY routing with block detours.

The fault-tolerant routing literature the paper builds on (Boppana &
Chalasani's f-rings and successors) delivers packets *non-minimally*:
dimension-ordered (XY) routing that, on hitting a faulty block, walks around
the block's perimeter and resumes.  This router provides that baseline so
the paper's minimal-routing results can be contrasted with what
guaranteed-delivery-with-detours costs in hops.

Mechanics: the router walks toward a stack of waypoints (initially just the
destination) in dimension order, x before y.  When the next hop would enter
a block, it pushes two detour waypoints -- climb to the block's ring on the
side nearer the current target, then cross to the block's far side along
that ring -- and continues; after the crossing the normal XY walk resumes
from the ring, so a block straddling the target's column never causes the
back-and-forth oscillation a "descend back to the original row" rule would.

Correctness relies on two properties of Definition 1's blocks, both enforced
elsewhere in this library: blocks are rectangles, and distinct blocks are
Chebyshev-separated by at least 2, so a block's one-node-away perimeter ring
never runs through another block (property test ``test_blocks_never_touch``).
A ring can still fall off the mesh when a block touches the mesh edge; the
router then raises :class:`RoutingError` -- the model's known limitation.
"""

from __future__ import annotations

from repro.faults.blocks import BlockSet
from repro.mesh.geometry import Coord, Direction, manhattan_distance
from repro.mesh.topology import Mesh2D
from repro.obs import Tracer, get_tracer
from repro.routing.path import Path
from repro.routing.router import RoutingError


class DetourRouter:
    """XY routing with perimeter traversal around faulty blocks.

    Not a :class:`~repro.routing.router.HopRouter`: the detour needs a small
    waypoint stack, so the route is produced whole.  Every decision still
    uses only local information plus the blocking block's corner coordinates
    -- exactly what the boundary-information model distributes.
    """

    def __init__(self, mesh: Mesh2D, blocks: BlockSet, tracer: Tracer | None = None):
        self.mesh = mesh
        self.blocks = blocks
        self.tracer = tracer

    def _tracer(self) -> Tracer:
        return self.tracer if self.tracer is not None else get_tracer()

    def route(self, source: Coord, dest: Coord) -> Path:
        self.mesh.require_in_bounds(source)
        self.mesh.require_in_bounds(dest)
        if self.blocks.is_unusable(source) or self.blocks.is_unusable(dest):
            raise RoutingError(f"endpoint inside a faulty block: {source} -> {dest}")

        trc = self._tracer()
        tracing = trc.enabled
        if tracing:
            trc.emit("route_start", router=type(self).__name__, source=source,
                     dest=dest, distance=manhattan_distance(source, dest))
        trace = [source]
        targets = [dest]
        guard = 8 * self.mesh.size + 16  # every detour ring is finite
        steps = 0
        while targets:
            steps += 1
            if steps > guard:
                raise self._fail("detour routing failed to converge", trace, dest)
            current = trace[-1]
            target = targets[-1]
            if current == target:
                targets.pop()
                continue
            direction = _xy_direction(current, target)
            nxt = direction.step(current)
            if not self.mesh.in_bounds(nxt):
                raise self._fail(f"detour walk left the mesh at {current}", trace, dest)
            if not self.blocks.is_unusable(nxt):
                if tracing:
                    rule = "xy" if target == dest else "ring"
                    trc.emit("hop", at=current, to=nxt, dest=dest,
                             index=len(trace) - 1, rule=rule)
                    if manhattan_distance(nxt, dest) > manhattan_distance(current, dest):
                        trc.emit("detour", at=current, to=nxt, dest=dest)
                trace.append(nxt)
                continue
            if tracing:
                trc.emit("block_hit", at=current, blocked=nxt, dest=dest,
                         direction=direction.name)
            try:
                climb, crossing = self._detour_waypoints(current, direction, target)
            except RoutingError as error:
                if len(error.partial) < len(trace):
                    error.partial = list(trace)
                if tracing:
                    trc.emit("route_failed", at=current, dest=dest,
                             reason=str(error), partial=error.partial)
                raise
            targets.append(crossing)
            targets.append(climb)
        path = Path.of(trace)
        if tracing:
            trc.emit("route_end", source=source, dest=dest, hops=path.hops,
                     minimal=path.is_minimal, detours=path.detours)
        return path

    def _fail(self, reason: str, trace: list[Coord], dest: Coord) -> RoutingError:
        error = RoutingError(reason, partial=trace)
        trc = self._tracer()
        if trc.enabled:
            trc.emit("route_failed", at=trace[-1], dest=dest,
                     reason=reason, partial=trace)
        return error

    # ------------------------------------------------------------------
    def _detour_waypoints(
        self, current: Coord, blocked_dir: Direction, target: Coord
    ) -> tuple[Coord, Coord]:
        """(climb-to-ring, cross-to-far-side) waypoints around the block
        ahead of ``current`` in ``blocked_dir``."""
        block = self.blocks.block_at(blocked_dir.step(current))
        assert block is not None
        rect = block.rect

        if blocked_dir.is_horizontal:
            far_x = rect.xmax + 1 if blocked_dir is Direction.EAST else rect.xmin - 1
            if not 0 <= far_x < self.mesh.n:
                raise RoutingError(
                    f"block {rect} reaches the mesh edge; no far side to round to"
                )
            side = _pick_ring(current[1], target[1], rect.ymax + 1, rect.ymin - 1, self.mesh.m)
            return (current[0], side), (far_x, side)

        far_y = rect.ymax + 1 if blocked_dir is Direction.NORTH else rect.ymin - 1
        if not 0 <= far_y < self.mesh.m:
            raise RoutingError(
                f"block {rect} reaches the mesh edge; no far side to round to"
            )
        side = _pick_ring(current[0], target[0], rect.xmax + 1, rect.xmin - 1, self.mesh.n)
        return (side, current[1]), (side, far_y)


def _xy_direction(current: Coord, target: Coord) -> Direction:
    """Dimension-ordered next direction: x first, then y."""
    if target[0] > current[0]:
        return Direction.EAST
    if target[0] < current[0]:
        return Direction.WEST
    return Direction.NORTH if target[1] > current[1] else Direction.SOUTH


def _pick_ring(position: int, target_position: int, high: int, low: int, limit: int) -> int:
    """The ring coordinate to round a block on.

    Prefer the side toward the current target (cheaper detour), falling back
    to the other side at a mesh edge; raise when both rings are outside the
    mesh (the block spans the full cross-section).
    """
    preferred = high if target_position >= position else low
    fallback = low if preferred == high else high
    if 0 <= preferred < limit:
        return preferred
    if 0 <= fallback < limit:
        return fallback
    raise RoutingError(
        f"block rings {low} and {high} both fall off the mesh; "
        "detour routing cannot round an edge-spanning block"
    )
