"""Router driver and the greedy adaptive baseline.

A router is a *hop function*: given the current node and the destination it
names the next node, using only whatever information the model grants it.
:class:`HopRouter` supplies the shared drive loop; subclasses implement
:meth:`HopRouter.next_hop`.

:class:`GreedyAdaptiveRouter` is the paper's strawman: "any minimal routing
that forwards the packet to a preferred neighbor".  Without boundary
information it can enter a region from which every continuation is blocked
(the paper's Figure 3 (a) discussion); the test-suite exhibits exactly that
failure and shows Wu's protocol avoiding it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.mesh.geometry import Coord, Direction, manhattan_distance
from repro.mesh.topology import Mesh2D
from repro.obs import Tracer, get_tracer
from repro.obs.prof import get_profiler
from repro.routing.path import Path


class RoutingError(RuntimeError):
    """Raised when a router cannot make a legal move.

    ``partial`` carries the trace up to the failure for diagnostics.
    """

    def __init__(self, message: str, partial: list[Coord] | None = None):
        super().__init__(message)
        self.partial = partial or []


#: A tie-breaker picks among equally legal candidate directions.
TieBreaker = Callable[[Coord, Coord, list[Direction]], Direction]


def balanced_tie_breaker(current: Coord, dest: Coord, candidates: list[Direction]) -> Direction:
    """Prefer the dimension with the larger remaining offset.

    Keeps the packet near the diagonal, which maximizes later adaptivity;
    deterministic so experiments are reproducible.
    """
    dx = abs(dest[0] - current[0])
    dy = abs(dest[1] - current[1])
    horizontal_first = dx >= dy
    for direction in candidates:
        if direction.is_horizontal == horizontal_first:
            return direction
    return candidates[0]


def x_first_tie_breaker(current: Coord, dest: Coord, candidates: list[Direction]) -> Direction:
    """Dimension-ordered (XY) choice; with no faults this is e-cube routing."""
    for direction in candidates:
        if direction.is_horizontal:
            return direction
    return candidates[0]


class HopRouter(abc.ABC):
    """Shared drive loop over an abstract hop function.

    ``tracer`` (or, when None, the globally installed tracer) receives
    ``route_start`` / ``hop`` / ``detour`` / ``route_end`` events while
    driving; :meth:`next_hop` implementations may leave a justification for
    the current hop in ``self._hop_note`` and it is attached to the ``hop``
    event.  With the default no-op tracer the loop pays one ``enabled``
    check per hop.
    """

    def __init__(self, mesh: Mesh2D, tracer: Tracer | None = None):
        self.mesh = mesh
        self.tracer = tracer
        self._hop_note: dict | None = None

    @abc.abstractmethod
    def next_hop(self, current: Coord, dest: Coord) -> Coord:
        """The next node toward ``dest``; raises :class:`RoutingError` if stuck."""

    def _tracer(self) -> Tracer:
        return self.tracer if self.tracer is not None else get_tracer()

    def route(self, source: Coord, dest: Coord, max_hops: int | None = None) -> Path:
        """Drive the hop function from source to destination.

        ``max_hops`` defaults to ``D(source, dest) + 2 * mesh.size`` as a
        runaway guard; minimal routers take exactly ``D`` hops because every
        move is to a preferred neighbour.

        A :class:`RoutingError` raised by :meth:`next_hop` is re-raised with
        ``partial`` widened to the full trace accumulated so far (not just
        the stuck node), and the failure is reported as a ``route_failed``
        event carrying that trace.
        """
        self.mesh.require_in_bounds(source)
        self.mesh.require_in_bounds(dest)
        limit = max_hops if max_hops is not None else (
            manhattan_distance(source, dest) + 2 * self.mesh.size
        )
        trc = self._tracer()
        tracing = trc.enabled
        prof = get_profiler()
        if prof.enabled:
            prof.count("router.routes")
        if tracing:
            trc.emit(
                "route_start",
                router=type(self).__name__,
                source=source,
                dest=dest,
                distance=manhattan_distance(source, dest),
            )
        trace = [source]
        current = source
        while current != dest:
            if len(trace) - 1 >= limit:
                error = RoutingError(f"hop limit {limit} exceeded", partial=trace)
                if tracing:
                    trc.emit("route_failed", at=current, dest=dest,
                             reason=str(error), partial=trace)
                raise error
            self._hop_note = None
            try:
                nxt = self.next_hop(current, dest)
            except RoutingError as error:
                if len(error.partial) < len(trace):
                    error.partial = list(trace)
                if tracing:
                    trc.emit("route_failed", at=current, dest=dest,
                             reason=str(error), partial=error.partial)
                raise
            if tracing:
                note = self._hop_note or {}
                trc.emit("hop", at=current, to=nxt, dest=dest,
                         index=len(trace) - 1, **note)
                if manhattan_distance(nxt, dest) > manhattan_distance(current, dest):
                    trc.emit("detour", at=current, to=nxt, dest=dest)
            trace.append(nxt)
            current = nxt
        if prof.enabled:
            prof.count("router.steps", len(trace) - 1)
        path = Path.of(trace)
        if tracing:
            trc.emit("route_end", source=source, dest=dest, hops=path.hops,
                     minimal=path.is_minimal, detours=path.detours)
        return path


@dataclass
class _GreedyConfig:
    tie_breaker: TieBreaker = balanced_tie_breaker


class GreedyAdaptiveRouter(HopRouter):
    """Forward to any free preferred neighbour; no fault information.

    Minimal when it succeeds (every hop decreases the distance) but may get
    stuck against a block: that failure mode is exactly why the paper
    distributes boundary information.
    """

    def __init__(
        self,
        mesh: Mesh2D,
        blocked: np.ndarray,
        tie_breaker: TieBreaker = balanced_tie_breaker,
        tracer: Tracer | None = None,
    ):
        super().__init__(mesh, tracer=tracer)
        self.blocked = blocked
        self.tie_breaker = tie_breaker

    def next_hop(self, current: Coord, dest: Coord) -> Coord:
        preferred = self.mesh.preferred_directions(current, dest)
        candidates = [
            direction
            for direction in preferred
            if not self.blocked[direction.step(current)]
        ]
        trc = self._tracer()
        if trc.enabled:
            for direction in preferred:
                if direction not in candidates:
                    trc.emit("block_hit", at=current, blocked=direction.step(current),
                             dest=dest, direction=direction.name)
            self._hop_note = {"rule": "greedy", "candidates": len(candidates)}
        if not candidates:
            raise RoutingError(
                f"greedy routing stuck at {current} toward {dest}", partial=[current]
            )
        return self.tie_breaker(current, dest, candidates).step(current)
