"""Router driver and the greedy adaptive baseline.

A router is a *hop function*: given the current node and the destination it
names the next node, using only whatever information the model grants it.
:class:`HopRouter` supplies the shared drive loop; subclasses implement
:meth:`HopRouter.next_hop`.

:class:`GreedyAdaptiveRouter` is the paper's strawman: "any minimal routing
that forwards the packet to a preferred neighbor".  Without boundary
information it can enter a region from which every continuation is blocked
(the paper's Figure 3 (a) discussion); the test-suite exhibits exactly that
failure and shows Wu's protocol avoiding it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.mesh.geometry import Coord, Direction, manhattan_distance
from repro.mesh.topology import Mesh2D
from repro.routing.path import Path


class RoutingError(RuntimeError):
    """Raised when a router cannot make a legal move.

    ``partial`` carries the trace up to the failure for diagnostics.
    """

    def __init__(self, message: str, partial: list[Coord] | None = None):
        super().__init__(message)
        self.partial = partial or []


#: A tie-breaker picks among equally legal candidate directions.
TieBreaker = Callable[[Coord, Coord, list[Direction]], Direction]


def balanced_tie_breaker(current: Coord, dest: Coord, candidates: list[Direction]) -> Direction:
    """Prefer the dimension with the larger remaining offset.

    Keeps the packet near the diagonal, which maximizes later adaptivity;
    deterministic so experiments are reproducible.
    """
    dx = abs(dest[0] - current[0])
    dy = abs(dest[1] - current[1])
    horizontal_first = dx >= dy
    for direction in candidates:
        if direction.is_horizontal == horizontal_first:
            return direction
    return candidates[0]


def x_first_tie_breaker(current: Coord, dest: Coord, candidates: list[Direction]) -> Direction:
    """Dimension-ordered (XY) choice; with no faults this is e-cube routing."""
    for direction in candidates:
        if direction.is_horizontal:
            return direction
    return candidates[0]


class HopRouter(abc.ABC):
    """Shared drive loop over an abstract hop function."""

    def __init__(self, mesh: Mesh2D):
        self.mesh = mesh

    @abc.abstractmethod
    def next_hop(self, current: Coord, dest: Coord) -> Coord:
        """The next node toward ``dest``; raises :class:`RoutingError` if stuck."""

    def route(self, source: Coord, dest: Coord, max_hops: int | None = None) -> Path:
        """Drive the hop function from source to destination.

        ``max_hops`` defaults to ``D(source, dest) + 2 * mesh.size`` as a
        runaway guard; minimal routers take exactly ``D`` hops because every
        move is to a preferred neighbour.
        """
        self.mesh.require_in_bounds(source)
        self.mesh.require_in_bounds(dest)
        limit = max_hops if max_hops is not None else (
            manhattan_distance(source, dest) + 2 * self.mesh.size
        )
        trace = [source]
        current = source
        while current != dest:
            if len(trace) - 1 >= limit:
                raise RoutingError(f"hop limit {limit} exceeded", partial=trace)
            current = self.next_hop(current, dest)
            trace.append(current)
        return Path.of(trace)


@dataclass
class _GreedyConfig:
    tie_breaker: TieBreaker = balanced_tie_breaker


class GreedyAdaptiveRouter(HopRouter):
    """Forward to any free preferred neighbour; no fault information.

    Minimal when it succeeds (every hop decreases the distance) but may get
    stuck against a block: that failure mode is exactly why the paper
    distributes boundary information.
    """

    def __init__(
        self,
        mesh: Mesh2D,
        blocked: np.ndarray,
        tie_breaker: TieBreaker = balanced_tie_breaker,
    ):
        super().__init__(mesh)
        self.blocked = blocked
        self.tie_breaker = tie_breaker

    def next_hop(self, current: Coord, dest: Coord) -> Coord:
        candidates = [
            direction
            for direction in self.mesh.preferred_directions(current, dest)
            if not self.blocked[direction.step(current)]
        ]
        if not candidates:
            raise RoutingError(
                f"greedy routing stuck at {current} toward {dest}", partial=[current]
            )
        return self.tie_breaker(current, dest, candidates).step(current)
