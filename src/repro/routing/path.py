"""Path records for routed packets."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.mesh.geometry import Coord, Direction, manhattan_distance


@dataclass(frozen=True)
class Path:
    """An ordered node sequence from source to destination.

    Immutable; construction validates hop-by-hop adjacency so an invalid
    path can never be represented.
    """

    nodes: tuple[Coord, ...]

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("a path needs at least one node")
        for a, b in zip(self.nodes, self.nodes[1:]):
            if manhattan_distance(a, b) != 1:
                raise ValueError(f"non-adjacent hop {a} -> {b}")

    @staticmethod
    def of(nodes: Sequence[Coord]) -> "Path":
        return Path(tuple(nodes))

    @property
    def source(self) -> Coord:
        return self.nodes[0]

    @property
    def dest(self) -> Coord:
        return self.nodes[-1]

    @property
    def hops(self) -> int:
        return len(self.nodes) - 1

    @property
    def is_minimal(self) -> bool:
        """True iff the path length equals the Manhattan distance."""
        return self.hops == manhattan_distance(self.source, self.dest)

    @property
    def is_sub_minimal(self) -> bool:
        """True iff the path takes exactly one detour (length ``D + 2``)."""
        return self.hops == manhattan_distance(self.source, self.dest) + 2

    @property
    def detours(self) -> int:
        """Number of hops that moved *away* from the destination."""
        count = 0
        for a, b in zip(self.nodes, self.nodes[1:]):
            if manhattan_distance(b, self.dest) > manhattan_distance(a, self.dest):
                count += 1
        return count

    def directions(self) -> list[Direction]:
        """The hop directions along the path."""
        return [Direction.between(a, b) for a, b in zip(self.nodes, self.nodes[1:])]

    def avoids(self, blocked: np.ndarray) -> bool:
        """True iff no node of the path is blocked."""
        return not any(bool(blocked[node]) for node in self.nodes)

    def concat(self, other: "Path") -> "Path":
        """Join two paths sharing an endpoint (``self.dest == other.source``)."""
        if self.dest != other.source:
            raise ValueError(f"cannot join: {self.dest} != {other.source}")
        return Path(self.nodes + other.nodes[1:])

    def __iter__(self) -> Iterator[Coord]:
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def __str__(self) -> str:
        kind = "minimal" if self.is_minimal else f"{self.detours}-detour"
        return f"Path({self.source} -> {self.dest}, {self.hops} hops, {kind})"
