"""Benchmark runner: time workloads, persist ``BENCH_<n>.json``, compare.

Timing protocol, per workload:

1. ``setup(config)`` builds the state (untimed); when a workload has no
   setup its ``run`` receives the :class:`BenchConfig` itself;
2. one untimed warm-up run;
3. ``repeats`` timed runs with **no tracer installed**, so wall-times
   measure the algorithm, not the instrumentation;
4. one extra run under a :class:`~repro.obs.metrics.MetricsSink` tracer
   and a :class:`~repro.obs.prof.Profiler`, attaching deterministic
   trace-metric summaries (with p50/p95/p99) and hot-path counters.

Wall-times land in a percentile histogram, so every ``BENCH_<n>.json``
carries p50/p95/p99 per workload; :func:`compare_results` gates the p50
against a baseline file with a relative tolerance.
"""

from __future__ import annotations

import datetime
import json
import pathlib
import platform
import re
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.bench.registry import Workload
from repro.obs import MetricsSink, Tracer, use_tracer
from repro.obs.metrics import Histogram
from repro.obs.prof import Profiler, use_profiler

_BENCH_NAME = re.compile(r"^BENCH_(\d+)\.json$")


@dataclass(frozen=True)
class BenchConfig:
    """Knobs for one ``repro bench`` invocation."""

    quick: bool = False
    repeats: int | None = None  # None: per-workload default
    seed: int = 2002
    backend: str = "numpy"  # array API backend for batched-engine workloads


def run_benchmarks(
    workloads: list[Workload],
    config: BenchConfig,
    progress: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Run every workload under the timing protocol; JSON-ready result."""
    say = progress or (lambda message: None)
    results: dict[str, Any] = {}
    for workload in workloads:
        say(f"[{workload.kind}] {workload.name}: setup")
        state = workload.setup(config) if workload.setup else config
        workload.run(state)  # warm-up, untimed
        repeats = config.repeats or (
            workload.quick_repeats if config.quick else workload.repeats
        )
        wall = Histogram()
        for _ in range(repeats):
            t0 = time.perf_counter()
            workload.run(state)
            wall.observe(time.perf_counter() - t0)
        sink = MetricsSink()
        profiler = Profiler()
        with use_tracer(Tracer(sink)), use_profiler(profiler):
            workload.run(state)
        p50 = wall.percentile(50.0)
        say(
            f"[{workload.kind}] {workload.name}: x{repeats}  "
            f"p50 {0.0 if p50 is None else p50 * 1e3:.2f}ms"
        )
        results[workload.name] = {
            "kind": workload.kind,
            "description": workload.description,
            "repeats": repeats,
            "wall_time_s": wall.summary(),
            "metrics": sink.snapshot(),
            "hot_counters": dict(sorted(profiler.hot.items())),
        }
    return {
        "schema": 1,
        "generated_at": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "quick": config.quick,
        "seed": config.seed,
        "workloads": results,
    }


# ----------------------------------------------------------------------
def next_bench_path(root: str | pathlib.Path = ".") -> pathlib.Path:
    """The next free ``BENCH_<n>.json`` under ``root`` (the perf
    trajectory is append-only: existing files are never overwritten)."""
    root = pathlib.Path(root)
    taken = [
        int(match.group(1))
        for path in root.glob("BENCH_*.json")
        if (match := _BENCH_NAME.match(path.name))
    ]
    return root / f"BENCH_{max(taken, default=0) + 1}.json"


def write_result(result: dict[str, Any], path: str | pathlib.Path) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result, indent=2) + "\n")
    return path


def load_result(path: str | pathlib.Path) -> dict[str, Any]:
    return json.loads(pathlib.Path(path).read_text())


# ----------------------------------------------------------------------
def compare_results(
    new: dict[str, Any], old: dict[str, Any], tolerance: float = 0.15
) -> tuple[list[str], list[str]]:
    """Gate ``new`` against the baseline ``old``.

    A workload regresses when its p50 wall-time exceeds the baseline's by
    more than ``tolerance`` (relative: 0.15 allows up to 1.15x).  Returns
    ``(report_lines, regressed_names)`` -- the caller decides the exit
    code.  Workloads present in only one file are reported as ``added`` /
    ``removed`` (with whatever p50 is known) but never regress: adding or
    retiring a workload must not break the gate.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be >= 0")

    def p50_of(entry: dict[str, Any]) -> float | None:
        return (entry.get("wall_time_s") or {}).get("p50")

    def with_p50(entry: dict[str, Any]) -> str:
        p50 = p50_of(entry)
        return "no wall-time recorded" if p50 is None else f"p50 {p50 * 1e3:.2f}ms"

    old_workloads = old.get("workloads", {})
    new_workloads = new.get("workloads", {})
    lines: list[str] = []
    regressed: list[str] = []
    for name in sorted(set(old_workloads) | set(new_workloads)):
        if name not in new_workloads:
            lines.append(
                f"- {name}: removed (in baseline only, {with_p50(old_workloads[name])})"
            )
            continue
        if name not in old_workloads:
            lines.append(
                f"+ {name}: added (no baseline, {with_p50(new_workloads[name])})"
            )
            continue
        old_p50 = p50_of(old_workloads[name])
        new_p50 = p50_of(new_workloads[name])
        if not old_p50 or new_p50 is None:
            lines.append(f"~ {name}: no comparable wall-time")
            continue
        ratio = new_p50 / old_p50
        verdict = "ok"
        if ratio > 1.0 + tolerance:
            verdict = "REGRESSED"
            regressed.append(name)
        lines.append(
            f"{'!' if verdict == 'REGRESSED' else ' '} {name}: "
            f"p50 {old_p50 * 1e3:.2f}ms -> {new_p50 * 1e3:.2f}ms "
            f"(x{ratio:.2f}, tolerance x{1.0 + tolerance:.2f}) {verdict}"
        )
    return lines, regressed
