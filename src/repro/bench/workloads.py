"""Built-in benchmark workloads: the substrate's hot paths plus
figure-scale macro sweeps.

Every workload is deterministic under its seed and scales down under
``--quick`` (CI smoke) while keeping the same shape, so quick and full
runs regress on the same code paths.  Discovery adds more workloads from
``benchmarks/bench_*.py`` (see :mod:`repro.bench.registry`).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.bench.registry import BenchRegistry


def _scenario(side: int, fault_count: int, seed: int):
    from repro.faults.injection import uniform_faults
    from repro.mesh.topology import Mesh2D

    mesh = Mesh2D(side, side)
    rng = np.random.default_rng(seed)
    faults = uniform_faults(mesh, fault_count, rng, forbidden={mesh.center})
    return mesh, faults, rng


def _size(config: Any, full: int, quick: int) -> int:
    return quick if getattr(config, "quick", False) else full


def builtin_registry() -> BenchRegistry:
    """A fresh registry holding every built-in workload."""
    registry = BenchRegistry()

    # -- micro: one substrate operation per run -----------------------
    def esl_setup(config):
        from repro.faults.blocks import build_faulty_blocks

        side = _size(config, 120, 64)
        mesh, faults, _ = _scenario(side, side * side // 200, config.seed)
        return mesh, build_faulty_blocks(mesh, faults).unusable

    @registry.register(
        "micro.esl_compute", setup=esl_setup,
        description="full ESL grid from the blocked-node grid (vectorised scans)",
    )
    def run_esl(state):
        from repro.core.safety import compute_safety_levels

        mesh, blocked = state
        return compute_safety_levels(mesh, blocked)

    def faults_setup(config):
        side = _size(config, 120, 64)
        mesh, faults, _ = _scenario(side, side * side // 200, config.seed)
        return mesh, faults

    @registry.register(
        "micro.block_formation", setup=faults_setup,
        description="Definition 1 fixpoint + component extraction",
    )
    def run_blocks(state):
        from repro.faults.blocks import build_faulty_blocks

        mesh, faults = state
        return build_faulty_blocks(mesh, faults)

    @registry.register(
        "micro.mcc_formation", setup=faults_setup,
        description="Definition 2 labelling (type one) + component extraction",
    )
    def run_mccs(state):
        from repro.faults.mcc import MCCType, build_mccs

        mesh, faults = state
        return build_mccs(mesh, faults, MCCType.TYPE_ONE)

    def route_setup(config):
        from repro.core.boundaries import BoundaryMap
        from repro.core.conditions import is_safe
        from repro.core.routing import WuRouter
        from repro.core.safety import compute_safety_levels
        from repro.faults.blocks import build_faulty_blocks

        side = _size(config, 120, 64)
        mesh, faults, _ = _scenario(side, side * side // 250, config.seed)
        blocks = build_faulty_blocks(mesh, faults)
        levels = compute_safety_levels(mesh, blocks.unusable)
        router = WuRouter(mesh, blocks, boundary_map=BoundaryMap.for_blocks(blocks))
        source = mesh.center
        dest = next(
            (side - 1 - i, side - 1 - i)
            for i in range(side // 2)
            if not blocks.unusable[(side - 1 - i, side - 1 - i)]
            and is_safe(levels, source, (side - 1 - i, side - 1 - i))
        )
        router.route(source, dest)  # warm the canonical boundary cache
        return router, source, dest

    @registry.register(
        "micro.wu_single_route", setup=route_setup,
        description="one long safe-pair route under Wu's protocol",
    )
    def run_route(state):
        router, source, dest = state
        return router.route(source, dest)

    # -- macro: figure-scale sweeps and batches -----------------------
    @registry.register(
        "macro.fig9_sweep", kind="macro",
        description="Figure 9 condition sweep (Extension 1 vs optimal) at bench scale",
        repeats=3, quick_repeats=1,
    )
    def run_fig9(state):
        from repro.experiments import ExperimentConfig
        from repro.experiments.figures import fig9_extension1

        config = state  # BenchConfig threaded through (no setup)
        scale = (32, 2, 5) if config.quick else (48, 3, 8)
        return fig9_extension1(
            ExperimentConfig.scaled(*scale, seed=config.seed)
        )

    def _conditions_sweep(config: Any, workers: int):
        from repro.experiments import ExperimentConfig
        from repro.experiments.figures import fig9_extension1

        scale = (32, 2, 5) if config.quick else (48, 3, 8)
        return fig9_extension1(
            ExperimentConfig.scaled(*scale, seed=config.seed), workers=workers
        )

    @registry.register(
        "macro.conditions_serial", kind="macro",
        description="condition sweep, run(workers=1): batched kernels + artifact cache",
        repeats=3, quick_repeats=1,
    )
    def run_conditions_serial(state):
        return _conditions_sweep(state, workers=1)

    @registry.register(
        "macro.conditions_parallel", kind="macro",
        description="condition sweep, run(workers=2): process-pool pattern fan-out",
        repeats=3, quick_repeats=1,
    )
    def run_conditions_parallel(state):
        return _conditions_sweep(state, workers=2)

    def _pattern_engine_config(config: Any):
        """The batched-vs-scalar gate config: small dense meshes, where the
        per-pattern python overhead the batched engine removes dominates.
        Both engines consume the identical seeds, so the p50 ratio between
        the two workloads below *is* the lockstep speedup."""
        import dataclasses

        from repro.experiments import ExperimentConfig

        patterns = 64 if config.quick else 128
        base = ExperimentConfig.scaled(
            40, patterns, 15, seed=config.seed
        )
        return dataclasses.replace(
            base,
            fault_counts=tuple(4 * count for count in base.fault_counts),
            strategy_pivot_levels=1,
        )

    def _pattern_engine_sweep(config: Any, engine: str):
        from repro.experiments.figures import fig9_block_metrics
        from repro.experiments.runner import ConditionExperiment

        experiment = ConditionExperiment(
            _pattern_engine_config(config), metrics_factory=fig9_block_metrics
        )
        backend = getattr(config, "backend", "numpy")
        return experiment.run(
            "fig9", "conditions, pattern-engine gate", engine=engine,
            backend=backend if engine != "scalar" else "numpy",
        )

    @registry.register(
        "macro.conditions_batched_patterns", kind="macro",
        description="fig9 block-model sweep, whole fault-count batches stacked "
                    "into (batch, n, m) grids and decided in one array pass",
        repeats=3, quick_repeats=1,
    )
    def run_conditions_batched_patterns(state):
        return _pattern_engine_sweep(state, engine="batched")

    @registry.register(
        "macro.conditions_per_pattern", kind="macro",
        description="the identical sweep (same seeds) forced down the "
                    "per-pattern scalar path: the batched engine's baseline",
        repeats=3, quick_repeats=1,
    )
    def run_conditions_per_pattern(state):
        return _pattern_engine_sweep(state, engine="scalar")

    @registry.register(
        "macro.protocol_formation", kind="macro",
        description="distributed block formation + ESL propagation on one scenario",
        repeats=3, quick_repeats=1,
    )
    def run_protocols(state):
        from repro.faults.blocks import build_faulty_blocks
        from repro.simulator.protocols import (
            run_block_formation,
            run_safety_propagation,
        )

        config = state
        side = _size(config, 32, 20)
        mesh, faults, _ = _scenario(side, side * side // 50, config.seed)
        blocks = build_faulty_blocks(mesh, faults)
        run_block_formation(mesh, faults)
        return run_safety_propagation(mesh, blocks.unusable)

    # -- sim: message-passing simulator fast path ---------------------
    def sim_formation_setup(config):
        from repro.faults.blocks import build_faulty_blocks

        side = _size(config, 96, 40)
        mesh, faults, _ = _scenario(side, side * side // 40, config.seed)
        unusable = build_faulty_blocks(mesh, faults).unusable
        return mesh, faults, unusable

    def _run_formation(state, scheduler, delivery):
        from repro.simulator.protocols import (
            run_block_formation,
            run_safety_propagation,
        )

        mesh, faults, unusable = state
        run_block_formation(mesh, faults, scheduler=scheduler, delivery=delivery)
        return run_safety_propagation(
            mesh, unusable, scheduler=scheduler, delivery=delivery
        )

    @registry.register(
        "sim.formation_large", kind="macro", setup=sim_formation_setup,
        description="large-mesh block formation + ESL propagation on the fast path "
                    "(tick-bucket scheduler, zero-copy delivery)",
        repeats=10, quick_repeats=3,
    )
    def run_sim_formation(state):
        return _run_formation(state, "buckets", "fast")

    @registry.register(
        "sim.formation_large_heap", kind="macro", setup=sim_formation_setup,
        description="same workload on the reference seed path "
                    "(binary-heap scheduler, legacy per-hop-copy delivery)",
        repeats=10, quick_repeats=3,
    )
    def run_sim_formation_heap(state):
        return _run_formation(state, "heap", "legacy")

    @registry.register(
        "sim.formation_recorded", kind="macro", setup=sim_formation_setup,
        description="the fast-path workload with a flight recorder installed "
                    "(recorder-on overhead vs sim.formation_large)",
        repeats=10, quick_repeats=3,
    )
    def run_sim_formation_recorded(state):
        from repro.obs import FlightRecorder, use_tracer

        with use_tracer(FlightRecorder()):
            return _run_formation(state, "buckets", "fast")

    @registry.register(
        "obs.sampling_on", kind="macro", setup=sim_formation_setup,
        description="the fast-path workload with the telemetry observatory "
                    "sampling every tick (sampling overhead vs sim.formation_large)",
        repeats=10, quick_repeats=3,
    )
    def run_obs_sampling_on(state):
        from repro.obs import Observatory, use_observatory

        with use_observatory(Observatory(rules=())):
            return _run_formation(state, "buckets", "fast")

    # -- faults: delta maintenance vs full rebuild per event ----------
    def fault_events_setup(config):
        from repro.faults.injection import injection_events
        from repro.mesh.topology import Mesh2D

        # The issue's headline scenario: 64x64 sparse (~1% faults) with a
        # quarter of the arrivals followed by a revival.  Both workloads
        # consume the identical event stream, so their p50 ratio *is* the
        # per-event maintenance speedup.
        side = _size(config, 64, 32)
        mesh = Mesh2D(side, side)
        rng = np.random.default_rng(config.seed)
        count = _size(config, 40, 14)
        return mesh, injection_events(mesh, count, rng, revive_fraction=0.25)

    @registry.register(
        "faults.incremental_update", setup=fault_events_setup,
        description="blocks + ESLs delta-maintained per fault event "
                    "(O(affected) frontier + line rescans)",
        repeats=10, quick_repeats=3,
    )
    def run_incremental_update(state):
        from repro.faults.incremental import IncrementalFaultEngine

        mesh, events = state
        engine = IncrementalFaultEngine(mesh)
        for action, coord in events:
            engine.apply(action, coord)
        if engine.full_rebuilds:
            raise RuntimeError(
                f"defensive full rebuild fired {engine.full_rebuilds}x"
            )
        return engine.generation

    @registry.register(
        "faults.full_rebuild", setup=fault_events_setup,
        description="blocks + ESLs rebuilt from scratch after every fault "
                    "event (the seed behaviour, same event stream)",
        repeats=10, quick_repeats=3,
    )
    def run_full_rebuild(state):
        from repro.core.safety import compute_safety_levels
        from repro.faults.blocks import build_faulty_blocks

        mesh, events = state
        alive: set = set()
        for action, coord in events:
            if action == "inject":
                alive.add(coord)
            else:
                alive.discard(coord)
            blocks = build_faulty_blocks(mesh, sorted(alive))
            compute_safety_levels(mesh, blocks.unusable)
        return len(alive)

    def dynamic_setup(config):
        from repro.faults.injection import injection_sequence
        from repro.mesh.topology import Mesh2D

        side = _size(config, 48, 24)
        mesh = Mesh2D(side, side)
        rng = np.random.default_rng(config.seed)
        count = _size(config, 32, 12)
        return mesh, injection_sequence(mesh, count, rng, source=mesh.center)

    @registry.register(
        "sim.dynamic_injection", kind="macro", setup=dynamic_setup,
        description="live fault-injection sequence with incremental ESL ripples",
        repeats=10, quick_repeats=3,
    )
    def run_dynamic_injection(state):
        from repro.simulator.protocols.dynamic_update import DynamicMesh

        mesh, faults = state
        dynamic = DynamicMesh(mesh)
        for fault in faults:
            dynamic.inject_fault(fault)
        return dynamic.total_messages

    def chaos_setup(config):
        from repro.mesh.topology import Mesh2D

        side = _size(config, 32, 16)
        return Mesh2D(side, side)

    @registry.register(
        "sim.chaos_recovery", kind="macro", setup=chaos_setup,
        description="hardened protocols under 5% loss + crash/revive schedule, "
                    "verified against the batch oracles",
        repeats=3, quick_repeats=1,
    )
    def run_chaos_recovery(state):
        from repro.chaos import ChannelFaultPlan, ChaosSchedule, verify_convergence
        from repro.faults.injection import uniform_faults

        mesh = state
        rng = np.random.default_rng(2002)
        faults = uniform_faults(mesh, mesh.size // 40, rng)
        plan = ChannelFaultPlan(drop=0.05, duplicate=0.02, corrupt=0.01, seed=11)
        schedule = ChaosSchedule.random(mesh, rng, events=8, forbidden=set(faults))
        report = verify_convergence(
            mesh, faults, plan, schedule, sample_pairs=16, seed=5
        )
        if not report.ok:
            raise RuntimeError(f"chaos recovery diverged: {report.summary()}")
        return report.outcome.stats.messages

    def batch_setup(config):
        from repro.core.safety import compute_safety_levels
        from repro.faults.blocks import build_faulty_blocks

        side = _size(config, 64, 40)
        mesh, faults, rng = _scenario(side, side * side // 100, config.seed)
        blocks = build_faulty_blocks(mesh, faults)
        levels = compute_safety_levels(mesh, blocks.unusable)
        free = [c for c in mesh.nodes() if not blocks.unusable[c]]
        count = 30 if config.quick else 120
        pairs = []
        while len(pairs) < count:
            src = free[int(rng.integers(len(free)))]
            dst = free[int(rng.integers(len(free)))]
            if src != dst:
                pairs.append((src, dst))
        return mesh, blocks, levels, pairs

    @registry.register(
        "macro.route_batch", kind="macro", setup=batch_setup,
        description="a batch of random routes through the decision cascade",
        repeats=3, quick_repeats=1,
    )
    def run_batch(state):
        from repro.core.conditions import DecisionKind
        from repro.core.extensions import extension1_decision
        from repro.core.routing import WuRouter, route_with_decision
        from repro.routing.detour import DetourRouter
        from repro.routing.router import RoutingError

        mesh, blocks, levels, pairs = state
        blocked = blocks.unusable
        router = WuRouter(mesh, blocks)
        fallback = DetourRouter(mesh, blocks)
        delivered = 0
        for src, dst in pairs:
            decision = extension1_decision(mesh, levels, blocked, src, dst)
            try:
                if decision.kind is DecisionKind.UNSAFE:
                    fallback.route(src, dst)
                else:
                    route_with_decision(router, decision, blocked=blocked)
                delivered += 1
            except RoutingError:
                pass
        return delivered

    @registry.register(
        "serve.qps_sweep", kind="macro",
        description="closed-loop QPS ramp against the routing service "
        "under chaos fault churn (admission control + degradation live)",
        repeats=2, quick_repeats=1,
    )
    def run_serve_sweep(state):
        from repro.serve.loadgen import DEFAULT_STAGES, QUICK_STAGES, run_qps_sweep

        config = state  # BenchConfig threaded through (no setup)
        quick = getattr(config, "quick", False)
        return run_qps_sweep(
            side=_size(config, 32, 16),
            faults=_size(config, 24, 10),
            seed=config.seed,
            stages=QUICK_STAGES if quick else DEFAULT_STAGES,
            chaos_events=_size(config, 12, 8),
        )

    return registry
