"""Workload registry for ``repro bench``.

A :class:`Workload` is a named, self-contained benchmark: ``setup(config)``
builds its state (untimed), ``run(state)`` is the timed body.  Workloads
register either programmatically (:meth:`BenchRegistry.add`), via the
:meth:`BenchRegistry.register` decorator, or by discovery:
:meth:`BenchRegistry.load_directory` imports every ``bench_*.py`` in a
directory and calls its module-level ``register_workloads(registry)`` hook
when present, so the pytest-benchmark figure benches and the CLI harness
share one catalogue.
"""

from __future__ import annotations

import fnmatch
import importlib.util
import pathlib
import sys
from dataclasses import dataclass, field
from typing import Any, Callable

#: Workload kinds: ``micro`` times one substrate operation, ``macro`` a
#: whole sweep or batch.
KINDS = ("micro", "macro")


@dataclass(frozen=True)
class Workload:
    """One named benchmark workload.

    ``run`` receives ``setup(config)``'s return value; workloads without a
    setup receive the :class:`~repro.bench.runner.BenchConfig` itself, so
    they can scale with ``config.quick`` / seed with ``config.seed``.
    """

    name: str
    kind: str
    run: Callable[[Any], Any]
    setup: Callable[[Any], Any] | None = None
    description: str = ""
    repeats: int = 20
    quick_repeats: int = 5

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown workload kind {self.kind!r} (use {KINDS})")
        if self.repeats < 1 or self.quick_repeats < 1:
            raise ValueError("repeats must be >= 1")


@dataclass
class BenchRegistry:
    """An ordered, duplicate-checked catalogue of workloads."""

    _workloads: dict[str, Workload] = field(default_factory=dict)

    def add(self, workload: Workload) -> Workload:
        if workload.name in self._workloads:
            raise ValueError(f"duplicate workload name {workload.name!r}")
        self._workloads[workload.name] = workload
        return workload

    def register(
        self,
        name: str,
        kind: str = "micro",
        setup: Callable[[Any], Any] | None = None,
        description: str = "",
        repeats: int = 20,
        quick_repeats: int = 5,
    ) -> Callable[[Callable[[Any], Any]], Callable[[Any], Any]]:
        """Decorator form: ``@registry.register("micro.esl", setup=...)``."""

        def decorate(run: Callable[[Any], Any]) -> Callable[[Any], Any]:
            self.add(
                Workload(
                    name=name,
                    kind=kind,
                    run=run,
                    setup=setup,
                    description=description or (run.__doc__ or "").strip(),
                    repeats=repeats,
                    quick_repeats=quick_repeats,
                )
            )
            return run

        return decorate

    # ------------------------------------------------------------------
    def load_directory(self, directory: str | pathlib.Path) -> list[str]:
        """Import every ``bench_*.py`` under ``directory`` and run its
        ``register_workloads(registry)`` hook when it has one.

        Returns warning strings for files that failed to import or
        register; a missing hook is not a warning (most bench files are
        pytest-benchmark suites without a CLI-facing workload).
        """
        directory = pathlib.Path(directory)
        warnings: list[str] = []
        if not directory.is_dir():
            return [f"bench directory {directory} does not exist"]
        sys.path.insert(0, str(directory))  # bench files import their conftest
        try:
            for path in sorted(directory.glob("bench_*.py")):
                module_name = f"repro_bench_discovery_{path.stem}"
                try:
                    if module_name in sys.modules:
                        module = sys.modules[module_name]
                    else:
                        spec = importlib.util.spec_from_file_location(module_name, path)
                        assert spec is not None and spec.loader is not None
                        module = importlib.util.module_from_spec(spec)
                        sys.modules[module_name] = module
                        spec.loader.exec_module(module)
                    hook = getattr(module, "register_workloads", None)
                    if callable(hook):
                        hook(self)
                except Exception as error:  # noqa: BLE001 - surface, don't die
                    warnings.append(f"{path.name}: {error}")
        finally:
            sys.path.remove(str(directory))
        return warnings

    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        return list(self._workloads)

    def __len__(self) -> int:
        return len(self._workloads)

    def __contains__(self, name: str) -> bool:
        return name in self._workloads

    def get(self, name: str) -> Workload:
        return self._workloads[name]

    def select(self, patterns: list[str] | None = None) -> list[Workload]:
        """Workloads matching any shell-style pattern (all when None);
        unknown patterns raise so typos fail loudly."""
        workloads = list(self._workloads.values())
        if not patterns:
            return workloads
        selected: list[Workload] = []
        for workload in workloads:
            if any(fnmatch.fnmatch(workload.name, p) for p in patterns):
                selected.append(workload)
        if not selected:
            raise KeyError(
                f"no workload matches {patterns!r} (have: {', '.join(self.names())})"
            )
        return selected
