"""The reproducible benchmark harness behind ``repro bench``.

A :class:`~repro.bench.registry.BenchRegistry` holds named *workloads* --
micro (one substrate operation: ESL computation, block formation, a single
route) and macro (figure-scale sweeps and route batches).  Built-ins live
in :mod:`repro.bench.workloads`; any ``benchmarks/bench_*.py`` file can
contribute more by exposing ``register_workloads(registry)``.

The :mod:`runner <repro.bench.runner>` times each workload over repeated
runs (untraced, so wall-times are honest), then replays it once under a
tracer + profiler to attach trace-metric and hot-counter summaries, and
writes the whole result as ``BENCH_<n>.json`` at the repository root --
the repo's perf trajectory.  ``repro bench --compare OLD.json
--tolerance 0.15`` gates a run against a previous one and exits non-zero
on regression, which is exactly what CI runs on every push.
"""

from repro.bench.registry import BenchRegistry, Workload
from repro.bench.runner import (
    BenchConfig,
    compare_results,
    next_bench_path,
    run_benchmarks,
)
from repro.bench.workloads import builtin_registry

__all__ = [
    "BenchConfig",
    "BenchRegistry",
    "Workload",
    "builtin_registry",
    "compare_results",
    "next_bench_path",
    "run_benchmarks",
]
