"""repro: Extended Minimal Routing in 2-D Meshes with Faulty Blocks.

A full reproduction of Wu & Jiang (ICDCS 2002 / IJHPCN 2004): the faulty
block and MCC fault models, extended safety levels, the sufficient safe
condition and its three extensions, Wu's boundary-information minimal
routing protocol, the optimal existence baseline, the distributed
information-formation protocols, and the complete simulation study
(Figures 7-12).

Quickstart::

    import numpy as np
    from repro import (
        Mesh2D, generate_scenario, compute_safety_levels,
        is_safe, WuRouter,
    )

    mesh = Mesh2D(32, 32)
    rng = np.random.default_rng(7)
    scenario = generate_scenario(mesh, num_faults=12, rng=rng)
    levels = compute_safety_levels(mesh, scenario.blocks.unusable)
    source, dest = mesh.center, (28, 28)
    if is_safe(levels, source, dest):
        path = WuRouter(mesh, scenario.blocks).route(source, dest)
        assert path.is_minimal

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.mesh import Direction, Frame, Mesh2D, Quadrant, Rect, manhattan_distance
from repro.faults import (
    BlockSet,
    FaultScenario,
    FaultyBlock,
    MCCComponent,
    MCCSet,
    MCCType,
    NodeStatus,
    build_faulty_blocks,
    build_mccs,
    generate_scenario,
    minimal_path_exists,
    minimal_path_exists_wang,
    uniform_faults,
)
from repro.core import (
    BoundaryMap,
    Decision,
    DecisionKind,
    SafetyLevels,
    Strategy,
    StrategyConfig,
    UNBOUNDED,
    WuRouter,
    compute_safety_levels,
    extension1_decision,
    extension2_decision,
    extension3_decision,
    is_safe,
    recursive_center_pivots,
    route_with_decision,
    safe_source_decision,
    strategy_decision,
)
from repro.routing import (
    DetourRouter,
    GreedyAdaptiveRouter,
    MonotoneOracleRouter,
    Path,
    RoutingError,
    shortest_path_bfs,
)
from repro.obs import (
    JsonlSink,
    MetricsSink,
    RingBufferSink,
    TraceEvent,
    Tracer,
    get_tracer,
    read_jsonl,
    set_tracer,
    use_tracer,
)

__version__ = "1.0.0"

__all__ = [
    "BlockSet",
    "BoundaryMap",
    "Decision",
    "DecisionKind",
    "DetourRouter",
    "Direction",
    "FaultScenario",
    "FaultyBlock",
    "Frame",
    "GreedyAdaptiveRouter",
    "JsonlSink",
    "MCCComponent",
    "MCCSet",
    "MCCType",
    "Mesh2D",
    "MetricsSink",
    "MonotoneOracleRouter",
    "NodeStatus",
    "Path",
    "Quadrant",
    "Rect",
    "RingBufferSink",
    "RoutingError",
    "SafetyLevels",
    "Strategy",
    "StrategyConfig",
    "TraceEvent",
    "Tracer",
    "UNBOUNDED",
    "WuRouter",
    "__version__",
    "build_faulty_blocks",
    "build_mccs",
    "compute_safety_levels",
    "extension1_decision",
    "extension2_decision",
    "extension3_decision",
    "generate_scenario",
    "get_tracer",
    "is_safe",
    "manhattan_distance",
    "minimal_path_exists",
    "minimal_path_exists_wang",
    "read_jsonl",
    "recursive_center_pivots",
    "route_with_decision",
    "safe_source_decision",
    "set_tracer",
    "shortest_path_bfs",
    "strategy_decision",
    "uniform_faults",
    "use_tracer",
]
