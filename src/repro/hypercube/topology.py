"""The binary n-cube.

Nodes are integers in ``[0, 2^n)`` read as bit masks; two nodes are
adjacent iff their masks differ in exactly one bit.  The Hamming distance
``H(u, v) = popcount(u ^ v)`` is the minimal hop count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class Hypercube:
    """An ``n``-dimensional binary hypercube."""

    dimensions: int

    def __post_init__(self) -> None:
        if not 1 <= self.dimensions <= 24:
            raise ValueError(f"dimension {self.dimensions} out of supported range [1, 24]")

    @property
    def size(self) -> int:
        return 1 << self.dimensions

    def nodes(self) -> Iterator[int]:
        return iter(range(self.size))

    def in_bounds(self, node: int) -> bool:
        return 0 <= node < self.size

    def require_in_bounds(self, node: int) -> None:
        if not self.in_bounds(node):
            raise ValueError(f"node {node} outside the {self.dimensions}-cube")

    def neighbors(self, node: int) -> list[int]:
        self.require_in_bounds(node)
        return [node ^ (1 << bit) for bit in range(self.dimensions)]

    def distance(self, a: int, b: int) -> int:
        """Hamming distance."""
        self.require_in_bounds(a)
        self.require_in_bounds(b)
        return (a ^ b).bit_count()

    def preferred_neighbors(self, current: int, dest: int) -> list[int]:
        """Neighbours one Hamming step closer: flip any differing bit."""
        difference = current ^ dest
        out = []
        bit = 0
        while difference >> bit:
            if (difference >> bit) & 1:
                out.append(current ^ (1 << bit))
            bit += 1
        return out

    def __str__(self) -> str:
        return f"Hypercube(Q{self.dimensions})"
