"""Binary hypercubes: where safety levels came from.

The paper's information model descends from Wu's safety levels in binary
hypercubes (its refs [16], [18]), summarized in the introduction: *"if a
node's safety level is L, there is at least one Hamming distance (or
minimal) path from this node to any node within Hamming-distance-L"*.  This
package implements that foundation so the lineage is runnable:

- :mod:`repro.hypercube.topology` -- the n-cube (nodes are bit masks).
- :mod:`repro.hypercube.safety` -- Wu's safety levels: the fixpoint of

  ``S(u) = 0`` for faulty ``u``; otherwise, with the neighbours' levels in
  ascending order ``(s_1, ..., s_n)``, ``S(u)`` is the largest ``k <= n``
  with ``s_j >= j - 1`` for all ``j <= k`` (and ``n`` when all of
  ``(0, 1, ..., n-1)`` is dominated -- the node is *safe*).

- :mod:`repro.hypercube.routing` -- the exact minimal-path oracle (DP over
  subcubes) and the safety-level-guided minimal router, whose guarantee --
  ``S(u) >= H(u, d)`` implies delivery along a Hamming-minimal path -- is
  the hypercube analogue of the paper's Theorem 1, property-tested against
  the oracle.
"""

from repro.hypercube.topology import Hypercube
from repro.hypercube.safety import compute_hypercube_safety
from repro.hypercube.routing import (
    hypercube_minimal_path_exists,
    safety_guided_route,
)

__all__ = [
    "Hypercube",
    "compute_hypercube_safety",
    "hypercube_minimal_path_exists",
    "safety_guided_route",
]
