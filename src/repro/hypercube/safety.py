"""Wu's safety levels in faulty hypercubes (ToC 1997, the paper's ref [18]).

Definition (fixpoint): a faulty node has level 0.  For a non-faulty node
``u`` with neighbours' levels in ascending order ``(s_1, ..., s_n)``,

    ``S(u) = max { k <= n : s_j >= j - 1 for every j <= k }``

(so ``S(u) = n`` -- *safe* -- when the whole sequence dominates
``(0, 1, ..., n-1)``).  Levels start at ``n`` for non-faulty nodes and only
ever decrease, so chaotic iteration converges; we sweep to a fixpoint.

The guarantee carried into the 2-D mesh work: ``S(u) >= H(u, d)`` implies a
Hamming-minimal path from ``u`` to any non-faulty ``d`` within distance
``S(u)`` -- property-tested against the exact oracle in the test-suite.
"""

from __future__ import annotations

from typing import Iterable

from repro.hypercube.topology import Hypercube


def compute_hypercube_safety(cube: Hypercube, faulty: Iterable[int]) -> list[int]:
    """Safety level of every node, indexed by node mask."""
    fault_set = set(faulty)
    for node in fault_set:
        cube.require_in_bounds(node)
    n = cube.dimensions
    levels = [0 if node in fault_set else n for node in range(cube.size)]

    changed = True
    while changed:
        changed = False
        for node in range(cube.size):
            if node in fault_set:
                continue
            neighbor_levels = sorted(levels[neighbor] for neighbor in cube.neighbors(node))
            level = 0
            for j, s in enumerate(neighbor_levels, start=1):
                if s >= j - 1:
                    level = j
                else:
                    break
            if level < levels[node]:
                levels[node] = level
                changed = True
    return levels
