"""Minimal routing in faulty hypercubes: exact oracle and safety-guided.

A Hamming-minimal path from ``s`` to ``d`` fixes each differing bit exactly
once, in some order; its intermediate nodes are ``s ^ m`` for the
progressively grown submasks ``m`` of ``s ^ d``.  Existence is therefore a
dynamic program over the ``2^H`` submasks -- exact, and cheap for the
dimensions that matter.

:func:`safety_guided_route` is the routing the safety levels were invented
for: forward to any preferred neighbour whose level still covers the
remaining distance.  Wu's theorem (the hypercube Theorem 1) promises such a
neighbour exists whenever ``S(s) >= H(s, d)``; the router asserts delivery
in exactly ``H`` hops.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.hypercube.topology import Hypercube
from repro.routing.router import RoutingError


def hypercube_minimal_path_exists(
    cube: Hypercube, faulty: Iterable[int], source: int, dest: int
) -> bool:
    """Exact existence of a Hamming-minimal fault-free path."""
    fault_set = set(faulty)
    cube.require_in_bounds(source)
    cube.require_in_bounds(dest)
    if source in fault_set or dest in fault_set:
        return False
    difference = source ^ dest
    if difference == 0:
        return True
    # reachable[m] for submasks m of `difference`: the node source ^ m lies
    # on some minimal prefix.  Enumerate submasks in popcount-compatible
    # order (numeric order suffices: m's proper submasks are smaller).
    reachable = {0: True}
    submask = difference
    masks = []
    m = 0
    # Enumerate all submasks of `difference` in increasing numeric order.
    while True:
        masks.append(m)
        if m == difference:
            break
        m = (m - difference) & difference
    for m in masks[1:]:
        node = source ^ m
        if node in fault_set:
            reachable[m] = False
            continue
        bits = m
        ok = False
        while bits:
            bit = bits & -bits
            if reachable.get(m ^ bit, False):
                ok = True
                break
            bits ^= bit
        reachable[m] = ok
    return reachable[difference]


def safety_guided_route(
    cube: Hypercube,
    levels: Sequence[int],
    faulty: Iterable[int],
    source: int,
    dest: int,
) -> list[int]:
    """Wu's safety-level routing: always step to a covering neighbour.

    Requires ``S(source) >= H(source, dest)`` (the safe condition); returns
    the node list of a Hamming-minimal path.
    """
    fault_set = set(faulty)
    if source in fault_set or dest in fault_set:
        raise RoutingError(f"endpoint faulty: {source} -> {dest}")
    distance = cube.distance(source, dest)
    if levels[source] < distance:
        raise RoutingError(
            f"safe condition violated: S({source}) = {levels[source]} < H = {distance}"
        )
    path = [source]
    current = source
    while current != dest:
        remaining = cube.distance(current, dest)
        candidates = [
            neighbor
            for neighbor in cube.preferred_neighbors(current, dest)
            if neighbor == dest
            or (neighbor not in fault_set and levels[neighbor] >= remaining - 1)
        ]
        if not candidates:
            raise RoutingError(
                f"no covering preferred neighbour at {current} toward {dest} "
                "(safety-level theorem violated?)",
                partial=path,
            )
        current = min(candidates)  # deterministic tie-break
        path.append(current)
    return path
