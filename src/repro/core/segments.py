"""Extension 2's region and segment machinery (paper Sec. 3-4).

For Extension 2 the source collects extended safety levels of nodes along
the clear axis sections next to it: every node within ``E`` hops East and
``N`` hops North (in the canonical frame).  Each *affected* row/column is
partitioned by faulty blocks and mesh edges into disjoint **regions**; the
exchange happens within a region.  To bound the traffic, a region is further
split into **segments** of adjustable size and only one ESL per segment --
the one with the highest safety level along the relevant direction -- is
passed around (paper Sec. 4, first variation).

This module builds those per-axis samples for a given source.  The special
segment size ``None`` reproduces the paper's "(max)" variation: the whole
region is a single segment, so only its single best ESL is available.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.safety import SafetyLevels, UNBOUNDED
from repro.mesh.frames import Frame
from repro.mesh.geometry import Coord, Direction
from repro.mesh.topology import Mesh2D

__all__ = ["AxisSample", "RegionSegments", "build_axis_segments"]


@dataclass(frozen=True)
class AxisSample:
    """One collected ESL sample on an axis section.

    ``offset`` is the hop count from the source along the local axis
    (``k`` for node ``(+k, 0)`` or ``(0, +k)``); ``level`` is the node's
    safety level in the *perpendicular* outward direction, the only entry
    Theorem 1b consults (local North for samples on the x axis, local East
    for samples on the y axis).
    """

    offset: int
    node: Coord
    level: int


@dataclass(frozen=True)
class RegionSegments:
    """All samples the source holds for one axis under a segmentation.

    ``segment_size`` of ``None`` means one segment spanning the region (the
    paper's "(max)" variation); size 1 means every node in the region is
    sampled (full information).
    """

    axis: Direction  # local EAST or local NORTH
    segment_size: int | None
    region_length: int
    samples: tuple[AxisSample, ...]

    def best_for(self, max_offset: int, required_level: int) -> AxisSample | None:
        """The first sample usable for a destination.

        Theorem 1b needs a known node at offset ``k <= max_offset`` whose
        perpendicular level covers ``required_level``.  Returns the usable
        sample with the smallest offset, or ``None``.
        """
        for sample in self.samples:
            if sample.offset <= max_offset and sample.level >= required_level:
                return sample
        return None


def _axis_region_length(
    mesh: Mesh2D, frame: Frame, source: Coord, axis: Direction
) -> int:
    """Number of hops from the source to the mesh edge along the local axis."""
    global_dir = frame.to_global_direction(axis)
    x, y = source
    if global_dir is Direction.EAST:
        edge = mesh.n - 1 - x
    elif global_dir is Direction.WEST:
        edge = x
    elif global_dir is Direction.NORTH:
        edge = mesh.m - 1 - y
    else:
        edge = y
    return edge


def build_axis_segments(
    mesh: Mesh2D,
    levels: SafetyLevels,
    frame: Frame,
    axis: Direction,
    segment_size: int | None,
    tie_break: str = "far",
    four_directional: bool = False,
) -> RegionSegments:
    """Collect Extension 2's segment representatives along one local axis.

    ``axis`` must be local ``EAST`` or ``NORTH``.  The region runs from the
    node one hop along the axis up to the source's clear distance (or the
    mesh edge).  Each segment contributes the sample with the maximal
    perpendicular safety level (the paper: "typically the one with the
    highest safety level").

    ``tie_break`` resolves equal-level candidates, which dominate at low
    fault density where most levels are unbounded:

    - ``"far"`` (default): keep the farthest maximal node.  This reproduces
      the paper's Figure 10 behaviour, where coarser segmentation visibly
      degrades and the single-segment "(max)" variation falls back to the
      bare safe-source condition (its one representative usually lies
      beyond the destination column, exactly the failure mode the paper
      describes).
    - ``"near"``: keep the closest maximal node -- an improvement over the
      paper, since a representative closer to the source can only help
      Theorem 1b's ``k <= xd`` requirement.  The ablation bench quantifies
      the gap.

    ``four_directional`` enables the paper's second variation: "select up to
    four extended safety levels within each region (each one corresponds to
    the highest safety level along a particular direction within the
    region)".  Each segment then contributes up to four representatives --
    one maximal node per local direction -- deduplicated by position.  The
    decision layer still reads each sample's perpendicular level, so the
    extra representatives simply widen the candidate set (they matter most
    when the perpendicular-maximal node sits beyond the destination).
    """
    if axis not in (Direction.EAST, Direction.NORTH):
        raise ValueError(f"axis must be local EAST or NORTH, got {axis}")
    if segment_size is not None and segment_size < 1:
        raise ValueError(f"segment size must be positive or None, got {segment_size}")
    if tie_break not in ("far", "near"):
        raise ValueError(f"tie_break must be 'far' or 'near', got {tie_break!r}")

    source = frame.origin
    local_esl = frame.to_local_esl(levels.esl(source))
    clear = local_esl[0] if axis is Direction.EAST else local_esl[3]
    edge = _axis_region_length(mesh, frame, source, axis)
    length = min(clear, edge) if clear != UNBOUNDED else edge

    global_dir = frame.to_global_direction(axis)
    perpendicular_index = 3 if axis is Direction.EAST else 0  # N for x axis, E for y axis

    # Which local-ESL entries drive representative selection: just the
    # perpendicular one, or (four-directional variation) all four.
    selection_indices = (0, 1, 2, 3) if four_directional else (perpendicular_index,)

    samples: list[AxisSample] = []
    k = 1
    while k <= length:
        segment_end = length if segment_size is None else min(length, k + segment_size - 1)
        best: dict[int, tuple[int, int]] = {}  # selection index -> (offset, score)
        perpendicular_levels: dict[int, int] = {}
        for offset in range(k, segment_end + 1):
            node = global_dir.step(source, offset)
            esl = frame.to_local_esl(levels.esl(node))
            perpendicular_levels[offset] = int(esl[perpendicular_index])
            for index in selection_indices:
                score = int(esl[index])
                current = best.get(index)
                replaces = (
                    current is None
                    or score > current[1]
                    or (score == current[1] and tie_break == "far")
                )
                if replaces:
                    best[index] = (offset, score)
        for offset in sorted({entry[0] for entry in best.values()}):
            samples.append(
                AxisSample(
                    offset=offset,
                    node=global_dir.step(source, offset),
                    level=perpendicular_levels[offset],
                )
            )
        k = segment_end + 1

    return RegionSegments(
        axis=axis,
        segment_size=segment_size,
        region_length=length,
        samples=tuple(samples),
    )
