"""The three extended sufficient conditions (paper Sec. 3, Theorems 1a-1c).

Each decision procedure strengthens Definition 3 without global fault
information:

- **Extension 1** (Theorem 1a): consult the four neighbours' safety status.
  A safe preferred neighbour still yields a minimal route (one hop closer,
  then Theorem 1); a safe spare neighbour yields a *sub-minimal* route
  (one detour, length ``D + 2``).  Constant extra information per node.
- **Extension 2** (Theorem 1b): when one axis section is clear, consult the
  collected ESLs of nodes along it (see :mod:`repro.core.segments`).
  ``O(n)`` extra information.
- **Extension 3** (Theorem 1c): consult broadcast pivot ESLs and chain the
  safe condition through a pivot inside ``[0:xd, 0:yd]``.  Up to ``O(n^2)``
  extra information depending on the pivot count.

All procedures accept the ``blocked`` grid so nodes inside a faulty block
are never used as helpers (their ESLs are not meaningful for routing).
"""

from __future__ import annotations

import numpy as np

from repro.core.conditions import Decision, DecisionKind, is_safe
from repro.core.safety import SafetyLevels
from repro.core.segments import RegionSegments, build_axis_segments
from repro.mesh.frames import Frame
from repro.mesh.geometry import Coord, Direction
from repro.mesh.topology import Mesh2D

__all__ = [
    "extension1_decision",
    "extension2_decision",
    "extension2_decision_from_segments",
    "extension3_decision",
]


def extension1_decision(
    mesh: Mesh2D,
    levels: SafetyLevels,
    blocked: np.ndarray,
    source: Coord,
    dest: Coord,
    allow_sub_minimal: bool = True,
) -> Decision:
    """Theorem 1a: source safe, else a safe neighbour.

    Checks the source first, then the preferred neighbours (minimal), then
    -- when ``allow_sub_minimal`` -- the spare neighbours (sub-minimal).
    Neighbours inside a faulty block are skipped.
    """
    if is_safe(levels, source, dest):
        return Decision(DecisionKind.SOURCE_SAFE, source, dest)
    for neighbor in mesh.preferred_neighbors(source, dest):
        if not blocked[neighbor] and is_safe(levels, neighbor, dest):
            return Decision(DecisionKind.PREFERRED_NEIGHBOR_SAFE, source, dest, via=neighbor)
    if allow_sub_minimal:
        for neighbor in mesh.spare_neighbors(source, dest):
            if not blocked[neighbor] and is_safe(levels, neighbor, dest):
                return Decision(DecisionKind.SPARE_NEIGHBOR_SAFE, source, dest, via=neighbor)
    return Decision(DecisionKind.UNSAFE, source, dest)


def extension2_decision_from_segments(
    levels: SafetyLevels,
    source: Coord,
    dest: Coord,
    east_segments: RegionSegments,
    north_segments: RegionSegments,
) -> Decision:
    """Theorem 1b given pre-built axis samples (see :func:`extension2_decision`).

    Splitting construction from decision lets experiments build the segments
    once per fault pattern and reuse them for every destination.
    """
    frame = Frame.for_pair(source, dest)
    xd, yd = frame.to_local(dest)
    east, _, _, north = frame.to_local_esl(levels.esl(source))

    if xd <= east and yd <= north:
        return Decision(DecisionKind.SOURCE_SAFE, source, dest)

    # Clear x-axis section: find a known node (+k, 0), k <= xd, with yd <= Nk.
    if xd <= east:
        sample = east_segments.best_for(max_offset=xd, required_level=yd)
        if sample is not None:
            return Decision(DecisionKind.AXIS_NODE_SAFE, source, dest, via=sample.node)
    # Clear y-axis section: a known node (0, +k), k <= yd, with xd <= Ek.
    if yd <= north:
        sample = north_segments.best_for(max_offset=yd, required_level=xd)
        if sample is not None:
            return Decision(DecisionKind.AXIS_NODE_SAFE, source, dest, via=sample.node)
    return Decision(DecisionKind.UNSAFE, source, dest)


def extension2_decision(
    mesh: Mesh2D,
    levels: SafetyLevels,
    source: Coord,
    dest: Coord,
    segment_size: int | None,
    tie_break: str = "far",
) -> Decision:
    """Theorem 1b: chain through a known node on a clear axis section.

    ``segment_size`` selects the paper's variation: 1 collects every node in
    the region (full axis information), larger sizes sample one ESL per
    segment, ``None`` is the "(max)" variation with a single segment.
    ``tie_break`` picks the representative among equal safety levels (see
    :func:`repro.core.segments.build_axis_segments`).
    """
    frame = Frame.for_pair(source, dest)
    east_segments = build_axis_segments(
        mesh, levels, frame, Direction.EAST, segment_size, tie_break
    )
    north_segments = build_axis_segments(
        mesh, levels, frame, Direction.NORTH, segment_size, tie_break
    )
    return extension2_decision_from_segments(levels, source, dest, east_segments, north_segments)


def extension3_decision(
    mesh: Mesh2D,
    levels: SafetyLevels,
    blocked: np.ndarray,
    source: Coord,
    dest: Coord,
    pivots: list[Coord],
) -> Decision:
    """Theorem 1c: chain the safe condition through one pivot node.

    A pivot ``(xi, yi)`` (local frame) qualifies when it lies in
    ``[0:xd, 0:yd]``, is outside every block, the source is safe w.r.t. the
    pivot, and the pivot is safe w.r.t. the destination.  Pivots are tried
    in the given order; the recursive schemes list coarse pivots first.
    """
    if is_safe(levels, source, dest):
        return Decision(DecisionKind.SOURCE_SAFE, source, dest)
    frame = Frame.for_pair(source, dest)
    xd, yd = frame.to_local(dest)
    east, _, _, north = frame.to_local_esl(levels.esl(source))
    for pivot in pivots:
        if not mesh.in_bounds(pivot) or blocked[pivot]:
            continue
        xi, yi = frame.to_local(pivot)
        if not (0 <= xi <= xd and 0 <= yi <= yd):
            continue
        if not (xi <= east and yi <= north):
            continue  # source not safe w.r.t. the pivot
        pivot_east, _, _, pivot_north = frame.to_local_esl(levels.esl(pivot))
        if xd - xi <= pivot_east and yd - yi <= pivot_north:
            return Decision(DecisionKind.PIVOT_SAFE, source, dest, via=pivot)
    return Decision(DecisionKind.UNSAFE, source, dest)
