"""The paper's primary contribution: extended safety levels, the sufficient
safe condition, its three extensions, routing strategies, and Wu's
boundary-information minimal routing protocol.

Layering (bottom-up):

- :mod:`repro.core.safety` -- extended safety levels (ESL), the 4-tuple
  ``(E, S, W, N)`` of clear distances to the nearest block per direction.
- :mod:`repro.core.conditions` -- Definition 3's safe predicate and the
  decision records shared by all extensions.
- :mod:`repro.core.segments` -- Extension 2's region/segment machinery.
- :mod:`repro.core.pivots` -- Extension 3's pivot-selection schemes.
- :mod:`repro.core.extensions` -- Theorems 1a/1b/1c as decision procedures.
- :mod:`repro.core.batched` -- vectorised (batch-of-destinations) kernels
  for Definition 3 and the extensions, used by the experiment sweeps.
- :mod:`repro.core.strategies` -- the paper's strategies 1-4 (combinations).
- :mod:`repro.core.boundaries` -- faulty-block boundary lines L1-L4 with
  joins, the information Wu's protocol routes by.
- :mod:`repro.core.routing` -- Wu's protocol and the two-phase routings used
  by the extensions.
"""

from repro.core.safety import UNBOUNDED, SafetyLevels, compute_safety_levels
from repro.core.conditions import (
    Decision,
    DecisionKind,
    is_safe,
    safe_source_decision,
)
from repro.core.extensions import (
    extension1_decision,
    extension2_decision,
    extension3_decision,
)
from repro.core.batched import (
    batch_extension1,
    batch_extension2_from_segments,
    batch_extension3,
    batch_is_safe,
)
from repro.core.segments import RegionSegments, build_axis_segments
from repro.core.pivots import latin_pivots, random_pivots, recursive_center_pivots
from repro.core.strategies import Strategy, StrategyConfig, strategy_decision
from repro.core.boundaries import BoundaryMap, BoundaryTag, Line
from repro.core.routing import RoutingError, WuRouter, route_with_decision

__all__ = [
    "BoundaryMap",
    "BoundaryTag",
    "Decision",
    "DecisionKind",
    "Line",
    "RegionSegments",
    "RoutingError",
    "SafetyLevels",
    "Strategy",
    "StrategyConfig",
    "UNBOUNDED",
    "WuRouter",
    "batch_extension1",
    "batch_extension2_from_segments",
    "batch_extension3",
    "batch_is_safe",
    "build_axis_segments",
    "compute_safety_levels",
    "extension1_decision",
    "extension2_decision",
    "extension3_decision",
    "is_safe",
    "latin_pivots",
    "random_pivots",
    "recursive_center_pivots",
    "route_with_decision",
    "safe_source_decision",
    "strategy_decision",
]
