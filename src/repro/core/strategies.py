"""The paper's routing strategies 1-4 (Sec. 5, Figure 12).

A strategy applies extensions in a fixed order and stops at the first one
that ensures a path:

- **Strategy 1**: Extension 1, then Extension 2.
- **Strategy 2**: Extension 1, then Extension 3.
- **Strategy 3**: Extension 2, then Extension 3.
- **Strategy 4**: Extensions 1, 2, and 3 in order.

The paper's parameters (used as defaults here): segment size 5 for
Extension 2; partition level 3 with *randomly placed* pivots for
Extension 3.  The ``a``-suffixed strategies of the paper are the same
procedures evaluated under the MCC model -- in this library that is simply a
matter of passing MCC-derived safety levels and blocked grid, so there is no
separate code path.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.core.conditions import Decision, DecisionKind
from repro.core.extensions import (
    extension1_decision,
    extension2_decision,
    extension3_decision,
)
from repro.core.pivots import random_pivots, recursive_center_pivots
from repro.core.safety import SafetyLevels
from repro.mesh.geometry import Coord, Rect
from repro.mesh.topology import Mesh2D

__all__ = ["Strategy", "StrategyConfig", "select_pivots", "strategy_decision"]


class Strategy(enum.IntEnum):
    """Which combination of extensions to apply (paper Figure 12)."""

    S1 = 1  # extensions 1 + 2
    S2 = 2  # extensions 1 + 3
    S3 = 3  # extensions 2 + 3
    S4 = 4  # extensions 1 + 2 + 3

    @property
    def uses_extension1(self) -> bool:
        return self in (Strategy.S1, Strategy.S2, Strategy.S4)

    @property
    def uses_extension2(self) -> bool:
        return self in (Strategy.S1, Strategy.S3, Strategy.S4)

    @property
    def uses_extension3(self) -> bool:
        return self in (Strategy.S2, Strategy.S3, Strategy.S4)


@dataclass(frozen=True)
class StrategyConfig:
    """Tunables for the extensions inside a strategy (paper defaults)."""

    segment_size: int | None = 5
    pivot_levels: int = 3
    pivot_scheme: str = "random"  # "random" or "center"
    allow_sub_minimal: bool = False

    def __post_init__(self) -> None:
        if self.pivot_scheme not in ("random", "center"):
            raise ValueError(f"unknown pivot scheme {self.pivot_scheme!r}")


def select_pivots(
    config: StrategyConfig,
    region: Rect,
    rng: np.random.Generator | None = None,
) -> list[Coord]:
    """Pivots for Extension 3 under this configuration.

    ``region`` is the submesh the pivots are drawn from (the paper uses the
    destination-quadrant submesh).  The random scheme requires ``rng``.
    """
    if config.pivot_scheme == "center":
        return recursive_center_pivots(region, config.pivot_levels)
    if rng is None:
        raise ValueError("the random pivot scheme needs an rng")
    return random_pivots(region, config.pivot_levels, rng)


def strategy_decision(
    strategy: Strategy,
    mesh: Mesh2D,
    levels: SafetyLevels,
    blocked: np.ndarray,
    source: Coord,
    dest: Coord,
    pivots: list[Coord],
    config: StrategyConfig = StrategyConfig(),
) -> Decision:
    """Apply a strategy's extensions in order; first ensured path wins.

    ``pivots`` must be pre-selected (they are broadcast once per fault
    pattern, not per destination); pass an empty list for strategies that
    do not use Extension 3.
    """
    if strategy.uses_extension1:
        decision = extension1_decision(
            mesh, levels, blocked, source, dest, allow_sub_minimal=config.allow_sub_minimal
        )
        if decision.kind is not DecisionKind.UNSAFE:
            return decision
    if strategy.uses_extension2:
        decision = extension2_decision(mesh, levels, source, dest, config.segment_size)
        if decision.kind is not DecisionKind.UNSAFE:
            return decision
    if strategy.uses_extension3:
        decision = extension3_decision(mesh, levels, blocked, source, dest, pivots)
        if decision.kind is not DecisionKind.UNSAFE:
            return decision
    return Decision(DecisionKind.UNSAFE, source, dest)
