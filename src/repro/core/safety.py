"""Extended safety levels (paper Sec. 2, after Wu [17]).

The extended safety level (ESL) of a node is the 4-tuple ``(E, S, W, N)``
where ``E`` is the distance from the node to the closest faulty block to its
East, and similarly for the other directions.  We fix the discrete
convention (see DESIGN.md): ``E`` counts the **consecutive block-free nodes
strictly East** of the node in its row, so

    ``E = (xmin of the nearest block East in this row) - x - 1``

and ``E = UNBOUNDED`` when the row is clear to the mesh edge.  With this
convention Definition 3 reads ``xd <= E and yd <= N``, which is exactly
"section ``[0, xd]`` of the x axis and section ``[0, yd]`` of the y axis are
both clear of any faulty block".

The default ESL is ``(UNBOUNDED,)*4`` -- in the absence of faulty blocks no
information distribution is needed (paper Sec. 4).

The computation is vectorised per axis: a prefix/suffix scan finds the
nearest blocked cell in each direction for every node at once, so a full
``(n, m)`` ESL grid costs a handful of numpy passes.  The distributed
formation protocol in :mod:`repro.simulator.protocols.safety_propagation`
reproduces the same values by message passing and is cross-validated against
this module in the test-suite.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.mesh.geometry import Coord, Direction
from repro.mesh.topology import Mesh2D
from repro.obs import get_tracer
from repro.obs.prof import get_profiler

#: Sentinel for "no faulty block in this direction" -- large enough that any
#: in-mesh offset comparison treats it as infinity, small enough to stay well
#: inside int64 arithmetic.
UNBOUNDED: int = 1 << 30


def _nearest_blocked_above(blocked: np.ndarray, big: int) -> np.ndarray:
    """Per column of axis 1: index of the nearest blocked cell at-or-after
    each position (``big`` where none).  Works on axis 0 of a 2-D array."""
    n = blocked.shape[0]
    idx = np.where(blocked, np.arange(n)[:, None], big)
    return np.minimum.accumulate(idx[::-1, :], axis=0)[::-1, :]


def _nearest_blocked_below(blocked: np.ndarray, small: int) -> np.ndarray:
    """Index of the nearest blocked cell at-or-before each position along
    axis 0 (``small`` where none)."""
    n = blocked.shape[0]
    idx = np.where(blocked, np.arange(n)[:, None], small)
    return np.maximum.accumulate(idx, axis=0)


@dataclass(frozen=True)
class SafetyLevels:
    """ESL grids for every node of a mesh under one fault model.

    Each grid has shape ``(n, m)`` indexed ``[x, y]`` and holds the count of
    clear nodes in the respective direction (:data:`UNBOUNDED` when clear to
    the mesh edge).  Entries for nodes *inside* a block are 0 in the facing
    directions and are never consulted by the safe conditions (the paper
    assumes sources, destinations, and pivots are outside blocks).
    """

    mesh: Mesh2D
    east: np.ndarray
    south: np.ndarray
    west: np.ndarray
    north: np.ndarray

    def esl(self, coord: Coord) -> tuple[int, int, int, int]:
        """The ``(E, S, W, N)`` tuple of one node."""
        return (
            int(self.east[coord]),
            int(self.south[coord]),
            int(self.west[coord]),
            int(self.north[coord]),
        )

    @functools.cached_property
    def _grid_by_direction(self) -> dict[Direction, np.ndarray]:
        # Built once per instance: ``level`` sits on the router hot path and
        # must not pay a dict construction per call.
        return {
            Direction.EAST: self.east,
            Direction.SOUTH: self.south,
            Direction.WEST: self.west,
            Direction.NORTH: self.north,
        }

    def level(self, coord: Coord, direction: Direction) -> int:
        return int(self._grid_by_direction[direction][coord])


def _axis_scans(blocked: np.ndarray, big: int) -> tuple[np.ndarray, np.ndarray]:
    """Per column of axis 1: levels toward +axis0 and -axis0 for every cell.

    ``blocked`` may be the full grid or any column subset; each column is
    scanned independently, so the result on a subset is bit-identical to
    the corresponding columns of the full-grid scan.
    """
    small = -big
    n = blocked.shape[0]
    # Nearest blocked index at-or-after / at-or-before, then shift by one to
    # make the search strict ("strictly East of the node").
    nearest_above = _nearest_blocked_above(blocked, big)
    nearest_below = _nearest_blocked_below(blocked, small)
    pad_hi = np.full((1, blocked.shape[1]), big, dtype=np.int64)
    pad_lo = np.full((1, blocked.shape[1]), small, dtype=np.int64)
    nearest_pos = np.vstack([nearest_above[1:, :], pad_hi])
    nearest_neg = np.vstack([pad_lo, nearest_below[:-1, :]])
    idx = np.arange(n)[:, None]
    toward_pos = np.minimum(nearest_pos - idx - 1, UNBOUNDED)
    toward_neg = np.minimum(idx - nearest_neg - 1, UNBOUNDED)
    return toward_pos, toward_neg


def compute_safety_levels(mesh: Mesh2D, blocked: np.ndarray) -> SafetyLevels:
    """Compute the ESL of every node from the blocked-node grid.

    ``blocked`` is the union of faulty blocks (or MCCs) as a boolean grid.
    The computation runs under an ``esl.compute`` timing span when a tracer
    is installed (see :mod:`repro.obs`).
    """
    prof = get_profiler()
    if prof.enabled:
        prof.count("esl.recompute")
    with get_tracer().span("esl.compute", n=mesh.n, m=mesh.m):
        return _compute_safety_levels(mesh, blocked)


def _compute_safety_levels(mesh: Mesh2D, blocked: np.ndarray) -> SafetyLevels:
    if blocked.shape != (mesh.n, mesh.m):
        raise ValueError(
            f"blocked grid shape {blocked.shape} does not match mesh {mesh.n}x{mesh.m}"
        )
    big = UNBOUNDED + mesh.n + mesh.m  # strictly larger than any index offset

    east, west = _axis_scans(blocked, big)
    # Same scans along y via the transposed grid.
    north_t, south_t = _axis_scans(blocked.T, big)

    return SafetyLevels(
        mesh=mesh, east=east, south=south_t.T, west=west, north=north_t.T
    )


def refresh_safety_levels(
    levels: SafetyLevels,
    blocked: np.ndarray,
    xs: Sequence[int] = (),
    ys: Sequence[int] = (),
) -> None:
    """Recompute the ESL scans of the given rows/columns **in place**.

    A blocked-status change at ``(x, y)`` perturbs exactly the East/West
    levels of the nodes sharing ``y`` and the North/South levels of the
    nodes sharing ``x`` (the paper's Theorem-2 affected-rows model), so
    delta maintenance only rescans those lines: ``xs`` are the x values
    whose North/South columns need refreshing, ``ys`` the y values whose
    East/West rows do.  Each line rescan is the same vectorised pass as
    :func:`compute_safety_levels` restricted to that line, so the result
    is bit-identical to a full recomputation.
    """
    mesh = levels.mesh
    big = UNBOUNDED + mesh.n + mesh.m
    if len(ys):
        cols = np.unique(np.asarray(list(ys), dtype=np.intp))
        toward_pos, toward_neg = _axis_scans(blocked[:, cols], big)
        levels.east[:, cols] = toward_pos
        levels.west[:, cols] = toward_neg
    if len(xs):
        rows = np.unique(np.asarray(list(xs), dtype=np.intp))
        toward_pos, toward_neg = _axis_scans(blocked[rows, :].T, big)
        levels.north[rows, :] = toward_pos.T
        levels.south[rows, :] = toward_neg.T
