"""Extension 3's pivot-selection schemes (paper Sec. 4).

Pivot nodes broadcast their extended safety level to every node, so a source
can chain Theorem 1c through them.  The paper describes a recursive
selection: the centre node of the region first, then the region is
partitioned into four subregions whose centres follow, and so on -- a
partition level of ``k`` selects ``sum_{i=1..k} 4^(i-1)`` pivots (1, 5, 21
for levels 1, 2, 3).  Two variations are also given: random pivots (one per
subregion, used by the paper's routing strategy 2) and evenly distributed
pivots with no two sharing a row or column ("latin" pivots).
"""

from __future__ import annotations

import numpy as np

from repro.mesh.geometry import Coord, Rect

__all__ = [
    "latin_pivots",
    "pivot_count_for_levels",
    "random_pivots",
    "recursive_center_pivots",
]


def pivot_count_for_levels(levels: int) -> int:
    """``1 + 4 + ... + 4^(levels-1)`` -- the paper's pivot count formula."""
    if levels < 1:
        raise ValueError("partition level must be >= 1")
    return (4**levels - 1) // 3


def _quarters(region: Rect) -> list[Rect]:
    """Partition a region into (up to) four subregions around its centre.

    Degenerate slices (a region only one node wide/tall) yield fewer than
    four parts; duplicates are dropped by the callers' set semantics.
    """
    cx = (region.xmin + region.xmax) // 2
    cy = (region.ymin + region.ymax) // 2
    parts = []
    for xlo, xhi in ((region.xmin, cx), (cx + 1, region.xmax)):
        if xlo > xhi:
            continue
        for ylo, yhi in ((region.ymin, cy), (cy + 1, region.ymax)):
            if ylo > yhi:
                continue
            parts.append(Rect(xlo, xhi, ylo, yhi))
    return parts


def _recursive_cells(region: Rect, levels: int) -> list[list[Rect]]:
    """The subregions at each partition level: level 1 is the region itself,
    level i+1 quarters every level-i cell."""
    tiers: list[list[Rect]] = [[region]]
    for _ in range(levels - 1):
        next_tier: list[Rect] = []
        for cell in tiers[-1]:
            next_tier.extend(_quarters(cell))
        tiers.append(next_tier)
    return tiers


def recursive_center_pivots(region: Rect, levels: int) -> list[Coord]:
    """Centre-based recursive pivots (the paper's primary scheme).

    Returns the centres of every cell at every level, deduplicated while
    preserving coarse-to-fine order.  For a region large enough to split
    cleanly this yields exactly ``pivot_count_for_levels(levels)`` pivots.
    """
    if levels < 1:
        raise ValueError("partition level must be >= 1")
    pivots: list[Coord] = []
    seen: set[Coord] = set()
    for tier in _recursive_cells(region, levels):
        for cell in tier:
            center = ((cell.xmin + cell.xmax) // 2, (cell.ymin + cell.ymax) // 2)
            if center not in seen:
                seen.add(center)
                pivots.append(center)
    return pivots


def random_pivots(region: Rect, levels: int, rng: np.random.Generator) -> list[Coord]:
    """One uniformly random pivot per recursive subregion (strategy 2's
    variation: "each pivot node is selected randomly in a submesh")."""
    if levels < 1:
        raise ValueError("partition level must be >= 1")
    pivots: list[Coord] = []
    seen: set[Coord] = set()
    for tier in _recursive_cells(region, levels):
        for cell in tier:
            coord = (
                int(rng.integers(cell.xmin, cell.xmax + 1)),
                int(rng.integers(cell.ymin, cell.ymax + 1)),
            )
            if coord not in seen:
                seen.add(coord)
                pivots.append(coord)
    return pivots


def latin_pivots(region: Rect, count: int, rng: np.random.Generator) -> list[Coord]:
    """Evenly distributed pivots, no two on the same row or column.

    The paper's second Extension-3 variation.  The region is cut into
    ``count`` column bands and ``count`` row bands; a random permutation
    pairs them and one pivot is drawn inside each band intersection, giving
    a latin-square-like spread.
    """
    if count < 1:
        raise ValueError("pivot count must be >= 1")
    if count > min(region.width, region.height):
        raise ValueError(
            f"cannot place {count} row/column-distinct pivots in {region}"
        )
    permutation = rng.permutation(count)
    pivots: list[Coord] = []
    used_x: set[int] = set()
    used_y: set[int] = set()
    for i in range(count):
        xlo = region.xmin + (i * region.width) // count
        xhi = region.xmin + ((i + 1) * region.width) // count - 1
        j = int(permutation[i])
        ylo = region.ymin + (j * region.height) // count
        yhi = region.ymin + ((j + 1) * region.height) // count - 1
        x = int(rng.integers(xlo, xhi + 1))
        y = int(rng.integers(ylo, yhi + 1))
        # Bands are disjoint, so uniqueness holds by construction; assert it.
        assert x not in used_x and y not in used_y
        used_x.add(x)
        used_y.add(y)
        pivots.append((x, y))
    return pivots
