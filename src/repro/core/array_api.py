"""Array API standard plumbing for the batched pattern kernels.

The kernels in :mod:`repro.core.batched_patterns` are written against the
Python array API standard (https://data-apis.org/array-api/): they obtain
their namespace from their inputs via :func:`array_namespace` and call only
standard functions on it, so numpy is merely the *default* backend -- a
CuPy or torch array flows through the same code unchanged.

Because neither ``array-api-compat`` nor ``array-api-strict`` is a
dependency, this module supplies the two pieces the project needs itself:

- :func:`array_namespace` / :func:`resolve_backend` / :func:`to_numpy` --
  the dispatch idiom;
- :func:`strict_namespace` -- a minimal *strict* wrapper namespace over
  numpy.  Its arrays expose only standard attributes and reject numpy-only
  idioms (integer fancy indexing, ufunc method access, implicit
  ``__array__`` conversion), so running the kernel suite under it proves
  no numpy-only calls leak into the batched hot path (see
  ``tests/test_array_api_strict.py``).
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np

__all__ = [
    "BACKENDS",
    "StrictArray",
    "array_namespace",
    "resolve_backend",
    "strict_namespace",
    "to_numpy",
]

#: Backend names accepted by :func:`resolve_backend` (and the CLI
#: ``--backend`` flags).  ``cupy``/``torch`` are gated on importability.
BACKENDS = ("numpy", "strict", "cupy", "torch")


def array_namespace(*arrays: Any) -> Any:
    """The array API namespace shared by ``arrays``.

    Mirrors ``array_api_compat.array_namespace``: every argument carrying
    ``__array_namespace__`` must agree on the namespace; plain Python
    scalars are ignored.  With no namespaced argument at all, numpy is
    returned (the project default).
    """
    namespace: Any = None
    for array in arrays:
        probe = getattr(array, "__array_namespace__", None)
        if probe is None:
            continue
        candidate = probe()
        if namespace is None:
            namespace = candidate
        elif candidate is not namespace:
            raise TypeError(
                f"mixed array namespaces: {namespace!r} and {candidate!r}"
            )
    return namespace if namespace is not None else np


def resolve_backend(name: str) -> Any:
    """Map a ``--backend`` name to an array API namespace.

    ``numpy`` (the default) and ``strict`` (the numpy-backed strict
    wrapper) always work; ``cupy`` and ``torch`` resolve only when the
    package is importable, with a clear error otherwise -- the container
    image does not ship them, and nothing may be installed at run time.
    """
    if name == "numpy":
        return np
    if name == "strict":
        return strict_namespace()
    if name in ("cupy", "torch"):
        try:
            module = __import__(name)
        except ImportError as error:
            raise RuntimeError(
                f"backend {name!r} requested but the {name} package is not "
                f"installed; available backends here: numpy, strict"
            ) from error
        return module
    raise ValueError(f"unknown backend {name!r} (choose from {', '.join(BACKENDS)})")


def to_numpy(array: Any) -> np.ndarray:
    """A numpy view/copy of any backend's array (host transfer if needed)."""
    if isinstance(array, StrictArray):
        return array._array
    try:
        return np.asarray(array)
    except (TypeError, ValueError):
        # CuPy-style device arrays expose .get() for the host copy.
        get = getattr(array, "get", None)
        if get is not None:
            return np.asarray(get())
        raise


# ----------------------------------------------------------------------
# Strict wrapper: numpy underneath, standard surface only
# ----------------------------------------------------------------------

_INTEGER_KINDS = ("i", "u")


def _is_standard_index_component(item: Any) -> bool:
    return item is None or item is Ellipsis or isinstance(item, (int, np.integer, slice))


class StrictArray:
    """A numpy array restricted to the array API standard's surface.

    Only standard attributes (``shape``, ``dtype``, ``ndim``, ``size``,
    ``device``, ``mT``, ``T``) and operator dunders exist; arithmetic with
    raw :class:`numpy.ndarray` operands raises, as does integer-array
    fancy indexing (the standard routes gathers through ``take`` /
    ``take_along_axis``).  There is deliberately no ``__array__``, so any
    stray ``np.<func>(strict_array)`` call fails loudly instead of
    silently unwrapping.
    """

    __slots__ = ("_array", "_namespace")

    def __init__(self, array: np.ndarray, namespace: "StrictNamespace"):
        self._array = array
        self._namespace = namespace

    # -- standard attributes ------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self._array.shape

    @property
    def dtype(self) -> np.dtype:
        return self._array.dtype

    @property
    def ndim(self) -> int:
        return self._array.ndim

    @property
    def size(self) -> int:
        return self._array.size

    @property
    def device(self) -> str:
        return "cpu"

    @property
    def mT(self) -> "StrictArray":  # noqa: N802 - standard attribute name
        return self._wrap(np.swapaxes(self._array, -1, -2))

    @property
    def T(self) -> "StrictArray":  # noqa: N802 - standard attribute name
        return self._wrap(self._array.T)

    def __array_namespace__(self, api_version: str | None = None) -> "StrictNamespace":
        return self._namespace

    def __getattr__(self, name: str) -> Any:
        raise AttributeError(
            f"StrictArray has no attribute {name!r}: it is not part of the "
            f"array API standard's array object"
        )

    # -- helpers ------------------------------------------------------
    def _wrap(self, array: Any) -> "StrictArray":
        return StrictArray(np.asarray(array), self._namespace)

    def _unwrap_operand(self, other: Any) -> Any:
        if isinstance(other, StrictArray):
            return other._array
        if isinstance(other, (bool, int, float, np.bool_, np.integer, np.floating)):
            return other
        raise TypeError(
            f"strict arrays only operate with strict arrays or Python "
            f"scalars, got {type(other).__name__}"
        )

    def _validate_index(self, index: Any) -> Any:
        components = index if isinstance(index, tuple) else (index,)
        unwrapped: list[Any] = []
        for item in components:
            if isinstance(item, StrictArray):
                if item.dtype != np.bool_:
                    raise IndexError(
                        "integer array indexing is not part of the array API "
                        "standard; use take/take_along_axis"
                    )
                if len(components) != 1:
                    raise IndexError(
                        "a boolean mask must be the sole index in the standard"
                    )
                unwrapped.append(item._array)
            elif _is_standard_index_component(item):
                unwrapped.append(item)
            else:
                raise IndexError(
                    f"non-standard index component {type(item).__name__}"
                )
        return tuple(unwrapped) if isinstance(index, tuple) else unwrapped[0]

    # -- indexing -----------------------------------------------------
    def __getitem__(self, index: Any) -> "StrictArray":
        return self._wrap(self._array[self._validate_index(index)])

    def __setitem__(self, index: Any, value: Any) -> None:
        self._array[self._validate_index(index)] = self._unwrap_operand(value)

    # -- conversions --------------------------------------------------
    def __bool__(self) -> bool:
        return bool(self._array)

    def __int__(self) -> int:
        return int(self._array)

    def __float__(self) -> float:
        return float(self._array)

    def __len__(self) -> int:
        return len(self._array)

    def __repr__(self) -> str:
        return f"StrictArray({self._array!r})"

    # -- operators ----------------------------------------------------
    def __invert__(self) -> "StrictArray":
        return self._wrap(~self._array)

    def __neg__(self) -> "StrictArray":
        return self._wrap(-self._array)

    def __abs__(self) -> "StrictArray":
        return self._wrap(abs(self._array))


def _install_operators() -> None:
    forward = (
        "__add__", "__sub__", "__mul__", "__floordiv__", "__truediv__",
        "__mod__", "__pow__", "__and__", "__or__", "__xor__",
        "__lt__", "__le__", "__gt__", "__ge__", "__eq__", "__ne__",
        "__lshift__", "__rshift__",
    )
    for name in forward:
        def make(op_name):
            def op(self: StrictArray, other: Any) -> StrictArray:
                operand = self._unwrap_operand(other)
                return self._wrap(getattr(self._array, op_name)(operand))

            op.__name__ = op_name
            return op

        setattr(StrictArray, name, make(name))
    reflected = (
        "__radd__", "__rsub__", "__rmul__", "__rfloordiv__", "__rtruediv__",
        "__rand__", "__ror__", "__rxor__",
    )
    for name in reflected:
        def make_r(op_name):
            def op(self: StrictArray, other: Any) -> StrictArray:
                operand = self._unwrap_operand(other)
                return self._wrap(getattr(self._array, op_name)(operand))

            op.__name__ = op_name
            return op

        setattr(StrictArray, name, make_r(name))


_install_operators()


class StrictNamespace:
    """The function side of the strict wrapper.

    Exposes exactly the standard functions the project's kernels use,
    mapped onto numpy (with the standard's names: ``concat``,
    ``permute_dims``, ``astype``, ``cumulative_sum`` ...).  Anything else
    raises ``AttributeError`` -- reaching for ``xp.vstack`` or
    ``xp.minimum.accumulate`` inside a kernel fails the strict suite.
    """

    bool = np.bool_
    int64 = np.int64
    int32 = np.int32
    float64 = np.float64

    def __repr__(self) -> str:
        return "StrictNamespace()"

    # -- wrap/unwrap helpers ------------------------------------------
    def _wrap(self, array: Any) -> StrictArray:
        return StrictArray(np.asarray(array), self)

    def _unwrap(self, value: Any) -> Any:
        if isinstance(value, StrictArray):
            return value._array
        if isinstance(value, (list, tuple)):
            return type(value)(self._unwrap(item) for item in value)
        return value

    def _call(self, fn, *args, **kwargs) -> StrictArray:
        return self._wrap(fn(*(self._unwrap(a) for a in args),
                             **{k: self._unwrap(v) for k, v in kwargs.items()}))

    # -- creation -----------------------------------------------------
    def asarray(self, obj: Any, dtype: Any = None, copy: bool | None = None) -> StrictArray:
        return self._wrap(np.asarray(self._unwrap(obj), dtype=dtype))

    def zeros(self, shape: Any, dtype: Any = None) -> StrictArray:
        return self._wrap(np.zeros(shape, dtype=dtype if dtype is not None else np.float64))

    def zeros_like(self, x: Any, dtype: Any = None) -> StrictArray:
        return self._call(np.zeros_like, x, dtype=dtype)

    def ones(self, shape: Any, dtype: Any = None) -> StrictArray:
        return self._wrap(np.ones(shape, dtype=dtype if dtype is not None else np.float64))

    def ones_like(self, x: Any, dtype: Any = None) -> StrictArray:
        return self._call(np.ones_like, x, dtype=dtype)

    def full(self, shape: Any, fill_value: Any, dtype: Any = None) -> StrictArray:
        return self._wrap(np.full(shape, fill_value, dtype=dtype))

    def arange(self, start: Any, stop: Any = None, step: Any = 1, dtype: Any = None) -> StrictArray:
        if stop is None:
            return self._wrap(np.arange(start, dtype=dtype))
        return self._wrap(np.arange(start, stop, step, dtype=dtype))

    # -- manipulation -------------------------------------------------
    def reshape(self, x: Any, shape: tuple[int, ...]) -> StrictArray:
        return self._call(np.reshape, x, shape)

    def concat(self, arrays: Iterable[Any], axis: int | None = 0) -> StrictArray:
        return self._wrap(np.concatenate([self._unwrap(a) for a in arrays], axis=axis))

    def stack(self, arrays: Iterable[Any], axis: int = 0) -> StrictArray:
        return self._wrap(np.stack([self._unwrap(a) for a in arrays], axis=axis))

    def flip(self, x: Any, axis: int | None = None) -> StrictArray:
        return self._call(np.flip, x, axis=axis)

    def permute_dims(self, x: Any, axes: tuple[int, ...]) -> StrictArray:
        return self._call(np.transpose, x, axes)

    def expand_dims(self, x: Any, axis: int = 0) -> StrictArray:
        return self._call(np.expand_dims, x, axis=axis)

    def broadcast_to(self, x: Any, shape: tuple[int, ...]) -> StrictArray:
        return self._call(np.broadcast_to, x, shape)

    def astype(self, x: Any, dtype: Any, copy: bool = True) -> StrictArray:
        return self._wrap(self._unwrap(x).astype(dtype, copy=copy))

    # -- elementwise --------------------------------------------------
    def where(self, condition: Any, x: Any, y: Any) -> StrictArray:
        return self._call(np.where, condition, x, y)

    def minimum(self, x: Any, y: Any) -> StrictArray:
        return self._call(np.minimum, x, y)

    def maximum(self, x: Any, y: Any) -> StrictArray:
        return self._call(np.maximum, x, y)

    def clip(self, x: Any, min: Any = None, max: Any = None) -> StrictArray:
        return self._call(np.clip, x, min, max)

    def abs(self, x: Any) -> StrictArray:
        return self._call(np.abs, x)

    def logical_and(self, x: Any, y: Any) -> StrictArray:
        return self._call(np.logical_and, x, y)

    def logical_or(self, x: Any, y: Any) -> StrictArray:
        return self._call(np.logical_or, x, y)

    def logical_not(self, x: Any) -> StrictArray:
        return self._call(np.logical_not, x)

    def equal(self, x: Any, y: Any) -> StrictArray:
        return self._call(np.equal, x, y)

    # -- reductions / scans -------------------------------------------
    def any(self, x: Any, axis: Any = None, keepdims: bool = False) -> StrictArray:
        return self._call(np.any, x, axis=axis, keepdims=keepdims)

    def all(self, x: Any, axis: Any = None, keepdims: bool = False) -> StrictArray:
        return self._call(np.all, x, axis=axis, keepdims=keepdims)

    def sum(self, x: Any, axis: Any = None, dtype: Any = None, keepdims: bool = False) -> StrictArray:
        return self._call(np.sum, x, axis=axis, dtype=dtype, keepdims=keepdims)

    def max(self, x: Any, axis: Any = None, keepdims: bool = False) -> StrictArray:
        return self._call(np.max, x, axis=axis, keepdims=keepdims)

    def min(self, x: Any, axis: Any = None, keepdims: bool = False) -> StrictArray:
        return self._call(np.min, x, axis=axis, keepdims=keepdims)

    def cumulative_sum(self, x: Any, axis: int | None = None, dtype: Any = None) -> StrictArray:
        unwrapped = self._unwrap(x)
        if axis is None:
            if unwrapped.ndim != 1:
                raise ValueError("cumulative_sum without axis requires a 1-D array")
            axis = 0
        return self._wrap(np.cumsum(unwrapped, axis=axis, dtype=dtype))

    def argmax(self, x: Any, axis: int | None = None, keepdims: bool = False) -> StrictArray:
        return self._call(np.argmax, x, axis=axis, keepdims=keepdims)

    # -- indexing functions -------------------------------------------
    def take(self, x: Any, indices: Any, axis: int | None = None) -> StrictArray:
        return self._call(np.take, x, indices, axis=axis)

    def take_along_axis(self, x: Any, indices: Any, axis: int = -1) -> StrictArray:
        return self._call(np.take_along_axis, x, indices, axis=axis)


_STRICT_SINGLETON: StrictNamespace | None = None


def strict_namespace() -> StrictNamespace:
    """The process-wide strict wrapper namespace (numpy underneath)."""
    global _STRICT_SINGLETON
    if _STRICT_SINGLETON is None:
        _STRICT_SINGLETON = StrictNamespace()
    return _STRICT_SINGLETON
