"""The sufficient safe condition (paper Definition 3) and decision records.

All predicates operate in the canonical frame: a :class:`~repro.mesh.frames.
Frame` maps the actual source/destination onto "source at origin, destination
in quadrant I", and ESL tuples are permuted accordingly, so the code below is
written once for quadrant I exactly as in the paper.

Every decision procedure returns a :class:`Decision`, which records *which*
rule ensured the path and through which intermediate node, because the
extensions route in two phases (source -> helper node -> destination) and
the router needs the helper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.safety import SafetyLevels
from repro.mesh.frames import Frame
from repro.mesh.geometry import Coord
from repro.mesh.topology import Mesh2D


class DecisionKind(enum.Enum):
    """How (and whether) a minimal or sub-minimal path was ensured."""

    UNSAFE = "unsafe"
    SOURCE_SAFE = "source-safe"  # Definition 3 / Theorem 1
    PREFERRED_NEIGHBOR_SAFE = "preferred-neighbor-safe"  # Theorem 1a, minimal
    SPARE_NEIGHBOR_SAFE = "spare-neighbor-safe"  # Theorem 1a, sub-minimal
    AXIS_NODE_SAFE = "axis-node-safe"  # Theorem 1b (Extension 2)
    PIVOT_SAFE = "pivot-safe"  # Theorem 1c (Extension 3)


@dataclass(frozen=True)
class Decision:
    """Outcome of a safe-condition check for one source/destination pair.

    ``via`` is the helper node (in *global* coordinates) for two-phase
    routings: the safe neighbour (Theorem 1a), the axis node ``(+k, 0)`` or
    ``(0, +k)`` (Theorem 1b), or the pivot (Theorem 1c).  ``None`` for
    single-phase outcomes.
    """

    kind: DecisionKind
    source: Coord
    dest: Coord
    via: Coord | None = None

    @property
    def ensures_minimal(self) -> bool:
        return self.kind not in (DecisionKind.UNSAFE, DecisionKind.SPARE_NEIGHBOR_SAFE)

    @property
    def ensures_sub_minimal(self) -> bool:
        """Minimal *or* one-detour (length D+2) path ensured."""
        return self.kind is not DecisionKind.UNSAFE

    @property
    def expected_length_overhead(self) -> int:
        """Hops beyond the Manhattan distance the ensured route may take."""
        return 2 if self.kind is DecisionKind.SPARE_NEIGHBOR_SAFE else 0


def is_safe(levels: SafetyLevels, source: Coord, dest: Coord) -> bool:
    """Definition 3: the source is safe with respect to the destination.

    With the source mapped to the origin and the destination to ``(xd, yd)``
    in quadrant I, the source is safe iff ``xd <= E and yd <= N``; by
    Theorem 1 a minimal path is then guaranteed.  Works for any quadrant via
    frame reflection, and degenerately for ``source == dest``.
    """
    frame = Frame.for_pair(source, dest)
    xd, yd = frame.to_local(dest)
    east, _, _, north = frame.to_local_esl(levels.esl(source))
    return xd <= east and yd <= north


def safe_source_decision(levels: SafetyLevels, source: Coord, dest: Coord) -> Decision:
    """Definition 3 as a :class:`Decision` (the baseline "safe source" curve)."""
    kind = DecisionKind.SOURCE_SAFE if is_safe(levels, source, dest) else DecisionKind.UNSAFE
    return Decision(kind=kind, source=source, dest=dest)


def neighbor_classification(
    mesh: Mesh2D, source: Coord, dest: Coord
) -> tuple[list[Coord], list[Coord]]:
    """(preferred, spare) neighbours of the source w.r.t. the destination."""
    return (
        mesh.preferred_neighbors(source, dest),
        mesh.spare_neighbors(source, dest),
    )
