"""Faulty-block boundary lines (paper Sec. 2, Figures 3 and 6).

Faulty-block information (the two opposite corners of each block) is
distributed to the nodes on the block's four **boundary lines**.  For a
quadrant-I destination the lines that matter run on the source's side of the
block:

- ``L1``: the row just South of the block (``y = ymin - 1``), guarding the
  passage *under* the block; packets travel East along it.
- ``L3``: the column just West of the block (``x = xmin - 1``), guarding the
  passage *West of* the block; packets travel North along it.
- ``L2`` (row ``ymax + 1``) and ``L4`` (column ``xmax + 1``) mark where the
  block has been passed: the stay-on rules end at ``L1 ∩ L4`` and
  ``L3 ∩ L2``.

When a line runs into another block, it *joins* the corresponding line of
that block: the trace turns along the encountered block's near side down to
its own L1/L3 and continues (paper Figure 3 (b), "L3 of block i joins L3 of
block j").  A node on the joined polyline therefore carries the corner
information of every upstream block, and the stored ``toward`` direction
points along the polyline toward the originating block's exit intersection
-- exactly the hop a packet must take while the stay-on rule is in force.

The stay-on rules themselves (which destinations make a node *critical*)
live in :meth:`CanonicalBoundaryMap.forbidden_directions`.  The paper frames
a critical node as having a "preferred but detour direction" -- a preferred
direction that must NOT be taken -- and that is exactly how it is encoded:

- on a *straight row section* of (the polyline of) ``L1`` of block *i*,
  destinations in region ``R6(i) = {x > xmax, ymin <= y <= ymax}`` forbid
  North: every minimal path passes South of the block, and leaving the line
  North-ward gets walled in (by block *i* itself on the original L1 row, and
  by the joined blocks' bands on joined sections, which all straddle the
  previous row of the polyline);
- on a *straight column section* of ``L3`` of block *i*, destinations in
  ``R4(i) = {y > ymax, xmin <= x <= xmax}`` forbid East (mirror argument);
- *turn sections* (the descent along a joined block's East side, the
  crossing along its North side) forbid nothing: both preferred directions
  keep the pass-South / pass-West requirement satisfiable, and the
  surrounding straight sections re-capture the packet if it strays.

Everything here is written for the canonical "destination to the North-East"
orientation; :class:`GridReflection` maps the other quadrants onto it by
index reflection (no translation), and :class:`BoundaryMap` caches one
canonical map per orientation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.faults.blocks import BlockSet
from repro.mesh.geometry import Coord, Direction, Rect
from repro.mesh.topology import Mesh2D

__all__ = ["BoundaryMap", "BoundaryTag", "CanonicalBoundaryMap", "GridReflection", "Line"]


class Line(enum.Enum):
    """The four boundary lines of a block, in the canonical orientation."""

    L1 = "L1"  # row ymin - 1 (South side)
    L2 = "L2"  # row ymax + 1 (North side)
    L3 = "L3"  # column xmin - 1 (West side)
    L4 = "L4"  # column xmax + 1 (East side)


@dataclass(frozen=True)
class BoundaryTag:
    """One block's boundary information held by one node.

    ``toward`` is the next hop along the (joined) line toward the block's
    exit intersection (L1 ∩ L4 for L1, L3 ∩ L2 for L3); ``None`` at the
    intersection itself, where the block has been passed and the rule ends.
    """

    block_index: int
    line: Line
    toward: Direction | None


@dataclass(frozen=True)
class GridReflection:
    """Pure index reflection of an ``(n, m)`` grid (no translation).

    Maps between real mesh coordinates and a canonical index space in which
    the destination quadrant becomes quadrant I.  Unlike
    :class:`~repro.mesh.frames.Frame` the origin stays at a mesh corner, so
    reflected coordinates remain valid grid indices.
    """

    n: int
    m: int
    flip_x: bool
    flip_y: bool

    def coord(self, c: Coord) -> Coord:
        """Reflect a coordinate (an involution)."""
        x, y = c
        if self.flip_x:
            x = self.n - 1 - x
        if self.flip_y:
            y = self.m - 1 - y
        return (x, y)

    def direction(self, d: Direction) -> Direction:
        """Reflect a direction (an involution)."""
        if self.flip_x and d.is_horizontal:
            return d.opposite
        if self.flip_y and d.is_vertical:
            return d.opposite
        return d

    def rect(self, r: Rect) -> Rect:
        xa, ya = self.coord((r.xmin, r.ymin))
        xb, yb = self.coord((r.xmax, r.ymax))
        return Rect(min(xa, xb), max(xa, xb), min(ya, yb), max(ya, yb))

    def grid(self, array: np.ndarray) -> np.ndarray:
        out = array
        if self.flip_x:
            out = out[::-1, :]
        if self.flip_y:
            out = out[:, ::-1]
        return out


def _in_r6(rect: Rect, dest: Coord) -> bool:
    """Destinations triggering the stay-on-L1 rule (East of the block,
    strictly within its row band): all minimal paths pass South of the
    block.  A destination on the L1 row itself (``y = ymin - 1``) is *not*
    critical: paths to it never rise above that row, so the block cannot
    interfere."""
    return dest[0] > rect.xmax and rect.ymin <= dest[1] <= rect.ymax


def _in_r4(rect: Rect, dest: Coord) -> bool:
    """Destinations triggering the stay-on-L3 rule (North of the block,
    strictly within its column band): all minimal paths pass West of the
    block."""
    return dest[1] > rect.ymax and rect.xmin <= dest[0] <= rect.xmax


@dataclass
class CanonicalBoundaryMap:
    """Boundary annotations in one canonical (destination-NE) orientation."""

    mesh: Mesh2D
    rects: list[Rect]
    annotations: dict[Coord, list[BoundaryTag]] = field(default_factory=dict)
    truncated_traces: int = 0  # lines cut short by the mesh edge during a join

    @staticmethod
    def from_annotations(
        mesh: Mesh2D,
        rects: list[Rect],
        annotations: dict[Coord, list[BoundaryTag]],
    ) -> "CanonicalBoundaryMap":
        """Wrap annotations produced elsewhere -- e.g. by the distributed
        boundary protocol (:mod:`repro.simulator.protocols.
        boundary_distribution`) -- so a router can run off exactly the
        information the network formed."""
        return CanonicalBoundaryMap(
            mesh=mesh, rects=rects, annotations={c: list(t) for c, t in annotations.items()}
        )

    @staticmethod
    def build(mesh: Mesh2D, rects: list[Rect], unusable: np.ndarray) -> "CanonicalBoundaryMap":
        """Trace L1 and L3 (with joins) for every block."""
        bmap = CanonicalBoundaryMap(mesh=mesh, rects=rects)
        block_id = np.full((mesh.n, mesh.m), -1, dtype=np.int32)
        for index, rect in enumerate(rects):
            clipped = rect.clip(mesh.bounds)
            if clipped is not None:
                block_id[clipped.xmin : clipped.xmax + 1, clipped.ymin : clipped.ymax + 1] = index
        for index, rect in enumerate(rects):
            bmap._trace_l1(index, rect, unusable, block_id)
            bmap._trace_l3(index, rect, unusable, block_id)
        return bmap

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def _annotate_path(
        self,
        block_index: int,
        line: Line,
        path: list[Coord],
        first_toward: Direction | None,
    ) -> None:
        """Attach tags along a traced polyline.

        ``path[0]`` is normally the exit intersection (``toward=None``); when
        the block touches the mesh edge and the exit corner lies outside the
        mesh, ``first_toward`` carries the line's travel direction instead
        (harmless for routing -- the critical region is then empty -- but it
        keeps the annotations identical to the distributed protocol's).
        """
        for position, node in enumerate(path):
            toward = (
                first_toward if position == 0 else Direction.between(node, path[position - 1])
            )
            self.annotations.setdefault(node, []).append(
                BoundaryTag(block_index=block_index, line=line, toward=toward)
            )

    def _trace_l1(
        self, index: int, rect: Rect, unusable: np.ndarray, block_id: np.ndarray
    ) -> None:
        """L1: start at the L1 ∩ L4 corner, walk West; on hitting a block,
        descend its East side and join its L1."""
        row = rect.ymin - 1
        if row < 0:
            return
        x = min(rect.xmax + 1, self.mesh.n - 1)
        first_toward = None if x == rect.xmax + 1 else Direction.EAST
        path: list[Coord] = []
        while x >= 0:
            if unusable[x, row]:
                blocker_index = int(block_id[x, row])
                if blocker_index < 0:  # unusable cell outside any known rect
                    self.truncated_traces += 1
                    break
                blocker = self.rects[blocker_index]
                new_row = blocker.ymin - 1
                # Descend along the blocker's East side (its L4 column); when
                # the blocker touches the South edge the descent runs to the
                # edge and the line ends there.
                descent_x = x + 1
                aborted = False
                for y in range(row - 1, max(new_row, 0) - 1, -1):
                    if descent_x >= self.mesh.n or unusable[descent_x, y]:
                        self.truncated_traces += 1
                        aborted = True
                        break
                    path.append((descent_x, y))
                if aborted:
                    break
                if new_row < 0:
                    self.truncated_traces += 1
                    break
                row = new_row
                # Continue West on the blocker's L1 from under its East face.
                continue
            path.append((x, row))
            x -= 1
        self._annotate_path(index, Line.L1, path, first_toward)

    def _trace_l3(
        self, index: int, rect: Rect, unusable: np.ndarray, block_id: np.ndarray
    ) -> None:
        """L3: start at the L3 ∩ L2 corner, walk South; on hitting a block,
        cross over its North side and join its L3."""
        column = rect.xmin - 1
        if column < 0:
            return
        y = min(rect.ymax + 1, self.mesh.m - 1)
        first_toward = None if y == rect.ymax + 1 else Direction.NORTH
        path: list[Coord] = []
        while y >= 0:
            if unusable[column, y]:
                blocker_index = int(block_id[column, y])
                if blocker_index < 0:  # unusable cell outside any known rect
                    self.truncated_traces += 1
                    break
                blocker = self.rects[blocker_index]
                new_column = blocker.xmin - 1
                # Cross along the blocker's North side (its L2 row); when the
                # blocker touches the West edge the crossing runs to the edge
                # and the line ends there.
                crossing_y = y + 1
                aborted = False
                for x in range(column - 1, max(new_column, 0) - 1, -1):
                    if crossing_y >= self.mesh.m or unusable[x, crossing_y]:
                        self.truncated_traces += 1
                        aborted = True
                        break
                    path.append((x, crossing_y))
                if aborted:
                    break
                if new_column < 0:
                    self.truncated_traces += 1
                    break
                column = new_column
                continue
            path.append((column, y))
            y -= 1
        self._annotate_path(index, Line.L3, path, first_toward)

    # ------------------------------------------------------------------
    # Routing queries
    # ------------------------------------------------------------------
    def tags_at(self, node: Coord) -> list[BoundaryTag]:
        return self.annotations.get(node, [])

    def forbidden_directions(self, node: Coord, dest: Coord) -> set[Direction]:
        """Preferred-but-detour directions at ``node`` for ``dest``.

        Empty set: the node is non-critical (any preferred direction works).
        On a straight L1 row section with the destination in that block's
        R6, North is forbidden; on a straight L3 column section with the
        destination in that block's R4, East is forbidden.  Turn sections
        and the exit intersections (``toward is None``) forbid nothing.
        """
        forbidden: set[Direction] = set()
        for tag in self.annotations.get(node, ()):
            rect = self.rects[tag.block_index]
            if (
                tag.line is Line.L1
                and tag.toward is Direction.EAST  # straight row section
                and _in_r6(rect, dest)
            ):
                forbidden.add(Direction.NORTH)
            elif (
                tag.line is Line.L3
                and tag.toward is Direction.NORTH  # straight column section
                and _in_r4(rect, dest)
            ):
                forbidden.add(Direction.EAST)
        return forbidden


@dataclass
class BoundaryMap:
    """Boundary information for a block set, for every destination quadrant.

    Canonical maps are built lazily per orientation: quadrant I needs no
    reflection, quadrant III reflects both axes, etc.  The underlying fault
    data is shared; only the traces differ.
    """

    mesh: Mesh2D
    rects: list[Rect]
    unusable: np.ndarray
    _canonical: dict[tuple[bool, bool], CanonicalBoundaryMap] = field(default_factory=dict)

    @staticmethod
    def for_blocks(blocks: BlockSet) -> "BoundaryMap":
        return BoundaryMap(mesh=blocks.mesh, rects=blocks.rects(), unusable=blocks.unusable)

    def reflection(self, flip_x: bool, flip_y: bool) -> GridReflection:
        return GridReflection(n=self.mesh.n, m=self.mesh.m, flip_x=flip_x, flip_y=flip_y)

    def install(self, flip_x: bool, flip_y: bool, canonical: CanonicalBoundaryMap) -> None:
        """Provide an externally formed canonical map for one orientation.

        Lets a router run off the annotations a *distributed* protocol run
        actually produced instead of the locally traced equivalent (the two
        are asserted equal in the tests, but systems should eat their own
        dog food).
        """
        self._canonical[(flip_x, flip_y)] = canonical

    def canonical(self, flip_x: bool, flip_y: bool) -> CanonicalBoundaryMap:
        """The canonical map for one orientation, built on first use."""
        key = (flip_x, flip_y)
        if key not in self._canonical:
            reflection = self.reflection(flip_x, flip_y)
            reflected_rects = [reflection.rect(r) for r in self.rects]
            reflected_unusable = reflection.grid(self.unusable)
            self._canonical[key] = CanonicalBoundaryMap.build(
                self.mesh, reflected_rects, reflected_unusable
            )
        return self._canonical[key]
