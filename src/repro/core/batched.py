"""Batched (numpy) safe-condition kernels for Definition 3 and Extensions 1-3.

The scalar predicates in :mod:`repro.core.conditions` and
:mod:`repro.core.extensions` decide one destination at a time; the paper's
evaluation sweeps thousands of destinations against the *same* fault
pattern, so the per-destination Python overhead dominates every figure
sweep.  Each kernel below takes a ``(k, 2)`` integer array of destinations
and returns a boolean mask of length ``k`` -- entry ``i`` is exactly what
the corresponding scalar decision procedure reports for ``dests[i]``
(``ensures_minimal`` / ``ensures_sub_minimal`` as noted per kernel).

The kernels answer only "is a path ensured?"; they deliberately do not
report the helper node, because the batch consumers (the condition
experiments) count successes and never route.  Callers that need the
``via`` node keep using the scalar procedures.

Cross-validation: the property tests in ``tests/test_batched.py`` assert
mask-vs-scalar agreement on random meshes, fault patterns, and
destinations in all four quadrants.
"""

from __future__ import annotations

import numpy as np

from repro.core.safety import SafetyLevels
from repro.core.segments import RegionSegments
from repro.mesh.geometry import Coord, Direction
from repro.mesh.topology import Mesh2D

__all__ = [
    "batch_extension1",
    "batch_extension2_from_segments",
    "batch_extension3",
    "batch_is_safe",
]


def _as_dest_array(dests: np.ndarray) -> np.ndarray:
    arr = np.asarray(dests, dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"dests must have shape (k, 2), got {arr.shape}")
    return arr


def _local_offsets(origin: Coord, dests: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-destination canonical-frame data relative to ``origin``.

    Returns ``(dx, dy, xd, yd)`` where ``(dx, dy)`` are the signed global
    offsets and ``(xd, yd)`` the local (quadrant-I) offsets.  The implied
    frame reflects each axis independently per destination, exactly like
    :meth:`repro.mesh.frames.Frame.for_pair`.
    """
    dx = dests[:, 0] - origin[0]
    dy = dests[:, 1] - origin[1]
    return dx, dy, np.abs(dx), np.abs(dy)


def _local_esl(
    levels: SafetyLevels, origin: Coord, dx: np.ndarray, dy: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """``origin``'s clear distances toward each destination's quadrant.

    The local-frame East entry is the global East distance when the
    destination lies East-or-level of the origin and the global West
    distance otherwise (``Frame.to_local_esl`` swaps E/W under an x flip);
    the local North entry mirrors that for the y axis.
    """
    east = np.where(dx >= 0, int(levels.east[origin]), int(levels.west[origin]))
    north = np.where(dy >= 0, int(levels.north[origin]), int(levels.south[origin]))
    return east, north


def _safe_from(levels: SafetyLevels, origin: Coord, dests: np.ndarray) -> np.ndarray:
    dx, dy, xd, yd = _local_offsets(origin, dests)
    east, north = _local_esl(levels, origin, dx, dy)
    return (xd <= east) & (yd <= north)


def batch_is_safe(levels: SafetyLevels, source: Coord, dests: np.ndarray) -> np.ndarray:
    """Definition 3 for a batch: ``mask[i] == is_safe(levels, source, dests[i])``."""
    return _safe_from(levels, source, _as_dest_array(dests))


def batch_extension1(
    mesh: Mesh2D,
    levels: SafetyLevels,
    blocked: np.ndarray,
    source: Coord,
    dests: np.ndarray,
    allow_sub_minimal: bool = True,
) -> np.ndarray:
    """Theorem 1a for a batch.

    With ``allow_sub_minimal=False`` the mask equals the scalar decision's
    ``ensures_minimal`` (source safe, or a safe *preferred* neighbour);
    with the default it equals ``ensures_sub_minimal`` (any safe
    neighbour counts).  Neighbours inside a faulty block are skipped.
    """
    dest_arr = _as_dest_array(dests)
    ensured = _safe_from(levels, source, dest_arr)
    dx = dest_arr[:, 0] - source[0]
    dy = dest_arr[:, 1] - source[1]
    for direction in Direction:
        neighbor = direction.step(source)
        if not mesh.in_bounds(neighbor) or blocked[neighbor]:
            continue
        if direction is Direction.EAST:
            preferred = dx > 0
        elif direction is Direction.WEST:
            preferred = dx < 0
        elif direction is Direction.NORTH:
            preferred = dy > 0
        else:
            preferred = dy < 0
        eligible = preferred if not allow_sub_minimal else np.ones_like(ensured)
        if not eligible.any():
            continue
        ensured |= eligible & _safe_from(levels, neighbor, dest_arr)
    return ensured


def _segment_usable(
    segments: RegionSegments, max_offsets: np.ndarray, required_levels: np.ndarray
) -> np.ndarray:
    """``mask[i]`` -- some sample has ``offset <= max_offsets[i]`` and
    ``level >= required_levels[i]`` (the batched ``best_for`` existence)."""
    if not segments.samples:
        return np.zeros(max_offsets.shape, dtype=bool)
    offsets = np.array([sample.offset for sample in segments.samples], dtype=np.int64)
    levels = np.array([sample.level for sample in segments.samples], dtype=np.int64)
    usable = (offsets[None, :] <= max_offsets[:, None]) & (
        levels[None, :] >= required_levels[:, None]
    )
    return usable.any(axis=1)


def batch_extension2_from_segments(
    levels: SafetyLevels,
    source: Coord,
    dests: np.ndarray,
    east_segments: RegionSegments,
    north_segments: RegionSegments,
) -> np.ndarray:
    """Theorem 1b for a batch, against pre-built axis samples.

    ``mask[i]`` equals ``extension2_decision_from_segments(...).ensures_minimal``
    for ``dests[i]`` given the *same* segments.  As in the scalar version,
    the samples must have been built for the source's canonical frame.
    """
    dest_arr = _as_dest_array(dests)
    dx, dy, xd, yd = _local_offsets(source, dest_arr)
    east, north = _local_esl(levels, source, dx, dy)
    source_safe = (xd <= east) & (yd <= north)
    x_axis = (xd <= east) & _segment_usable(east_segments, xd, yd)
    y_axis = (yd <= north) & _segment_usable(north_segments, yd, xd)
    return source_safe | x_axis | y_axis


def batch_extension3(
    mesh: Mesh2D,
    levels: SafetyLevels,
    blocked: np.ndarray,
    source: Coord,
    dests: np.ndarray,
    pivots: list[Coord],
) -> np.ndarray:
    """Theorem 1c for a batch: ``mask[i]`` equals the scalar decision's
    ``ensures_minimal`` for ``dests[i]`` under the same pivot list."""
    dest_arr = _as_dest_array(dests)
    dx, dy, xd, yd = _local_offsets(source, dest_arr)
    east, north = _local_esl(levels, source, dx, dy)
    ensured = (xd <= east) & (yd <= north)

    usable = [p for p in pivots if mesh.in_bounds(p) and not blocked[p]]
    if not usable:
        return ensured

    px = np.array([p[0] for p in usable], dtype=np.int64)
    py = np.array([p[1] for p in usable], dtype=np.int64)
    # Local pivot coordinates per (destination, pivot): the frame's axis
    # reflections depend on the destination's quadrant.
    sign_x = np.where(dx >= 0, 1, -1)[:, None]
    sign_y = np.where(dy >= 0, 1, -1)[:, None]
    xi = (px[None, :] - source[0]) * sign_x
    yi = (py[None, :] - source[1]) * sign_y
    # Pivot ESL entries, permuted into each destination's frame.
    pivot_east = np.where(
        dx[:, None] >= 0, levels.east[px, py][None, :], levels.west[px, py][None, :]
    )
    pivot_north = np.where(
        dy[:, None] >= 0, levels.north[px, py][None, :], levels.south[px, py][None, :]
    )
    in_box = (xi >= 0) & (xi <= xd[:, None]) & (yi >= 0) & (yi <= yd[:, None])
    source_reaches = (xi <= east[:, None]) & (yi <= north[:, None])
    pivot_reaches = (xd[:, None] - xi <= pivot_east) & (yd[:, None] - yi <= pivot_north)
    ensured |= (in_box & source_reaches & pivot_reaches).any(axis=1)
    return ensured
