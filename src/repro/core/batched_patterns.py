"""Cross-pattern batched kernels: thousands of fault patterns in lockstep.

:mod:`repro.core.batched` vectorises the safe-condition decisions *within*
one fault pattern; this module vectorises them *across* patterns.  Every
kernel takes stacked ``(batch, n, m)`` grids (one fault pattern per leading
index) and computes faulty-block formation, ESL grids, monotone
reachability, and the Def-3 / Extension 1-3 conditions for all patterns in
one array-program pass -- the Python-level per-pattern loop that bounds the
figure sweeps disappears.

The kernels are written against the Python array API standard: each one
obtains its namespace with ``xp = array_namespace(...)`` and calls only
standard functions/operators on it, so numpy is just the default backend --
CuPy or torch arrays flow through unchanged, and the strict wrapper in
:mod:`repro.core.array_api` proves no numpy-only idiom leaks in.  Two
consequences shape the implementations:

- ``minimum.accumulate`` / ``maximum.accumulate`` are numpy ufunc methods,
  not standard functions, so the running extrema behind the ESL scans and
  the reachability column DP use a Hillis-Steele doubling scan
  (``log2(n)`` shifted-``maximum`` passes);
- integer fancy indexing is not standard, so pivot/destination gathers go
  through ``take`` / ``take_along_axis`` on flattened grids.

Element-wise equivalence with the scalar implementations
(:func:`repro.faults.blocks.disable_fixpoint`,
:func:`repro.core.safety.compute_safety_levels`, the decision procedures in
:mod:`repro.core.conditions` / :mod:`repro.core.extensions`, and
:func:`repro.faults.coverage.minimal_path_exists`) is asserted bit-for-bit
by ``tests/test_batched_patterns.py`` over exhaustive small meshes and
seeded random large ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.array_api import array_namespace
from repro.core.safety import UNBOUNDED
from repro.mesh.geometry import Coord

__all__ = [
    "BatchedSafetyLevels",
    "batch_disable_fixpoint",
    "batch_pattern_extension1",
    "batch_pattern_extension2",
    "batch_pattern_extension3",
    "batch_pattern_is_safe",
    "batch_pattern_path_exists",
    "batch_reachability_map",
    "batch_safety_levels",
    "build_axis_sample_table",
]

Array = Any  # any array-API-compliant array


# ----------------------------------------------------------------------
# Scan primitives (standard ops only)
# ----------------------------------------------------------------------


def _cummax_last(xp: Any, a: Array) -> Array:
    """Inclusive running maximum along the last axis.

    ``out[..., i] = max(a[..., 0:i+1])``.  The standard has no
    ``maximum.accumulate``, so the generic path is a Hillis-Steele
    doubling scan -- ``ceil(log2(n))`` passes of shifted ``maximum`` +
    ``concat``; on the numpy backend the ufunc method is a single pass
    and several times faster, so it gets a dispatch (the strict-wrapper
    tests keep the generic path honest).
    """
    if xp is np:
        return np.maximum.accumulate(a, axis=-1)
    n = a.shape[-1]
    shift = 1
    while shift < n:
        a = xp.concat(
            [a[..., :shift], xp.maximum(a[..., shift:], a[..., :-shift])], axis=-1
        )
        shift *= 2
    return a


def _cummin_last(xp: Any, a: Array) -> Array:
    if xp is np:
        return np.minimum.accumulate(a, axis=-1)
    return -_cummax_last(xp, -a)


# ----------------------------------------------------------------------
# Faulty-block formation (Definition 1) as a batched masked iteration
# ----------------------------------------------------------------------


def _shifted_batch(xp: Any, mask: Array, dx: int, dy: int) -> Array:
    """``out[b, x, y] = mask[b, x + dx, y + dy]``, out-of-range reads False."""
    n, m = mask.shape[-2], mask.shape[-1]
    out = xp.zeros_like(mask)
    xsrc = slice(max(dx, 0), n + min(dx, 0))
    xdst = slice(max(-dx, 0), n + min(-dx, 0))
    ysrc = slice(max(dy, 0), m + min(dy, 0))
    ydst = slice(max(-dy, 0), m + min(-dy, 0))
    out[..., xdst, ydst] = mask[..., xsrc, ysrc]
    return out


def batch_disable_fixpoint(faulty: Array) -> Array:
    """Definition 1's disabling rule over a ``(batch, n, m)`` fault stack.

    ``out[b]`` is bit-identical to ``disable_fixpoint(faulty[b])``: a
    healthy node becomes disabled when it has an unusable neighbour in the
    x dimension *and* one in the y dimension, iterated to a fixpoint.  The
    iteration runs all patterns in lockstep until none changes; scattered
    faults (the paper's regime) converge in a handful of rounds.
    """
    xp = array_namespace(faulty)
    unusable = faulty
    while True:
        horizontal = _shifted_batch(xp, unusable, 1, 0) | _shifted_batch(xp, unusable, -1, 0)
        vertical = _shifted_batch(xp, unusable, 0, 1) | _shifted_batch(xp, unusable, 0, -1)
        grown = unusable | (horizontal & vertical)
        if not bool(xp.any(grown ^ unusable)):
            return grown
        unusable = grown


# ----------------------------------------------------------------------
# ESL grids (batched row scans generalising compute_safety_levels)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BatchedSafetyLevels:
    """Per-pattern ESL grids: each field is ``(batch, n, m)`` int64.

    ``grids[b]`` equals the corresponding grid of
    ``compute_safety_levels(mesh, blocked[b])`` element for element.
    """

    east: Array
    south: Array
    west: Array
    north: Array


def _axis_scans_last(xp: Any, blocked: Array, big: int) -> tuple[Array, Array]:
    """Clear distances toward +axis / -axis along the *last* axis.

    The batched form of :func:`repro.core.safety._axis_scans`: find the
    nearest blocked index at-or-after (suffix running minimum) and
    at-or-before (prefix running maximum) every cell, shift by one to make
    the search strict, and cap at :data:`UNBOUNDED`.
    """
    small = -big
    n = blocked.shape[-1]
    idx = xp.arange(n, dtype=xp.int64)
    pos = xp.where(blocked, idx, big)
    neg = xp.where(blocked, idx, small)
    nearest_above = xp.flip(_cummin_last(xp, xp.flip(pos, axis=-1)), axis=-1)
    nearest_below = _cummax_last(xp, neg)
    pad_shape = blocked.shape[:-1] + (1,)
    pad_hi = xp.full(pad_shape, big, dtype=xp.int64)
    pad_lo = xp.full(pad_shape, small, dtype=xp.int64)
    nearest_pos = xp.concat([nearest_above[..., 1:], pad_hi], axis=-1)
    nearest_neg = xp.concat([pad_lo, nearest_below[..., :-1]], axis=-1)
    toward_pos = xp.minimum(nearest_pos - idx - 1, UNBOUNDED)
    toward_neg = xp.minimum(idx - nearest_neg - 1, UNBOUNDED)
    return toward_pos, toward_neg


def _axis_scans_np(blocked: Array, big: int, axis: int) -> tuple[Array, Array]:
    """Numpy fast path of :func:`_axis_scans_last` along an arbitrary axis.

    Scanning the x axis in place (instead of permuting it to the back)
    keeps every elementwise pass contiguous, which is worth ~2x on the
    grids the experiment engine feeds through here.
    """
    n = blocked.shape[axis]
    shape = [1] * blocked.ndim
    shape[axis] = n
    idx = np.arange(n, dtype=np.int64).reshape(shape)
    pos = np.where(blocked, idx, big)
    neg = np.where(blocked, idx, -big)
    nearest_above = np.flip(
        np.minimum.accumulate(np.flip(pos, axis=axis), axis=axis), axis=axis
    )
    nearest_below = np.maximum.accumulate(neg, axis=axis)
    pad_shape = list(blocked.shape)
    pad_shape[axis] = 1
    pad_hi = np.full(pad_shape, big, dtype=np.int64)
    pad_lo = np.full(pad_shape, -big, dtype=np.int64)
    tail = [slice(None)] * blocked.ndim
    tail[axis] = slice(1, None)
    head = [slice(None)] * blocked.ndim
    head[axis] = slice(None, -1)
    nearest_pos = np.concatenate([nearest_above[tuple(tail)], pad_hi], axis=axis)
    nearest_neg = np.concatenate([pad_lo, nearest_below[tuple(head)]], axis=axis)
    toward_pos = np.minimum(nearest_pos - idx - 1, UNBOUNDED)
    toward_neg = np.minimum(idx - nearest_neg - 1, UNBOUNDED)
    return toward_pos, toward_neg


def batch_safety_levels(blocked: Array) -> BatchedSafetyLevels:
    """ESL grids for every pattern of a ``(batch, n, m)`` blocked stack."""
    xp = array_namespace(blocked)
    n, m = blocked.shape[-2], blocked.shape[-1]
    big = UNBOUNDED + n + m  # strictly larger than any index offset
    if xp is np:
        east, west = _axis_scans_np(blocked, big, axis=1)
        north, south = _axis_scans_np(blocked, big, axis=2)
        return BatchedSafetyLevels(east=east, south=south, west=west, north=north)
    # East/West scan along x: bring x to the last axis.
    by_x = xp.permute_dims(blocked, (0, 2, 1))
    east_t, west_t = _axis_scans_last(xp, by_x, big)
    east = xp.permute_dims(east_t, (0, 2, 1))
    west = xp.permute_dims(west_t, (0, 2, 1))
    # North/South scan along y: already the last axis.
    north, south = _axis_scans_last(xp, blocked, big)
    return BatchedSafetyLevels(east=east, south=south, west=west, north=north)


# ----------------------------------------------------------------------
# Shared per-destination helpers
# ----------------------------------------------------------------------


def _dest_offsets(xp: Any, source: Coord, dests: Array) -> tuple[Array, Array, Array, Array]:
    """``(dx, dy, xd, yd)``, each ``(batch, k)``, for ``(batch, k, 2)`` dests."""
    dx = dests[:, :, 0] - source[0]
    dy = dests[:, :, 1] - source[1]
    return dx, dy, xp.abs(dx), xp.abs(dy)


def _node_esl(levels: BatchedSafetyLevels, node: Coord) -> tuple[Array, Array, Array, Array]:
    """One node's ``(E, S, W, N)`` across the batch, each ``(batch,)``."""
    x, y = node
    return (
        levels.east[:, x, y],
        levels.south[:, x, y],
        levels.west[:, x, y],
        levels.north[:, x, y],
    )


def _safe_from(
    xp: Any, levels: BatchedSafetyLevels, origin: Coord, dx: Array, dy: Array,
    xd: Array, yd: Array,
) -> Array:
    """Definition 3 from ``origin`` toward each destination, ``(batch, k)``.

    The local-frame East entry is the global East distance when the
    destination lies East-or-level of the origin and the global West
    distance otherwise (exactly ``Frame.to_local_esl``), mirrored on y.
    """
    east, south, west, north = _node_esl(levels, origin)
    toward_x = xp.where(dx >= 0, east[:, None], west[:, None])
    toward_y = xp.where(dy >= 0, north[:, None], south[:, None])
    return (xd <= toward_x) & (yd <= toward_y)


def batch_pattern_is_safe(
    levels: BatchedSafetyLevels, source: Coord, dests: Array
) -> Array:
    """Definition 3 across patterns: ``mask[b, i]`` equals
    ``is_safe(levels_b, source, dests[b, i])``."""
    xp = array_namespace(dests)
    dx, dy, xd, yd = _dest_offsets(xp, source, dests)
    return _safe_from(xp, levels, source, dx, dy, xd, yd)


# ----------------------------------------------------------------------
# Extension 1 (Theorem 1a)
# ----------------------------------------------------------------------


def batch_pattern_extension1(
    unusable: Array,
    levels: BatchedSafetyLevels,
    source: Coord,
    dests: Array,
    allow_sub_minimal: bool = True,
) -> Array:
    """Theorem 1a across patterns.

    ``mask[b, i]`` equals the scalar decision's ``ensures_minimal``
    (``allow_sub_minimal=False``) or ``ensures_sub_minimal`` (default) for
    pattern ``b``.  A neighbour inside pattern ``b``'s faulty blocks is
    skipped for that pattern only -- the per-pattern generalisation of the
    scalar kernel's global skip.
    """
    xp = array_namespace(unusable)
    n, m = unusable.shape[-2], unusable.shape[-1]
    dx, dy, xd, yd = _dest_offsets(xp, source, dests)
    ensured = _safe_from(xp, levels, source, dx, dy, xd, yd)
    sx, sy = source
    for step_x, step_y in ((1, 0), (-1, 0), (0, 1), (0, -1)):
        nx, ny = sx + step_x, sy + step_y
        if not (0 <= nx < n and 0 <= ny < m):
            continue
        if step_x:
            preferred = dx > 0 if step_x > 0 else dx < 0
        else:
            preferred = dy > 0 if step_y > 0 else dy < 0
        eligible = xp.ones_like(ensured) if allow_sub_minimal else preferred
        ndx = dests[:, :, 0] - nx
        ndy = dests[:, :, 1] - ny
        neighbor_safe = _safe_from(
            xp, levels, (nx, ny), ndx, ndy, xp.abs(ndx), xp.abs(ndy)
        )
        open_here = ~unusable[:, nx, ny]
        ensured = ensured | (open_here[:, None] & eligible & neighbor_safe)
    return ensured


# ----------------------------------------------------------------------
# Extension 2 (Theorem 1b): vectorised segment tables
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AxisSampleTable:
    """Per-pattern segment representatives for one local axis.

    The batched analogue of :class:`repro.core.segments.RegionSegments`
    for the experiment's fixed source (identity frame): ``offsets`` and
    ``perp_levels`` are ``(batch, segments)``; ``valid`` masks segments
    that are empty for a pattern (region shorter than the window start).
    """

    offsets: Array
    perp_levels: Array
    valid: Array


def build_axis_sample_table(
    xp: Any,
    line_levels: Array,
    clear: Array,
    edge: int,
    segment_size: int | None,
) -> AxisSampleTable:
    """Segment representatives along one axis for every pattern at once.

    ``line_levels[b, k-1]`` is the perpendicular ESL of the node ``k`` hops
    along the axis (offsets ``1..edge``); ``clear[b]`` the source's clear
    distance along the axis.  Each global window ``[1..s], [s+1..2s], ...``
    contributes the in-region offset with the maximal perpendicular level,
    farthest-offset tie-break -- exactly
    :func:`repro.core.segments.build_axis_segments` with ``tie_break="far"``
    (the windows are pattern-independent; only the region length
    ``min(clear, edge)`` varies per pattern).

    The selection encodes ``score = level * (edge + 2) + offset`` so a
    single ``argmax`` realises "max level, then max offset": levels are
    capped at :data:`~repro.core.safety.UNBOUNDED` (``2**30``) and
    ``edge <= n + m``, so scores stay far inside int64.
    """
    if edge == 0:
        batch = clear.shape[0]
        empty = xp.zeros((batch, 0), dtype=xp.int64)
        return AxisSampleTable(
            offsets=empty, perp_levels=empty,
            valid=xp.zeros((batch, 0), dtype=xp.bool),
        )
    size = edge if segment_size is None else segment_size
    offsets = xp.arange(1, edge + 1, dtype=xp.int64)
    length = xp.minimum(clear, edge)[:, None]
    in_region = offsets <= length
    scale = edge + 2
    score = xp.where(in_region, line_levels * scale + offsets, -1)
    segments = -(-edge // size)
    pad = segments * size - edge
    if pad:
        batch = clear.shape[0]
        filler = xp.full((batch, pad), -1, dtype=xp.int64)
        score = xp.concat([score, filler], axis=-1)
        line_levels = xp.concat([line_levels, filler], axis=-1)
        offsets = xp.concat(
            [offsets, xp.arange(edge + 1, edge + pad + 1, dtype=xp.int64)], axis=-1
        )
    batch = clear.shape[0]
    score = xp.reshape(score, (batch, segments, size))
    levels_w = xp.reshape(line_levels, (batch, segments, size))
    offsets_w = xp.reshape(
        xp.broadcast_to(offsets[None, :], (batch, segments * size)),
        (batch, segments, size),
    )
    pick = xp.argmax(score, axis=-1)[:, :, None]
    best_score = xp.take_along_axis(score, pick, axis=-1)[:, :, 0]
    return AxisSampleTable(
        offsets=xp.take_along_axis(offsets_w, pick, axis=-1)[:, :, 0],
        perp_levels=xp.take_along_axis(levels_w, pick, axis=-1)[:, :, 0],
        valid=best_score >= 0,
    )


def _table_usable(
    xp: Any, table: AxisSampleTable, max_offsets: Array, required_levels: Array
) -> Array:
    """Some representative has ``offset <= max_offset`` and
    ``level >= required_level`` -- the batched ``best_for`` existence."""
    if table.offsets.shape[-1] == 0:
        return xp.zeros(max_offsets.shape, dtype=xp.bool)
    usable = (
        table.valid[:, None, :]
        & (table.offsets[:, None, :] <= max_offsets[:, :, None])
        & (table.perp_levels[:, None, :] >= required_levels[:, :, None])
    )
    return xp.any(usable, axis=-1)


def batch_pattern_extension2(
    levels: BatchedSafetyLevels,
    source: Coord,
    dests: Array,
    segment_size: int | None,
    mesh_shape: tuple[int, int],
    tables: tuple[AxisSampleTable, AxisSampleTable] | None = None,
) -> Array:
    """Theorem 1b across patterns.

    ``mask[b, i]`` equals
    ``extension2_decision_from_segments(...).ensures_minimal`` for pattern
    ``b`` with segments built for the source's identity frame (the
    experiment setting: segments are built once per pattern with
    ``Frame(origin=source)`` and reused for every destination).  Pass
    ``tables`` (from :func:`build_source_sample_tables`) to reuse the
    per-size tables across metrics.
    """
    xp = array_namespace(dests)
    dx, dy, xd, yd = _dest_offsets(xp, source, dests)
    east, south, west, north = _node_esl(levels, source)
    toward_x = xp.where(dx >= 0, east[:, None], west[:, None])
    toward_y = xp.where(dy >= 0, north[:, None], south[:, None])
    source_safe = (xd <= toward_x) & (yd <= toward_y)
    if tables is None:
        tables = build_source_sample_tables(levels, source, segment_size, mesh_shape)
    east_table, north_table = tables
    x_axis = (xd <= toward_x) & _table_usable(xp, east_table, xd, yd)
    y_axis = (yd <= toward_y) & _table_usable(xp, north_table, yd, xd)
    return source_safe | x_axis | y_axis


def build_source_sample_tables(
    levels: BatchedSafetyLevels,
    source: Coord,
    segment_size: int | None,
    mesh_shape: tuple[int, int],
) -> tuple[AxisSampleTable, AxisSampleTable]:
    """(East-axis, North-axis) sample tables for the fixed source.

    The identity-frame analogue of ``TrialContext.segments``: the East-axis
    table samples nodes ``(sx+k, sy)`` with their North levels, the
    North-axis table nodes ``(sx, sy+k)`` with their East levels.
    """
    xp = array_namespace(levels.east)
    n, m = mesh_shape
    sx, sy = source
    east_edge = n - 1 - sx
    north_edge = m - 1 - sy
    east_table = build_axis_sample_table(
        xp,
        levels.north[:, sx + 1 : sx + east_edge + 1, sy],
        levels.east[:, sx, sy],
        east_edge,
        segment_size,
    )
    north_table = build_axis_sample_table(
        xp,
        levels.east[:, sx, sy + 1 : sy + north_edge + 1],
        levels.north[:, sx, sy],
        north_edge,
        segment_size,
    )
    return east_table, north_table


# ----------------------------------------------------------------------
# Extension 3 (Theorem 1c)
# ----------------------------------------------------------------------


def batch_pattern_extension3(
    unusable: Array,
    levels: BatchedSafetyLevels,
    source: Coord,
    dests: Array,
    pivots: Array,
    pivot_valid: Array | None = None,
) -> Array:
    """Theorem 1c across patterns.

    ``pivots`` is ``(p, 2)`` (one pivot list shared by every pattern, e.g.
    the recursive-centre scheme) or ``(batch, p, 2)`` (per-pattern lists,
    e.g. the random scheme; pad ragged lists and mask the padding via
    ``pivot_valid``).  Out-of-mesh pivots must be masked by the caller;
    pivots inside a pattern's faulty blocks are skipped for that pattern,
    as in the scalar decision.  ``mask[b, i]`` equals the scalar
    ``extension3_decision(...).ensures_minimal``.
    """
    xp = array_namespace(unusable)
    n, m = unusable.shape[-2], unusable.shape[-1]
    batch = unusable.shape[0]
    dx, dy, xd, yd = _dest_offsets(xp, source, dests)
    ensured = _safe_from(xp, levels, source, dx, dy, xd, yd)
    if pivots.shape[-2] == 0:
        return ensured

    shared = pivots.ndim == 2
    if shared:
        pivots = xp.broadcast_to(pivots[None, :, :], (batch,) + pivots.shape)
    px = pivots[:, :, 0]
    py = pivots[:, :, 1]
    flat = px * m + py  # (batch, p)
    grid = (batch, n * m)
    blocked_p = xp.take_along_axis(
        xp.reshape(unusable, grid), flat, axis=1
    )
    open_pivot = ~blocked_p
    if pivot_valid is not None:
        open_pivot = open_pivot & pivot_valid
    p_east = xp.take_along_axis(xp.reshape(levels.east, grid), flat, axis=1)
    p_west = xp.take_along_axis(xp.reshape(levels.west, grid), flat, axis=1)
    p_north = xp.take_along_axis(xp.reshape(levels.north, grid), flat, axis=1)
    p_south = xp.take_along_axis(xp.reshape(levels.south, grid), flat, axis=1)

    # Local pivot coordinates per (pattern, destination, pivot): the
    # frame's axis reflections depend on the destination's quadrant.
    sign_x = xp.where(dx >= 0, 1, -1)[:, :, None]
    sign_y = xp.where(dy >= 0, 1, -1)[:, :, None]
    xi = (px[:, None, :] - source[0]) * sign_x
    yi = (py[:, None, :] - source[1]) * sign_y
    pivot_east = xp.where(dx[:, :, None] >= 0, p_east[:, None, :], p_west[:, None, :])
    pivot_north = xp.where(dy[:, :, None] >= 0, p_north[:, None, :], p_south[:, None, :])

    east, south, west, north = _node_esl(levels, source)
    src_east = xp.where(dx >= 0, east[:, None], west[:, None])[:, :, None]
    src_north = xp.where(dy >= 0, north[:, None], south[:, None])[:, :, None]

    in_box = (xi >= 0) & (xi <= xd[:, :, None]) & (yi >= 0) & (yi <= yd[:, :, None])
    source_reaches = (xi <= src_east) & (yi <= src_north)
    pivot_reaches = (xd[:, :, None] - xi <= pivot_east) & (
        yd[:, :, None] - yi <= pivot_north
    )
    chain = in_box & source_reaches & pivot_reaches & open_pivot[:, None, :]
    return ensured | xp.any(chain, axis=-1)


# ----------------------------------------------------------------------
# Existence oracle: batched monotone reachability
# ----------------------------------------------------------------------


def _climb_columns(xp: Any, base: Array, free: Array) -> Array:
    """One DP column across the batch: enter from the West, climb North.

    The batched form of :func:`repro.faults.coverage._climb_column`:
    ``base``/``free`` are ``(batch, m)``; a cell is reachable iff it is
    free and, within its contiguous free run, some cell at or below it is
    seeded by ``base``.
    """
    seed = base & free
    acc = xp.cumulative_sum(xp.astype(seed, xp.int64), axis=-1)
    block_acc = xp.where(~free, acc, 0)
    last_block_acc = _cummax_last(xp, block_acc)
    return free & (acc > last_block_acc)


def batch_reachability_map(
    unusable: Array, source: Coord, flip_x: bool = False, flip_y: bool = False
) -> Array:
    """Per-pattern monotone reachability over one source quadrant.

    ``out[b]`` equals ``monotone_reachability_map(unusable[b], source,
    flip_x, flip_y)``: entry ``[b, i, j]`` says whether a minimal path from
    the source reaches the node ``i`` columns and ``j`` rows into the
    quadrant under pattern ``b``.  (A pattern whose source is swallowed by
    a block yields an all-False map, matching the scalar early return.)
    """
    xp = array_namespace(unusable)
    sx, sy = source
    sub = unusable[:, : sx + 1, :] if flip_x else unusable[:, sx:, :]
    if flip_x:
        sub = xp.flip(sub, axis=1)
    sub = sub[:, :, : sy + 1] if flip_y else sub[:, :, sy:]
    if flip_y:
        sub = xp.flip(sub, axis=2)
    free = ~sub
    batch, nq, mq = free.shape
    seed_col = xp.zeros((batch, mq), dtype=xp.bool)
    seed_col[:, 0] = True
    columns = [_climb_columns(xp, seed_col, free[:, 0, :])]
    for x in range(1, nq):
        columns.append(_climb_columns(xp, columns[-1], free[:, x, :]))
    return xp.stack(columns, axis=1)


def batch_pattern_path_exists(
    unusable: Array,
    source: Coord,
    dests: Array,
    maps: dict[tuple[bool, bool], Array] | None = None,
) -> Array:
    """Minimal-path existence across patterns and destinations.

    ``mask[b, i]`` equals ``minimal_path_exists(unusable[b], source,
    dests[b, i])`` for block-free endpoints (the experiment protocol
    guarantees both).  Builds at most one quadrant map per destination
    quadrant present; pass ``maps`` to reuse them across metrics.
    """
    xp = array_namespace(unusable)
    m = unusable.shape[-1]
    dx, dy, xd, yd = _dest_offsets(xp, source, dests)
    out = xp.zeros(dx.shape, dtype=xp.bool)
    for flip_x in (False, True):
        for flip_y in (False, True):
            sel = ((dx < 0) == flip_x) & ((dy < 0) == flip_y)
            if not bool(xp.any(sel)):
                continue
            key = (flip_x, flip_y)
            if maps is not None and key in maps:
                quadrant = maps[key]
            else:
                quadrant = batch_reachability_map(unusable, source, flip_x, flip_y)
                if maps is not None:
                    maps[key] = quadrant
            nq, mq = quadrant.shape[-2], quadrant.shape[-1]
            flat_idx = xp.clip(xd, 0, nq - 1) * mq + xp.clip(yd, 0, mq - 1)
            batch = quadrant.shape[0]
            gathered = xp.take_along_axis(
                xp.reshape(quadrant, (batch, nq * mq)), flat_idx, axis=1
            )
            out = xp.where(sel, gathered, out)
    return out
