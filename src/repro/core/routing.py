"""Wu's minimal routing protocol and the extensions' two-phase routings.

:class:`WuRouter` realizes the paper's protocol: adaptive minimal routing
that consults only the boundary information present at the current node
(:mod:`repro.core.boundaries`).  At a non-critical node any free preferred
neighbour may be chosen; on the left section of a block's L1 (or the lower
section of its L3, or their joined polylines) with the destination in the
block's critical region, the packet must stay on the line -- the stay-on
direction is forced.

Theorem 1 guarantees that, from a safe source, this purely local procedure
delivers the packet in exactly ``D(s, d)`` hops; the test-suite checks that
guarantee for every safe pair on randomized fault patterns.

:func:`route_with_decision` turns a :class:`~repro.core.conditions.Decision`
into an actual path: single-phase for a safe source, two-phase through the
helper node for the extensions (Theorems 1a/1b/1c), and the one-detour
spare-neighbour route (length ``D + 2``) for sub-minimal decisions.
"""

from __future__ import annotations

import numpy as np

from repro.core.boundaries import BoundaryMap
from repro.core.conditions import Decision, DecisionKind
from repro.faults.blocks import BlockSet
from repro.mesh.frames import Frame
from repro.mesh.geometry import Coord, manhattan_distance
from repro.mesh.topology import Mesh2D
from repro.obs import Tracer
from repro.routing.path import Path
from repro.routing.router import (
    HopRouter,
    RoutingError,
    TieBreaker,
    balanced_tie_breaker,
)

__all__ = ["RoutingError", "WuRouter", "route_with_decision"]


class WuRouter(HopRouter):
    """The paper's boundary-information minimal routing protocol."""

    def __init__(
        self,
        mesh: Mesh2D,
        blocks: BlockSet,
        boundary_map: BoundaryMap | None = None,
        tie_breaker: TieBreaker = balanced_tie_breaker,
        tracer: Tracer | None = None,
    ):
        super().__init__(mesh, tracer=tracer)
        self.blocks = blocks
        self.boundaries = boundary_map if boundary_map is not None else BoundaryMap.for_blocks(blocks)
        self.tie_breaker = tie_breaker

    def next_hop(self, current: Coord, dest: Coord) -> Coord:
        frame = Frame.for_pair(current, dest)
        reflection = self.boundaries.reflection(frame.flip_x, frame.flip_y)
        canonical = self.boundaries.canonical(frame.flip_x, frame.flip_y)

        preferred = self.mesh.preferred_directions(current, dest)
        candidates = [
            direction
            for direction in preferred
            if not self.blocks.unusable[direction.step(current)]
        ]
        trc = self._tracer()
        tracing = trc.enabled
        if tracing:
            for direction in preferred:
                if direction not in candidates:
                    trc.emit("block_hit", at=current, blocked=direction.step(current),
                             dest=dest, direction=direction.name)
        if not candidates:
            raise RoutingError(
                f"no free preferred neighbour at {current} toward {dest}",
                partial=[current],
            )

        forbidden = {
            reflection.direction(d)
            for d in canonical.forbidden_directions(
                reflection.coord(current), reflection.coord(dest)
            )
        }
        allowed = [direction for direction in candidates if direction not in forbidden]
        if tracing:
            self._hop_note = {
                "rule": "stay-on-line" if forbidden else "adaptive",
                "candidates": len(allowed),
            }
            if forbidden:
                self._hop_note["forbidden"] = sorted(d.name for d in forbidden)
        if not allowed:
            raise RoutingError(
                f"every free preferred move at {current} toward {dest} is a detour "
                f"direction (forbidden: {sorted(d.name for d in forbidden)})",
                partial=[current],
            )
        return self.tie_breaker(current, dest, allowed).step(current)

    def route(self, source: Coord, dest: Coord, max_hops: int | None = None) -> Path:
        """Route and assert minimality (each hop is a preferred move)."""
        limit = max_hops if max_hops is not None else manhattan_distance(source, dest)
        path = super().route(source, dest, max_hops=limit)
        assert path.is_minimal  # every hop decreases the distance by one
        return path


def route_with_decision(
    router: WuRouter,
    decision: Decision,
    blocked: np.ndarray | None = None,
) -> Path:
    """Realize a safe-condition decision as an actual routed path.

    - ``SOURCE_SAFE``: one phase of Wu's protocol.
    - ``PREFERRED_NEIGHBOR_SAFE``: hop to the neighbour, then Wu's protocol
      (still minimal: the neighbour is one hop closer).
    - ``SPARE_NEIGHBOR_SAFE``: hop to the spare neighbour, then Wu's
      protocol -- the sub-minimal route of length ``D + 2``.
    - ``AXIS_NODE_SAFE`` / ``PIVOT_SAFE``: Wu's protocol to the helper, then
      from the helper to the destination; both legs are monotone toward the
      destination, so the concatenation is minimal.

    Raises :class:`RoutingError` for ``UNSAFE`` decisions.
    """
    source, dest, via = decision.source, decision.dest, decision.via
    kind = decision.kind
    trc = router._tracer()
    if trc.enabled:
        trc.emit("extension_fired", decision=kind.value, source=source, dest=dest,
                 via=via, overhead=decision.expected_length_overhead)
    if kind is DecisionKind.UNSAFE:
        raise RoutingError(f"decision for {source} -> {dest} is unsafe; nothing to route")
    if kind is DecisionKind.SOURCE_SAFE:
        return router.route(source, dest)
    assert via is not None
    if kind in (DecisionKind.PREFERRED_NEIGHBOR_SAFE, DecisionKind.SPARE_NEIGHBOR_SAFE):
        first_leg = Path.of([source, via])
        if trc.enabled:
            # The single neighbour hop never enters the driver loop, so
            # report it here to keep hop accounting exact.
            rule = ("spare-neighbor" if kind is DecisionKind.SPARE_NEIGHBOR_SAFE
                    else "preferred-neighbor")
            trc.emit("hop", at=source, to=via, dest=dest, index=0, rule=rule)
            if manhattan_distance(via, dest) > manhattan_distance(source, dest):
                trc.emit("detour", at=source, to=via, dest=dest)
    else:  # axis node or pivot: a full Wu-protocol leg
        first_leg = router.route(source, via)
    second_leg = router.route(via, dest)
    path = first_leg.concat(second_leg)

    expected = manhattan_distance(source, dest) + decision.expected_length_overhead
    if path.hops != expected:
        raise RoutingError(
            f"{kind.value} route took {path.hops} hops, expected {expected}",
            partial=list(path.nodes),
        )
    if blocked is not None and not path.avoids(blocked):
        raise RoutingError("routed path crosses a blocked node", partial=list(path.nodes))
    return path
