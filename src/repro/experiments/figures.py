"""One entry point per paper figure.

Figures 7 and 8 are direct measurements over fault patterns; Figures 9-12
are condition experiments built on :class:`~repro.experiments.runner.
ConditionExperiment`.  Every function returns a
:class:`~repro.experiments.report.FigureSeries` whose columns mirror the
curves of the paper's plot.

The condition figures accept ``workers``: the sweep shards its fault
patterns over that many processes (see ``run(workers=N)`` in the runner)
and produces a bit-identical series at any worker count.  Their metric
lists are built by module-level *factories* (``fig9_metrics`` ...), which
are picklable and therefore usable from worker processes; each metric
carries the scalar predicate, the per-pattern destination-batched form
from :mod:`repro.core.batched` where one exists, and -- for the
block-model curves -- the cross-pattern form from
:mod:`repro.core.batched_patterns` used by ``run(engine="batched")``
(``engine`` / ``backend`` thread through each figure entry point).
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.analysis.affected_rows import (
    count_affected_columns,
    count_affected_rows,
    expected_affected_rows,
)
from repro.analysis.statistics import Estimate, mean_and_ci
from repro.core.batched import (
    batch_extension1,
    batch_extension2_from_segments,
    batch_extension3,
    batch_is_safe,
)
from repro.core.batched_patterns import (
    batch_pattern_extension1,
    batch_pattern_extension2,
    batch_pattern_extension3,
    batch_pattern_is_safe,
    batch_pattern_path_exists,
)
from repro.core.conditions import is_safe
from repro.core.extensions import (
    extension1_decision,
    extension2_decision_from_segments,
    extension3_decision,
)
from repro.core.strategies import Strategy, StrategyConfig, strategy_decision
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import FigureSeries
from repro.experiments.runner import (
    BLOCK_MODEL,
    MCC_MODEL,
    ConditionExperiment,
    MetricSpec,
    PatternBatchContext,
    TrialContext,
)
from repro.faults.coverage import batch_minimal_path_exists, minimal_path_exists
from repro.faults.injection import generate_scenario
from repro.faults.mcc import MCCType
from repro.mesh.geometry import Coord

Progress = Callable[[str], None] | None


# ----------------------------------------------------------------------
# Metric predicates shared by Figures 9-12 (scalar + batched forms)
# ----------------------------------------------------------------------


def _safe_source(ctx: TrialContext, dest: Coord) -> bool:
    return is_safe(ctx.levels, ctx.source, dest)


def _safe_source_batch(ctx: TrialContext, dests: np.ndarray) -> np.ndarray:
    return batch_is_safe(ctx.levels, ctx.source, dests)


def _safe_source_pattern(pctx: PatternBatchContext) -> Any:
    return batch_pattern_is_safe(pctx.levels, pctx.source, pctx.dests)


def _existence(ctx: TrialContext, dest: Coord) -> bool:
    return minimal_path_exists(ctx.blocked, ctx.source, dest)


def _existence_batch(ctx: TrialContext, dests: np.ndarray) -> np.ndarray:
    return batch_minimal_path_exists(
        ctx.blocked, ctx.source, dests, maps=ctx.reachability_maps
    )


def _existence_pattern(pctx: PatternBatchContext) -> Any:
    return batch_pattern_path_exists(
        pctx.blocked, pctx.source, pctx.dests, maps=pctx.reachability_maps
    )


def _extension1_min(ctx: TrialContext, dest: Coord) -> bool:
    decision = extension1_decision(
        ctx.mesh, ctx.levels, ctx.blocked, ctx.source, dest, allow_sub_minimal=False
    )
    return decision.ensures_minimal


def _extension1_min_batch(ctx: TrialContext, dests: np.ndarray) -> np.ndarray:
    return batch_extension1(
        ctx.mesh, ctx.levels, ctx.blocked, ctx.source, dests, allow_sub_minimal=False
    )


def _extension1_min_pattern(pctx: PatternBatchContext) -> Any:
    return batch_pattern_extension1(
        pctx.blocked, pctx.levels, pctx.source, pctx.dests, allow_sub_minimal=False
    )


def _extension1_submin(ctx: TrialContext, dest: Coord) -> bool:
    decision = extension1_decision(
        ctx.mesh, ctx.levels, ctx.blocked, ctx.source, dest, allow_sub_minimal=True
    )
    return decision.ensures_sub_minimal


def _extension1_submin_batch(ctx: TrialContext, dests: np.ndarray) -> np.ndarray:
    return batch_extension1(
        ctx.mesh, ctx.levels, ctx.blocked, ctx.source, dests, allow_sub_minimal=True
    )


def _extension1_submin_pattern(pctx: PatternBatchContext) -> Any:
    return batch_pattern_extension1(
        pctx.blocked, pctx.levels, pctx.source, pctx.dests, allow_sub_minimal=True
    )


def _extension2(size: int | None) -> Callable[[TrialContext, Coord], bool]:
    def metric(ctx: TrialContext, dest: Coord) -> bool:
        east, north = ctx.segments(size)
        decision = extension2_decision_from_segments(ctx.levels, ctx.source, dest, east, north)
        return decision.ensures_minimal

    return metric


def _extension2_batch(size: int | None) -> Callable[[TrialContext, np.ndarray], np.ndarray]:
    def metric(ctx: TrialContext, dests: np.ndarray) -> np.ndarray:
        east, north = ctx.segments(size)
        return batch_extension2_from_segments(ctx.levels, ctx.source, dests, east, north)

    return metric


def _extension2_pattern(size: int | None) -> Callable[[PatternBatchContext], Any]:
    def metric(pctx: PatternBatchContext) -> Any:
        return batch_pattern_extension2(
            pctx.levels, pctx.source, pctx.dests, size,
            (pctx.mesh.n, pctx.mesh.m), tables=pctx.tables(size),
        )

    return metric


def _extension3(level: int) -> Callable[[TrialContext, Coord], bool]:
    def metric(ctx: TrialContext, dest: Coord) -> bool:
        decision = extension3_decision(
            ctx.mesh, ctx.levels, ctx.blocked, ctx.source, dest, ctx.pivots_by_level[level]
        )
        return decision.ensures_minimal

    return metric


def _extension3_batch(level: int) -> Callable[[TrialContext, np.ndarray], np.ndarray]:
    def metric(ctx: TrialContext, dests: np.ndarray) -> np.ndarray:
        return batch_extension3(
            ctx.mesh, ctx.levels, ctx.blocked, ctx.source, dests, ctx.pivots_by_level[level]
        )

    return metric


def _extension3_pattern(level: int) -> Callable[[PatternBatchContext], Any]:
    def metric(pctx: PatternBatchContext) -> Any:
        return batch_pattern_extension3(
            pctx.blocked, pctx.levels, pctx.source, pctx.dests, pctx.pivot_array(level)
        )

    return metric


def _strategy(strategy: Strategy, config: ExperimentConfig) -> Callable[[TrialContext, Coord], bool]:
    strategy_config = StrategyConfig(
        segment_size=config.strategy_segment_size,
        pivot_levels=config.strategy_pivot_levels,
        pivot_scheme="random",
    )

    def metric(ctx: TrialContext, dest: Coord) -> bool:
        decision = strategy_decision(
            strategy,
            ctx.mesh,
            ctx.levels,
            ctx.blocked,
            ctx.source,
            dest,
            ctx.strategy_pivots,
            strategy_config,
        )
        return decision.ensures_minimal

    return metric


def _strategy_batch(
    strategy: Strategy, config: ExperimentConfig
) -> Callable[[TrialContext, np.ndarray], np.ndarray]:
    """Batched strategy mask: the OR of the used extensions' kernels.

    Valid because with ``allow_sub_minimal=False`` (the experiment setting)
    every non-UNSAFE decision a strategy can return ensures a minimal path,
    so "first extension that fires" and "any extension fires" agree.  The
    destinations come from the quadrant-I region, where Extension 2's
    per-pair frame coincides with the segments' source frame.
    """
    segment_size = config.strategy_segment_size

    def metric(ctx: TrialContext, dests: np.ndarray) -> np.ndarray:
        ensured = np.zeros(len(dests), dtype=bool)
        if strategy.uses_extension1:
            ensured |= batch_extension1(
                ctx.mesh, ctx.levels, ctx.blocked, ctx.source, dests,
                allow_sub_minimal=False,
            )
        if strategy.uses_extension2:
            east, north = ctx.segments(segment_size)
            ensured |= batch_extension2_from_segments(
                ctx.levels, ctx.source, dests, east, north
            )
        if strategy.uses_extension3:
            ensured |= batch_extension3(
                ctx.mesh, ctx.levels, ctx.blocked, ctx.source, dests, ctx.strategy_pivots
            )
        return ensured

    return metric


def _strategy_pattern(
    strategy: Strategy, config: ExperimentConfig
) -> Callable[[PatternBatchContext], Any]:
    """Cross-pattern strategy mask (same OR argument as ``_strategy_batch``)."""
    segment_size = config.strategy_segment_size

    def metric(pctx: PatternBatchContext) -> Any:
        xp = pctx.xp
        shape = (pctx.dests.shape[0], pctx.dests.shape[1])
        ensured = xp.zeros(shape, dtype=xp.bool)
        if strategy.uses_extension1:
            ensured = ensured | batch_pattern_extension1(
                pctx.blocked, pctx.levels, pctx.source, pctx.dests,
                allow_sub_minimal=False,
            )
        if strategy.uses_extension2:
            ensured = ensured | batch_pattern_extension2(
                pctx.levels, pctx.source, pctx.dests, segment_size,
                (pctx.mesh.n, pctx.mesh.m), tables=pctx.tables(segment_size),
            )
        if strategy.uses_extension3:
            ensured = ensured | batch_pattern_extension3(
                pctx.blocked, pctx.levels, pctx.source, pctx.dests,
                pctx.strategy_pivots, pivot_valid=pctx.strategy_valid,
            )
        return ensured

    return metric


def _both_models(
    name: str,
    fn: Callable[[TrialContext, Coord], bool],
    model: str,
    batch_fn: Callable[[TrialContext, np.ndarray], np.ndarray] | None = None,
    pattern_fn: Callable[[PatternBatchContext], Any] | None = None,
) -> MetricSpec:
    suffix = "" if model == BLOCK_MODEL else "a"
    return MetricSpec(
        name=f"{name}{suffix}",
        fn=fn,
        model=model,
        batch_fn=batch_fn,
        pattern_fn=pattern_fn if model == BLOCK_MODEL else None,
    )


# ----------------------------------------------------------------------
# Figure 7: affected rows/columns, analytical vs experimental
# ----------------------------------------------------------------------


def fig7_affected_rows(
    config: ExperimentConfig | None = None, progress: Progress = None
) -> FigureSeries:
    """Percentage of affected rows (and columns): Theorem 2 vs simulation."""
    config = config or ExperimentConfig.from_environment()
    rng = np.random.default_rng(config.seed)
    n = config.mesh_side
    series = FigureSeries(
        figure_id="fig7",
        title="expected percentage of affected rows (and columns)",
        x_label="faults",
    )
    series.notes.append(config.describe())
    for fault_count in config.fault_counts:
        fractions: list[float] = []
        for _ in range(config.patterns_per_count):
            scenario = generate_scenario(config.mesh, fault_count, rng, source=config.source)
            affected = count_affected_rows(scenario.blocks.unusable)
            affected += count_affected_columns(scenario.blocks.unusable)
            fractions.append(affected / (2 * n))
        series.xs.append(float(fault_count))
        series.add_point("analytical", Estimate(expected_affected_rows(n, fault_count) / n, 0.0, 1))
        series.add_point("experimental", mean_and_ci(fractions))
        if progress is not None:
            progress(f"fig7: k={fault_count} done")
    series.validate()
    return series


# ----------------------------------------------------------------------
# Figure 8: average number of disabled nodes per block
# ----------------------------------------------------------------------


def fig8_disabled_nodes(
    config: ExperimentConfig | None = None, progress: Progress = None
) -> FigureSeries:
    """Average disabled (healthy but sacrificed) nodes per faulty block,
    under Wu's faulty block model and the MCC model (type one)."""
    config = config or ExperimentConfig.from_environment()
    rng = np.random.default_rng(config.seed)
    series = FigureSeries(
        figure_id="fig8",
        title="average number of disabled nodes in a faulty block",
        x_label="faults",
    )
    series.notes.append(config.describe())
    for fault_count in config.fault_counts:
        block_means: list[float] = []
        mcc_means: list[float] = []
        for _ in range(config.patterns_per_count):
            scenario = generate_scenario(config.mesh, fault_count, rng, source=config.source)
            block_means.append(scenario.blocks.average_disabled_per_block())
            mcc_means.append(scenario.mccs(MCCType.TYPE_ONE).average_disabled_per_component())
        series.xs.append(float(fault_count))
        series.add_point("wu_model", mean_and_ci(block_means))
        series.add_point("mcc", mean_and_ci(mcc_means))
        if progress is not None:
            progress(f"fig8: k={fault_count} done")
    series.validate()
    return series


# ----------------------------------------------------------------------
# Figures 9-12: condition experiments
# ----------------------------------------------------------------------


def fig9_metrics(config: ExperimentConfig) -> list[MetricSpec]:
    """Figure 9's curves (picklable metrics factory)."""
    metrics: list[MetricSpec] = []
    for model in (BLOCK_MODEL, MCC_MODEL):
        metrics += [
            _both_models(
                "safe_source", _safe_source, model, _safe_source_batch,
                _safe_source_pattern,
            ),
            _both_models(
                "ext1_min", _extension1_min, model, _extension1_min_batch,
                _extension1_min_pattern,
            ),
            _both_models(
                "ext1_submin", _extension1_submin, model, _extension1_submin_batch,
                _extension1_submin_pattern,
            ),
            _both_models(
                "existence", _existence, model, _existence_batch, _existence_pattern
            ),
        ]
    return metrics


def fig9_block_metrics(config: ExperimentConfig) -> list[MetricSpec]:
    """Figure 9's block-model curves only (picklable metrics factory).

    Every curve here has a cross-pattern kernel, so under
    ``run(engine="batched")`` the whole sweep is one array program per
    shard -- the workload pair behind the ``macro.conditions_*`` bench
    gate compares exactly this factory under both engines.
    """
    return [
        metric for metric in fig9_metrics(config) if metric.model == BLOCK_MODEL
    ]


def fig9_extension1(
    config: ExperimentConfig | None = None,
    progress: Progress = None,
    workers: int = 1,
    engine: str = "auto",
    backend: str = "numpy",
) -> FigureSeries:
    """Safe source, extension 1 (min), extension 1 (sub-min), and the
    optimal existence baseline, under both fault models (Figure 9 a+b)."""
    config = config or ExperimentConfig.from_environment()
    experiment = ConditionExperiment(config, metrics_factory=fig9_metrics)
    return experiment.run(
        "fig9", "minimal/sub-minimal ensured: extension 1", progress,
        workers=workers, engine=engine, backend=backend,
    )


def fig10_metrics(config: ExperimentConfig) -> list[MetricSpec]:
    """Figure 10's curves (picklable metrics factory)."""
    metrics: list[MetricSpec] = []
    for model in (BLOCK_MODEL, MCC_MODEL):
        metrics.append(
            _both_models(
                "safe_source", _safe_source, model, _safe_source_batch,
                _safe_source_pattern,
            )
        )
        for size in config.segment_sizes:
            label = "max" if size is None else str(size)
            metrics.append(
                _both_models(
                    f"ext2_{label}", _extension2(size), model,
                    _extension2_batch(size), _extension2_pattern(size),
                )
            )
        metrics.append(
            _both_models(
                "existence", _existence, model, _existence_batch, _existence_pattern
            )
        )
    return metrics


def fig10_extension2(
    config: ExperimentConfig | None = None,
    progress: Progress = None,
    workers: int = 1,
    engine: str = "auto",
    backend: str = "numpy",
) -> FigureSeries:
    """Extension 2 for every segment-size variation (Figure 10 a+b)."""
    config = config or ExperimentConfig.from_environment()
    experiment = ConditionExperiment(config, metrics_factory=fig10_metrics)
    return experiment.run(
        "fig10", "minimal ensured: extension 2 segment sizes", progress,
        workers=workers, engine=engine, backend=backend,
    )


def fig11_metrics(config: ExperimentConfig) -> list[MetricSpec]:
    """Figure 11's curves (picklable metrics factory)."""
    metrics: list[MetricSpec] = []
    for model in (BLOCK_MODEL, MCC_MODEL):
        metrics.append(
            _both_models(
                "safe_source", _safe_source, model, _safe_source_batch,
                _safe_source_pattern,
            )
        )
        for level in config.pivot_levels:
            metrics.append(
                _both_models(
                    f"ext3_level{level}", _extension3(level), model,
                    _extension3_batch(level), _extension3_pattern(level),
                )
            )
        metrics.append(
            _both_models(
                "existence", _existence, model, _existence_batch, _existence_pattern
            )
        )
    return metrics


def fig11_extension3(
    config: ExperimentConfig | None = None,
    progress: Progress = None,
    workers: int = 1,
    engine: str = "auto",
    backend: str = "numpy",
) -> FigureSeries:
    """Extension 3 for partition levels 1-3 (Figure 11 a+b)."""
    config = config or ExperimentConfig.from_environment()
    experiment = ConditionExperiment(config, metrics_factory=fig11_metrics)
    return experiment.run(
        "fig11", "minimal ensured: extension 3 partition levels", progress,
        workers=workers, engine=engine, backend=backend,
    )


def fig12_metrics(config: ExperimentConfig) -> list[MetricSpec]:
    """Figure 12's curves (picklable metrics factory)."""
    metrics: list[MetricSpec] = []
    for model in (BLOCK_MODEL, MCC_MODEL):
        for strategy in Strategy:
            metrics.append(
                _both_models(
                    f"strategy{strategy.value}",
                    _strategy(strategy, config),
                    model,
                    _strategy_batch(strategy, config),
                    _strategy_pattern(strategy, config),
                )
            )
        metrics.append(
            _both_models(
                "existence", _existence, model, _existence_batch, _existence_pattern
            )
        )
    return metrics


def fig12_strategies(
    config: ExperimentConfig | None = None,
    progress: Progress = None,
    workers: int = 1,
    engine: str = "auto",
    backend: str = "numpy",
) -> FigureSeries:
    """Strategies 1-4 / 1a-4a (Figure 12 a+b)."""
    config = config or ExperimentConfig.from_environment()
    experiment = ConditionExperiment(config, metrics_factory=fig12_metrics)
    return experiment.run(
        "fig12", "minimal ensured: strategies 1-4", progress,
        workers=workers, engine=engine, backend=backend,
    )
