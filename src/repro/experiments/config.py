"""Experiment parameters.

The paper's setup (Sec. 5): a 200x200 mesh, the source at the centre acting
as the coordinate origin, destinations uniform in the 100x100 quadrant-I
submesh, up to 200 uniformly random faults, source and destination outside
every faulty block.

Running that at full scale takes minutes per figure, so the presets scale
the mesh down while keeping the **fault density** (faults per node) and the
destination-region proportions identical -- the percentage curves then keep
their shape.  Set the environment variable ``REPRO_FULL=1`` (or call
:meth:`ExperimentConfig.paper`) to run the exact paper scale.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.mesh.geometry import Coord, Rect
from repro.mesh.topology import Mesh2D

#: The paper's parameters.
PAPER_SIDE = 200
PAPER_MAX_FAULTS = 200
PAPER_FAULT_STEPS = 8


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters for one simulation sweep."""

    mesh_side: int = PAPER_SIDE
    fault_counts: tuple[int, ...] = tuple(
        PAPER_MAX_FAULTS * (i + 1) // PAPER_FAULT_STEPS for i in range(PAPER_FAULT_STEPS)
    )
    patterns_per_count: int = 20
    destinations_per_pattern: int = 40
    seed: int = 2002
    workload: str = "uniform"  # "uniform" (paper) or "clustered"
    segment_sizes: tuple[int | None, ...] = (1, 5, 10, None)
    pivot_levels: tuple[int, ...] = (1, 2, 3)
    strategy_segment_size: int = 5
    strategy_pivot_levels: int = 3

    def __post_init__(self) -> None:
        if self.mesh_side < 8:
            raise ValueError("mesh side too small for a meaningful sweep")
        if not self.fault_counts:
            raise ValueError("need at least one fault count")
        if max(self.fault_counts) > self.mesh_side * self.mesh_side // 4:
            raise ValueError("fault density above 25% leaves no scenario to measure")
        if self.workload not in ("uniform", "clustered"):
            raise ValueError(f"unknown workload {self.workload!r}")

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def mesh(self) -> Mesh2D:
        return Mesh2D(self.mesh_side, self.mesh_side)

    @property
    def source(self) -> Coord:
        """The paper's source: the centre of the mesh."""
        return self.mesh.center

    @property
    def destination_region(self) -> Rect:
        """The quadrant-I submesh the destinations are drawn from."""
        sx, sy = self.source
        return Rect(sx, self.mesh_side - 1, sy, self.mesh_side - 1)

    @property
    def pivot_region(self) -> Rect:
        """Where Extension 3's pivots live (the quadrant-I submesh)."""
        return self.destination_region

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @staticmethod
    def paper(
        patterns_per_count: int = 50, destinations_per_pattern: int = 30
    ) -> "ExperimentConfig":
        """The exact paper scale (200x200, faults 25..200).

        Variance is dominated by the fault *pattern* (one block near the
        source taints every destination of that pattern), so the default
        budget favours many patterns over many destinations per pattern.
        """
        return ExperimentConfig(
            patterns_per_count=patterns_per_count,
            destinations_per_pattern=destinations_per_pattern,
        )

    @staticmethod
    def scaled(side: int, patterns_per_count: int, destinations_per_pattern: int, seed: int = 2002) -> "ExperimentConfig":
        """A smaller mesh with the paper's fault *density* preserved.

        Fault counts scale with the node count, so a 60x60 preset sweeps
        ``200 * (60/200)^2 = 18`` faults at the top step.
        """
        ratio = (side / PAPER_SIDE) ** 2
        steps = tuple(
            max(1, round(PAPER_MAX_FAULTS * ratio * (i + 1) / PAPER_FAULT_STEPS))
            for i in range(PAPER_FAULT_STEPS)
        )
        return ExperimentConfig(
            mesh_side=side,
            fault_counts=steps,
            patterns_per_count=patterns_per_count,
            destinations_per_pattern=destinations_per_pattern,
            seed=seed,
        )

    @staticmethod
    def quick() -> "ExperimentConfig":
        """Seconds-scale preset for tests and default bench runs."""
        return ExperimentConfig.scaled(side=60, patterns_per_count=6, destinations_per_pattern=15)

    @staticmethod
    def from_environment() -> "ExperimentConfig":
        """Paper scale when ``REPRO_FULL=1``, the quick preset otherwise."""
        if os.environ.get("REPRO_FULL") == "1":
            return ExperimentConfig.paper()
        return ExperimentConfig.quick()

    def describe(self) -> str:
        return (
            f"{self.mesh_side}x{self.mesh_side} mesh, source {self.source}, "
            f"faults {list(self.fault_counts)}, "
            f"{self.patterns_per_count} patterns x {self.destinations_per_pattern} destinations, "
            f"seed {self.seed}"
        )
