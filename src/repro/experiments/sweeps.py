"""Supplementary sweeps beyond the paper's figures.

Currently one sweep: **mesh-size invariance**.  The reduced-scale presets in
:mod:`repro.experiments.config` assume that, at a fixed fault *density*, the
percentage curves of Figures 9-12 are insensitive to the mesh side.  This
sweep measures that directly: the same density and trial budget across a
range of sides, reporting the safe-source / Extension-1 / existence
percentages per side.  The bench asserts the spread stays small, which is
the empirical licence for comparing quick-preset shapes with the paper's
200x200 results.

Each side is one :class:`~repro.experiments.runner.ConditionExperiment`
sweep, so the whole thing rides the batched pattern engine: every side's
patterns are stacked into ``(batch, n, m)`` grids and decided in one
array-program pass (``engine``/``backend`` select the evaluator, and
``workers`` shards patterns exactly like the figure sweeps).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import FigureSeries
from repro.experiments.runner import ConditionExperiment, MetricSpec


def _sweep_metrics(config: ExperimentConfig) -> list[MetricSpec]:
    """The sweep's block-model curves (picklable metrics factory)."""
    from repro.experiments.figures import fig9_block_metrics

    return [
        metric
        for metric in fig9_block_metrics(config)
        if metric.name in ("safe_source", "ext1_min", "existence")
    ]


def mesh_size_sweep(
    sides: Sequence[int] = (50, 100, 150, 200),
    density: float = 200 / (200 * 200),
    patterns_per_side: int = 10,
    destinations_per_pattern: int = 30,
    seed: int = 404,
    workers: int = 1,
    engine: str = "auto",
    backend: str = "numpy",
) -> FigureSeries:
    """Safe-source / Extension-1 / existence percentages versus mesh side,
    at a fixed fault density (default: the paper's k=200 density)."""
    series = FigureSeries(
        figure_id="sweep_size",
        title=f"size invariance at density {density:.2%}",
        x_label="mesh side",
    )
    for side in sides:
        fault_count = max(1, round(density * side * side))
        config = replace(
            ExperimentConfig.scaled(
                side, patterns_per_side, destinations_per_pattern, seed=seed
            ),
            fault_counts=(fault_count,),
        )
        experiment = ConditionExperiment(config, metrics_factory=_sweep_metrics)
        side_series = experiment.run(
            "sweep_size", f"side {side}", workers=workers,
            engine=engine, backend=backend,
        )
        series.xs.append(float(side))
        for name, points in side_series.series.items():
            series.add_point(name, points[0])
    series.notes.append(
        f"density {density:.3%}, {patterns_per_side} patterns x "
        f"{destinations_per_pattern} destinations per side, seed {seed}"
    )
    series.validate()
    return series
