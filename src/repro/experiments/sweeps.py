"""Supplementary sweeps beyond the paper's figures.

Currently one sweep: **mesh-size invariance**.  The reduced-scale presets in
:mod:`repro.experiments.config` assume that, at a fixed fault *density*, the
percentage curves of Figures 9-12 are insensitive to the mesh side.  This
sweep measures that directly: the same density and trial budget across a
range of sides, reporting the safe-source / Extension-1 / existence
percentages per side.  The bench asserts the spread stays small, which is
the empirical licence for comparing quick-preset shapes with the paper's
200x200 results.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.statistics import proportion_ci
from repro.core.conditions import is_safe
from repro.core.extensions import extension1_decision
from repro.core.safety import compute_safety_levels
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import FigureSeries
from repro.faults.coverage import minimal_path_exists
from repro.faults.injection import generate_scenario


def mesh_size_sweep(
    sides: Sequence[int] = (50, 100, 150, 200),
    density: float = 200 / (200 * 200),
    patterns_per_side: int = 10,
    destinations_per_pattern: int = 30,
    seed: int = 404,
) -> FigureSeries:
    """Safe-source / Extension-1 / existence percentages versus mesh side,
    at a fixed fault density (default: the paper's k=200 density)."""
    series = FigureSeries(
        figure_id="sweep_size",
        title=f"size invariance at density {density:.2%}",
        x_label="mesh side",
    )
    rng = np.random.default_rng(seed)
    for side in sides:
        config = ExperimentConfig.scaled(
            side, patterns_per_side, destinations_per_pattern, seed=seed
        )
        fault_count = max(1, round(density * side * side))
        successes = {"safe_source": 0, "ext1_min": 0, "existence": 0}
        trials = 0
        for _ in range(patterns_per_side):
            scenario = generate_scenario(config.mesh, fault_count, rng, source=config.source)
            levels = compute_safety_levels(config.mesh, scenario.blocks.unusable)
            for _ in range(destinations_per_pattern):
                dest = scenario.pick_destination(
                    rng, config.destination_region, exclude={config.source}
                )
                trials += 1
                if is_safe(levels, config.source, dest):
                    successes["safe_source"] += 1
                decision = extension1_decision(
                    config.mesh,
                    levels,
                    scenario.blocks.unusable,
                    config.source,
                    dest,
                    allow_sub_minimal=False,
                )
                if decision.ensures_minimal:
                    successes["ext1_min"] += 1
                if minimal_path_exists(scenario.blocks.unusable, config.source, dest):
                    successes["existence"] += 1
        series.xs.append(float(side))
        for name, count in successes.items():
            series.add_point(name, proportion_ci(count, trials))
    series.notes.append(
        f"density {density:.3%}, {patterns_per_side} patterns x "
        f"{destinations_per_pattern} destinations per side, seed {seed}"
    )
    series.validate()
    return series
