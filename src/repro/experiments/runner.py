"""Scenario/trial driver for the condition experiments (Figures 9-12).

One *pattern* is a random fault placement; for each pattern the runner
builds both fault models, their safety levels, the pivot sets and the
source's axis segments once, then evaluates every registered metric on
every random destination.  Metrics under the block and MCC models see the
*same* fault patterns and destinations, so the paper's (a)/(b) figure pairs
are paired comparisons.

Scaling layers (see ``docs/API.md``, "Scaling experiments" and "Batched
pattern engine"):

- destinations are evaluated as **batches**: a metric with a ``batch_fn``
  (a vectorised kernel from :mod:`repro.core.batched`) decides all of a
  pattern's destinations in one numpy call;
- whole shards are evaluated as **pattern batches**:
  ``run(engine="batched")`` stacks a shard's fault patterns into
  ``(batch, n, m)`` grids and drives the cross-pattern kernels of
  :mod:`repro.core.batched_patterns` -- block formation, ESLs, and every
  block-model condition metric with a ``pattern_fn`` evaluate all
  patterns in one array-program pass (on any array API backend via
  ``backend=``).  Metrics without a ``pattern_fn`` (MCC-model curves,
  custom predicates) fall back to the per-pattern path inside the same
  shard, and non-uniform workloads fall back entirely, so the engine is
  always safe to request.  Results are bit-identical to the scalar
  engine: the batched generators consume each pattern's RNG stream draw
  for draw like the scalar pipeline does.
- per-pattern artifacts (blocked grid, rectangles, ESL grid, axis
  segments) flow through the process-wide
  :class:`~repro.parallel.cache.ArtifactCache`, so block-/MCC-model
  metrics and repeated same-seed sweeps never recompute them;
- ``run(workers=N)`` shards ``patterns_per_count`` across a
  :class:`~concurrent.futures.ProcessPoolExecutor`.  Every pattern owns a
  :class:`numpy.random.SeedSequence` spawned along a fixed tree
  (see :mod:`repro.parallel.pool`), so serial and parallel runs produce
  bit-identical :class:`~repro.experiments.report.FigureSeries`; the
  batch engine composes (each worker stacks its own shard).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.analysis.statistics import proportion_ci
from repro.core.array_api import resolve_backend, to_numpy
from repro.core.batched_patterns import (
    AxisSampleTable,
    BatchedSafetyLevels,
    batch_disable_fixpoint,
    batch_safety_levels,
    build_source_sample_tables,
)
from repro.core.pivots import random_pivots, recursive_center_pivots
from repro.core.safety import SafetyLevels, compute_safety_levels
from repro.core.segments import RegionSegments, build_axis_segments
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import FigureSeries
from repro.faults.blocks import build_faulty_blocks
from repro.faults.injection import FaultScenario, generate_scenario, uniform_faults_batch
from repro.faults.mcc import MCCType
from repro.mesh.frames import Frame
from repro.mesh.geometry import Coord, Direction, Rect
from repro.mesh.topology import Mesh2D
from repro.parallel.cache import get_artifact_cache
from repro.parallel.pool import ShardPlan, plan_shards

#: The fault models a metric can run under.
BLOCK_MODEL = "block"
MCC_MODEL = "mcc"

#: Engines ``ConditionExperiment.run`` accepts; ``"auto"`` means batched.
ENGINES = ("auto", "batched", "scalar")


@dataclass
class ScenarioArtifacts:
    """Derived state shared by every metric over one (pattern, model) pair.

    These are exactly the artifacts that are deterministic functions of the
    fault pattern (no RNG involved), which makes them safe to reuse through
    the :class:`~repro.parallel.cache.ArtifactCache`: the blocked grid, the
    block/MCC rectangles, the full ESL grid, and the lazily-built axis
    segments for the fixed source.
    """

    blocked: np.ndarray
    rects: list[Rect]
    levels: SafetyLevels
    segment_cache: dict[tuple[int | None, str], tuple[RegionSegments, RegionSegments]] = field(
        default_factory=dict
    )
    reachability_maps: dict[tuple[bool, bool], np.ndarray] = field(default_factory=dict)


@dataclass
class TrialContext:
    """Everything a metric may consult for one (pattern, model) pair.

    Axis segments are cached per segment size: the simulation's source is
    fixed and every destination lies in quadrant I, so the canonical frame
    -- and therefore the segment construction -- is destination-independent.
    The segment cache lives on the shared :class:`ScenarioArtifacts`, so a
    cached pattern keeps its segments across repeated sweeps.
    """

    mesh: Mesh2D
    source: Coord
    levels: SafetyLevels
    blocked: np.ndarray
    rects: list[Rect]
    pivots_by_level: dict[int, list[Coord]]
    strategy_pivots: list[Coord]
    strategy_rng: np.random.Generator
    _segment_cache: dict[tuple[int | None, str], tuple[RegionSegments, RegionSegments]] = field(
        default_factory=dict
    )
    #: Lazily-built monotone reachability maps keyed by quadrant (see
    #: :func:`repro.faults.coverage.batch_minimal_path_exists`); lives on
    #: the shared artifacts so cached patterns keep their maps.
    reachability_maps: dict[tuple[bool, bool], np.ndarray] = field(default_factory=dict)

    def segments(
        self, size: int | None, tie_break: str = "far"
    ) -> tuple[RegionSegments, RegionSegments]:
        """(East-axis, North-axis) samples for the fixed source."""
        key = (size, tie_break)
        if key not in self._segment_cache:
            frame = Frame(origin=self.source)
            east = build_axis_segments(
                self.mesh, self.levels, frame, Direction.EAST, size, tie_break
            )
            north = build_axis_segments(
                self.mesh, self.levels, frame, Direction.NORTH, size, tie_break
            )
            self._segment_cache[key] = (east, north)
        return self._segment_cache[key]


@dataclass
class PatternBatchContext:
    """Everything a cross-pattern kernel may consult for one shard.

    The batched analogue of :class:`TrialContext`: ``blocked`` and the ESL
    grids are stacked ``(batch, n, m)`` arrays on the active backend,
    ``dests`` is ``(batch, k, 2)``, and the per-pattern random strategy
    pivots are padded to ``(batch, p, 2)`` with ``strategy_valid`` masking
    the padding.  Reachability maps and segment sample tables are cached on
    the context so metrics sharing them (the figure curves do) build them
    once per shard.
    """

    mesh: Mesh2D
    source: Coord
    xp: Any
    blocked: Any
    levels: BatchedSafetyLevels
    dests: Any
    pivots_by_level: dict[int, list[Coord]]
    strategy_pivots: Any
    strategy_valid: Any
    reachability_maps: dict[tuple[bool, bool], Any] = field(default_factory=dict)
    _pivot_arrays: dict[int, Any] = field(default_factory=dict)
    _table_cache: dict[int | None, tuple[AxisSampleTable, AxisSampleTable]] = field(
        default_factory=dict
    )

    def pivot_array(self, level: int) -> Any:
        """The shared recursive-centre pivots for ``level`` as ``(p, 2)``."""
        if level not in self._pivot_arrays:
            coords = np.array(self.pivots_by_level[level], dtype=np.int64).reshape(-1, 2)
            self._pivot_arrays[level] = self.xp.asarray(coords)
        return self._pivot_arrays[level]

    def tables(self, size: int | None) -> tuple[AxisSampleTable, AxisSampleTable]:
        """(East-axis, North-axis) sample tables, cached per segment size."""
        if size not in self._table_cache:
            self._table_cache[size] = build_source_sample_tables(
                self.levels, self.source, size, (self.mesh.n, self.mesh.m)
            )
        return self._table_cache[size]


MetricFn = Callable[[TrialContext, Coord], bool]
BatchMetricFn = Callable[[TrialContext, np.ndarray], np.ndarray]
PatternMetricFn = Callable[[PatternBatchContext], Any]


@dataclass(frozen=True)
class MetricSpec:
    """One curve of a figure: a predicate evaluated per destination.

    ``batch_fn``, when given, decides a whole ``(k, 2)`` destination array
    in one call and must agree with ``fn`` element-wise (the property tests
    cross-validate the built-in kernels); metrics without one fall back to
    the scalar loop.  ``pattern_fn``, when given, decides a whole shard's
    ``(batch, k)`` (pattern, destination) grid in one cross-pattern kernel
    call under ``run(engine="batched")``; block-model only -- MCC metrics
    fall back to the per-pattern path inside the batched engine.
    """

    name: str
    fn: MetricFn
    model: str = BLOCK_MODEL
    batch_fn: BatchMetricFn | None = None
    pattern_fn: PatternMetricFn | None = None

    def __post_init__(self) -> None:
        if self.model not in (BLOCK_MODEL, MCC_MODEL):
            raise ValueError(f"unknown model {self.model!r}")
        if self.pattern_fn is not None and self.model != BLOCK_MODEL:
            raise ValueError("pattern_fn kernels run under the block model only")


#: Rebuilds a figure's metric list inside worker processes (must be a
#: picklable callable, e.g. a module-level function).
MetricsFactory = Callable[[ExperimentConfig], "list[MetricSpec]"]


def _build_artifacts(scenario: FaultScenario, model: str) -> ScenarioArtifacts:
    if model == BLOCK_MODEL:
        blocked = scenario.blocks.unusable
        rects = scenario.block_rects()
    else:
        mccs = scenario.mccs(MCCType.TYPE_ONE)
        blocked = mccs.blocked
        rects = [component.rect for component in mccs]
    levels = compute_safety_levels(scenario.mesh, blocked)
    return ScenarioArtifacts(blocked=blocked, rects=rects, levels=levels)


def _build_context(
    config: ExperimentConfig,
    scenario: FaultScenario,
    model: str,
    rng: np.random.Generator,
    pivots_by_level: dict[int, list[Coord]],
) -> TrialContext:
    cache_key = (model, scenario.mesh.n, scenario.mesh.m, tuple(scenario.faults))
    artifacts = get_artifact_cache().get_or_build(
        cache_key, lambda: _build_artifacts(scenario, model)
    )
    strategy_pivots = random_pivots(config.pivot_region, config.strategy_pivot_levels, rng)
    return TrialContext(
        mesh=scenario.mesh,
        source=config.source,
        levels=artifacts.levels,
        blocked=artifacts.blocked,
        rects=artifacts.rects,
        pivots_by_level=pivots_by_level,
        strategy_pivots=strategy_pivots,
        strategy_rng=rng,
        _segment_cache=artifacts.segment_cache,
        reachability_maps=artifacts.reachability_maps,
    )


def _evaluate_shard(
    config: ExperimentConfig, metrics: list[MetricSpec], shard: ShardPlan
) -> tuple[dict[str, int], int]:
    """Success counts and trials over one shard's patterns.

    Each pattern consumes only its own spawned RNG stream, so the result
    depends on the shard contents alone -- never on which worker ran it or
    what ran before it in the same process.
    """
    needs_mcc = any(metric.model == MCC_MODEL for metric in metrics)
    pivots_by_level = {
        level: recursive_center_pivots(config.pivot_region, level)
        for level in config.pivot_levels
    }
    successes = {metric.name: 0 for metric in metrics}
    trials = 0
    for seed_seq in shard.pattern_seeds:
        rng = np.random.default_rng(seed_seq)
        scenario = generate_scenario(
            config.mesh,
            shard.fault_count,
            rng,
            source=config.source,
            workload=config.workload,
        )
        contexts = {
            BLOCK_MODEL: _build_context(config, scenario, BLOCK_MODEL, rng, pivots_by_level)
        }
        if needs_mcc:
            contexts[MCC_MODEL] = _build_context(
                config, scenario, MCC_MODEL, rng, pivots_by_level
            )
        dests = [
            scenario.pick_destination(
                rng, config.destination_region, exclude={config.source}
            )
            for _ in range(config.destinations_per_pattern)
        ]
        trials += len(dests)
        dest_array = np.array(dests, dtype=np.int64)
        for metric in metrics:
            context = contexts[metric.model]
            if metric.batch_fn is not None:
                mask = metric.batch_fn(context, dest_array)
                successes[metric.name] += int(np.count_nonzero(mask))
            else:
                successes[metric.name] += sum(
                    1 for dest in dests if metric.fn(context, dest)
                )
    return successes, trials


def _generate_pattern_grids(
    config: ExperimentConfig,
    fault_count: int,
    rngs: list[np.random.Generator],
    max_rejections: int = 1000,
) -> tuple[np.ndarray, np.ndarray]:
    """``(faults, blocked)`` numpy stacks with every source block-free.

    The batched form of :func:`~repro.faults.injection.generate_scenario`'s
    accept/reject loop: patterns whose blocks swallow the source are
    redrawn *from their own generator*, so each generator is consumed
    exactly as the scalar loop consumes it (one ``uniform_faults`` draw per
    rejection round) and the accepted grids are bit-identical.
    """
    mesh, source = config.mesh, config.source
    forbidden = frozenset({source})
    faults = uniform_faults_batch(mesh, fault_count, rngs, forbidden)
    blocked = to_numpy(batch_disable_fixpoint(faults))
    sx, sy = source
    bad = np.flatnonzero(blocked[:, sx, sy])
    rounds = 1
    while bad.size:
        rounds += 1
        if rounds > max_rejections:
            raise RuntimeError(
                f"source {source} kept falling inside a faulty block "
                f"after {max_rejections} resamples"
            )
        redrawn = uniform_faults_batch(
            mesh, fault_count, [rngs[int(b)] for b in bad], forbidden
        )
        faults[bad] = redrawn
        blocked[bad] = to_numpy(batch_disable_fixpoint(redrawn))
        bad = bad[blocked[bad, sx, sy]]
    return faults, blocked


def _pick_destinations_batch(
    config: ExperimentConfig,
    blocked: np.ndarray,
    rngs: list[np.random.Generator],
    max_attempts: int = 10_000,
) -> np.ndarray:
    """``(batch, k, 2)`` destinations identical to the scalar
    ``FaultScenario.pick_destination`` loop over each generator.

    The destinations are the *last* thing the per-pattern streams feed, so
    only their values must match -- and on a square mesh the x and y draws
    share one bounded distribution, whose block draws
    (``rng.integers(lo, hi, size=k)``) produce exactly the values of ``k``
    sequential scalar calls.  The fast path therefore draws attempt pairs
    in chunks and accepts the first ``k`` valid ones vectorised (validity
    is a fixed predicate of the grid, so acceptance commutes with block
    drawing); asymmetric regions fall back to the literal per-attempt
    loop.
    """
    clipped = config.destination_region.clip(config.mesh.bounds)
    if clipped is None:
        raise ValueError(f"region {config.destination_region} lies outside the mesh")
    source = config.source
    count = config.destinations_per_pattern
    dests = np.empty((len(rngs), count, 2), dtype=np.int64)
    symmetric = clipped.xmin == clipped.ymin and clipped.xmax == clipped.ymax
    for b, rng in enumerate(rngs):
        grid = blocked[b]
        if symmetric:
            picked = 0
            attempts = 0
            while picked < count:
                if attempts > count * max_attempts:
                    raise RuntimeError(
                        f"no block-free destination found in {clipped} "
                        f"after {max_attempts} draws"
                    )
                need = count - picked
                draws = rng.integers(
                    clipped.xmin, clipped.xmax + 1, size=2 * (2 * need + 8)
                )
                xs, ys = draws[0::2], draws[1::2]
                attempts += len(xs)
                ok = ~grid[xs, ys]
                ok &= (xs != source[0]) | (ys != source[1])
                good = np.flatnonzero(ok)[:need]
                taken = len(good)
                dests[b, picked : picked + taken, 0] = xs[good]
                dests[b, picked : picked + taken, 1] = ys[good]
                picked += taken
            continue
        for i in range(count):
            for _ in range(max_attempts):
                coord = (
                    int(rng.integers(clipped.xmin, clipped.xmax + 1)),
                    int(rng.integers(clipped.ymin, clipped.ymax + 1)),
                )
                if coord == source:
                    continue
                if not grid[coord[0], coord[1]]:
                    dests[b, i] = coord
                    break
            else:
                raise RuntimeError(
                    f"no block-free destination found in {clipped} "
                    f"after {max_attempts} draws"
                )
    return dests


def _pivot_draw_cells(config: ExperimentConfig) -> list[tuple[int, int, int, int]]:
    """The ``(xlo, xhi+1, ylo, yhi+1)`` draw bounds behind ``random_pivots``.

    The recursive cell decomposition depends only on the (fixed) pivot
    region, so the batched engine precomputes it once per shard and replays
    just the integer draws per pattern -- the same bounds in the same
    order, hence the same stream consumption and the same pivots as the
    scalar engine's per-pattern ``random_pivots`` call, without rebuilding
    the ``Rect`` recursion hundreds of times.
    """
    from repro.core.pivots import _recursive_cells

    return [
        (cell.xmin, cell.xmax + 1, cell.ymin, cell.ymax + 1)
        for tier in _recursive_cells(config.pivot_region, config.strategy_pivot_levels)
        for cell in tier
    ]


def _replay_random_pivots(
    cells: list[tuple[int, int, int, int]], rng: np.random.Generator
) -> list[Coord]:
    """Draw-for-draw replay of ``random_pivots`` over precomputed bounds."""
    pivots: list[Coord] = []
    seen: set[Coord] = set()
    for xlo, xhi, ylo, yhi in cells:
        coord = (int(rng.integers(xlo, xhi)), int(rng.integers(ylo, yhi)))
        if coord not in seen:
            seen.add(coord)
            pivots.append(coord)
    return pivots


def _pad_pivots(pivot_lists: list[list[Coord]]) -> tuple[np.ndarray, np.ndarray]:
    """Stack ragged per-pattern pivot lists to ``(batch, p, 2)`` + mask."""
    width = max((len(p) for p in pivot_lists), default=0)
    pivots = np.zeros((len(pivot_lists), width, 2), dtype=np.int64)
    valid = np.zeros((len(pivot_lists), width), dtype=bool)
    for b, plist in enumerate(pivot_lists):
        if plist:
            pivots[b, : len(plist)] = np.array(plist, dtype=np.int64)
            valid[b, : len(plist)] = True
    return pivots, valid


def _fallback_context(
    config: ExperimentConfig,
    faults: list[Coord],
    model: str,
    rng: np.random.Generator,
    pivots_by_level: dict[int, list[Coord]],
    strategy_pivots: list[Coord],
) -> TrialContext:
    """A scalar :class:`TrialContext` for one batched pattern.

    Shares the artifact cache key with :func:`_build_context`, so a mixed
    batched/scalar sweep (MCC curves alongside batched block curves) never
    rebuilds a pattern's blocks, rectangles, or ESL grid twice -- and never
    consumes the generator (the pivots were already drawn in stream order).
    """
    mesh = config.mesh
    cache_key = (model, mesh.n, mesh.m, tuple(faults))

    def build() -> ScenarioArtifacts:
        scenario = FaultScenario(
            mesh=mesh, faults=faults, blocks=build_faulty_blocks(mesh, faults)
        )
        return _build_artifacts(scenario, model)

    artifacts = get_artifact_cache().get_or_build(cache_key, build)
    return TrialContext(
        mesh=mesh,
        source=config.source,
        levels=artifacts.levels,
        blocked=artifacts.blocked,
        rects=artifacts.rects,
        pivots_by_level=pivots_by_level,
        strategy_pivots=strategy_pivots,
        strategy_rng=rng,
        _segment_cache=artifacts.segment_cache,
        reachability_maps=artifacts.reachability_maps,
    )


def _evaluate_shard_patterns(
    config: ExperimentConfig,
    metrics: list[MetricSpec],
    shard: ShardPlan,
    backend: str = "numpy",
) -> tuple[dict[str, int], int]:
    """Batched counterpart of :func:`_evaluate_shard`: bit-identical counts.

    Stacks the shard's patterns into ``(batch, n, m)`` grids and evaluates
    every metric with a ``pattern_fn`` in one cross-pattern kernel pass on
    the requested backend; metrics without one (MCC curves, custom
    predicates) run through per-pattern fallback contexts built from the
    same grids.  Each pattern's RNG stream is consumed in exactly the
    scalar order -- faults (with rejection redraws), block strategy pivots,
    MCC strategy pivots if any metric needs them, then destinations -- so
    the two engines agree draw for draw.
    """
    if config.workload != "uniform" or not shard.pattern_seeds:
        return _evaluate_shard(config, metrics, shard)
    xp = resolve_backend(backend)
    rngs = [np.random.default_rng(seed_seq) for seed_seq in shard.pattern_seeds]
    faults_np, blocked_np = _generate_pattern_grids(config, shard.fault_count, rngs)

    needs_mcc = any(metric.model == MCC_MODEL for metric in metrics)
    pivots_by_level = {
        level: recursive_center_pivots(config.pivot_region, level)
        for level in config.pivot_levels
    }
    draw_cells = _pivot_draw_cells(config)
    block_pivots = [_replay_random_pivots(draw_cells, rng) for rng in rngs]
    mcc_pivots = (
        [_replay_random_pivots(draw_cells, rng) for rng in rngs]
        if needs_mcc
        else None
    )
    dests_np = _pick_destinations_batch(config, blocked_np, rngs)

    batch = len(rngs)
    successes = {metric.name: 0 for metric in metrics}
    trials = batch * config.destinations_per_pattern

    pattern_metrics = [metric for metric in metrics if metric.pattern_fn is not None]
    scalar_metrics = [metric for metric in metrics if metric.pattern_fn is None]

    if pattern_metrics:
        blocked_xp = xp.asarray(blocked_np)
        strat_np, valid_np = _pad_pivots(block_pivots)
        pctx = PatternBatchContext(
            mesh=config.mesh,
            source=config.source,
            xp=xp,
            blocked=blocked_xp,
            levels=batch_safety_levels(blocked_xp),
            dests=xp.asarray(dests_np),
            pivots_by_level=pivots_by_level,
            strategy_pivots=xp.asarray(strat_np),
            strategy_valid=xp.asarray(valid_np),
        )
        for metric in pattern_metrics:
            mask = to_numpy(metric.pattern_fn(pctx))
            successes[metric.name] += int(np.count_nonzero(mask))

    if scalar_metrics:
        for b in range(batch):
            faults = [(int(x), int(y)) for x, y in np.argwhere(faults_np[b])]
            contexts: dict[str, TrialContext] = {}
            dest_array = dests_np[b]
            dest_list = [(int(x), int(y)) for x, y in dest_array]
            for metric in scalar_metrics:
                if metric.model not in contexts:
                    strategy = (
                        block_pivots[b]
                        if metric.model == BLOCK_MODEL
                        else mcc_pivots[b]
                    )
                    contexts[metric.model] = _fallback_context(
                        config, faults, metric.model, rngs[b],
                        pivots_by_level, strategy,
                    )
                context = contexts[metric.model]
                if metric.batch_fn is not None:
                    mask = metric.batch_fn(context, dest_array)
                    successes[metric.name] += int(np.count_nonzero(mask))
                else:
                    successes[metric.name] += sum(
                        1 for dest in dest_list if metric.fn(context, dest)
                    )
    return successes, trials


def _shard_worker(
    config: ExperimentConfig,
    metrics_factory: MetricsFactory,
    shard: ShardPlan,
    engine: str = "scalar",
    backend: str = "numpy",
) -> tuple[dict[str, int], int]:
    """Process-pool entry point: rebuild the metrics, evaluate one shard.

    Metric predicates routinely close over figure parameters and are not
    picklable, so workers receive the (picklable) factory instead and
    reconstruct the metric list locally.
    """
    metrics = metrics_factory(config)
    if engine == "scalar":
        return _evaluate_shard(config, metrics, shard)
    return _evaluate_shard_patterns(config, metrics, shard, backend)


class ConditionExperiment:
    """Sweep fault counts, measuring each metric's success proportion.

    ``metrics`` may be given directly, or via ``metrics_factory`` -- a
    picklable callable mapping the config to the metric list.  The factory
    form is required for ``run(workers>1)``: worker processes rebuild the
    metrics themselves instead of unpickling closures.
    """

    def __init__(
        self,
        config: ExperimentConfig,
        metrics: list[MetricSpec] | None = None,
        *,
        metrics_factory: MetricsFactory | None = None,
    ):
        if metrics is None:
            if metrics_factory is None:
                raise ValueError("need metrics or a metrics_factory")
            metrics = metrics_factory(config)
        if not metrics:
            raise ValueError("need at least one metric")
        names = [m.name for m in metrics]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate metric names in {names}")
        self.config = config
        self.metrics = metrics
        self.metrics_factory = metrics_factory

    # ------------------------------------------------------------------
    def run(
        self,
        figure_id: str,
        title: str,
        progress: Callable[[str], None] | None = None,
        workers: int = 1,
        engine: str = "auto",
        backend: str = "numpy",
    ) -> FigureSeries:
        """Run the sweep on ``workers`` processes (1 = in-process, serial).

        ``engine`` selects the shard evaluator: ``"batched"`` stacks each
        shard's patterns and drives the cross-pattern kernels of
        :mod:`repro.core.batched_patterns` on ``backend`` (any name from
        :data:`repro.core.array_api.BACKENDS`), ``"scalar"`` is the
        per-pattern loop, and ``"auto"`` (the default) means batched --
        the batched evaluator falls back per metric and per workload
        wherever a kernel does not apply, so it is always safe.

        The fault-pattern RNG streams are spawned per pattern from the
        config seed and both engines consume them in the same order, so
        any (``workers``, ``engine``, ``backend``) combination yields the
        same :class:`FigureSeries`, bit for bit.
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        if workers > 1 and self.metrics_factory is None:
            raise ValueError(
                "run(workers>1) needs a picklable metrics_factory: construct the "
                "experiment with ConditionExperiment(config, metrics_factory=...) "
                "(metric predicates themselves are often unpicklable closures)"
            )
        use_batched = engine != "scalar"
        if use_batched:
            resolve_backend(backend)  # fail fast on unknown/missing backends
        config = self.config
        series = FigureSeries(figure_id=figure_id, title=title, x_label="faults")
        series.notes.append(config.describe())
        plans = plan_shards(
            config.seed, config.fault_counts, config.patterns_per_count, workers
        )

        if workers == 1:
            if use_batched:
                shard_results = [
                    [
                        _evaluate_shard_patterns(config, self.metrics, shard, backend)
                        for shard in shards
                    ]
                    for shards in plans
                ]
            else:
                shard_results = [
                    [_evaluate_shard(config, self.metrics, shard) for shard in shards]
                    for shards in plans
                ]
        else:
            worker_engine = "batched" if use_batched else "scalar"
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    [
                        pool.submit(
                            _shard_worker, config, self.metrics_factory, shard,
                            worker_engine, backend,
                        )
                        for shard in shards
                    ]
                    for shards in plans
                ]
                shard_results = [
                    [future.result() for future in row] for row in futures
                ]

        for fault_count, row in zip(config.fault_counts, shard_results):
            successes = {metric.name: 0 for metric in self.metrics}
            trials = 0
            for shard_successes, shard_trials in row:
                trials += shard_trials
                for name, count in shard_successes.items():
                    successes[name] += count
            series.xs.append(float(fault_count))
            for metric in self.metrics:
                series.add_point(metric.name, proportion_ci(successes[metric.name], trials))
            if progress is not None:
                progress(f"{figure_id}: k={fault_count} done ({trials} trials)")
        series.validate()
        return series
