"""Scenario/trial driver for the condition experiments (Figures 9-12).

One *pattern* is a random fault placement; for each pattern the runner
builds both fault models, their safety levels, the pivot sets and the
source's axis segments once, then evaluates every registered metric on
every random destination.  Metrics under the block and MCC models see the
*same* fault patterns and destinations, so the paper's (a)/(b) figure pairs
are paired comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.analysis.statistics import proportion_ci
from repro.core.pivots import random_pivots, recursive_center_pivots
from repro.core.safety import SafetyLevels, compute_safety_levels
from repro.core.segments import RegionSegments, build_axis_segments
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import FigureSeries
from repro.faults.injection import FaultScenario, generate_scenario
from repro.faults.mcc import MCCType
from repro.mesh.frames import Frame
from repro.mesh.geometry import Coord, Direction, Rect
from repro.mesh.topology import Mesh2D

#: The fault models a metric can run under.
BLOCK_MODEL = "block"
MCC_MODEL = "mcc"


@dataclass
class TrialContext:
    """Everything a metric may consult for one (pattern, model) pair.

    Axis segments are cached per segment size: the simulation's source is
    fixed and every destination lies in quadrant I, so the canonical frame
    -- and therefore the segment construction -- is destination-independent.
    """

    mesh: Mesh2D
    source: Coord
    levels: SafetyLevels
    blocked: np.ndarray
    rects: list[Rect]
    pivots_by_level: dict[int, list[Coord]]
    strategy_pivots: list[Coord]
    strategy_rng: np.random.Generator
    _segment_cache: dict[tuple[int | None, str], tuple[RegionSegments, RegionSegments]] = field(
        default_factory=dict
    )

    def segments(
        self, size: int | None, tie_break: str = "far"
    ) -> tuple[RegionSegments, RegionSegments]:
        """(East-axis, North-axis) samples for the fixed source."""
        key = (size, tie_break)
        if key not in self._segment_cache:
            frame = Frame(origin=self.source)
            east = build_axis_segments(
                self.mesh, self.levels, frame, Direction.EAST, size, tie_break
            )
            north = build_axis_segments(
                self.mesh, self.levels, frame, Direction.NORTH, size, tie_break
            )
            self._segment_cache[key] = (east, north)
        return self._segment_cache[key]


MetricFn = Callable[[TrialContext, Coord], bool]


@dataclass(frozen=True)
class MetricSpec:
    """One curve of a figure: a predicate evaluated per destination."""

    name: str
    fn: MetricFn
    model: str = BLOCK_MODEL

    def __post_init__(self) -> None:
        if self.model not in (BLOCK_MODEL, MCC_MODEL):
            raise ValueError(f"unknown model {self.model!r}")


class ConditionExperiment:
    """Sweep fault counts, measuring each metric's success proportion."""

    def __init__(self, config: ExperimentConfig, metrics: list[MetricSpec]):
        if not metrics:
            raise ValueError("need at least one metric")
        names = [m.name for m in metrics]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate metric names in {names}")
        self.config = config
        self.metrics = metrics
        self._needs_mcc = any(m.model == MCC_MODEL for m in metrics)

    # ------------------------------------------------------------------
    def _build_context(self, scenario: FaultScenario, model: str, rng: np.random.Generator) -> TrialContext:
        config = self.config
        if model == BLOCK_MODEL:
            blocked = scenario.blocks.unusable
            rects = scenario.block_rects()
        else:
            mccs = scenario.mccs(MCCType.TYPE_ONE)
            blocked = mccs.blocked
            rects = [component.rect for component in mccs]
        levels = compute_safety_levels(scenario.mesh, blocked)
        pivots_by_level = {
            level: recursive_center_pivots(config.pivot_region, level)
            for level in config.pivot_levels
        }
        strategy_pivots = random_pivots(
            config.pivot_region, config.strategy_pivot_levels, rng
        )
        return TrialContext(
            mesh=scenario.mesh,
            source=config.source,
            levels=levels,
            blocked=blocked,
            rects=rects,
            pivots_by_level=pivots_by_level,
            strategy_pivots=strategy_pivots,
            strategy_rng=rng,
        )

    def run(self, figure_id: str, title: str, progress: Callable[[str], None] | None = None) -> FigureSeries:
        config = self.config
        rng = np.random.default_rng(config.seed)
        series = FigureSeries(figure_id=figure_id, title=title, x_label="faults")
        series.notes.append(config.describe())

        for fault_count in config.fault_counts:
            successes = {metric.name: 0 for metric in self.metrics}
            trials = 0
            for _ in range(config.patterns_per_count):
                scenario = generate_scenario(
                    config.mesh,
                    fault_count,
                    rng,
                    source=config.source,
                    workload=config.workload,
                )
                contexts = {BLOCK_MODEL: self._build_context(scenario, BLOCK_MODEL, rng)}
                if self._needs_mcc:
                    contexts[MCC_MODEL] = self._build_context(scenario, MCC_MODEL, rng)
                for _ in range(config.destinations_per_pattern):
                    dest = scenario.pick_destination(
                        rng, config.destination_region, exclude={config.source}
                    )
                    trials += 1
                    for metric in self.metrics:
                        if metric.fn(contexts[metric.model], dest):
                            successes[metric.name] += 1
            series.xs.append(float(fault_count))
            for metric in self.metrics:
                series.add_point(metric.name, proportion_ci(successes[metric.name], trials))
            if progress is not None:
                progress(f"{figure_id}: k={fault_count} done ({trials} trials)")
        series.validate()
        return series
