"""Scenario/trial driver for the condition experiments (Figures 9-12).

One *pattern* is a random fault placement; for each pattern the runner
builds both fault models, their safety levels, the pivot sets and the
source's axis segments once, then evaluates every registered metric on
every random destination.  Metrics under the block and MCC models see the
*same* fault patterns and destinations, so the paper's (a)/(b) figure pairs
are paired comparisons.

Scaling layers (see ``docs/API.md``, "Scaling experiments"):

- destinations are evaluated as **batches**: a metric with a ``batch_fn``
  (a vectorised kernel from :mod:`repro.core.batched`) decides all of a
  pattern's destinations in one numpy call;
- per-pattern artifacts (blocked grid, rectangles, ESL grid, axis
  segments) flow through the process-wide
  :class:`~repro.parallel.cache.ArtifactCache`, so block-/MCC-model
  metrics and repeated same-seed sweeps never recompute them;
- ``run(workers=N)`` shards ``patterns_per_count`` across a
  :class:`~concurrent.futures.ProcessPoolExecutor`.  Every pattern owns a
  :class:`numpy.random.SeedSequence` spawned along a fixed tree
  (see :mod:`repro.parallel.pool`), so serial and parallel runs produce
  bit-identical :class:`~repro.experiments.report.FigureSeries`.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.analysis.statistics import proportion_ci
from repro.core.pivots import random_pivots, recursive_center_pivots
from repro.core.safety import SafetyLevels, compute_safety_levels
from repro.core.segments import RegionSegments, build_axis_segments
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import FigureSeries
from repro.faults.injection import FaultScenario, generate_scenario
from repro.faults.mcc import MCCType
from repro.mesh.frames import Frame
from repro.mesh.geometry import Coord, Direction, Rect
from repro.mesh.topology import Mesh2D
from repro.parallel.cache import get_artifact_cache
from repro.parallel.pool import ShardPlan, plan_shards

#: The fault models a metric can run under.
BLOCK_MODEL = "block"
MCC_MODEL = "mcc"


@dataclass
class ScenarioArtifacts:
    """Derived state shared by every metric over one (pattern, model) pair.

    These are exactly the artifacts that are deterministic functions of the
    fault pattern (no RNG involved), which makes them safe to reuse through
    the :class:`~repro.parallel.cache.ArtifactCache`: the blocked grid, the
    block/MCC rectangles, the full ESL grid, and the lazily-built axis
    segments for the fixed source.
    """

    blocked: np.ndarray
    rects: list[Rect]
    levels: SafetyLevels
    segment_cache: dict[tuple[int | None, str], tuple[RegionSegments, RegionSegments]] = field(
        default_factory=dict
    )
    reachability_maps: dict[tuple[bool, bool], np.ndarray] = field(default_factory=dict)


@dataclass
class TrialContext:
    """Everything a metric may consult for one (pattern, model) pair.

    Axis segments are cached per segment size: the simulation's source is
    fixed and every destination lies in quadrant I, so the canonical frame
    -- and therefore the segment construction -- is destination-independent.
    The segment cache lives on the shared :class:`ScenarioArtifacts`, so a
    cached pattern keeps its segments across repeated sweeps.
    """

    mesh: Mesh2D
    source: Coord
    levels: SafetyLevels
    blocked: np.ndarray
    rects: list[Rect]
    pivots_by_level: dict[int, list[Coord]]
    strategy_pivots: list[Coord]
    strategy_rng: np.random.Generator
    _segment_cache: dict[tuple[int | None, str], tuple[RegionSegments, RegionSegments]] = field(
        default_factory=dict
    )
    #: Lazily-built monotone reachability maps keyed by quadrant (see
    #: :func:`repro.faults.coverage.batch_minimal_path_exists`); lives on
    #: the shared artifacts so cached patterns keep their maps.
    reachability_maps: dict[tuple[bool, bool], np.ndarray] = field(default_factory=dict)

    def segments(
        self, size: int | None, tie_break: str = "far"
    ) -> tuple[RegionSegments, RegionSegments]:
        """(East-axis, North-axis) samples for the fixed source."""
        key = (size, tie_break)
        if key not in self._segment_cache:
            frame = Frame(origin=self.source)
            east = build_axis_segments(
                self.mesh, self.levels, frame, Direction.EAST, size, tie_break
            )
            north = build_axis_segments(
                self.mesh, self.levels, frame, Direction.NORTH, size, tie_break
            )
            self._segment_cache[key] = (east, north)
        return self._segment_cache[key]


MetricFn = Callable[[TrialContext, Coord], bool]
BatchMetricFn = Callable[[TrialContext, np.ndarray], np.ndarray]


@dataclass(frozen=True)
class MetricSpec:
    """One curve of a figure: a predicate evaluated per destination.

    ``batch_fn``, when given, decides a whole ``(k, 2)`` destination array
    in one call and must agree with ``fn`` element-wise (the property tests
    cross-validate the built-in kernels); metrics without one fall back to
    the scalar loop.
    """

    name: str
    fn: MetricFn
    model: str = BLOCK_MODEL
    batch_fn: BatchMetricFn | None = None

    def __post_init__(self) -> None:
        if self.model not in (BLOCK_MODEL, MCC_MODEL):
            raise ValueError(f"unknown model {self.model!r}")


#: Rebuilds a figure's metric list inside worker processes (must be a
#: picklable callable, e.g. a module-level function).
MetricsFactory = Callable[[ExperimentConfig], "list[MetricSpec]"]


def _build_artifacts(scenario: FaultScenario, model: str) -> ScenarioArtifacts:
    if model == BLOCK_MODEL:
        blocked = scenario.blocks.unusable
        rects = scenario.block_rects()
    else:
        mccs = scenario.mccs(MCCType.TYPE_ONE)
        blocked = mccs.blocked
        rects = [component.rect for component in mccs]
    levels = compute_safety_levels(scenario.mesh, blocked)
    return ScenarioArtifacts(blocked=blocked, rects=rects, levels=levels)


def _build_context(
    config: ExperimentConfig,
    scenario: FaultScenario,
    model: str,
    rng: np.random.Generator,
    pivots_by_level: dict[int, list[Coord]],
) -> TrialContext:
    cache_key = (model, scenario.mesh.n, scenario.mesh.m, tuple(scenario.faults))
    artifacts = get_artifact_cache().get_or_build(
        cache_key, lambda: _build_artifacts(scenario, model)
    )
    strategy_pivots = random_pivots(config.pivot_region, config.strategy_pivot_levels, rng)
    return TrialContext(
        mesh=scenario.mesh,
        source=config.source,
        levels=artifacts.levels,
        blocked=artifacts.blocked,
        rects=artifacts.rects,
        pivots_by_level=pivots_by_level,
        strategy_pivots=strategy_pivots,
        strategy_rng=rng,
        _segment_cache=artifacts.segment_cache,
        reachability_maps=artifacts.reachability_maps,
    )


def _evaluate_shard(
    config: ExperimentConfig, metrics: list[MetricSpec], shard: ShardPlan
) -> tuple[dict[str, int], int]:
    """Success counts and trials over one shard's patterns.

    Each pattern consumes only its own spawned RNG stream, so the result
    depends on the shard contents alone -- never on which worker ran it or
    what ran before it in the same process.
    """
    needs_mcc = any(metric.model == MCC_MODEL for metric in metrics)
    pivots_by_level = {
        level: recursive_center_pivots(config.pivot_region, level)
        for level in config.pivot_levels
    }
    successes = {metric.name: 0 for metric in metrics}
    trials = 0
    for seed_seq in shard.pattern_seeds:
        rng = np.random.default_rng(seed_seq)
        scenario = generate_scenario(
            config.mesh,
            shard.fault_count,
            rng,
            source=config.source,
            workload=config.workload,
        )
        contexts = {
            BLOCK_MODEL: _build_context(config, scenario, BLOCK_MODEL, rng, pivots_by_level)
        }
        if needs_mcc:
            contexts[MCC_MODEL] = _build_context(
                config, scenario, MCC_MODEL, rng, pivots_by_level
            )
        dests = [
            scenario.pick_destination(
                rng, config.destination_region, exclude={config.source}
            )
            for _ in range(config.destinations_per_pattern)
        ]
        trials += len(dests)
        dest_array = np.array(dests, dtype=np.int64)
        for metric in metrics:
            context = contexts[metric.model]
            if metric.batch_fn is not None:
                mask = metric.batch_fn(context, dest_array)
                successes[metric.name] += int(np.count_nonzero(mask))
            else:
                successes[metric.name] += sum(
                    1 for dest in dests if metric.fn(context, dest)
                )
    return successes, trials


def _shard_worker(
    config: ExperimentConfig, metrics_factory: MetricsFactory, shard: ShardPlan
) -> tuple[dict[str, int], int]:
    """Process-pool entry point: rebuild the metrics, evaluate one shard.

    Metric predicates routinely close over figure parameters and are not
    picklable, so workers receive the (picklable) factory instead and
    reconstruct the metric list locally.
    """
    return _evaluate_shard(config, metrics_factory(config), shard)


class ConditionExperiment:
    """Sweep fault counts, measuring each metric's success proportion.

    ``metrics`` may be given directly, or via ``metrics_factory`` -- a
    picklable callable mapping the config to the metric list.  The factory
    form is required for ``run(workers>1)``: worker processes rebuild the
    metrics themselves instead of unpickling closures.
    """

    def __init__(
        self,
        config: ExperimentConfig,
        metrics: list[MetricSpec] | None = None,
        *,
        metrics_factory: MetricsFactory | None = None,
    ):
        if metrics is None:
            if metrics_factory is None:
                raise ValueError("need metrics or a metrics_factory")
            metrics = metrics_factory(config)
        if not metrics:
            raise ValueError("need at least one metric")
        names = [m.name for m in metrics]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate metric names in {names}")
        self.config = config
        self.metrics = metrics
        self.metrics_factory = metrics_factory

    # ------------------------------------------------------------------
    def run(
        self,
        figure_id: str,
        title: str,
        progress: Callable[[str], None] | None = None,
        workers: int = 1,
    ) -> FigureSeries:
        """Run the sweep on ``workers`` processes (1 = in-process, serial).

        The fault-pattern RNG streams are spawned per pattern from the
        config seed, so any ``workers`` value -- including 1 -- yields the
        same :class:`FigureSeries`, bit for bit.
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if workers > 1 and self.metrics_factory is None:
            raise ValueError(
                "run(workers>1) needs a picklable metrics_factory: construct the "
                "experiment with ConditionExperiment(config, metrics_factory=...) "
                "(metric predicates themselves are often unpicklable closures)"
            )
        config = self.config
        series = FigureSeries(figure_id=figure_id, title=title, x_label="faults")
        series.notes.append(config.describe())
        plans = plan_shards(
            config.seed, config.fault_counts, config.patterns_per_count, workers
        )

        if workers == 1:
            shard_results = [
                [_evaluate_shard(config, self.metrics, shard) for shard in shards]
                for shards in plans
            ]
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    [
                        pool.submit(_shard_worker, config, self.metrics_factory, shard)
                        for shard in shards
                    ]
                    for shards in plans
                ]
                shard_results = [
                    [future.result() for future in row] for row in futures
                ]

        for fault_count, row in zip(config.fault_counts, shard_results):
            successes = {metric.name: 0 for metric in self.metrics}
            trials = 0
            for shard_successes, shard_trials in row:
                trials += shard_trials
                for name, count in shard_successes.items():
                    successes[name] += count
            series.xs.append(float(fault_count))
            for metric in self.metrics:
                series.add_point(metric.name, proportion_ci(successes[metric.name], trials))
            if progress is not None:
                progress(f"{figure_id}: k={fault_count} done ({trials} trials)")
        series.validate()
        return series
