"""The paper's simulation study (Sec. 5) as a reusable harness.

- :mod:`repro.experiments.config` -- experiment parameters; the paper-scale
  setup (200x200 mesh, source at the centre, up to 200 faults) and reduced
  presets that keep the fault *density* so curve shapes are comparable.
- :mod:`repro.experiments.runner` -- scenario/trial driver shared by all
  condition experiments (Figures 9-12): builds fault patterns, fault models,
  safety levels, pivots and segments once per pattern, then evaluates every
  registered metric on every random destination.
- :mod:`repro.experiments.figures` -- one entry point per paper figure,
  returning a :class:`~repro.experiments.report.FigureSeries`.
- :mod:`repro.experiments.report` -- table/CSV/ASCII-plot rendering of a
  figure's series.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import FigureSeries
from repro.experiments.runner import (
    ConditionExperiment,
    PatternBatchContext,
    TrialContext,
)
from repro.experiments.figures import (
    fig7_affected_rows,
    fig8_disabled_nodes,
    fig9_extension1,
    fig10_extension2,
    fig11_extension3,
    fig12_strategies,
)
from repro.experiments.memory_model import MemoryReport, measure_memory
from repro.experiments.persistence import (
    load_scenario,
    load_series,
    save_scenario,
    save_series,
)
from repro.experiments.sweeps import mesh_size_sweep

__all__ = [
    "ConditionExperiment",
    "ExperimentConfig",
    "FigureSeries",
    "MemoryReport",
    "PatternBatchContext",
    "TrialContext",
    "fig7_affected_rows",
    "fig8_disabled_nodes",
    "fig9_extension1",
    "fig10_extension2",
    "fig11_extension3",
    "fig12_strategies",
    "load_scenario",
    "load_series",
    "measure_memory",
    "mesh_size_sweep",
    "save_scenario",
    "save_series",
]
