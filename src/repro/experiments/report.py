"""Rendering of experiment results.

A :class:`FigureSeries` is the reproduction of one paper figure: an x axis
(number of faults, usually) and one named series per curve, each point
carrying a value and a 95% confidence half-width.  It renders as an aligned
text table (the "same rows the paper plots"), a CSV dump, and an ASCII line
plot via :mod:`repro.viz.plots`.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field

from repro.analysis.statistics import Estimate


@dataclass
class FigureSeries:
    """One reproduced figure's data."""

    figure_id: str
    title: str
    x_label: str
    xs: list[float] = field(default_factory=list)
    series: dict[str, list[Estimate]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def add_point(self, name: str, estimate: Estimate) -> None:
        self.series.setdefault(name, []).append(estimate)

    def column(self, name: str) -> list[float]:
        return [estimate.value for estimate in self.series[name]]

    def validate(self) -> None:
        for name, points in self.series.items():
            if len(points) != len(self.xs):
                raise ValueError(
                    f"series {name!r} has {len(points)} points for {len(self.xs)} x values"
                )

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_table(self, precision: int = 4, with_ci: bool = False) -> str:
        """Aligned text table, one row per x value."""
        self.validate()
        headers = [self.x_label] + list(self.series)
        rows: list[list[str]] = []
        for i, x in enumerate(self.xs):
            row = [f"{x:g}"]
            for name in self.series:
                estimate = self.series[name][i]
                cell = f"{estimate.value:.{precision}f}"
                if with_ci:
                    cell += f"±{estimate.half_width:.{precision}f}"
                row.append(cell)
            rows.append(row)
        widths = [
            max(len(headers[c]), *(len(r[c]) for r in rows)) if rows else len(headers[c])
            for c in range(len(headers))
        ]
        out = io.StringIO()
        out.write(f"== {self.figure_id}: {self.title} ==\n")
        out.write("  ".join(h.rjust(w) for h, w in zip(headers, widths)) + "\n")
        out.write("  ".join("-" * w for w in widths) + "\n")
        for row in rows:
            out.write("  ".join(cell.rjust(w) for cell, w in zip(row, widths)) + "\n")
        for note in self.notes:
            out.write(f"note: {note}\n")
        return out.getvalue()

    def to_csv(self) -> str:
        self.validate()
        out = io.StringIO()
        headers = [self.x_label]
        for name in self.series:
            headers += [name, f"{name}_ci95"]
        out.write(",".join(headers) + "\n")
        for i, x in enumerate(self.xs):
            cells = [f"{x:g}"]
            for name in self.series:
                estimate = self.series[name][i]
                cells += [f"{estimate.value:.6f}", f"{estimate.half_width:.6f}"]
            out.write(",".join(cells) + "\n")
        return out.getvalue()

    def to_ascii_plot(self, width: int = 72, height: int = 20) -> str:
        from repro.viz.plots import line_plot

        self.validate()
        data = {name: list(zip(self.xs, self.column(name))) for name in self.series}
        return line_plot(
            data,
            title=f"{self.figure_id}: {self.title}",
            x_label=self.x_label,
            width=width,
            height=height,
        )

    def render(self, with_plot: bool = True) -> str:
        parts = [self.to_table()]
        if with_plot:
            parts.append(self.to_ascii_plot())
        return "\n".join(parts)
