"""Information-model memory accounting (the paper's scalability argument).

The introduction argues that coded fault information "reduces the memory
requirement [7] to store fault information at each node" compared with
models that hold detailed global state.  This module quantifies that claim
for one scenario by counting, per information model, the **words of state
per node** (one word = one coordinate/level/id):

- **routing table**: the global-information strawman -- every node stores a
  next-hop per destination: ``n*m - 1`` words each.
- **global fault map**: every node stores all block corners: ``4 * B``.
- **extended safety level**: 4 words, plus the boundary tags actually
  present at the node (block id + 4 corners + direction per tag), plus
  whatever extension information the configuration distributes (segment
  samples for Extension 2, pivot ESLs for Extension 3).

Used by the info-cost ablation and the examples; a
:class:`MemoryReport` prints as the comparison table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.boundaries import BoundaryMap
from repro.faults.blocks import BlockSet
from repro.mesh.topology import Mesh2D


@dataclass(frozen=True)
class MemoryReport:
    """Per-node state (in words) for each information model."""

    mesh: Mesh2D
    routing_table_per_node: int
    global_map_per_node: int
    esl_per_node: float  # 4 + average boundary-tag words
    esl_max_node: int
    extension2_words_per_affected_node: float
    extension3_words_per_node: int

    def to_table(self) -> str:
        rows = [
            ("routing table (global)", f"{self.routing_table_per_node}"),
            ("global fault map", f"{self.global_map_per_node}"),
            ("ESL + boundary tags (avg)", f"{self.esl_per_node:.2f}"),
            ("ESL + boundary tags (max node)", f"{self.esl_max_node}"),
            ("+ Extension 2 (avg affected node)", f"{self.extension2_words_per_affected_node:.2f}"),
            ("+ Extension 3 (pivot table)", f"{self.extension3_words_per_node}"),
        ]
        width = max(len(name) for name, _ in rows)
        lines = [f"{'information model':<{width}}  words/node"]
        for name, value in rows:
            lines.append(f"{name:<{width}}  {value:>10}")
        return "\n".join(lines)


def measure_memory(
    blocks: BlockSet,
    segment_size: int | None = 5,
    pivot_count: int = 21,
) -> MemoryReport:
    """Account the per-node state of every information model for a scenario."""
    mesh = blocks.mesh
    boundary = BoundaryMap.for_blocks(blocks)
    canonical = boundary.canonical(False, False)

    # Words per boundary tag: block id + 4 corner coordinates + direction.
    tag_words = 6
    tag_totals = [tag_words * len(tags) for tags in canonical.annotations.values()]
    nodes = mesh.size
    esl_avg = 4 + (sum(tag_totals) / nodes if nodes else 0.0)
    esl_max = 4 + (max(tag_totals) if tag_totals else 0)

    # Extension 2: affected rows/columns hold one (offset, level) pair per
    # segment representative; region length ~ mesh side, so words per
    # affected node ~ 2 * ceil(side / segment size) per axis.
    import math

    side = max(mesh.n, mesh.m)
    reps = 1 if segment_size is None else math.ceil(side / segment_size)
    extension2 = 2.0 * reps * 2  # two axes

    # Extension 3: every node stores each pivot's coordinates + 4 levels.
    extension3 = pivot_count * 6

    return MemoryReport(
        mesh=mesh,
        routing_table_per_node=nodes - 1,
        global_map_per_node=4 * len(blocks),
        esl_per_node=esl_avg,
        esl_max_node=esl_max,
        extension2_words_per_affected_node=extension2,
        extension3_words_per_node=extension3,
    )
