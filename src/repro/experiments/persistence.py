"""JSON persistence for scenarios and figure series.

Reproducibility plumbing: a fault scenario or a finished figure can be
saved, shared, and reloaded bit-identically.  Scenarios serialize as their
*inputs* (mesh shape, fault list) and are rebuilt on load, so the files stay
small and the derived structures always match the loaded library version;
figure series serialize their full data including confidence intervals.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from repro.analysis.statistics import Estimate
from repro.experiments.report import FigureSeries
from repro.faults.blocks import build_faulty_blocks
from repro.faults.injection import FaultScenario
from repro.mesh.topology import Mesh2D

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------


def scenario_to_dict(scenario: FaultScenario) -> dict[str, Any]:
    return {
        "format": FORMAT_VERSION,
        "kind": "fault-scenario",
        "mesh": [scenario.mesh.n, scenario.mesh.m],
        "faults": [list(coord) for coord in scenario.faults],
    }


def scenario_from_dict(data: dict[str, Any]) -> FaultScenario:
    _check_header(data, "fault-scenario")
    n, m = data["mesh"]
    mesh = Mesh2D(int(n), int(m))
    faults = [tuple(int(c) for c in coord) for coord in data["faults"]]
    return FaultScenario(mesh=mesh, faults=faults, blocks=build_faulty_blocks(mesh, faults))


def save_scenario(scenario: FaultScenario, path: str | pathlib.Path) -> None:
    pathlib.Path(path).write_text(json.dumps(scenario_to_dict(scenario), indent=1))


def load_scenario(path: str | pathlib.Path) -> FaultScenario:
    return scenario_from_dict(json.loads(pathlib.Path(path).read_text()))


# ----------------------------------------------------------------------
# Figure series
# ----------------------------------------------------------------------


def series_to_dict(series: FigureSeries) -> dict[str, Any]:
    series.validate()
    return {
        "format": FORMAT_VERSION,
        "kind": "figure-series",
        "figure_id": series.figure_id,
        "title": series.title,
        "x_label": series.x_label,
        "xs": list(series.xs),
        "notes": list(series.notes),
        "series": {
            name: [
                {"value": e.value, "half_width": e.half_width, "samples": e.samples}
                for e in points
            ]
            for name, points in series.series.items()
        },
    }


def series_from_dict(data: dict[str, Any]) -> FigureSeries:
    _check_header(data, "figure-series")
    series = FigureSeries(
        figure_id=data["figure_id"],
        title=data["title"],
        x_label=data["x_label"],
        xs=[float(x) for x in data["xs"]],
        notes=list(data.get("notes", [])),
    )
    for name, points in data["series"].items():
        series.series[name] = [
            Estimate(
                value=float(p["value"]),
                half_width=float(p["half_width"]),
                samples=int(p["samples"]),
            )
            for p in points
        ]
    series.validate()
    return series


def save_series(series: FigureSeries, path: str | pathlib.Path) -> None:
    pathlib.Path(path).write_text(json.dumps(series_to_dict(series), indent=1))


def load_series(path: str | pathlib.Path) -> FigureSeries:
    return series_from_dict(json.loads(pathlib.Path(path).read_text()))


# ----------------------------------------------------------------------


def _check_header(data: dict[str, Any], expected_kind: str) -> None:
    if data.get("kind") != expected_kind:
        raise ValueError(f"expected a {expected_kind} file, got {data.get('kind')!r}")
    if int(data.get("format", -1)) > FORMAT_VERSION:
        raise ValueError(
            f"file format {data.get('format')} is newer than this library "
            f"(supports up to {FORMAT_VERSION})"
        )
