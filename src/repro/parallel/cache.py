"""Keyed scenario-artifact cache (``repro.parallel.cache``).

One fault *pattern* determines a bundle of derived artifacts -- the
blocked-node grid, the block/MCC rectangles, the full ESL grid, and the
per-source axis segments.  The condition experiments evaluate many metrics
over the same pattern, and repeated sweeps (the paired (a)/(b) figures,
benchmark repeats, ``repro figures all``) regenerate identical patterns
from the same seed; without a cache every run recomputes the artifacts
from scratch.

:class:`ArtifactCache` is a small LRU keyed by whatever the caller hashes
the pattern with (the experiment runner uses
``(model, n, m, faults-tuple)``).  Hits and misses are tallied on the
cache *and* bumped as ``cache.hits`` / ``cache.misses`` hot counters on
the installed :mod:`repro.obs.prof` profiler, so ``repro bench`` and
``repro stats --profile`` surface the reuse rate.

The default cache is a module-level slot (one per process; worker
processes of the experiment pool each get their own).  Swap it with
:func:`use_artifact_cache` for isolation in tests.
"""

from __future__ import annotations

import collections
import contextlib
from typing import Any, Callable, Hashable, Iterator

from repro.obs.prof import get_profiler

#: Default entry bound.  Entries hold full ESL grids (four ``(n, m)``
#: int64 arrays), so the bound is on entries, not bytes: 128 entries cover
#: a quick-scale figure sweep (8 fault counts x 6 patterns x 2 models)
#: with room to spare while keeping worst-case memory modest.
DEFAULT_MAXSIZE = 128


class ArtifactCache:
    """A bounded LRU mapping pattern keys to derived-artifact bundles."""

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE):
        if maxsize < 1:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: collections.OrderedDict[Hashable, Any] = collections.OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get_or_build(self, key: Hashable, build: Callable[[], Any]) -> Any:
        """The cached value for ``key``, building (and storing) on a miss."""
        profiler = get_profiler()
        if key in self._entries:
            self.hits += 1
            if profiler.enabled:
                profiler.count("cache.hits")
            self._entries.move_to_end(key)
            return self._entries[key]
        self.misses += 1
        if profiler.enabled:
            profiler.count("cache.misses")
        value = build()
        self._entries[key] = value
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return value

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> dict[str, int]:
        """JSON-ready counters (sizes and hit/miss tallies)."""
        return {
            "entries": len(self._entries),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
        }


_current = ArtifactCache()


def get_artifact_cache() -> ArtifactCache:
    """The process-wide artifact cache currently installed."""
    return _current


def set_artifact_cache(cache: ArtifactCache | None) -> ArtifactCache:
    """Install ``cache`` (None installs a fresh default-sized one);
    returns the previously installed cache."""
    global _current
    previous = _current
    _current = cache if cache is not None else ArtifactCache()
    return previous


@contextlib.contextmanager
def use_artifact_cache(cache: ArtifactCache) -> Iterator[ArtifactCache]:
    """Install ``cache`` for the duration of a ``with`` block."""
    previous = set_artifact_cache(cache)
    try:
        yield cache
    finally:
        set_artifact_cache(previous)
