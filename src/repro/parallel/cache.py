"""Keyed scenario-artifact cache (``repro.parallel.cache``).

One fault *pattern* determines a bundle of derived artifacts -- the
blocked-node grid, the block/MCC rectangles, the full ESL grid, and the
per-source axis segments.  The condition experiments evaluate many metrics
over the same pattern, and repeated sweeps (the paired (a)/(b) figures,
benchmark repeats, ``repro figures all``) regenerate identical patterns
from the same seed; without a cache every run recomputes the artifacts
from scratch.

:class:`ArtifactCache` is a small LRU keyed by whatever the caller hashes
the pattern with (the experiment runner uses
``(model, n, m, faults-tuple)``).  Hits and misses are tallied on the
cache *and* bumped as ``cache.hits`` / ``cache.misses`` hot counters on
the installed :mod:`repro.obs.prof` profiler, so ``repro bench`` and
``repro stats --profile`` surface the reuse rate.

The default cache is a module-level slot (one per process; worker
processes of the experiment pool each get their own).  Swap it with
:func:`use_artifact_cache` for isolation in tests.
"""

from __future__ import annotations

import collections
import contextlib
from typing import Any, Callable, Hashable, Iterator

from repro.obs.prof import get_profiler

#: Default entry bound.  Entries hold full ESL grids (four ``(n, m)``
#: int64 arrays), so the bound is on entries, not bytes: 128 entries cover
#: a quick-scale figure sweep (8 fault counts x 6 patterns x 2 models)
#: with room to spare while keeping worst-case memory modest.
DEFAULT_MAXSIZE = 128


class StaleArtifactError(LookupError):
    """A cached entry is older than the caller's staleness budget.

    Raised by :meth:`ArtifactCache.get_or_build` when
    ``max_staleness_generations`` is set and the entry's generation tag
    lags the current generation by more than that budget.  The caller --
    not the cache -- decides what staleness means: a degraded service
    tier may serve the stale value anyway (fetch it with
    :meth:`ArtifactCache.peek`), rebuild explicitly after dropping the
    entry, or shed the request.
    """

    def __init__(self, key: Hashable, tag: int | None, generation: int):
        self.key = key
        self.tag = tag
        self.generation = generation
        age = "untagged" if tag is None else f"{generation - tag} generation(s) old"
        super().__init__(f"artifact {key!r} is stale: {age} at generation {generation}")

    @property
    def age(self) -> int | None:
        """Generations between the entry's tag and now (None: untagged)."""
        return None if self.tag is None else self.generation - self.tag


class ArtifactCache:
    """A bounded LRU mapping pattern keys to derived-artifact bundles."""

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE):
        if maxsize < 1:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.stale = 0
        self.revalidated = 0
        self._entries: collections.OrderedDict[Hashable, Any] = collections.OrderedDict()
        # Generation tag per key (see get_or_build); absent/None means the
        # entry predates generation tracking and never goes stale.
        self._tags: dict[Hashable, int | None] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def generation_of(self, key: Hashable) -> int | None:
        """The generation tag ``key`` was last stored/revalidated under."""
        return self._tags.get(key)

    def get_or_build(
        self,
        key: Hashable,
        build: Callable[[], Any],
        *,
        generation: int | None = None,
        revalidate: Callable[[Any, int | None], bool] | None = None,
        max_staleness_generations: int | None = None,
    ) -> Any:
        """The cached value for ``key``, building (and storing) on a miss.

        With ``generation`` set, entries are tagged with the generation
        they were built under; a later lookup under a newer generation is
        *stale* rather than a plain hit.  ``revalidate(value, tag)`` then
        gets a chance to prove the entry survived every event between its
        tag and now (e.g. no fault landed on a cached path) -- returning
        True retags it to the current generation, False rebuilds.  Without
        ``revalidate``, stale entries are always rebuilt.  Callers that
        pass no ``generation`` keep the original untagged LRU behaviour.

        ``max_staleness_generations`` makes staleness an *explicit*
        outcome instead of a silent revalidate/rebuild: a stale entry
        whose tag lags ``generation`` by more than the budget (or that
        carries no tag at all, so its age cannot be proven) raises
        :class:`StaleArtifactError` before any revalidation is attempted.
        The entry is left in place so the caller's degraded tier can still
        :meth:`peek` it, :meth:`drop` it and rebuild, or shed.  ``None``
        (the default) keeps the original behaviour.
        """
        profiler = get_profiler()
        if key in self._entries:
            tag = self._tags.get(key)
            fresh = generation is None or tag == generation
            if (
                not fresh
                and max_staleness_generations is not None
                and (tag is None or generation - tag > max_staleness_generations)
            ):
                self.stale += 1
                if profiler.enabled:
                    profiler.count("cache.stale")
                raise StaleArtifactError(key, tag, generation)
            if not fresh and revalidate is not None and revalidate(
                self._entries[key], tag
            ):
                self._tags[key] = generation
                self.revalidated += 1
                if profiler.enabled:
                    profiler.count("cache.revalidated")
                fresh = True
            if fresh:
                self.hits += 1
                if profiler.enabled:
                    profiler.count("cache.hits")
                self._entries.move_to_end(key)
                return self._entries[key]
            self.stale += 1
            if profiler.enabled:
                profiler.count("cache.stale")
            del self._entries[key]
            del self._tags[key]
        self.misses += 1
        if profiler.enabled:
            profiler.count("cache.misses")
        value = build()
        self._entries[key] = value
        self._tags[key] = generation
        if len(self._entries) > self.maxsize:
            evicted, _ = self._entries.popitem(last=False)
            self._tags.pop(evicted, None)
        return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """The cached value for ``key`` without any side effects.

        No LRU reordering, no counter bumps, no staleness checks -- this
        is the escape hatch a degraded tier uses after catching
        :class:`StaleArtifactError` to serve the stale value anyway.
        Returns ``default`` when the key is absent.
        """
        return self._entries.get(key, default)

    def drop(self, key: Hashable) -> bool:
        """Evict ``key`` (and its generation tag) if present.

        Returns True when an entry was removed.  Pairs with
        :class:`StaleArtifactError` for callers that decide a
        beyond-budget entry must be rebuilt from scratch.
        """
        if key not in self._entries:
            return False
        del self._entries[key]
        self._tags.pop(key, None)
        return True

    def clear(self) -> None:
        self._entries.clear()
        self._tags.clear()

    def stats(self) -> dict[str, int]:
        """JSON-ready counters (sizes and hit/miss/staleness tallies)."""
        return {
            "entries": len(self._entries),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "stale": self.stale,
            "revalidated": self.revalidated,
        }


_current = ArtifactCache()


def get_artifact_cache() -> ArtifactCache:
    """The process-wide artifact cache currently installed."""
    return _current


def set_artifact_cache(cache: ArtifactCache | None) -> ArtifactCache:
    """Install ``cache`` (None installs a fresh default-sized one);
    returns the previously installed cache."""
    global _current
    previous = _current
    _current = cache if cache is not None else ArtifactCache()
    return previous


@contextlib.contextmanager
def use_artifact_cache(cache: ArtifactCache) -> Iterator[ArtifactCache]:
    """Install ``cache`` for the duration of a ``with`` block."""
    previous = set_artifact_cache(cache)
    try:
        yield cache
    finally:
        set_artifact_cache(previous)
