"""Parallel and batched experiment machinery.

The experiment sweeps (Figures 9-12) amortise information collection the
same way the paper's protocol does: per-pattern artifacts (blocks, MCCs,
ESL grids, pivots, axis segments) are computed once and every destination
is evaluated against them.  This package supplies the two scaling layers
on top of the batched kernels in :mod:`repro.core.batched`:

- :mod:`repro.parallel.cache` -- a keyed scenario-artifact cache so
  block-/MCC-model metrics (and repeated sweeps over the same seed) never
  recompute shared artifacts, with ``cache.hits`` / ``cache.misses``
  counters wired into the :mod:`repro.obs.prof` profiler;
- :mod:`repro.parallel.pool` -- deterministic sharding of
  ``patterns_per_count`` across a :class:`concurrent.futures.
  ProcessPoolExecutor`, seeded via ``np.random.SeedSequence.spawn`` so
  serial and parallel runs produce bit-identical results.
"""

from repro.parallel.cache import (
    ArtifactCache,
    StaleArtifactError,
    get_artifact_cache,
    use_artifact_cache,
)
from repro.parallel.pool import ShardPlan, plan_shards

__all__ = [
    "ArtifactCache",
    "ShardPlan",
    "StaleArtifactError",
    "get_artifact_cache",
    "plan_shards",
    "use_artifact_cache",
]
