"""Deterministic pattern sharding for the experiment process pool.

The experiment runner gives every fault pattern its own
:class:`numpy.random.SeedSequence`, spawned from the experiment seed along
a fixed tree: ``root -> one child per fault count -> one grandchild per
pattern``.  A shard is a contiguous slice of one fault count's pattern
sequences; because each pattern's stream is independent of its neighbours,
any partition of the patterns over any number of workers replays the exact
same scenarios, destinations, and random pivots -- merging per-shard
success counts (integer sums) therefore reproduces the serial run
bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ShardPlan", "pattern_seed_tree", "plan_shards"]


@dataclass(frozen=True)
class ShardPlan:
    """One worker task: a slice of one fault count's patterns.

    ``pattern_offset`` is the index of the first pattern in the slice
    (diagnostics only -- results are merged by integer addition, so shard
    order never affects the outcome).
    """

    fault_count: int
    pattern_offset: int
    pattern_seeds: tuple[np.random.SeedSequence, ...]


def pattern_seed_tree(
    seed: int, fault_counts: tuple[int, ...], patterns_per_count: int
) -> list[list[np.random.SeedSequence]]:
    """Per-fault-count lists of per-pattern seed sequences.

    The spawn tree depends only on ``(seed, len(fault_counts),
    patterns_per_count)``, so every worker layout sees identical streams.
    """
    root = np.random.SeedSequence(seed)
    count_seqs = root.spawn(len(fault_counts))
    return [seq.spawn(patterns_per_count) for seq in count_seqs]


def plan_shards(
    seed: int,
    fault_counts: tuple[int, ...],
    patterns_per_count: int,
    workers: int,
) -> list[list[ShardPlan]]:
    """Shard every fault count's patterns into at most ``workers`` slices.

    Returns one list of :class:`ShardPlan` per fault count, in fault-count
    order.  Slices are contiguous and near-equal (sizes differ by at most
    one); with ``workers=1`` each fault count is a single shard, which is
    exactly the serial evaluation order.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    tree = pattern_seed_tree(seed, fault_counts, patterns_per_count)
    plans: list[list[ShardPlan]] = []
    for fault_count, seeds in zip(fault_counts, tree):
        shard_count = min(workers, len(seeds))
        base, extra = divmod(len(seeds), shard_count)
        shards: list[ShardPlan] = []
        offset = 0
        for i in range(shard_count):
            size = base + (1 if i < extra else 0)
            shards.append(
                ShardPlan(
                    fault_count=fault_count,
                    pattern_offset=offset,
                    pattern_seeds=tuple(seeds[offset : offset + size]),
                )
            )
            offset += size
        plans.append(shards)
    return plans
