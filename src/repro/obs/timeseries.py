"""Per-tick time series: a zero-dependency ring-buffer TSDB.

Three layers, all deterministic:

- :class:`TimeSeries` -- one bounded ``(tick, value)`` series.  At
  capacity it decimates in place (keeping every second retained sample)
  and doubles its acceptance stride, so memory stays O(capacity) while
  the series keeps covering the whole run at progressively coarser
  resolution.  The retained set is a pure function of the append
  sequence.
- :class:`SampleStore` -- a lock-guarded bag of named series sharing one
  tick domain, safe to snapshot from the metrics server thread while the
  simulation thread appends.
- :class:`TickSampler` / :class:`Observatory` -- the bridge to the
  simulator: a :meth:`~repro.simulator.engine.Engine.set_tick_hook`
  callback that reads engine/network counters (all deterministic
  simulator state, keyed by the simulated clock) into a store and feeds
  the alert engine.  A flight-recorded chaos run and its replay therefore
  produce bit-identical series.

A module-level slot (:func:`use_observatory`) mirrors the tracer and
profiler registries: :meth:`MeshNetwork.run` resolves it through the
cached instrumentation flags, so any protocol run inside the context
manager is sampled without the call site threading an observatory
through.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Callable, Iterator, Mapping

if TYPE_CHECKING:
    from repro.obs.alerts import AlertEngine, AlertRule
    from repro.obs.metrics import MetricsSink
    from repro.obs.tracer import Tracer
    from repro.simulator.network import MeshNetwork

#: Series every :class:`TickSampler` emits (stable names; the metrics
#: server exposes them as ``repro_live_sample{series="..."}``).
SAMPLER_SERIES = (
    "engine.tick",
    "engine.pending",
    "engine.events",
    "net.carried",
    "net.dropped",
    "net.lost",
    "net.duplicated",
    "net.retried",
    "net.links_up",
    "net.faulty",
)


class TimeSeries:
    """A bounded series of ``(tick, value)`` pairs.

    Appending at an existing last tick *replaces* the last value (the
    engine's terminal drain sample lands on the same tick as the final
    boundary), so ticks are strictly increasing.  Once ``capacity``
    retained points exist, every second one is dropped and the acceptance
    stride doubles: from then on only every ``stride``-th appended tick is
    retained, keeping the buffer in ``[capacity // 2, capacity]`` points
    spread over the full run.  Decimation depends only on the append
    sequence -- replaying the same appends rebuilds the identical buffer.
    """

    __slots__ = ("name", "capacity", "ticks", "values", "stride", "_seen")

    def __init__(self, name: str, capacity: int = 512):
        if capacity < 8:
            raise ValueError(f"capacity must be at least 8 (got {capacity})")
        self.name = name
        self.capacity = int(capacity)
        self.ticks: list[float] = []
        self.values: list[float] = []
        self.stride = 1
        self._seen = 0

    def append(self, tick: float, value: float) -> None:
        ticks = self.ticks
        if ticks and tick == ticks[-1]:
            self.values[-1] = value
            return
        seen = self._seen
        self._seen = seen + 1
        if seen % self.stride:
            return
        ticks.append(tick)
        self.values.append(value)
        if len(ticks) >= self.capacity:
            # Keep even positions: retained seen-indices stay exactly the
            # multiples of the doubled stride.
            del ticks[1::2]
            del self.values[1::2]
            self.stride *= 2

    def __len__(self) -> int:
        return len(self.ticks)

    @property
    def last(self) -> float | None:
        return self.values[-1] if self.values else None

    @property
    def last_tick(self) -> float | None:
        return self.ticks[-1] if self.ticks else None

    def at_or_before(self, tick: float) -> tuple[float, float] | None:
        """The latest retained ``(tick, value)`` at or before ``tick``
        (linear scan from the end; alert windows are short)."""
        ticks = self.ticks
        for i in range(len(ticks) - 1, -1, -1):
            if ticks[i] <= tick:
                return ticks[i], self.values[i]
        return None

    def bounds(self) -> tuple[float, float]:
        """(min, max) over the retained values; (0, 0) when empty."""
        if not self.values:
            return 0.0, 0.0
        return min(self.values), max(self.values)

    def to_dict(self) -> dict[str, Any]:
        return {
            "ticks": list(self.ticks),
            "values": list(self.values),
            "stride": self.stride,
        }


class SampleStore:
    """Named time series over one shared tick domain, thread-safe.

    The simulation thread appends (one row per tick boundary); the
    metrics server thread snapshots.  All mutation and all copying reads
    happen under one lock; :meth:`get` hands the live series back for the
    single-threaded alert path, which runs inside the tick hook on the
    simulation thread.
    """

    def __init__(self, capacity: int = 512):
        self.capacity = int(capacity)
        self._series: dict[str, TimeSeries] = {}
        self._lock = threading.Lock()

    def append(self, tick: float, row: Mapping[str, float]) -> None:
        """Record one sample per named series, all at the same tick."""
        with self._lock:
            series = self._series
            for name, value in row.items():
                ts = series.get(name)
                if ts is None:
                    ts = series[name] = TimeSeries(name, self.capacity)
                ts.append(tick, value)

    def get(self, name: str) -> TimeSeries | None:
        with self._lock:
            return self._series.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._series)

    def last_tick(self) -> float | None:
        with self._lock:
            ticks = [ts.last_tick for ts in self._series.values() if ts.ticks]
            return max(ticks) if ticks else None

    def last_row(self) -> dict[str, float]:
        """The most recent value of every series (not necessarily all from
        the same tick once decimation strides diverge)."""
        with self._lock:
            return {
                name: ts.values[-1]
                for name, ts in sorted(self._series.items())
                if ts.values
            }

    def snapshot(self) -> dict[str, Any]:
        """A JSON-ready copy: ``{"series": {name: {ticks, values, stride}}}``."""
        with self._lock:
            return {
                "series": {
                    name: ts.to_dict() for name, ts in sorted(self._series.items())
                },
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._series)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())


class TickSampler:
    """Reads engine/network health counters into a :class:`SampleStore`.

    Everything sampled is deterministic simulator state -- queue depth
    and the O(1) network running totals -- so series depend only on the
    event sequence.  ``metrics`` (an optional
    :class:`~repro.obs.metrics.MetricsSink`) adds per-protocol
    ``msg.<kind>`` counts; ``extra`` is a hook for protocol-specific
    progress gauges (called with the network, returns a row to merge).
    """

    __slots__ = ("store", "network", "metrics", "extra", "_link_totals")

    def __init__(
        self,
        store: SampleStore,
        network: "MeshNetwork | None" = None,
        metrics: "MetricsSink | None" = None,
        extra: "Callable[[MeshNetwork], Mapping[str, float]] | None" = None,
    ):
        self.store = store
        self.network = network
        self.metrics = metrics
        self.extra = extra
        self._link_totals = None  # resolved lazily: avoids an import cycle

    def bind(self, network: "MeshNetwork") -> None:
        self.network = network

    def __call__(self, tick: float) -> None:
        link_totals = self._link_totals
        if link_totals is None:
            from repro.simulator.channels import link_totals

            self._link_totals = link_totals
        network = self.network
        if network is None:
            return
        engine = network.engine
        links = link_totals(network)
        row = {
            "engine.tick": float(tick),
            "engine.pending": float(engine.pending),
            "engine.events": float(engine.events_processed),
            "net.carried": float(links["carried"]),
            "net.dropped": float(links["dropped"]),
            "net.lost": float(links["lost"]),
            "net.duplicated": float(links["duplicated"]),
            "net.retried": float(links["retried"]),
            "net.links_up": float(links["links_up"]),
            "net.faulty": float(len(network.faulty)),
        }
        if self.metrics is not None:
            for kind, count in self.metrics.message_counts.items():
                row[f"msg.{kind}"] = float(count)
        if self.extra is not None:
            row.update(self.extra(network))
        self.store.append(tick, row)


class Observatory:
    """One live-telemetry unit: store + sampler + alert engine.

    Construct unbound, then :meth:`watch` a network (or pass it to
    ``ChaosRunner(observatory=...)`` / ``verify_convergence`` and let the
    runner bind it).  Alert firings stay on the observatory -- they are
    emitted as ``"alert"`` trace events only through an explicitly given
    tracer, never the ambient one, so a flight-recorded run's event
    stream (and therefore its replay) is identical with or without an
    observatory attached.
    """

    def __init__(
        self,
        rules: "tuple[AlertRule, ...] | None" = None,
        interval: float = 1.0,
        capacity: int = 512,
        metrics: "MetricsSink | None" = None,
        tracer: "Tracer | None" = None,
        extra: "Callable[[MeshNetwork], Mapping[str, float]] | None" = None,
        on_sample: "Callable[[float], None] | None" = None,
    ):
        from repro.obs.alerts import AlertEngine, default_rules

        if not interval > 0:
            raise ValueError(f"sampling interval must be positive (got {interval})")
        self.interval = float(interval)
        self.store = SampleStore(capacity)
        self.sampler = TickSampler(self.store, metrics=metrics, extra=extra)
        self.alerts: AlertEngine = AlertEngine(
            default_rules() if rules is None else rules, tracer=tracer
        )
        #: Called after each sample + alert pass (``repro top`` hangs its
        #: redraw here).  Must not mutate simulator state.
        self.on_sample = on_sample

    def watch(self, network: "MeshNetwork") -> "Observatory":
        """Bind the sampler to ``network`` and install the engine tick
        hook (idempotent; re-watching rebinds without clearing series)."""
        self.sampler.bind(network)
        network.engine.set_tick_hook(self._on_tick, self.interval)
        return self

    def detach(self, network: "MeshNetwork") -> None:
        network.engine.set_tick_hook(None)

    def _on_tick(self, tick: float) -> None:
        self.sampler(tick)
        self.alerts.evaluate(tick, self.store)
        if self.on_sample is not None:
            self.on_sample(tick)

    @property
    def firing(self) -> tuple[str, ...]:
        """Names of currently-active alert rules."""
        return self.alerts.active

    def healthz(self) -> dict[str, Any]:
        """The ``/healthz`` body: ok unless an alert rule is active."""
        firing = self.alerts.active
        return {
            "status": "alerting" if firing else "ok",
            "tick": self.store.last_tick(),
            "series": len(self.store),
            "alerts": [a.jsonable() for a in self.alerts.firings],
            "firing": list(firing),
        }


# ----------------------------------------------------------------------
# Ambient observatory slot (mirrors the tracer/profiler registries)
# ----------------------------------------------------------------------
_observatory: Observatory | None = None


def get_observatory() -> Observatory | None:
    """The ambient observatory, or None (the default: no sampling)."""
    return _observatory


def set_observatory(observatory: Observatory | None) -> Observatory | None:
    """Install the ambient observatory; returns the previous one."""
    global _observatory
    previous = _observatory
    _observatory = observatory
    return previous


@contextmanager
def use_observatory(observatory: Observatory) -> Iterator[Observatory]:
    """Sample every ``MeshNetwork.run`` inside the block into
    ``observatory`` (each run re-binds the sampler to its network)."""
    previous = set_observatory(observatory)
    try:
        yield observatory
    finally:
        set_observatory(previous)
