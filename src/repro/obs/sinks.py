"""Event sinks: where emitted trace events go.

A sink is anything with ``record(event)``.  Provided here:

- :class:`RingBufferSink` -- bounded in-memory buffer, the default for
  interactive tracing (``repro trace`` replays it).
- :class:`JsonlSink` -- one JSON object per line; :func:`read_jsonl` loads
  a file back into events, so traces round-trip for offline analysis.

The aggregating :class:`~repro.obs.metrics.MetricsSink` lives in its own
module.
"""

from __future__ import annotations

import collections
import io
import json
import pathlib
from typing import Iterator, Protocol

from repro.obs.events import TraceEvent


class Sink(Protocol):
    """Anything that accepts recorded events."""

    def record(self, event: TraceEvent) -> None: ...


class RingBufferSink:
    """Keep the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("ring buffer capacity must be >= 1")
        self.capacity = capacity
        self._events: collections.deque[TraceEvent] = collections.deque(maxlen=capacity)

    def record(self, event: TraceEvent) -> None:
        self._events.append(event)

    @property
    def events(self) -> list[TraceEvent]:
        return list(self._events)

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)


class JsonlSink:
    """Append events to a JSONL file (or any text stream).

    Usable as a context manager: ``with JsonlSink(path) as sink: ...``
    flushes (and, for sinks that opened their own file, closes) on exit.
    """

    def __init__(self, target: str | pathlib.Path | io.TextIOBase):
        if isinstance(target, (str, pathlib.Path)):
            path = pathlib.Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._stream: io.TextIOBase = path.open("w", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        self.events_written = 0

    def record(self, event: TraceEvent) -> None:
        self._stream.write(json.dumps(event.to_dict(), separators=(",", ":")) + "\n")
        self.events_written += 1

    def close(self) -> None:
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class JsonlDecodeError(ValueError):
    """A JSONL dump contained a line that is not a valid trace event.

    Names the source and the 1-based line number so a corrupt multi-GB
    trace is debuggable without bisecting it by hand.
    """

    def __init__(self, source: str, line_number: int, reason: str):
        super().__init__(f"{source}, line {line_number}: {reason}")
        self.source = source
        self.line_number = line_number
        self.reason = reason


def _parse_lines(lines, source: str) -> list[TraceEvent]:
    events = []
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            events.append(TraceEvent.from_dict(json.loads(line)))
        except (ValueError, KeyError, TypeError) as error:
            raise JsonlDecodeError(source, number, str(error)) from error
    return events


def read_jsonl(source: str | pathlib.Path | io.TextIOBase) -> list[TraceEvent]:
    """Load a JSONL event dump written by :class:`JsonlSink`.

    Raises :class:`JsonlDecodeError` (naming the offending line number) if
    any non-blank line is not a valid serialized :class:`TraceEvent`.
    """
    if isinstance(source, (str, pathlib.Path)):
        path = pathlib.Path(source)
        with path.open("r", encoding="utf-8") as stream:
            return _parse_lines(stream, str(path))
    return _parse_lines(source, getattr(source, "name", "<stream>"))
