"""Event sinks: where emitted trace events go.

A sink is anything with ``record(event)``.  Provided here:

- :class:`RingBufferSink` -- bounded in-memory buffer, the default for
  interactive tracing (``repro trace`` replays it).
- :class:`JsonlSink` -- one JSON object per line; :func:`read_jsonl` loads
  a file back into events, so traces round-trip for offline analysis.

The aggregating :class:`~repro.obs.metrics.MetricsSink` lives in its own
module.
"""

from __future__ import annotations

import collections
import io
import json
import pathlib
from typing import Iterator, Protocol

from repro.obs.events import TraceEvent


class Sink(Protocol):
    """Anything that accepts recorded events."""

    def record(self, event: TraceEvent) -> None: ...


class RingBufferSink:
    """Keep the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("ring buffer capacity must be >= 1")
        self.capacity = capacity
        self._events: collections.deque[TraceEvent] = collections.deque(maxlen=capacity)

    def record(self, event: TraceEvent) -> None:
        self._events.append(event)

    @property
    def events(self) -> list[TraceEvent]:
        return list(self._events)

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)


class JsonlSink:
    """Append events to a JSONL file (or any text stream).

    Usable as a context manager: ``with JsonlSink(path) as sink: ...``
    flushes (and, for sinks that opened their own file, closes) on exit.

    With ``max_bytes`` set the sink rotates: once the active file reaches
    the bound it is renamed to ``<name>.1`` (older generations shift to
    ``.2``, ``.3``, ...) and a fresh file is started, keeping at most
    ``keep`` files in total -- so long chaos soaks cannot fill the disk.
    Rotation requires a path target (a borrowed stream cannot be renamed);
    the default stays unbounded for compatibility.
    """

    def __init__(
        self,
        target: str | pathlib.Path | io.TextIOBase,
        *,
        max_bytes: int | None = None,
        keep: int = 5,
    ):
        if isinstance(target, (str, pathlib.Path)):
            path = pathlib.Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._path: pathlib.Path | None = path
            self._stream: io.TextIOBase = path.open("w", encoding="utf-8")
            self._owns_stream = True
        else:
            self._path = None
            self._stream = target
            self._owns_stream = False
        if max_bytes is not None:
            if self._path is None:
                raise ValueError("rotation (max_bytes=) requires a path target")
            if max_bytes < 1:
                raise ValueError("max_bytes must be >= 1")
            if keep < 1:
                raise ValueError("keep must be >= 1")
        self._max_bytes = max_bytes
        self._keep = keep
        self._bytes = 0
        self.events_written = 0
        self.rotations = 0

    def record(self, event: TraceEvent) -> None:
        line = json.dumps(event.to_dict(), separators=(",", ":")) + "\n"
        self._stream.write(line)
        self.events_written += 1
        if self._max_bytes is not None:
            self._bytes += len(line.encode("utf-8"))
            if self._bytes >= self._max_bytes:
                self._rotate()

    def _rotate(self) -> None:
        assert self._path is not None
        self._stream.flush()
        self._stream.close()
        if self._keep > 1:
            # Shift generations up, dropping the one past the keep bound.
            oldest = self._path.with_name(f"{self._path.name}.{self._keep - 1}")
            oldest.unlink(missing_ok=True)
            for gen in range(self._keep - 2, 0, -1):
                source = self._path.with_name(f"{self._path.name}.{gen}")
                if source.exists():
                    source.rename(self._path.with_name(f"{self._path.name}.{gen + 1}"))
            self._path.rename(self._path.with_name(f"{self._path.name}.1"))
        self._stream = self._path.open("w", encoding="utf-8")
        self._bytes = 0
        self.rotations += 1

    def close(self) -> None:
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class JsonlDecodeError(ValueError):
    """A JSONL dump contained a line that is not a valid trace event.

    Names the source and the 1-based line number so a corrupt multi-GB
    trace is debuggable without bisecting it by hand.
    """

    def __init__(self, source: str, line_number: int, reason: str):
        super().__init__(f"{source}, line {line_number}: {reason}")
        self.source = source
        self.line_number = line_number
        self.reason = reason


def _parse_lines(lines, source: str) -> list[TraceEvent]:
    events = []
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            events.append(TraceEvent.from_dict(json.loads(line)))
        except (ValueError, KeyError, TypeError) as error:
            raise JsonlDecodeError(source, number, str(error)) from error
    return events


def read_jsonl(source: str | pathlib.Path | io.TextIOBase) -> list[TraceEvent]:
    """Load a JSONL event dump written by :class:`JsonlSink`.

    Raises :class:`JsonlDecodeError` (naming the offending line number) if
    any non-blank line is not a valid serialized :class:`TraceEvent`.
    """
    if isinstance(source, (str, pathlib.Path)):
        path = pathlib.Path(source)
        with path.open("r", encoding="utf-8") as stream:
            return _parse_lines(stream, str(path))
    return _parse_lines(source, getattr(source, "name", "<stream>"))
