"""Tracers: the emitting side of the observability layer.

Two implementations share one interface:

- :class:`Tracer` fans events out to its sinks and times ``span()`` blocks.
- :class:`NullTracer` (the module singleton :data:`NULL_TRACER`) does
  nothing; ``enabled`` is False so hot paths can skip even building the
  event payload::

      trc = self.tracer or get_tracer()
      if trc.enabled:
          trc.emit("hop", at=current, to=nxt)

The *current* tracer is a module-level slot (default: the null tracer) so
deep call sites -- ESL computation, block formation, the simulator -- pick
up instrumentation without every caller threading a parameter through.
Install one for a region of code with :func:`use_tracer`, or globally with
:func:`set_tracer`.  Uninstrumented runs therefore pay only an attribute
load and a predictable branch per potential event.
"""

from __future__ import annotations

import contextlib
import itertools
import time
from typing import Any, Iterator

from repro.obs.events import TraceEvent
from repro.obs.sinks import Sink


class _Span:
    """A timed section: ``span_start`` on enter, ``span_end`` (with
    ``duration`` in seconds) on exit.

    Both events carry the same ``span_id`` (allocated per tracer), so
    start/end pair up even when spans of the same name interleave; the
    ``span_end`` additionally names its ``span_start`` as its cause.
    """

    __slots__ = ("_tracer", "_name", "_data", "_t0", "span_id", "_start_id")

    def __init__(self, tracer: "Tracer", name: str, data: dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._data = data
        self.span_id = next(tracer._span_seq)
        self._start_id: int | None = None

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter()
        self._start_id = self._tracer.emit(
            "span_start", name=self._name, span_id=self.span_id, **self._data
        )
        return self

    def __exit__(self, *exc_info: object) -> None:
        duration = time.perf_counter() - self._t0
        self._tracer.emit(
            "span_end",
            cause=self._start_id,
            name=self._name,
            span_id=self.span_id,
            duration=duration,
            **self._data,
        )


class _NullSpan:
    """Shared do-nothing context manager for the null tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Emit typed events to one or more sinks."""

    enabled: bool = True
    #: True only on :class:`~repro.obs.recorder.FlightRecorder`; hot paths
    #: cache this to decide whether to take the recorded (lineage-emitting)
    #: code path.
    recording: bool = False
    #: Causal-scope slots; only the flight recorder maintains them, but
    #: they exist on every tracer so a recorded delivery that fires after
    #: the recorder was swapped out degrades to no-ops instead of raising.
    cause: int | None = None
    last_send_id: int | None = None

    def __init__(self, *sinks: Sink):
        self._sinks: list[Sink] = list(sinks)
        self._seq = itertools.count()
        self._span_seq = itertools.count()

    def add_sink(self, sink: Sink) -> None:
        self._sinks.append(sink)

    def emit(self, kind: str, *, cause: int | None = None, **data: Any) -> int:
        """Record one event; returns its event id (the ``seq``) so callers
        can thread it as the ``cause`` of downstream events."""
        event = TraceEvent(kind=kind, seq=next(self._seq), data=data, cause=cause)
        for sink in self._sinks:
            sink.record(event)
        return event.seq

    def span(self, name: str, **data: Any) -> _Span:
        """Context manager timing a section; see :class:`_Span`."""
        return _Span(self, name, data)

    def close(self) -> None:
        """Close every sink that holds resources (e.g. JSONL files)."""
        for sink in self._sinks:
            close = getattr(sink, "close", None)
            if callable(close):
                close()


class NullTracer(Tracer):
    """The no-op default: every operation returns immediately."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def emit(self, kind: str, *, cause: int | None = None, **data: Any) -> int:
        return -1

    def span(self, name: str, **data: Any) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def close(self) -> None:
        pass


NULL_TRACER = NullTracer()

_current: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The currently installed tracer (the null tracer by default)."""
    return _current


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` (None restores the null tracer); returns the
    previously installed one so callers can restore it."""
    global _current
    previous = _current
    _current = tracer if tracer is not None else NULL_TRACER
    return previous


@contextlib.contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` for the duration of a ``with`` block."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
