"""The flight recorder: deterministic event capture with causal lineage.

A :class:`FlightRecorder` is a :class:`~repro.obs.tracer.Tracer` whose
``recording`` flag makes the simulator take its *recorded* code paths:
every decision point -- message send/deliver/drop/duplicate, chaos
crash/revive, epoch fences, process restarts, simulated-time advances --
is emitted as a :class:`~repro.obs.events.TraceEvent` whose ``cause``
names the event that triggered it.  The resulting stream is a complete,
replayable account of one run:

- **lineage** -- follow ``cause`` links backwards (:func:`ancestry`) to
  answer "which message caused this?" across hops, retransmits, and
  chaos epochs;
- **determinism** -- the stream is a pure function of the run recipe
  (mesh, faults, fault-plan seed, schedule), so re-executing the recipe
  must reproduce it bit for bit (:mod:`repro.obs.replay` checks this);
- **seekability** -- recording to a file writes JSONL plus a sidecar
  index (``<log>.idx``) of per-tick byte offsets and *cumulative
  digests* of the canonical event stream, which is what lets the
  divergence bisector binary-search two multi-megabyte logs without
  reading either end to end.

The canonical form of an event (:func:`canonical`) strips wall-clock
fields (span ``duration``) so "bit-identical" compares only simulated
behaviour, never host timing.

Recording costs one extra cached-flag check on the uninstrumented send
path (the same pattern as the chaos flag); with the default null tracer
installed nothing here is ever touched.
"""

from __future__ import annotations

import contextlib
import hashlib
import io
import json
import pathlib
from typing import Any, Iterator, Mapping, Sequence

from repro.obs.events import TraceEvent
from repro.obs.sinks import read_jsonl
from repro.obs.tracer import Tracer

#: Payload keys excluded from canonical comparison: host-time measurements
#: that legitimately differ between a run and its replay.
VOLATILE_KEYS = frozenset({"duration"})

INDEX_VERSION = 1


def canonical(payload: Mapping[str, Any]) -> dict[str, Any]:
    """The comparable form of one serialized event (``TraceEvent.to_dict``):
    identical between a recording and a faithful replay."""
    out = dict(payload)
    data = out.get("data")
    if isinstance(data, Mapping) and any(key in data for key in VOLATILE_KEYS):
        out["data"] = {k: v for k, v in data.items() if k not in VOLATILE_KEYS}
    return out


def canonical_bytes(payload: Mapping[str, Any]) -> bytes:
    """Key-sorted JSON encoding of :func:`canonical`, fed to digests."""
    return json.dumps(canonical(payload), sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


def index_path_for(path: str | pathlib.Path) -> pathlib.Path:
    """The sidecar index written next to a recorded log."""
    path = pathlib.Path(path)
    return path.with_name(path.name + ".idx")


class _ListSink:
    """Unbounded in-memory capture (a flight recording must be complete;
    the ring buffer's drop-oldest policy would break replay)."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        self.events.append(event)


class RecorderSink:
    """JSONL persistence plus the seekable sidecar index.

    The index maps every ``tick`` event (simulated-time advance) to its
    byte offset, event id, and the cumulative SHA-256 of the canonical
    stream *before* it -- equal index entries therefore prove equal
    event prefixes, which is the invariant the bisector's binary search
    relies on.
    """

    def __init__(self, target: str | pathlib.Path):
        self.path = pathlib.Path(target)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._stream: io.TextIOBase = self.path.open("w", encoding="utf-8")
        self._bytes = 0
        self._digest = hashlib.sha256()
        self._marks: list[dict[str, Any]] = []
        self.events_written = 0
        self._closed = False

    def record(self, event: TraceEvent) -> None:
        payload = event.to_dict()
        if event.kind == "tick":
            self._marks.append(
                {
                    "time": payload["data"]["time"],
                    "offset": self._bytes,
                    "event_id": event.seq,
                    "digest": self._digest.hexdigest(),
                }
            )
        line = json.dumps(payload, separators=(",", ":")) + "\n"
        self._stream.write(line)
        self._bytes += len(line.encode("utf-8"))
        self._digest.update(canonical_bytes(payload))
        self.events_written += 1

    def flush(self) -> None:
        self._stream.flush()

    def write_index(self) -> pathlib.Path:
        index = {
            "version": INDEX_VERSION,
            "events": self.events_written,
            "digest": self._digest.hexdigest(),
            "ticks": self._marks,
        }
        index_path = index_path_for(self.path)
        index_path.write_text(json.dumps(index), encoding="utf-8")
        return index_path

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._stream.flush()
        self._stream.close()
        self.write_index()


class FlightRecorder(Tracer):
    """A tracer that records everything, with causal lineage.

    Installing one (``use_tracer(FlightRecorder(...))`` or passing it as
    a network/runner tracer) flips the simulator onto its recorded send
    and delivery paths.  Events are always kept in memory (``.events``);
    pass ``target`` to also stream them to a JSONL log with a seekable
    index sidecar (written on :meth:`close`).

    ``cause`` is the recorder's notion of "what is happening right now":
    the network sets it to the active delivery's event id for the span of
    the receiver's handler, so every send made *inside* a handler chains
    to the message that provoked it without any protocol code changing.
    """

    recording = True

    def __init__(self, target: str | pathlib.Path | None = None):
        self._list = _ListSink()
        self._file: RecorderSink | None = None
        sinks: list[Any] = [self._list]
        if target is not None:
            self._file = RecorderSink(target)
            sinks.append(self._file)
        super().__init__(*sinks)
        self.path: pathlib.Path | None = self._file.path if self._file else None
        #: The event id downstream emissions should name as their cause
        #: (None outside any causal context).
        self.cause: int | None = None
        #: Event id of the most recent ``msg_send``/``msg_drop``; reliable
        #: senders stash it next to the outbox entry so a retransmit can
        #: chain to the attempt it is retrying.
        self.last_send_id: int | None = None
        self._last_tick: float | None = None

    def emit(self, kind: str, *, cause: int | None = None, **data: Any) -> int:
        time = data.get("time")
        if time is not None and time != self._last_tick:
            # Synthesize the tick boundary before the event that crossed it.
            self._last_tick = time
            super().emit("tick", time=time)
        return super().emit(kind, cause=cause, **data)

    @contextlib.contextmanager
    def cause_scope(self, event_id: int | None) -> Iterator[None]:
        """Attribute everything emitted inside the block to ``event_id``."""
        previous = self.cause
        self.cause = event_id
        try:
            yield
        finally:
            self.cause = previous

    @property
    def events(self) -> list[TraceEvent]:
        """The complete recorded stream, in emission order."""
        return list(self._list.events)

    def canonical_stream(self) -> list[dict[str, Any]]:
        """Canonical forms of every event (what replay compares)."""
        return [canonical(event.to_dict()) for event in self._list.events]


def read_recording(source: str | pathlib.Path | io.TextIOBase) -> list[TraceEvent]:
    """Load a recorded JSONL log back into events."""
    return read_jsonl(source)


def read_index(path: str | pathlib.Path) -> dict[str, Any] | None:
    """Load the sidecar index of a recorded log; None if absent."""
    index_path = index_path_for(path)
    if not index_path.exists():
        return None
    return json.loads(index_path.read_text(encoding="utf-8"))


# ----------------------------------------------------------------------
# Lineage
# ----------------------------------------------------------------------
def event_index(events: Sequence[TraceEvent]) -> dict[int, TraceEvent]:
    """Map event id -> event (ids are the per-recorder ``seq``)."""
    return {event.seq: event for event in events}


def ancestry(
    events: Sequence[TraceEvent] | Mapping[int, TraceEvent], event_id: int
) -> list[TraceEvent]:
    """The causal chain ending at ``event_id``, root first.

    Raises ``KeyError`` if the id (or any ancestor) is not in the stream;
    cycles (impossible for recorder output, where causes always point
    backwards) raise ``ValueError`` instead of looping.
    """
    table = events if isinstance(events, Mapping) else event_index(events)
    chain: list[TraceEvent] = []
    seen: set[int] = set()
    current: int | None = event_id
    while current is not None:
        if current in seen:
            raise ValueError(f"cause cycle through event {current}")
        seen.add(current)
        event = table[current]
        chain.append(event)
        current = event.cause
    chain.reverse()
    return chain


def render_lineage(
    events: Sequence[TraceEvent] | Mapping[int, TraceEvent], event_id: int
) -> str:
    """Human-readable ancestry tree for one event (root at the top)."""
    chain = ancestry(events, event_id)
    lines = []
    for depth, event in enumerate(chain):
        prefix = "" if depth == 0 else "   " * (depth - 1) + "`- "
        lines.append(f"{prefix}{event}")
    return "\n".join(lines)
