"""Live telemetry over HTTP: ``/metrics``, ``/series.json``, ``/healthz``.

:class:`MetricsServer` wraps a stdlib :class:`ThreadingHTTPServer` on a
daemon thread, so a running simulation (the chaos runner, ``repro
serve-metrics``, or any protocol run) can be scraped while it drains:

- ``GET /metrics`` -- Prometheus text 0.0.4: the attached
  :class:`~repro.obs.metrics.MetricsSink` snapshot (plus profiler
  sections) followed by the live per-tick series and alert state.
- ``GET /series.json`` -- the full ring-buffer contents of every series
  plus alert firings, JSON.
- ``GET /healthz`` -- ``{"status": "ok"}`` with 200, or
  ``{"status": "alerting", ...}`` with 503 while any alert rule is
  breaching, so a poller (or CI) turns alert regressions into failures.
- ``GET /readyz`` -- readiness (distinct from health): 200 while the
  server is accepting work, 503 once :meth:`MetricsServer.mark_draining`
  has run.  A load balancer stops routing on the 503 while ``/healthz``
  keeps reporting liveness, which is what makes graceful shutdown
  observable: flip readiness, drain in-flight requests, then exit 0.

Scrapes read shared state only through :class:`SampleStore`'s lock and
the GIL-atomic counter reads of ``MetricsSink.snapshot``, so the
simulation thread never blocks on a scrape.

For headless CI there is a push-to-file mode: :meth:`write_metrics` /
:meth:`write_series` (and the module-level :func:`atomic_write_text`)
publish via a same-directory temp file and ``os.replace``, so a reader
never observes a torn file.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any

from repro.obs.prometheus import render_prometheus, render_timeseries

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsSink
    from repro.obs.prof import Profiler
    from repro.obs.timeseries import Observatory


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The temp file lives in the destination directory so the final rename
    never crosses a filesystem boundary; parent directories are created.
    """
    target = os.path.abspath(os.fspath(path))
    directory = os.path.dirname(target)
    if directory:
        os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-", suffix=".write")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class MetricsServer:
    """Serves live telemetry from an observatory and/or metrics sink.

    ``port=0`` (the default) binds an ephemeral port; read ``.port``
    after construction.  Use as a context manager or call
    :meth:`start`/:meth:`stop` -- the serving thread is a daemon either
    way, so a crashed simulation never hangs on exit.
    """

    def __init__(
        self,
        observatory: "Observatory | None" = None,
        metrics: "MetricsSink | None" = None,
        profiler: "Profiler | None" = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.observatory = observatory
        self.metrics = metrics
        self.profiler = profiler
        exporter = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                exporter._handle(self)

            def log_message(self, *args: Any) -> None:
                pass  # scrapes are routine; keep stderr clean

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: threading.Thread | None = None
        self._ready = True
        self._inflight = 0
        self._state_lock = threading.Lock()
        self._idle = threading.Condition(self._state_lock)

    # ------------------------------------------------------------------
    # Payloads (also the push-to-file bodies)
    # ------------------------------------------------------------------
    def render_metrics(self) -> str:
        """The ``/metrics`` body: snapshot families, then live series."""
        parts = []
        if self.metrics is not None:
            profile = self.profiler.snapshot() if self.profiler is not None else None
            parts.append(render_prometheus(self.metrics.snapshot(), profile=profile))
        if self.observatory is not None:
            parts.append(
                render_timeseries(self.observatory.store, self.observatory.alerts)
            )
        return "".join(parts) or "# no telemetry sources attached\n"

    def series_json(self) -> dict[str, Any]:
        """The ``/series.json`` body: every ring buffer plus alert state."""
        if self.observatory is None:
            return {"series": {}, "alerts": [], "firing": []}
        payload = self.observatory.store.snapshot()
        payload["alerts"] = [a.jsonable() for a in self.observatory.alerts.firings]
        payload["firing"] = list(self.observatory.alerts.active)
        return payload

    def healthz(self) -> tuple[int, dict[str, Any]]:
        """(status code, body) for ``/healthz``: 503 while alerting."""
        if self.observatory is None:
            return 200, {"status": "ok", "alerts": [], "firing": []}
        body = self.observatory.healthz()
        return (503 if body["status"] == "alerting" else 200), body

    def readyz(self) -> tuple[int, dict[str, Any]]:
        """(status code, body) for ``/readyz``: 503 once draining."""
        with self._state_lock:
            ready = self._ready
            inflight = self._inflight
        status = "ready" if ready else "draining"
        return (200 if ready else 503), {
            "status": status,
            "ready": ready,
            "inflight": inflight,
        }

    def write_metrics(self, path: str) -> None:
        """Push mode: publish the ``/metrics`` body atomically to a file."""
        atomic_write_text(path, self.render_metrics())

    def write_series(self, path: str) -> None:
        """Push mode: publish the ``/series.json`` body atomically."""
        atomic_write_text(
            path, json.dumps(self.series_json(), indent=2, sort_keys=True) + "\n"
        )

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    def _handle(self, request: BaseHTTPRequestHandler) -> None:
        with self._state_lock:
            self._inflight += 1
        try:
            code, payload, content_type = self._render(request.path)
            self._respond(request, code, payload, content_type)
        finally:
            with self._idle:
                self._inflight -= 1
                if self._inflight == 0:
                    self._idle.notify_all()

    def _render(self, raw_path: str) -> tuple[int, bytes, str]:
        """Build the complete encoded payload for ``raw_path``.

        Bodies are encoded to bytes *before* any header is written, so
        ``Content-Length`` is always measured on the final byte string --
        a concurrently-appending :class:`SampleStore` can grow between
        two scrapes but never between a scrape's header and its body.
        """
        json_type = "application/json"
        path = raw_path.split("?", 1)[0]
        if path == "/metrics":
            return (
                200,
                self.render_metrics().encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        if path == "/series.json":
            payload = json.dumps(self.series_json(), sort_keys=True).encode("utf-8")
            return 200, payload, json_type
        if path == "/healthz":
            code, body = self.healthz()
            return code, json.dumps(body, sort_keys=True).encode("utf-8"), json_type
        if path == "/readyz":
            code, body = self.readyz()
            return code, json.dumps(body, sort_keys=True).encode("utf-8"), json_type
        body = {
            "error": f"unknown path {path!r}",
            "paths": ["/metrics", "/series.json", "/healthz", "/readyz"],
        }
        return 404, json.dumps(body).encode("utf-8"), json_type

    @staticmethod
    def _respond(
        request: BaseHTTPRequestHandler, code: int, payload: bytes, content_type: str
    ) -> None:
        request.send_response(code)
        request.send_header("Content-Type", content_type)
        request.send_header("Content-Length", str(len(payload)))
        request.end_headers()
        request.wfile.write(payload)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def url(self, path: str = "/metrics") -> str:
        return f"http://{self.host}:{self.port}{path}"

    def start(self) -> "MetricsServer":
        if self._thread is not None:
            raise RuntimeError("metrics server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-metrics-{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def mark_ready(self) -> None:
        """Flip ``/readyz`` back to 200 (e.g. after a paused drain)."""
        with self._state_lock:
            self._ready = True

    def mark_draining(self) -> None:
        """Flip ``/readyz`` to 503 without stopping the server.

        Pollers see the flip immediately; already-accepted requests keep
        being served, which is the window :meth:`drain` bounds.
        """
        with self._state_lock:
            self._ready = False

    def drain(self, grace: float = 5.0) -> bool:
        """Graceful shutdown: unready, wait out in-flight scrapes, stop.

        Marks the server draining, waits up to ``grace`` seconds for
        in-flight handlers to finish, then stops the listener either way
        (handler threads are daemons, so stragglers cannot hang exit).
        Returns True when the drain completed within the grace period.
        """
        self.mark_draining()
        with self._idle:
            drained = self._idle.wait_for(lambda: self._inflight == 0, timeout=grace)
        self.stop()
        return drained

    def stop(self) -> None:
        if self._thread is None:
            self._httpd.server_close()
            return
        self._httpd.shutdown()
        self._thread.join(timeout=5.0)
        self._httpd.server_close()
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
