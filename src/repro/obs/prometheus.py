"""Prometheus text exposition of a metrics (and optional profile) snapshot.

:func:`render_prometheus` maps :meth:`MetricsSink.snapshot()
<repro.obs.metrics.MetricsSink.snapshot>` onto the Prometheus text format
(version 0.0.4): counters for tallies, gauges for engine state, and
summaries (``{quantile="0.5"}`` series plus ``_sum``/``_count``) for every
histogram, so ``repro stats --prom`` output can be scraped into standard
dashboards or pushed through a Pushgateway unchanged.

Metric names are stable API: dashboards depend on them.

====================================  =======================================
metric                                source
====================================  =======================================
``repro_events_total{kind=}``         event counter
``repro_protocol_messages_total``     per message kind (``msg=`` label)
``repro_decisions_total{decision=}``  safe-condition decisions fired
``repro_routes_total{outcome=}``      delivered / minimal / sub_minimal / failed
``repro_route_hops``                  summary; hops per delivered leg
``repro_route_detours``               summary; detours per delivered leg
``repro_queue_depth``                 summary; engine queue at each send
``repro_messages_per_tick``           summary; protocol msgs per sim tick
``repro_messages_per_tick_overflow_total``  ticks dropped by the cap
``repro_span_duration_seconds{span=}``      summary per timing span
``repro_engine_now`` / ``_pending``   gauges; latest engine drain
``repro_engine_events_processed_total``     engine lifetime counter
``repro_hot_counter_total{name=}``    profiler hot-path counters
``repro_profile_section_seconds{section=}`` summary per profiled section
``repro_live_sample{series=}``        gauge; latest per-tick sample
``repro_live_points{series=}``        gauge; retained ring-buffer points
``repro_live_tick``                   gauge; newest sampled sim tick
``repro_alert_active{rule=}``         gauge; 1 while the rule breaches
``repro_alerts_fired_total{rule=}``   counter; excursions per alert rule
====================================  =======================================

The ``live``/``alert`` families come from :func:`render_timeseries` (a
:class:`~repro.obs.timeseries.SampleStore` plus optional
:class:`~repro.obs.alerts.AlertEngine`); the metrics server concatenates
them after the snapshot families on every ``/metrics`` scrape.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.obs.alerts import AlertEngine
    from repro.obs.timeseries import SampleStore

#: The quantile labels exported for every summary, mapped to the summary
#: keys produced by :meth:`repro.obs.metrics.Histogram.summary`.
_QUANTILES = (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"))


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _num(value: Any) -> str:
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _series(name: str, labels: dict[str, str] | None, value: Any) -> str:
    if labels:
        rendered = ",".join(f'{k}="{_escape(str(v))}"' for k, v in labels.items())
        return f"{name}{{{rendered}}} {_num(value)}"
    return f"{name} {_num(value)}"


class ExpositionWriter:
    """Incrementally builds a Prometheus text-format exposition.

    Public so other exporters (the serve front end's ``/metrics``) can
    emit families with the same escaping/formatting discipline as the
    built-in renderers; call :meth:`text` for the final body.
    """

    def __init__(self) -> None:
        self.lines: list[str] = []

    def text(self) -> str:
        """The exposition body so far ('' when no family was emitted)."""
        if not self.lines:
            return ""
        return "\n".join(self.lines) + "\n"

    def header(self, name: str, metric_type: str, help_text: str) -> None:
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {metric_type}")

    def counter_family(
        self, name: str, help_text: str, label: str, values: dict[str, Any]
    ) -> None:
        if not values:
            return
        self.header(name, "counter", help_text)
        for key, value in sorted(values.items()):
            self.lines.append(_series(name, {label: key}, value))

    def single(self, name: str, metric_type: str, help_text: str, value: Any) -> None:
        self.header(name, metric_type, help_text)
        self.lines.append(_series(name, None, value))

    def summary(
        self,
        name: str,
        summary: dict[str, Any],
        labels: dict[str, str] | None = None,
        scale: float = 1.0,
    ) -> None:
        """One label-set of a summary metric (header emitted separately).

        A sample-free summary -- ``count`` 0 or missing, which external
        snapshots may pair with ``null`` *or stale numbers* in the
        quantile keys -- emits only a zero ``_sum``/``_count`` pair: a
        quantile of an empty population has no value, and fabricating one
        (``Histogram.percentile`` returns None) poisons dashboards.
        """
        count = summary.get("count") or 0
        if count:
            for quantile, key in _QUANTILES:
                value = summary.get(key)
                if value is None:
                    continue
                quantile_labels = dict(labels or {})
                quantile_labels["quantile"] = quantile
                self.lines.append(_series(name, quantile_labels, value * scale))
        total = summary.get("total") or 0.0
        self.lines.append(_series(f"{name}_sum", labels, total * scale))
        self.lines.append(_series(f"{name}_count", labels, count))


def render_prometheus(
    snapshot: dict[str, Any],
    profile: dict[str, Any] | None = None,
    prefix: str = "repro",
) -> str:
    """Render a :class:`~repro.obs.metrics.MetricsSink` snapshot (and an
    optional :meth:`~repro.obs.prof.Profiler.snapshot`) as Prometheus text."""
    w = ExpositionWriter()
    w.counter_family(
        f"{prefix}_events_total", "Trace events recorded, by kind.",
        "kind", snapshot.get("events", {}),
    )
    w.counter_family(
        f"{prefix}_protocol_messages_total",
        "Distributed-protocol messages sent, by message kind.",
        "msg", snapshot.get("protocol_messages", {}),
    )
    w.counter_family(
        f"{prefix}_decisions_total",
        "Safe-condition decisions fired, by decision rule.",
        "decision", snapshot.get("decisions", {}),
    )

    routes = snapshot.get("routes", {})
    if routes:
        outcomes = {
            outcome: routes.get(outcome, 0)
            for outcome in ("delivered", "minimal", "sub_minimal", "failed")
        }
        w.counter_family(
            f"{prefix}_routes_total", "Routed legs, by outcome.",
            "outcome", outcomes,
        )
        w.header(f"{prefix}_route_hops", "summary", "Hops per delivered leg.")
        w.summary(f"{prefix}_route_hops", routes.get("hops", {}))
        w.header(f"{prefix}_route_detours", "summary", "Detours per delivered leg.")
        w.summary(f"{prefix}_route_detours", routes.get("detours", {}))

    protocol = snapshot.get("protocol", {})
    if protocol:
        w.header(f"{prefix}_queue_depth", "summary",
                 "Engine queue depth sampled at each protocol send.")
        w.summary(f"{prefix}_queue_depth", protocol.get("queue_depth", {}))
        w.header(f"{prefix}_messages_per_tick", "summary",
                 "Protocol messages per integer sim-time tick.")
        w.summary(f"{prefix}_messages_per_tick", protocol.get("messages_per_tick", {}))
        w.single(
            f"{prefix}_messages_per_tick_overflow_total", "counter",
            "Messages beyond the distinct-tick cap (not in the per-tick summary).",
            protocol.get("messages_per_tick_overflow", 0),
        )

    spans = snapshot.get("spans", {})
    if spans:
        name = f"{prefix}_span_duration_seconds"
        w.header(name, "summary", "Wall-clock duration of named timing spans.")
        for span, summary in sorted(spans.items()):
            w.summary(name, summary, labels={"span": span})

    engine = snapshot.get("engine", {})
    if engine:
        if "now" in engine:
            w.single(f"{prefix}_engine_now", "gauge",
                     "Simulated time of the latest engine drain.", engine["now"])
        if "pending" in engine:
            w.single(f"{prefix}_engine_pending", "gauge",
                     "Events left pending after the latest engine drain.",
                     engine["pending"])
        if "events_processed" in engine:
            w.single(f"{prefix}_engine_events_processed_total", "counter",
                     "Lifetime events processed by the engine.",
                     engine["events_processed"])

    if profile:
        w.counter_family(
            f"{prefix}_hot_counter_total",
            "Hot-path operations counted by the profiler.",
            "name", profile.get("hot_counters", {}),
        )
        sections = profile.get("sections_ns", {})
        if sections:
            name = f"{prefix}_profile_section_seconds"
            w.header(name, "summary", "Wall-clock duration of profiled sections.")
            for section, summary in sorted(sections.items()):
                w.summary(name, summary, labels={"section": section}, scale=1e-9)

    return "\n".join(w.lines) + "\n"


def render_timeseries(
    store: "SampleStore",
    alerts: "AlertEngine | None" = None,
    prefix: str = "repro",
) -> str:
    """Render live per-tick series (and alert state) as Prometheus text.

    One ``{series=...}`` labelled gauge sample per named series keeps the
    dotted series names (``net.carried``) out of the metric name, where
    Prometheus forbids them.
    """
    w = ExpositionWriter()
    last = store.last_row()
    if last:
        name = f"{prefix}_live_sample"
        w.header(name, "gauge", "Latest per-tick sample of each live series.")
        for series, value in last.items():
            w.lines.append(_series(name, {"series": series}, value))
        name = f"{prefix}_live_points"
        w.header(name, "gauge", "Ring-buffer points retained per live series.")
        for series in store.names():
            ts = store.get(series)
            w.lines.append(_series(name, {"series": series}, 0 if ts is None else len(ts)))
    tick = store.last_tick()
    if tick is not None:
        w.single(f"{prefix}_live_tick", "gauge", "Newest sampled simulated tick.", tick)
    if alerts is not None and alerts.rules:
        active = set(alerts.active)
        name = f"{prefix}_alert_active"
        w.header(name, "gauge", "1 while the alert rule is breaching, else 0.")
        for rule in sorted(r.name for r in alerts.rules):
            w.lines.append(_series(name, {"rule": rule}, rule in active))
        w.counter_family(
            f"{prefix}_alerts_fired_total",
            "Alert excursions (distinct firings) per rule.",
            "rule", alerts.counts(),
        )
    if not w.lines:
        return ""
    return "\n".join(w.lines) + "\n"
