"""Span-scoped profiling hooks and hot-path counters (``repro.obs.prof``).

The tracing layer answers *what the algorithms decided*; this module
answers *where the time went*.  Two instruments share one installable
:class:`Profiler`:

- **hot-path counters** -- cheap integer tallies bumped inside the hot
  loops (``router.steps``, ``esl.recompute``, ``blocks.build``,
  ``mcc.build``, ``sim.messages``).  Call sites pay one attribute load and
  a predictable branch when no profiler is installed, mirroring the
  tracer's ``enabled`` discipline;
- **profiled sections** -- ``with profiler.section("stats.routing"):``
  times the block with ``time.perf_counter_ns`` into a percentile
  histogram, and (when ``detailed=True``) additionally runs the section
  under :mod:`cProfile` so ``top_functions()`` can name the hot frames.

Like the tracer, the *current* profiler is a module-level slot defaulting
to a no-op :data:`NULL_PROFILER`; install one with :func:`use_profiler`
(scoped) or :func:`set_profiler` (global).  ``repro stats --profile`` and
``repro bench`` install one around their workloads.
"""

from __future__ import annotations

import cProfile
import collections
import contextlib
import pstats
import time
from typing import Any, Iterator

from repro.obs.metrics import Histogram

#: Hot counters bumped by the instrumented hot paths (producers in
#: parentheses); anything may add more names.
HOT_COUNTER_NAMES: frozenset[str] = frozenset(
    {
        "router.routes",     # HopRouter.route invocations
        "router.steps",      # forwarding steps of delivered legs
        "esl.recompute",     # full ESL grid computations
        "blocks.build",      # faulty-block constructions (Definition 1)
        "mcc.build",         # MCC labellings (Definition 2)
        "sim.messages",      # simulator messages entering a channel
        "sim.dropped",       # simulator messages dropped at a down channel
        "cache.hits",        # scenario-artifact cache hits (repro.parallel)
        "cache.misses",      # scenario-artifact cache misses
        "cache.stale",       # generation-stale entries rebuilt
        "cache.revalidated", # stale entries proven still valid and retagged
        # Incremental fault maintenance (repro.faults.incremental):
        "incr.events",         # fault arrivals/revivals delta-maintained
        "incr.affected_cells", # cells actually perturbed across those events
        "incr.full_rebuilds",  # defensive full-rebuild fallbacks taken
        # Chaos engineering (repro.chaos + repro.simulator.protocols.reliable):
        "chaos.drops",             # messages destroyed in-flight by the fault plan
        "chaos.duplicates",        # ghost copies injected by the fault plan
        "chaos.corrupted",         # payloads delivered with a failed checksum
        "chaos.retries",           # retransmissions by hardened senders
        "chaos.gave_up",           # sends abandoned after max_retries
        "chaos.dup_suppressed",    # duplicate deliveries dropped by dedup
        "chaos.stale_discarded",   # deliveries fenced off by an epoch bump
        "chaos.corrupt_discarded", # corrupted deliveries discarded unacked
        "chaos.reconverge_ticks",  # simulated time spent in stabilization pulses
        "chaos.crashes",           # chaos-schedule crash events applied
        "chaos.revives",           # chaos-schedule revive events applied
    }
)


class _Section:
    """Times one named block; feeds the owning profiler on exit."""

    __slots__ = ("_profiler", "_name", "_t0", "_cprofile")

    def __init__(self, profiler: "Profiler", name: str):
        self._profiler = profiler
        self._name = name
        self._cprofile: cProfile.Profile | None = None

    def __enter__(self) -> "_Section":
        self._cprofile = self._profiler._start_cprofile()
        self._t0 = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed = time.perf_counter_ns() - self._t0
        self._profiler._finish_section(self._name, elapsed, self._cprofile)


class _NullSection:
    """Shared do-nothing section for the null profiler."""

    __slots__ = ()

    def __enter__(self) -> "_NullSection":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SECTION = _NullSection()


class Profiler:
    """Collect hot counters and per-section ``perf_counter_ns`` timings.

    With ``detailed=True`` every *outermost* section additionally runs
    under :mod:`cProfile` (nested sections only take the cheap ns timer:
    the C profiler cannot nest, and the outer capture already covers the
    inner frames).
    """

    enabled: bool = True

    def __init__(self, detailed: bool = False):
        self.detailed = detailed
        self.hot: collections.Counter[str] = collections.Counter()
        self.sections: dict[str, Histogram] = {}
        self._profiles: list[cProfile.Profile] = []
        self._cprofile_active = False

    # -- hot counters --------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        self.hot[name] += n

    # -- sections ------------------------------------------------------
    def section(self, name: str) -> _Section:
        return _Section(self, name)

    def _start_cprofile(self) -> cProfile.Profile | None:
        if not self.detailed or self._cprofile_active:
            return None
        profile = cProfile.Profile()
        self._cprofile_active = True
        profile.enable()
        return profile

    def _finish_section(
        self, name: str, elapsed_ns: int, profile: cProfile.Profile | None
    ) -> None:
        if profile is not None:
            profile.disable()
            self._cprofile_active = False
            self._profiles.append(profile)
        self.sections.setdefault(name, Histogram()).observe(elapsed_ns)

    # -- reporting -----------------------------------------------------
    def top_functions(self, limit: int = 10) -> list[dict[str, Any]]:
        """The hottest frames across every detailed section, by cumulative
        time; empty without ``detailed=True`` captures."""
        if not self._profiles:
            return []
        stats = pstats.Stats(self._profiles[0])
        for profile in self._profiles[1:]:
            stats.add(profile)
        rows = []
        for (filename, line, func), (_, ncalls, tottime, cumtime, _) in stats.stats.items():  # type: ignore[attr-defined]
            rows.append(
                {
                    "function": f"{filename}:{line}({func})",
                    "calls": ncalls,
                    "tottime_s": tottime,
                    "cumtime_s": cumtime,
                }
            )
        rows.sort(key=lambda row: row["cumtime_s"], reverse=True)
        return rows[:limit]

    def snapshot(self, top: int = 10) -> dict[str, Any]:
        """JSON-ready aggregate: hot counters, section timings (ns), and
        the hottest frames when detailed profiling ran."""
        return {
            "hot_counters": dict(sorted(self.hot.items())),
            "sections_ns": {
                name: histogram.summary()
                for name, histogram in sorted(self.sections.items())
            },
            "top_functions": self.top_functions(top),
        }

    def to_table(self, top: int = 10) -> str:
        """Aligned text rendering for ``repro stats --profile``."""
        lines: list[str] = []
        if self.sections:
            lines.append("profiled sections")
            width = max(len(name) for name in self.sections)
            for name, histogram in sorted(self.sections.items()):
                p95 = histogram.percentile(95.0) or 0.0
                lines.append(
                    f"  {name:<{width}}  x{histogram.count}  "
                    f"total {histogram.total / 1e6:.2f}ms  "
                    f"mean {histogram.mean / 1e6:.3f}ms  p95 {p95 / 1e6:.3f}ms"
                )
        if self.hot:
            lines.append("hot counters")
            width = max(len(name) for name in self.hot)
            for name, value in sorted(self.hot.items()):
                lines.append(f"  {name:<{width}}  {value}")
        top_rows = self.top_functions(top)
        if top_rows:
            lines.append(f"top functions (cumulative, top {len(top_rows)})")
            for row in top_rows:
                lines.append(
                    f"  {row['cumtime_s'] * 1e3:8.2f}ms  x{row['calls']:<7} "
                    f"{row['function']}"
                )
        return "\n".join(lines)


class NullProfiler(Profiler):
    """The no-op default: every operation returns immediately."""

    enabled = False

    def count(self, name: str, n: int = 1) -> None:
        pass

    def section(self, name: str) -> _NullSection:  # type: ignore[override]
        return _NULL_SECTION


NULL_PROFILER = NullProfiler()

_current: Profiler = NULL_PROFILER


def get_profiler() -> Profiler:
    """The currently installed profiler (the null profiler by default)."""
    return _current


def set_profiler(profiler: Profiler | None) -> Profiler:
    """Install ``profiler`` (None restores the null profiler); returns the
    previously installed one so callers can restore it."""
    global _current
    previous = _current
    _current = profiler if profiler is not None else NULL_PROFILER
    return previous


@contextlib.contextmanager
def use_profiler(profiler: Profiler) -> Iterator[Profiler]:
    """Install ``profiler`` for the duration of a ``with`` block."""
    previous = set_profiler(profiler)
    try:
        yield profiler
    finally:
        set_profiler(previous)
