"""Alert rules over live time series.

Rules are pure predicates over a :class:`~repro.obs.timeseries.SampleStore`
-- each :meth:`~AlertRule.check` returns the breaching value or None --
evaluated by an :class:`AlertEngine` once per sampled tick.  A rule fires
after ``for_ticks`` consecutive breaching samples and stays latched until
a non-breaching sample resolves it (one :class:`Alert` per excursion, not
per tick).

Four rule shapes cover the built-in health checks:

- :class:`ThresholdRule` -- latest value vs a constant
  (``queue-runaway``: pending event depth past a hard ceiling;
  ``convergence-stall``: the sim clock past the deadline by which a
  healthy run has drained).
- :class:`RateRule` -- rate of change over a trailing tick window.
- :class:`RatioRule` -- delta-over-window of one series relative to
  another, optionally net of an ``offset`` series (``retransmit-storm``:
  retries into *live* links -- retried minus dropped -- dominate carried
  traffic; ``drop-rate-slo``: chaos losses exceed the loss budget).
- :class:`StallRule` -- activity without progress: one counter advancing
  while another is frozen over the window.

The built-in thresholds are calibrated against this simulator's hardened
protocol, whose baseline includes a long benign tail: senders retransmit
into permanently-dead initial-fault neighbours (counted as both retried
and dropped) with exponential backoff until they give up.  Raw
retried-without-carried is therefore *normal*, which is why the storm
rule subtracts dropped from retried and why the stall check is a
deadline on the sim clock rather than a traffic-shape heuristic.

Firings are first-class trace events (kind ``"alert"``), but only through
a tracer handed to the engine explicitly -- never the ambient one.  A
flight recording's replay rebuilds the run from the recipe alone, which
says nothing about observatories, so alert events in the recorded stream
would make every replay diverge.  Chaos reports instead carry the firings
directly (:class:`~repro.chaos.verify.ConvergenceReport` ``.alerts``).
"""

from __future__ import annotations

import operator
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:
    from repro.obs.timeseries import SampleStore, TimeSeries
    from repro.obs.tracer import Tracer

_OPS: dict[str, Callable[[float, float], bool]] = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
}


@dataclass(frozen=True)
class Alert:
    """One firing: a rule crossed into breach at ``tick``."""

    rule: str
    series: str
    tick: float
    value: float
    message: str

    def jsonable(self) -> dict[str, Any]:
        return asdict(self)

    def __str__(self) -> str:
        return f"[{self.rule}] t={self.tick:g}: {self.message}"


def _window_delta(series: "TimeSeries | None", window: float) -> tuple[float, float] | None:
    """(delta, span) of ``series`` over its trailing ``window`` ticks.

    None until the series covers a full window, so rules stay quiet
    during warm-up instead of firing on a half-formed view.
    """
    if series is None or len(series) < 2:
        return None
    now = series.ticks[-1]
    anchor = series.at_or_before(now - window)
    if anchor is None:
        return None
    then_tick, then_value = anchor
    span = now - then_tick
    if span <= 0:
        return None
    return series.values[-1] - then_value, span


class AlertRule:
    """Base rule: name, watched series, and the consecutive-breach gate."""

    def __init__(self, name: str, series: str, *, for_ticks: int = 1, description: str = ""):
        if for_ticks < 1:
            raise ValueError(f"for_ticks must be >= 1 (got {for_ticks})")
        self.name = name
        self.series = series
        self.for_ticks = int(for_ticks)
        self.description = description

    def check(self, store: "SampleStore") -> float | None:
        """The breaching value, or None when healthy."""
        raise NotImplementedError

    def describe(self, value: float) -> str:
        return self.description or f"{self.series} breached ({value:g})"


class ThresholdRule(AlertRule):
    """Latest sample of one series compared against a constant."""

    def __init__(
        self,
        name: str,
        series: str,
        op: str,
        threshold: float,
        *,
        for_ticks: int = 1,
        description: str = "",
    ):
        super().__init__(name, series, for_ticks=for_ticks, description=description)
        self._op = _OPS[op]
        self.op = op
        self.threshold = float(threshold)

    def check(self, store: "SampleStore") -> float | None:
        ts = store.get(self.series)
        if ts is None or not ts.values:
            return None
        value = ts.values[-1]
        return value if self._op(value, self.threshold) else None

    def describe(self, value: float) -> str:
        return (
            self.description
            or f"{self.series} = {value:g} ({self.op} {self.threshold:g})"
        )


class RateRule(AlertRule):
    """Rate of change (delta per tick) over a trailing window."""

    def __init__(
        self,
        name: str,
        series: str,
        op: str,
        threshold: float,
        *,
        window: float = 8.0,
        for_ticks: int = 1,
        description: str = "",
    ):
        super().__init__(name, series, for_ticks=for_ticks, description=description)
        self._op = _OPS[op]
        self.op = op
        self.threshold = float(threshold)
        self.window = float(window)

    def check(self, store: "SampleStore") -> float | None:
        delta = _window_delta(store.get(self.series), self.window)
        if delta is None:
            return None
        rate = delta[0] / delta[1]
        return rate if self._op(rate, self.threshold) else None

    def describe(self, value: float) -> str:
        return (
            self.description
            or f"{self.series} rate {value:g}/tick ({self.op} {self.threshold:g})"
        )


class RatioRule(AlertRule):
    """Delta of one series relative to another's over the same window.

    ``floor`` is the minimum numerator delta worth alerting on: a window
    with two retries and one carried message is noise, not a storm.
    ``offset`` names a series whose window delta is subtracted from the
    numerator's before the floor and ratio checks -- the storm rule uses
    it to discount retries that went into down links (every such retry
    also increments dropped), leaving only retries into live channels.
    """

    def __init__(
        self,
        name: str,
        numerator: str,
        denominator: str,
        threshold: float,
        *,
        window: float = 8.0,
        floor: float = 4.0,
        offset: str | None = None,
        for_ticks: int = 1,
        description: str = "",
    ):
        super().__init__(name, numerator, for_ticks=for_ticks, description=description)
        self.denominator = denominator
        self.threshold = float(threshold)
        self.window = float(window)
        self.floor = float(floor)
        self.offset = offset

    def check(self, store: "SampleStore") -> float | None:
        num = _window_delta(store.get(self.series), self.window)
        den = _window_delta(store.get(self.denominator), self.window)
        if num is None or den is None:
            return None
        amount = num[0]
        if self.offset is not None:
            off = _window_delta(store.get(self.offset), self.window)
            if off is None:
                return None
            amount -= off[0]
        if amount < self.floor:
            return None
        ratio = amount / max(den[0], 1.0)
        return ratio if ratio > self.threshold else None

    def describe(self, value: float) -> str:
        if self.description:
            return self.description
        numerator = self.series
        if self.offset is not None:
            numerator = f"({self.series} - {self.offset})"
        return (
            f"{numerator}/{self.denominator} ratio {value:.2f} over "
            f"{self.window:g} ticks (> {self.threshold:g})"
        )


class StallRule(AlertRule):
    """Activity on one series while another makes no progress.

    Breaches when the activity series moved by at least ``floor`` over
    the window but the progress series did not: sim time is passing,
    work (whatever ``activity`` counts) keeps happening, and nothing
    lands.  Size ``floor`` above the benign churn of the system being
    watched -- in this simulator, retries into permanently-dead initial
    faults make small retried-without-carried windows part of every
    healthy run.
    """

    def __init__(
        self,
        name: str,
        progress: str,
        activity: str,
        *,
        window: float = 8.0,
        floor: float = 1.0,
        for_ticks: int = 1,
        description: str = "",
    ):
        super().__init__(name, progress, for_ticks=for_ticks, description=description)
        self.activity = activity
        self.window = float(window)
        self.floor = float(floor)

    def check(self, store: "SampleStore") -> float | None:
        progress = _window_delta(store.get(self.series), self.window)
        activity = _window_delta(store.get(self.activity), self.window)
        if progress is None or activity is None:
            return None
        if activity[0] >= self.floor and progress[0] <= 0:
            return activity[0]
        return None

    def describe(self, value: float) -> str:
        return (
            self.description
            or f"{self.series} frozen for {self.window:g} ticks while "
            f"{self.activity} advanced by {value:g}"
        )


# ----------------------------------------------------------------------
# Built-in rules
#
# Calibration (measured on hardened chaos runs, sides 16-32, up to 24
# initial faults, loss up to 8%, crash/revive schedules): benign runs
# converge by t~2500 even at 45% loss, and their live-retry ratio --
# (retried - dropped) / carried over 32 ticks -- never exceeded 0.21,
# while sustained >=30% loss pushes it past 0.55.  Raw retried/carried
# does NOT separate: doomed retries into initial faults give benign
# windows ratios up to 32.
# ----------------------------------------------------------------------
def convergence_stall(deadline: float = 4096.0) -> ThresholdRule:
    """The run is still draining past its convergence deadline.

    Every benign scenario in the calibration sweep -- including 45%
    message loss -- drained by tick ~2500 (the give-up tail of retries
    into permanently-dead neighbours dominates, and its backoff schedule
    is fixed).  A run still ticking at ``deadline`` is being actively
    prevented from converging, e.g. by crash/revive flapping that keeps
    restarting formation waves.  Tune the deadline to the workload when
    yours legitimately runs longer.
    """
    return ThresholdRule(
        "convergence-stall", "engine.tick", ">", deadline,
        description=f"still draining past the convergence deadline ({deadline:g} ticks)",
    )


def retransmit_storm(
    ratio: float = 0.35, window: float = 32.0, floor: float = 16.0
) -> RatioRule:
    """Retries into *live* links dominate the carried traffic.

    Retries aimed at dead neighbours increment ``net.dropped`` alongside
    ``net.retried``, so ``retried - dropped`` counts only retransmissions
    that reached a live channel -- the loss-recovery kind that a storm is
    made of, not the benign give-up tail.
    """
    return RatioRule(
        "retransmit-storm", "net.retried", "net.carried", ratio,
        window=window, floor=floor, offset="net.dropped",
    )


def queue_runaway(depth: float = 50_000.0, for_ticks: int = 3) -> ThresholdRule:
    """Pending event depth past a hard ceiling for several ticks.

    The side-96 formation workload peaks under 1k pending events; 50k
    means a feedback loop is flooding the queue faster than it drains.
    """
    return ThresholdRule("queue-runaway", "engine.pending", ">", depth, for_ticks=for_ticks)


def drop_rate_slo(ratio: float = 0.25, window: float = 32.0, floor: float = 16.0) -> RatioRule:
    """Chaos losses exceed the loss budget relative to carried traffic."""
    return RatioRule(
        "drop-rate-slo", "net.lost", "net.carried", ratio,
        window=window, floor=floor,
    )


def default_rules() -> tuple[AlertRule, ...]:
    """The standard health checks every observatory starts with."""
    return (convergence_stall(), retransmit_storm(), queue_runaway(), drop_rate_slo())


class AlertEngine:
    """Evaluates rules once per sampled tick and latches firings."""

    def __init__(self, rules: "tuple[AlertRule, ...] | list[AlertRule]" = (), tracer: "Tracer | None" = None):
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names: {sorted(names)}")
        self.rules = tuple(rules)
        self.tracer = tracer
        self.firings: list[Alert] = []
        self._streaks: dict[str, int] = {name: 0 for name in names}
        self._active: set[str] = set()

    def evaluate(self, tick: float, store: "SampleStore") -> list[Alert]:
        """One evaluation pass; returns the alerts that fired this tick."""
        fired: list[Alert] = []
        for rule in self.rules:
            value = rule.check(store)
            name = rule.name
            if value is None:
                self._streaks[name] = 0
                if name in self._active:
                    self._active.discard(name)
                    if self.tracer is not None and self.tracer.enabled:
                        self.tracer.emit("alert", rule=name, state="resolved", tick=tick)
                continue
            streak = self._streaks[name] + 1
            self._streaks[name] = streak
            if streak < rule.for_ticks or name in self._active:
                continue
            self._active.add(name)
            alert = Alert(name, rule.series, float(tick), float(value), rule.describe(value))
            self.firings.append(alert)
            fired.append(alert)
            if self.tracer is not None and self.tracer.enabled:
                self.tracer.emit(
                    "alert", rule=name, state="firing", tick=tick,
                    series=rule.series, value=float(value), message=alert.message,
                )
        return fired

    @property
    def active(self) -> tuple[str, ...]:
        """Currently-breaching rule names, in rule order."""
        return tuple(rule.name for rule in self.rules if rule.name in self._active)

    def fired(self, name: str | None = None) -> bool:
        """Whether any alert (or the named rule) ever fired."""
        if name is None:
            return bool(self.firings)
        return any(alert.rule == name for alert in self.firings)

    def counts(self) -> dict[str, int]:
        """Total firings per rule (zero-filled; feeds the Prometheus
        ``repro_alerts_fired_total`` family)."""
        out = {rule.name: 0 for rule in self.rules}
        for alert in self.firings:
            out[alert.rule] = out.get(alert.rule, 0) + 1
        return out
