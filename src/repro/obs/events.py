"""Typed trace events.

A :class:`TraceEvent` is one observation emitted by a
:class:`~repro.obs.tracer.Tracer`: a ``kind`` from the closed vocabulary
below, a monotonically increasing sequence number (per tracer), and a flat
payload of JSON-serializable fields.  Events are plain data -- sinks decide
whether to buffer, persist, or aggregate them.

Event vocabulary (producers in parentheses):

==================  =========================================================
kind                meaning
==================  =========================================================
``route_start``     a router begins driving one source -> dest leg
``hop``             one forwarding step, with the rule that justified it
``detour``          a hop that *increased* the distance to the destination
``block_hit``       a preferred neighbour was rejected as block-unusable
``extension_fired`` a safe-condition decision selected the route shape
``route_end``       leg delivered (hops, detours, minimality)
``route_failed``    a router got stuck; carries the partial trace
``protocol_msg``    a simulator message entered a channel (kind, queue depth)
``engine_run``      a discrete-event engine drained (events, pending, time)
``span_start``      a timed section opened; carries its ``span_id``
``span_end``        a timed section closed; carries ``span_id`` and
                    ``duration`` seconds, and its ``cause`` is the matching
                    ``span_start`` event id
``run_meta``        flight-recorder header: the full recipe needed to
                    re-execute the recorded run
``tick``            flight recorder observed simulated time advancing
``msg_send``        recorder: a message entered a live channel
``msg_deliver``     recorder: a message reached its destination process;
                    ``cause`` is the originating ``msg_send``
``msg_drop``        recorder: a send hit a downed channel (silent loss)
``msg_lost``        recorder: chaos discarded an in-flight message
``msg_dup``         recorder: chaos scheduled a ghost duplicate delivery
``chaos_crash``     recorder: a chaos schedule crashed a node
``chaos_revive``    recorder: a chaos schedule revived a node
``epoch_bump``      recorder: the chaos epoch advanced (revive/stabilize),
                    fencing off all in-flight traffic
``proc_restart``    recorder: a process re-ran its protocol from local state
``alert``           an alert rule changed state (``firing``/``resolved``);
                    emitted by :class:`~repro.obs.alerts.AlertEngine` when
                    it was given a tracer explicitly (never the ambient
                    one -- see :mod:`repro.obs.alerts` for the replay
                    rationale)
==================  =========================================================

Events additionally carry an optional ``cause``: the ``seq`` of the event
that triggered this one, forming the causal-lineage chains the flight
recorder (:mod:`repro.obs.recorder`) walks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping

EVENT_KINDS: frozenset[str] = frozenset(
    {
        "route_start",
        "hop",
        "detour",
        "block_hit",
        "extension_fired",
        "route_end",
        "route_failed",
        "protocol_msg",
        "engine_run",
        "span_start",
        "span_end",
        "run_meta",
        "tick",
        "msg_send",
        "msg_deliver",
        "msg_drop",
        "msg_lost",
        "msg_dup",
        "chaos_crash",
        "chaos_revive",
        "epoch_bump",
        "proc_restart",
        "alert",
    }
)


def jsonable(value: Any) -> Any:
    """Coerce an event field to a JSON-serializable shape.

    Coordinates arrive as tuples (-> lists), directions as enums (-> names),
    counts as numpy scalars (-> Python scalars); anything unrecognized falls
    back to ``str`` so emitting can never raise.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return value.name
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, Mapping):
        return {str(k): jsonable(v) for k, v in value.items()}
    item = getattr(value, "item", None)  # numpy scalars, without importing numpy
    if callable(item):
        try:
            return jsonable(item())
        except (TypeError, ValueError):
            pass
    return str(value)


@dataclass(frozen=True)
class TraceEvent:
    """One typed observation.

    ``cause`` is the ``seq`` of the event that triggered this one (or None
    for root events); chains of causes are the flight recorder's lineage.
    """

    kind: str
    seq: int
    data: Mapping[str, Any] = field(default_factory=dict)
    cause: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {self.kind!r} (see EVENT_KINDS)")

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON-ready form (tuples -> lists, enums -> names).

        ``cause`` is serialized only when set, so cause-free traces are
        byte-identical to those written before lineage existed.
        """
        out = {"kind": self.kind, "seq": self.seq, "data": jsonable(dict(self.data))}
        if self.cause is not None:
            out["cause"] = self.cause
        return out

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "TraceEvent":
        cause = payload.get("cause")
        return TraceEvent(
            kind=payload["kind"],
            seq=int(payload["seq"]),
            data=dict(payload["data"]),
            cause=None if cause is None else int(cause),
        )

    def __str__(self) -> str:
        fields = ", ".join(f"{k}={v}" for k, v in self.data.items())
        origin = f" <-{self.cause}" if self.cause is not None else ""
        return f"[{self.seq}]{origin} {self.kind}({fields})"
