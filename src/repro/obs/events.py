"""Typed trace events.

A :class:`TraceEvent` is one observation emitted by a
:class:`~repro.obs.tracer.Tracer`: a ``kind`` from the closed vocabulary
below, a monotonically increasing sequence number (per tracer), and a flat
payload of JSON-serializable fields.  Events are plain data -- sinks decide
whether to buffer, persist, or aggregate them.

Event vocabulary (producers in parentheses):

==================  =========================================================
kind                meaning
==================  =========================================================
``route_start``     a router begins driving one source -> dest leg
``hop``             one forwarding step, with the rule that justified it
``detour``          a hop that *increased* the distance to the destination
``block_hit``       a preferred neighbour was rejected as block-unusable
``extension_fired`` a safe-condition decision selected the route shape
``route_end``       leg delivered (hops, detours, minimality)
``route_failed``    a router got stuck; carries the partial trace
``protocol_msg``    a simulator message entered a channel (kind, queue depth)
``engine_run``      a discrete-event engine drained (events, pending, time)
``span_start``      a timed section opened
``span_end``        a timed section closed; carries ``duration`` seconds
==================  =========================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping

EVENT_KINDS: frozenset[str] = frozenset(
    {
        "route_start",
        "hop",
        "detour",
        "block_hit",
        "extension_fired",
        "route_end",
        "route_failed",
        "protocol_msg",
        "engine_run",
        "span_start",
        "span_end",
    }
)


def jsonable(value: Any) -> Any:
    """Coerce an event field to a JSON-serializable shape.

    Coordinates arrive as tuples (-> lists), directions as enums (-> names),
    counts as numpy scalars (-> Python scalars); anything unrecognized falls
    back to ``str`` so emitting can never raise.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return value.name
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, Mapping):
        return {str(k): jsonable(v) for k, v in value.items()}
    item = getattr(value, "item", None)  # numpy scalars, without importing numpy
    if callable(item):
        try:
            return jsonable(item())
        except (TypeError, ValueError):
            pass
    return str(value)


@dataclass(frozen=True)
class TraceEvent:
    """One typed observation."""

    kind: str
    seq: int
    data: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {self.kind!r} (see EVENT_KINDS)")

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON-ready form (tuples -> lists, enums -> names)."""
        return {"kind": self.kind, "seq": self.seq, "data": jsonable(dict(self.data))}

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "TraceEvent":
        return TraceEvent(
            kind=payload["kind"], seq=int(payload["seq"]), data=dict(payload["data"])
        )

    def __str__(self) -> str:
        fields = ", ".join(f"{k}={v}" for k, v in self.data.items())
        return f"[{self.seq}] {self.kind}({fields})"
