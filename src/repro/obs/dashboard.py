"""Curses-free ANSI dashboard for live runs (``repro top``).

Pure text rendering: :func:`sparkline` compresses a series into one line
of block glyphs, :class:`Dashboard.render` lays out every series in an
:class:`~repro.obs.timeseries.Observatory` with its latest value, range,
and an alert banner.  ``repro top`` redraws by printing
:meth:`Dashboard.frame` (cursor-home + clear-to-end, no curses), so the
same renderer drives the live view, ``--once`` snapshots, and tests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:
    from repro.obs.timeseries import Observatory

#: Eight block levels, lowest to highest.
SPARK_GLYPHS = "▁▂▃▄▅▆▇█"

_HOME_AND_CLEAR = "\x1b[H\x1b[0J"
_RED_REVERSE = "\x1b[1;97;41m"
_DIM = "\x1b[2m"
_BOLD = "\x1b[1m"
_RESET = "\x1b[0m"


def sparkline(values: Sequence[float], width: int = 48) -> str:
    """One-line sparkline of ``values``, at most ``width`` glyphs wide.

    Longer series are resampled by picking ``width`` evenly spaced points
    (deterministic -- same series, same line).  A flat series renders at
    the lowest level so "nothing happening" looks quiet, not maxed out.
    """
    if width < 1:
        raise ValueError(f"width must be >= 1 (got {width})")
    if not values:
        return ""
    if len(values) > width:
        step = len(values) / width
        values = [values[int(i * step)] for i in range(width)]
    lo = min(values)
    hi = max(values)
    span = hi - lo
    if span <= 0:
        return SPARK_GLYPHS[0] * len(values)
    top = len(SPARK_GLYPHS) - 1
    return "".join(
        SPARK_GLYPHS[min(top, int((v - lo) / span * len(SPARK_GLYPHS)))] for v in values
    )


def format_value(value: float) -> str:
    """Compact human form: 950 -> ``950``, 1234567 -> ``1.23M``."""
    magnitude = abs(value)
    for cutoff, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if magnitude >= cutoff:
            return f"{value / cutoff:.2f}{suffix}"
    if value == int(value):
        return str(int(value))
    return f"{value:.2f}"


class Dashboard:
    """Renders one observatory as a fixed-layout text panel."""

    def __init__(
        self,
        observatory: "Observatory",
        width: int = 48,
        series: Sequence[str] | None = None,
        color: bool = True,
    ):
        self.observatory = observatory
        self.width = int(width)
        self.series = tuple(series) if series is not None else None
        self.color = color

    def _paint(self, text: str, code: str) -> str:
        return f"{code}{text}{_RESET}" if self.color else text

    def render(self) -> str:
        """The full panel as plain lines (no cursor control)."""
        obs = self.observatory
        store = obs.store
        tick = store.last_tick()
        firing = obs.alerts.active
        fired = len(obs.alerts.firings)
        title = (
            f"repro top  t={tick:g}  series={len(store)}  "
            f"alerts fired={fired}" if tick is not None
            else "repro top  (no samples yet)"
        )
        lines = [self._paint(title, _BOLD)]
        if firing:
            banner = "  ALERT: " + ", ".join(firing) + "  "
            lines.append(self._paint(banner, _RED_REVERSE))
        elif fired:
            lines.append(self._paint(f"  {fired} alert(s) fired, none active  ", _DIM))
        names = self.series if self.series is not None else tuple(store.names())
        label_width = max((len(name) for name in names), default=0)
        for name in names:
            ts = store.get(name)
            if ts is None or not ts.values:
                lines.append(f"{name:<{label_width}}  (no data)")
                continue
            lo, hi = ts.bounds()
            spark = sparkline(ts.values, self.width)
            lines.append(
                f"{name:<{label_width}}  {spark:<{self.width}}  "
                f"{format_value(ts.values[-1]):>8}  "
                + self._paint(f"[{format_value(lo)} .. {format_value(hi)}]", _DIM)
            )
        for alert in obs.alerts.firings[-3:]:
            lines.append(self._paint(f"  ! {alert}", _DIM))
        return "\n".join(lines) + "\n"

    def frame(self) -> str:
        """One live redraw: cursor home + clear-to-end + the panel."""
        prefix = _HOME_AND_CLEAR if self.color else ""
        return prefix + self.render()
