"""Aggregating metrics sink: counters and histograms over the event stream.

:class:`MetricsSink` turns a trace into the numbers the paper's evaluation
is built from, online and without buffering events:

- a counter per event kind (``hop``, ``detour``, ``block_hit``, ...);
- per-message-kind counts and queue-depth / messages-per-tick histograms
  for the distributed protocols (``protocol_msg`` events);
- hops-per-route / detours-per-route histograms plus minimal / sub-minimal
  / failed route tallies (``route_end`` / ``route_failed`` events).  Route
  tallies count *driver-loop legs*: a two-phase extension route contributes
  one ``route_end`` per Wu-protocol leg, while its single neighbour hop is
  reported as a plain ``hop`` event and the sub-minimal intent shows up in
  the decision tally (``spare-neighbor-safe``);
- a decision tally per fired safe-condition rule (``extension_fired``);
- a duration histogram per named span (``span_end``);
- the latest engine drain snapshot (``engine_run``: events processed,
  pending queue, simulated time).

Every :class:`Histogram` keeps a bounded, deterministically-sampled
reservoir alongside its running aggregates, so every summary carries
p50/p95/p99 tail statistics -- the quantities the paper's worst-case
overhead discussion (and any regression gate) actually cares about.

``snapshot()`` returns the whole aggregate as a JSON-ready dict;
``to_table()`` renders it for terminals (``repro stats``);
``to_prometheus()`` renders it in the Prometheus text exposition format
(``repro stats --prom``).
"""

from __future__ import annotations

import collections
import io
import random
from typing import Any

from repro.obs.events import TraceEvent, jsonable

#: Reservoir entries kept per histogram; below this every percentile is
#: exact, above it the reservoir is a deterministic uniform sample.
DEFAULT_RESERVOIR_SIZE = 4096

#: Distinct sim-time ticks tracked by :class:`MetricsSink` before further
#: *new* ticks are folded into the overflow counter (satellite: unbounded
#: per-tick Counters leaked memory on long simulator runs).
DEFAULT_TICK_CAP = 4096

#: The quantiles every summary reports.
SUMMARY_QUANTILES = (50.0, 95.0, 99.0)


class Histogram:
    """Streaming summary of one numeric quantity with tail percentiles.

    Running aggregates (count/total/min/max) are exact.  Percentiles come
    from a bounded reservoir filled by Vitter's algorithm R with a
    *seeded* ``random.Random``, so two runs observing the same sequence
    report identical percentiles -- determinism the trace CLI and the
    ``repro bench --compare`` gate rely on.  While ``count`` is within the
    reservoir capacity the percentiles are exact, not sampled.
    """

    __slots__ = ("count", "total", "min", "max", "_capacity", "_reservoir",
                 "_rng", "_sorted")

    def __init__(
        self,
        reservoir_size: int = DEFAULT_RESERVOIR_SIZE,
        seed: int = 2002,
    ) -> None:
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be >= 1")
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._capacity = reservoir_size
        self._reservoir: list[float] = []
        self._rng = random.Random(seed)
        self._sorted: list[float] | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if len(self._reservoir) < self._capacity:
            self._reservoir.append(value)
            self._sorted = None
        else:
            slot = self._rng.randrange(self.count)
            if slot < self._capacity:
                self._reservoir[slot] = value
                self._sorted = None

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float | None:
        """The q-th percentile (``0 <= q <= 100``) of the retained sample,
        with linear interpolation between ranks; None when empty."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile out of range: {q}")
        if not self._reservoir:
            return None
        if self._sorted is None:
            self._sorted = sorted(self._reservoir)
        data = self._sorted
        rank = (q / 100.0) * (len(data) - 1)
        lower = int(rank)
        upper = min(lower + 1, len(data) - 1)
        fraction = rank - lower
        return data[lower] + (data[upper] - data[lower]) * fraction

    def summary(self) -> dict[str, float | None]:
        """JSON-ready aggregate.  ``min``/``max`` and the percentiles are
        None (JSON null) when nothing was observed, so an empty histogram
        is distinguishable from one that observed zeros."""
        summary: dict[str, float | None] = {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }
        for q in SUMMARY_QUANTILES:
            summary[f"p{q:g}"] = self.percentile(q)
        return summary

    def __repr__(self) -> str:
        return f"Histogram(count={self.count}, mean={self.mean:.3g})"


class MetricsSink:
    """Fold the event stream into counters and histograms.

    ``tick_cap`` bounds the number of *distinct* sim-time ticks tracked for
    the messages-per-tick histogram; messages on later, never-seen ticks
    are tallied in :attr:`tick_overflow` instead of growing the map.
    """

    def __init__(self, tick_cap: int = DEFAULT_TICK_CAP) -> None:
        if tick_cap < 1:
            raise ValueError("tick_cap must be >= 1")
        self.event_counts: collections.Counter[str] = collections.Counter()
        self.message_counts: collections.Counter[str] = collections.Counter()
        self.decision_counts: collections.Counter[str] = collections.Counter()
        self.hops_per_route = Histogram()
        self.detours_per_route = Histogram()
        self.queue_depth = Histogram()
        self.span_durations: dict[str, Histogram] = {}
        self.routes_delivered = 0
        self.routes_minimal = 0
        self.routes_failed = 0
        self.engine: dict[str, Any] = {}
        self.tick_cap = tick_cap
        self.tick_overflow = 0
        self._messages_per_tick: collections.Counter[int] = collections.Counter()

    # ------------------------------------------------------------------
    def record(self, event: TraceEvent) -> None:
        self.event_counts[event.kind] += 1
        data = event.data
        if event.kind == "protocol_msg":
            self.message_counts[str(data.get("msg", "?"))] += 1
            if "queue" in data:
                self.queue_depth.observe(data["queue"])
            if "time" in data:
                tick = int(data["time"])
                if tick in self._messages_per_tick or len(self._messages_per_tick) < self.tick_cap:
                    self._messages_per_tick[tick] += 1
                else:
                    self.tick_overflow += 1
        elif event.kind == "route_end":
            self.routes_delivered += 1
            self.hops_per_route.observe(data.get("hops", 0))
            self.detours_per_route.observe(data.get("detours", 0))
            if data.get("minimal"):
                self.routes_minimal += 1
        elif event.kind == "route_failed":
            self.routes_failed += 1
        elif event.kind == "extension_fired":
            self.decision_counts[str(data.get("decision", "?"))] += 1
        elif event.kind == "span_end":
            name = str(data.get("name", "?"))
            self.span_durations.setdefault(name, Histogram()).observe(
                data.get("duration", 0.0)
            )
        elif event.kind == "engine_run":
            self.engine = dict(data)

    # ------------------------------------------------------------------
    def messages_per_tick(self) -> Histogram:
        """Histogram of protocol messages sent per integer sim-time tick."""
        histogram = Histogram()
        for count in self._messages_per_tick.values():
            histogram.observe(count)
        return histogram

    def snapshot(self) -> dict[str, Any]:
        """The whole aggregate as a JSON-serializable dict."""
        return jsonable(
            {
                "events": dict(sorted(self.event_counts.items())),
                "protocol_messages": dict(sorted(self.message_counts.items())),
                "decisions": dict(sorted(self.decision_counts.items())),
                "routes": {
                    "delivered": self.routes_delivered,
                    "minimal": self.routes_minimal,
                    "sub_minimal": self.routes_delivered - self.routes_minimal,
                    "failed": self.routes_failed,
                    "hops": self.hops_per_route.summary(),
                    "detours": self.detours_per_route.summary(),
                },
                "protocol": {
                    "queue_depth": self.queue_depth.summary(),
                    "messages_per_tick": self.messages_per_tick().summary(),
                    "messages_per_tick_overflow": self.tick_overflow,
                },
                "spans": {
                    name: histogram.summary()
                    for name, histogram in sorted(self.span_durations.items())
                },
                "engine": self.engine,
            }
        )

    def to_prometheus(self, profile: dict[str, Any] | None = None) -> str:
        """The snapshot in Prometheus text exposition format.

        ``profile`` optionally merges a :meth:`repro.obs.prof.Profiler.snapshot`
        (hot counters, profiled sections) into the export.
        """
        from repro.obs.prometheus import render_prometheus

        return render_prometheus(self.snapshot(), profile=profile)

    def to_table(self, with_timings: bool = True) -> str:
        """Aligned text rendering of the snapshot."""
        out = io.StringIO()

        def section(title: str, rows: list[tuple[str, str]]) -> None:
            if not rows:
                return
            out.write(f"{title}\n")
            width = max(len(label) for label, _ in rows)
            for label, value in rows:
                out.write(f"  {label:<{width}}  {value}\n")

        def tail(histogram: Histogram) -> str:
            if not histogram.count:
                return "n/a"
            p95 = histogram.percentile(95.0)
            assert p95 is not None and histogram.max is not None
            return (f"mean {histogram.mean:.2f} p95 {p95:g} "
                    f"max {histogram.max:g}")

        section(
            "events",
            [(kind, str(count)) for kind, count in sorted(self.event_counts.items())],
        )
        section(
            "protocol messages",
            [(kind, str(count)) for kind, count in sorted(self.message_counts.items())],
        )
        section(
            "decisions fired",
            [(kind, str(count)) for kind, count in sorted(self.decision_counts.items())],
        )
        if self.routes_delivered or self.routes_failed:
            rows = [
                ("delivered", str(self.routes_delivered)),
                ("minimal", str(self.routes_minimal)),
                ("sub-minimal", str(self.routes_delivered - self.routes_minimal)),
                ("failed", str(self.routes_failed)),
                ("hops/route", tail(self.hops_per_route)),
                ("detours/route", tail(self.detours_per_route)),
            ]
            section("routes", rows)
        if self.queue_depth.count:
            rows = [
                ("queue depth", tail(self.queue_depth)),
                ("msgs/tick", tail(self.messages_per_tick())),
            ]
            if self.tick_overflow:
                rows.append(("tick overflow", str(self.tick_overflow)))
            section("simulator", rows)
        if self.engine:
            section(
                "engine",
                [(key, f"{value:g}" if isinstance(value, (int, float)) else str(value))
                 for key, value in self.engine.items()],
            )
        if with_timings and self.span_durations:
            section(
                "spans",
                [
                    (name, f"x{h.count}  total {h.total * 1e3:.2f}ms  "
                           f"mean {h.mean * 1e3:.3f}ms  "
                           f"p95 {(h.percentile(95.0) or 0.0) * 1e3:.3f}ms")
                    for name, h in sorted(self.span_durations.items())
                ],
            )
        return out.getvalue().rstrip("\n")
