"""Aggregating metrics sink: counters and histograms over the event stream.

:class:`MetricsSink` turns a trace into the numbers the paper's evaluation
is built from, online and without buffering events:

- a counter per event kind (``hop``, ``detour``, ``block_hit``, ...);
- per-message-kind counts and queue-depth / messages-per-tick histograms
  for the distributed protocols (``protocol_msg`` events);
- hops-per-route / detours-per-route histograms plus minimal / sub-minimal
  / failed route tallies (``route_end`` / ``route_failed`` events).  Route
  tallies count *driver-loop legs*: a two-phase extension route contributes
  one ``route_end`` per Wu-protocol leg, while its single neighbour hop is
  reported as a plain ``hop`` event and the sub-minimal intent shows up in
  the decision tally (``spare-neighbor-safe``);
- a decision tally per fired safe-condition rule (``extension_fired``);
- a duration histogram per named span (``span_end``);
- the latest engine drain snapshot (``engine_run``: events processed,
  pending queue, simulated time).

``snapshot()`` returns the whole aggregate as a JSON-ready dict;
``to_table()`` renders it for terminals (``repro stats``).
"""

from __future__ import annotations

import collections
import io
from typing import Any

from repro.obs.events import TraceEvent, jsonable


class Histogram:
    """Streaming summary of one numeric quantity (count/total/min/max)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
        }

    def __repr__(self) -> str:
        return f"Histogram(count={self.count}, mean={self.mean:.3g})"


class MetricsSink:
    """Fold the event stream into counters and histograms."""

    def __init__(self) -> None:
        self.event_counts: collections.Counter[str] = collections.Counter()
        self.message_counts: collections.Counter[str] = collections.Counter()
        self.decision_counts: collections.Counter[str] = collections.Counter()
        self.hops_per_route = Histogram()
        self.detours_per_route = Histogram()
        self.queue_depth = Histogram()
        self.span_durations: dict[str, Histogram] = {}
        self.routes_delivered = 0
        self.routes_minimal = 0
        self.routes_failed = 0
        self.engine: dict[str, Any] = {}
        self._messages_per_tick: collections.Counter[int] = collections.Counter()

    # ------------------------------------------------------------------
    def record(self, event: TraceEvent) -> None:
        self.event_counts[event.kind] += 1
        data = event.data
        if event.kind == "protocol_msg":
            self.message_counts[str(data.get("msg", "?"))] += 1
            if "queue" in data:
                self.queue_depth.observe(data["queue"])
            if "time" in data:
                self._messages_per_tick[int(data["time"])] += 1
        elif event.kind == "route_end":
            self.routes_delivered += 1
            self.hops_per_route.observe(data.get("hops", 0))
            self.detours_per_route.observe(data.get("detours", 0))
            if data.get("minimal"):
                self.routes_minimal += 1
        elif event.kind == "route_failed":
            self.routes_failed += 1
        elif event.kind == "extension_fired":
            self.decision_counts[str(data.get("decision", "?"))] += 1
        elif event.kind == "span_end":
            name = str(data.get("name", "?"))
            self.span_durations.setdefault(name, Histogram()).observe(
                data.get("duration", 0.0)
            )
        elif event.kind == "engine_run":
            self.engine = dict(data)

    # ------------------------------------------------------------------
    def messages_per_tick(self) -> Histogram:
        """Histogram of protocol messages sent per integer sim-time tick."""
        histogram = Histogram()
        for count in self._messages_per_tick.values():
            histogram.observe(count)
        return histogram

    def snapshot(self) -> dict[str, Any]:
        """The whole aggregate as a JSON-serializable dict."""
        return jsonable(
            {
                "events": dict(sorted(self.event_counts.items())),
                "protocol_messages": dict(sorted(self.message_counts.items())),
                "decisions": dict(sorted(self.decision_counts.items())),
                "routes": {
                    "delivered": self.routes_delivered,
                    "minimal": self.routes_minimal,
                    "sub_minimal": self.routes_delivered - self.routes_minimal,
                    "failed": self.routes_failed,
                    "hops": self.hops_per_route.summary(),
                    "detours": self.detours_per_route.summary(),
                },
                "protocol": {
                    "queue_depth": self.queue_depth.summary(),
                    "messages_per_tick": self.messages_per_tick().summary(),
                },
                "spans": {
                    name: histogram.summary()
                    for name, histogram in sorted(self.span_durations.items())
                },
                "engine": self.engine,
            }
        )

    def to_table(self, with_timings: bool = True) -> str:
        """Aligned text rendering of the snapshot."""
        out = io.StringIO()

        def section(title: str, rows: list[tuple[str, str]]) -> None:
            if not rows:
                return
            out.write(f"{title}\n")
            width = max(len(label) for label, _ in rows)
            for label, value in rows:
                out.write(f"  {label:<{width}}  {value}\n")

        section(
            "events",
            [(kind, str(count)) for kind, count in sorted(self.event_counts.items())],
        )
        section(
            "protocol messages",
            [(kind, str(count)) for kind, count in sorted(self.message_counts.items())],
        )
        section(
            "decisions fired",
            [(kind, str(count)) for kind, count in sorted(self.decision_counts.items())],
        )
        if self.routes_delivered or self.routes_failed:
            rows = [
                ("delivered", str(self.routes_delivered)),
                ("minimal", str(self.routes_minimal)),
                ("sub-minimal", str(self.routes_delivered - self.routes_minimal)),
                ("failed", str(self.routes_failed)),
                ("hops/route", f"mean {self.hops_per_route.mean:.2f} "
                               f"max {self.hops_per_route.max or 0:g}"),
                ("detours/route", f"mean {self.detours_per_route.mean:.2f} "
                                  f"max {self.detours_per_route.max or 0:g}"),
            ]
            section("routes", rows)
        if self.queue_depth.count:
            per_tick = self.messages_per_tick()
            section(
                "simulator",
                [
                    ("queue depth", f"mean {self.queue_depth.mean:.1f} "
                                    f"max {self.queue_depth.max or 0:g}"),
                    ("msgs/tick", f"mean {per_tick.mean:.1f} max {per_tick.max or 0:g}"),
                ],
            )
        if self.engine:
            section(
                "engine",
                [(key, f"{value:g}" if isinstance(value, (int, float)) else str(value))
                 for key, value in self.engine.items()],
            )
        if with_timings and self.span_durations:
            section(
                "spans",
                [
                    (name, f"x{h.count}  total {h.total * 1e3:.2f}ms  "
                           f"mean {h.mean * 1e3:.3f}ms")
                    for name, h in sorted(self.span_durations.items())
                ],
            )
        return out.getvalue().rstrip("\n")
