"""Replay, time travel, and divergence bisection over flight recordings.

A recording starts with a ``run_meta`` event carrying the full *recipe*
of the run (mesh size, initial faults, fault-plan parameters, chaos
schedule, scheduler, stabilization rounds).  Because every source of
randomness in the simulator is seeded and every tie is broken
deterministically, re-executing the recipe must reproduce the event
stream bit for bit -- :func:`replay_events` machine-checks exactly that,
event by event, instead of only comparing final states.

On top of replay:

- :func:`state_at` rebuilds the run and stops the engine at any
  simulated tick, exposing the network/ESL state as of that instant
  (the ``repro replay --at`` time-travel inspector);
- :func:`bisect_streams` / :func:`bisect_logs` find the *first*
  divergent event between two runs.  The log variant binary-searches
  the per-tick cumulative digests in the sidecar indexes (prefix
  equality is monotone in the digest chain), so locating a divergence
  needs O(log ticks) digest probes, and both causal ancestries are
  attached to the verdict.

The chaos layer is imported lazily so ``repro.obs`` keeps its place at
the bottom of the dependency stack.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.obs.events import TraceEvent
from repro.obs.recorder import (
    FlightRecorder,
    ancestry,
    canonical,
    event_index,
    read_index,
    read_recording,
    render_lineage,
)

if TYPE_CHECKING:
    from repro.chaos.runner import ChaosRunner


# ----------------------------------------------------------------------
# Recipes: the replayable description a recording carries in run_meta
# ----------------------------------------------------------------------
def recipe_of(events: Sequence[TraceEvent]) -> dict[str, Any]:
    """Extract the run recipe from a recorded stream.

    The ``run_meta`` header is the first event of every recording made
    through :class:`~repro.chaos.runner.ChaosRunner`; a stream without
    one is not replayable.
    """
    for event in events:
        if event.kind == "run_meta":
            recipe = event.data.get("recipe")
            if not isinstance(recipe, Mapping):
                raise ValueError("run_meta event carries no recipe")
            return dict(recipe)
    raise ValueError("no run_meta event: this stream is not replayable")


def build_runner(
    recipe: Mapping[str, Any], recorder: FlightRecorder | None = None
) -> "ChaosRunner":
    """Reconstruct the (un-run) :class:`ChaosRunner` a recipe describes."""
    from repro.chaos.plan import ChannelFaultPlan
    from repro.chaos.runner import ChaosRunner
    from repro.chaos.schedule import ChaosEvent, ChaosSchedule
    from repro.mesh.topology import Mesh2D

    mesh = Mesh2D(int(recipe["n"]), int(recipe["m"]))
    plan = None
    plan_spec = recipe.get("plan")
    if plan_spec is not None:
        plan = ChannelFaultPlan(
            drop=float(plan_spec["drop"]),
            duplicate=float(plan_spec["duplicate"]),
            corrupt=float(plan_spec["corrupt"]),
            jitter=int(plan_spec["jitter"]),
            seed=int(plan_spec["seed"]),
        )
    schedule = ChaosSchedule(
        ChaosEvent(float(time), str(action), (int(coord[0]), int(coord[1])))
        for time, action, coord in recipe.get("schedule", ())
    )
    faults = [(int(x), int(y)) for x, y in recipe.get("faults", ())]
    return ChaosRunner(
        mesh,
        faults=faults,
        plan=plan,
        schedule=schedule,
        latency=float(recipe.get("latency", 1.0)),
        scheduler=str(recipe.get("scheduler", "buckets")),
        stabilize_rounds=int(recipe.get("stabilize_rounds", 1)),
        recorder=recorder,
    )


# ----------------------------------------------------------------------
# Divergence bisection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DivergenceReport:
    """Where two event streams first disagree, with both ancestries.

    ``index`` is the stream position of the first divergent event (for
    recorder output, position == event id).  When one stream is a strict
    prefix of the other, ``index`` is the shorter length and the missing
    side's event is None.
    """

    identical: bool
    index: int | None
    event_a: TraceEvent | None
    event_b: TraceEvent | None
    events_a: int
    events_b: int
    #: causal chains (root first) ending at the divergent events
    ancestry_a: tuple[TraceEvent, ...] = ()
    ancestry_b: tuple[TraceEvent, ...] = ()
    #: index-entry comparisons the log bisection spent (0 for in-memory)
    probes: int = 0

    def summary(self) -> str:
        if self.identical:
            return f"streams identical ({self.events_a} events)"
        if self.event_a is None or self.event_b is None:
            longer = "B" if self.events_b > self.events_a else "A"
            return (
                f"stream {longer} continues past the other's end: "
                f"first {self.index} events identical "
                f"(A has {self.events_a}, B has {self.events_b})"
            )
        return (
            f"first divergence at event {self.index}: "
            f"A emitted {self.event_a.kind}, B emitted {self.event_b.kind}"
        )

    def render(self) -> str:
        lines = [self.summary()]
        if not self.identical:
            for label, event, chain in (
                ("A", self.event_a, self.ancestry_a),
                ("B", self.event_b, self.ancestry_b),
            ):
                if event is None:
                    lines.append(f"--- {label}: <stream ended>")
                    continue
                lines.append(f"--- {label}: {event}")
                lines.append(f"    ancestry ({len(chain)} events):")
                for depth, ancestor in enumerate(chain):
                    indent = "    " + "   " * depth
                    lines.append(f"{indent}{ancestor}")
        return "\n".join(lines)


def _first_difference(
    a: Sequence[TraceEvent], b: Sequence[TraceEvent], start: int = 0
) -> int | None:
    """Position of the first canonical mismatch at/after ``start``; None
    if the common prefix (from ``start``) is identical."""
    end = min(len(a), len(b))
    for position in range(start, end):
        if canonical(a[position].to_dict()) != canonical(b[position].to_dict()):
            return position
    return None


def _safe_ancestry(
    table: Mapping[int, TraceEvent], event: TraceEvent | None
) -> tuple[TraceEvent, ...]:
    if event is None:
        return ()
    try:
        return tuple(ancestry(table, event.seq))
    except (KeyError, ValueError):
        # A divergent stream may reference causes the other never emitted;
        # the event itself is still reportable.
        return (event,)


def _report(
    a: Sequence[TraceEvent],
    b: Sequence[TraceEvent],
    position: int | None,
    probes: int = 0,
) -> DivergenceReport:
    if position is None:
        if len(a) == len(b):
            return DivergenceReport(
                identical=True,
                index=None,
                event_a=None,
                event_b=None,
                events_a=len(a),
                events_b=len(b),
                probes=probes,
            )
        position = min(len(a), len(b))
    event_a = a[position] if position < len(a) else None
    event_b = b[position] if position < len(b) else None
    return DivergenceReport(
        identical=False,
        index=position,
        event_a=event_a,
        event_b=event_b,
        events_a=len(a),
        events_b=len(b),
        ancestry_a=_safe_ancestry(event_index(a), event_a),
        ancestry_b=_safe_ancestry(event_index(b), event_b),
        probes=probes,
    )


def bisect_streams(
    a: Sequence[TraceEvent], b: Sequence[TraceEvent]
) -> DivergenceReport:
    """First divergent event between two in-memory streams."""
    return _report(a, b, _first_difference(a, b))


def bisect_logs(
    path_a: str | pathlib.Path, path_b: str | pathlib.Path
) -> DivergenceReport:
    """First divergent event between two recorded logs.

    When both logs carry sidecar indexes, the per-tick cumulative digests
    are binary-searched first: a matching entry proves the whole prefix
    before that tick matches, so the linear canonical comparison only
    scans from the last agreeing tick boundary.
    """
    events_a = read_recording(path_a)
    events_b = read_recording(path_b)
    index_a = read_index(path_a)
    index_b = read_index(path_b)
    start = 0
    probes = 0
    if index_a is not None and index_b is not None:
        ticks_a = index_a.get("ticks", [])
        ticks_b = index_b.get("ticks", [])
        lo, hi = 0, min(len(ticks_a), len(ticks_b)) - 1
        best = -1
        while lo <= hi:
            mid = (lo + hi) // 2
            probes += 1
            mark_a, mark_b = ticks_a[mid], ticks_b[mid]
            if (
                mark_a["event_id"] == mark_b["event_id"]
                and mark_a["time"] == mark_b["time"]
                and mark_a["digest"] == mark_b["digest"]
            ):
                best = mid
                lo = mid + 1
            else:
                hi = mid - 1
        if best >= 0:
            start = int(ticks_a[best]["event_id"])
    return _report(
        events_a, events_b, _first_difference(events_a, events_b, start), probes
    )


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReplayResult:
    """Outcome of re-executing a recording against its own event stream."""

    divergence: DivergenceReport
    outcome_summary: str
    events_recorded: int
    events_replayed: int
    replayed: tuple[TraceEvent, ...] = field(repr=False, default=())

    @property
    def identical(self) -> bool:
        return self.divergence.identical

    def summary(self) -> str:
        verdict = "REPLAY OK" if self.identical else "REPLAY DIVERGED"
        return (
            f"{verdict}: {self.events_recorded} recorded / "
            f"{self.events_replayed} replayed events; {self.divergence.summary()}"
        )


def replay_events(recorded: Sequence[TraceEvent]) -> ReplayResult:
    """Re-execute a recorded stream's recipe and compare, event by event."""
    recipe = recipe_of(recorded)
    recorder = FlightRecorder()
    runner = build_runner(recipe, recorder=recorder)
    outcome = runner.run()
    replayed = recorder.events
    return ReplayResult(
        divergence=bisect_streams(recorded, replayed),
        outcome_summary=outcome.summary(),
        events_recorded=len(recorded),
        events_replayed=len(replayed),
        replayed=tuple(replayed),
    )


def replay_recording(path: str | pathlib.Path) -> ReplayResult:
    """Replay a JSONL recording from disk."""
    return replay_events(read_recording(path))


# ----------------------------------------------------------------------
# Time travel
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StateSnapshot:
    """The network as of one simulated instant of a recorded run."""

    time: float
    faults: tuple[tuple[int, int], ...]
    #: coords whose node is faulty or block-disabled at the instant
    unusable: tuple[tuple[int, int], ...]
    #: free-node extended safety levels as (coord, (E, S, W, N)) pairs
    levels: tuple[tuple[tuple[int, int], tuple[int, int, int, int]], ...]
    events_processed: int
    pending: int

    def summary(self) -> str:
        return (
            f"t={self.time:g}: {len(self.faults)} faults, "
            f"{len(self.unusable)} unusable nodes, "
            f"{self.events_processed} events processed, {self.pending} pending"
        )


def state_at(
    source: Sequence[TraceEvent] | str | pathlib.Path, at: float
) -> StateSnapshot:
    """Reconstruct the run a recording describes, stopped at tick ``at``.

    Replays the recipe from scratch (recordings are deterministic, so the
    rebuilt run *is* the recorded one) and halts the engine at the
    requested simulated time; chaos events and stabilization pulses later
    than ``at`` simply have not happened yet in the snapshot.
    """
    if isinstance(source, (str, pathlib.Path)):
        events: Sequence[TraceEvent] = read_recording(source)
    else:
        events = source
    recipe = recipe_of(events)
    runner = build_runner(recipe)
    runner.prime()
    network = runner.network
    network.refresh_instrumentation()
    for process in network.nodes.values():
        process.start()
    runner.engine.run(until=at)

    unusable_grid = runner.unusable_grid()
    levels = runner.safety_levels()
    unusable = tuple(
        (int(x), int(y)) for x, y in zip(*unusable_grid.nonzero())
    )
    level_rows = []
    for coord in sorted(network.nodes):
        if unusable_grid[coord]:
            continue
        level_rows.append(
            (
                coord,
                (
                    int(levels.east[coord]),
                    int(levels.south[coord]),
                    int(levels.west[coord]),
                    int(levels.north[coord]),
                ),
            )
        )
    return StateSnapshot(
        time=runner.engine.now,
        faults=tuple(sorted(network.faulty)),
        unusable=unusable,
        levels=tuple(level_rows),
        events_processed=runner.engine.events_processed,
        pending=runner.engine.pending,
    )


def lineage_of(
    source: Sequence[TraceEvent] | str | pathlib.Path, event_id: int
) -> str:
    """Rendered ancestry tree for one event of a recording."""
    if isinstance(source, (str, pathlib.Path)):
        events: Sequence[TraceEvent] = read_recording(source)
    else:
        events = source
    return render_lineage(events, event_id)
