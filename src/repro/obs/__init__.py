"""Zero-dependency observability layer: tracing, metrics, timing spans.

Every router, protocol, and hot computation in this library can report what
it is doing through a :class:`~repro.obs.tracer.Tracer`:

- typed events (:mod:`repro.obs.events`) describe routing decisions
  (``hop``, ``detour``, ``block_hit``, ``extension_fired``), protocol
  traffic (``protocol_msg``, ``engine_run``), and timed sections
  (``span_start`` / ``span_end``);
- sinks (:mod:`repro.obs.sinks`) buffer events in memory or persist them
  as JSONL; the aggregating :class:`~repro.obs.metrics.MetricsSink` folds
  the stream into counters and histograms online;
- the default tracer is a no-op (:data:`~repro.obs.tracer.NULL_TRACER`),
  so uninstrumented runs pay only an ``enabled`` check per potential event.

Typical use::

    from repro.obs import MetricsSink, RingBufferSink, Tracer, use_tracer

    ring, metrics = RingBufferSink(), MetricsSink()
    with use_tracer(Tracer(ring, metrics)):
        router.route(source, dest)
    for event in ring:
        print(event)
    print(metrics.to_table())

``python -m repro trace`` and ``python -m repro stats`` expose the same
machinery from the command line.

On top of tracing sit the performance-observatory pieces:

- :mod:`repro.obs.prof` -- hot-path counters and span-scoped
  cProfile / ``perf_counter_ns`` profiling (``repro stats --profile``);
- :mod:`repro.obs.prometheus` -- Prometheus text exposition of any
  metrics snapshot (``repro stats --prom``);
- every :class:`~repro.obs.metrics.Histogram` carries deterministic
  p50/p95/p99 percentiles from a bounded, seeded reservoir.

And the flight recorder (:mod:`repro.obs.recorder` /
:mod:`repro.obs.replay`): install a :class:`FlightRecorder` and the
simulator captures every decision point with causal lineage into a
replayable, seekable log -- ``repro replay`` re-executes it and asserts
bit-identical event streams, ``--at`` time-travels, ``--lineage`` walks
ancestry, and ``--bisect`` binary-searches two logs to their first
divergent event.
"""

from repro.obs.events import EVENT_KINDS, TraceEvent, jsonable
from repro.obs.metrics import Histogram, MetricsSink
from repro.obs.recorder import (
    FlightRecorder,
    RecorderSink,
    ancestry,
    canonical,
    read_index,
    read_recording,
    render_lineage,
)
from repro.obs.replay import (
    DivergenceReport,
    ReplayResult,
    StateSnapshot,
    bisect_logs,
    bisect_streams,
    lineage_of,
    replay_events,
    replay_recording,
    state_at,
)
from repro.obs.prof import (
    NULL_PROFILER,
    NullProfiler,
    Profiler,
    get_profiler,
    set_profiler,
    use_profiler,
)
from repro.obs.prometheus import render_prometheus
from repro.obs.sinks import (
    JsonlDecodeError,
    JsonlSink,
    RingBufferSink,
    Sink,
    read_jsonl,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "EVENT_KINDS",
    "DivergenceReport",
    "FlightRecorder",
    "Histogram",
    "JsonlDecodeError",
    "JsonlSink",
    "MetricsSink",
    "NULL_PROFILER",
    "NULL_TRACER",
    "NullProfiler",
    "NullTracer",
    "Profiler",
    "RecorderSink",
    "ReplayResult",
    "RingBufferSink",
    "Sink",
    "StateSnapshot",
    "TraceEvent",
    "Tracer",
    "ancestry",
    "bisect_logs",
    "bisect_streams",
    "canonical",
    "get_profiler",
    "get_tracer",
    "jsonable",
    "lineage_of",
    "read_index",
    "read_jsonl",
    "read_recording",
    "render_lineage",
    "render_prometheus",
    "replay_events",
    "replay_recording",
    "set_profiler",
    "set_tracer",
    "use_profiler",
    "use_tracer",
]
