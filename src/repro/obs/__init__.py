"""Zero-dependency observability layer: tracing, metrics, timing spans.

Every router, protocol, and hot computation in this library can report what
it is doing through a :class:`~repro.obs.tracer.Tracer`:

- typed events (:mod:`repro.obs.events`) describe routing decisions
  (``hop``, ``detour``, ``block_hit``, ``extension_fired``), protocol
  traffic (``protocol_msg``, ``engine_run``), and timed sections
  (``span_start`` / ``span_end``);
- sinks (:mod:`repro.obs.sinks`) buffer events in memory or persist them
  as JSONL; the aggregating :class:`~repro.obs.metrics.MetricsSink` folds
  the stream into counters and histograms online;
- the default tracer is a no-op (:data:`~repro.obs.tracer.NULL_TRACER`),
  so uninstrumented runs pay only an ``enabled`` check per potential event.

Typical use::

    from repro.obs import MetricsSink, RingBufferSink, Tracer, use_tracer

    ring, metrics = RingBufferSink(), MetricsSink()
    with use_tracer(Tracer(ring, metrics)):
        router.route(source, dest)
    for event in ring:
        print(event)
    print(metrics.to_table())

``python -m repro trace`` and ``python -m repro stats`` expose the same
machinery from the command line.

On top of tracing sit the performance-observatory pieces:

- :mod:`repro.obs.prof` -- hot-path counters and span-scoped
  cProfile / ``perf_counter_ns`` profiling (``repro stats --profile``);
- :mod:`repro.obs.prometheus` -- Prometheus text exposition of any
  metrics snapshot (``repro stats --prom``);
- every :class:`~repro.obs.metrics.Histogram` carries deterministic
  p50/p95/p99 percentiles from a bounded, seeded reservoir.

And the flight recorder (:mod:`repro.obs.recorder` /
:mod:`repro.obs.replay`): install a :class:`FlightRecorder` and the
simulator captures every decision point with causal lineage into a
replayable, seekable log -- ``repro replay`` re-executes it and asserts
bit-identical event streams, ``--at`` time-travels, ``--lineage`` walks
ancestry, and ``--bisect`` binary-searches two logs to their first
divergent event.

The live-telemetry observatory turns all of this from post-mortem into
realtime (``repro top`` / ``repro serve-metrics``):

- :mod:`repro.obs.timeseries` -- a ring-buffer TSDB fed by a per-tick
  engine hook (:class:`TimeSeries`, :class:`SampleStore`,
  :class:`Observatory`); samples are keyed by the simulated clock, so a
  flight-recorded run replays to bit-identical series;
- :mod:`repro.obs.alerts` -- threshold / rate / ratio / stall rules
  evaluated per tick (convergence stall, retransmit storm, queue
  runaway, drop-rate SLO), latched into :class:`Alert` firings that land
  in chaos reports;
- :mod:`repro.obs.server` -- a background-thread HTTP exporter
  (``/metrics``, ``/series.json``, ``/healthz``) plus atomic
  push-to-file for headless CI;
- :mod:`repro.obs.dashboard` -- the ANSI sparkline panel behind
  ``repro top``.
"""

from repro.obs.alerts import (
    Alert,
    AlertEngine,
    AlertRule,
    RateRule,
    RatioRule,
    StallRule,
    ThresholdRule,
    convergence_stall,
    default_rules,
    drop_rate_slo,
    queue_runaway,
    retransmit_storm,
)
from repro.obs.dashboard import Dashboard, sparkline
from repro.obs.events import EVENT_KINDS, TraceEvent, jsonable
from repro.obs.metrics import Histogram, MetricsSink
from repro.obs.recorder import (
    FlightRecorder,
    RecorderSink,
    ancestry,
    canonical,
    read_index,
    read_recording,
    render_lineage,
)
from repro.obs.replay import (
    DivergenceReport,
    ReplayResult,
    StateSnapshot,
    bisect_logs,
    bisect_streams,
    lineage_of,
    replay_events,
    replay_recording,
    state_at,
)
from repro.obs.prof import (
    NULL_PROFILER,
    NullProfiler,
    Profiler,
    get_profiler,
    set_profiler,
    use_profiler,
)
from repro.obs.prometheus import (
    ExpositionWriter,
    render_prometheus,
    render_timeseries,
)
from repro.obs.server import MetricsServer, atomic_write_text
from repro.obs.sinks import (
    JsonlDecodeError,
    JsonlSink,
    RingBufferSink,
    Sink,
    read_jsonl,
)
from repro.obs.timeseries import (
    SAMPLER_SERIES,
    Observatory,
    SampleStore,
    TickSampler,
    TimeSeries,
    get_observatory,
    set_observatory,
    use_observatory,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "Alert",
    "AlertEngine",
    "AlertRule",
    "Dashboard",
    "DivergenceReport",
    "EVENT_KINDS",
    "FlightRecorder",
    "Histogram",
    "JsonlDecodeError",
    "JsonlSink",
    "MetricsServer",
    "MetricsSink",
    "NULL_PROFILER",
    "NULL_TRACER",
    "NullProfiler",
    "NullTracer",
    "Observatory",
    "Profiler",
    "RateRule",
    "RatioRule",
    "RecorderSink",
    "ReplayResult",
    "RingBufferSink",
    "SAMPLER_SERIES",
    "SampleStore",
    "Sink",
    "StallRule",
    "StateSnapshot",
    "ThresholdRule",
    "TickSampler",
    "TimeSeries",
    "TraceEvent",
    "Tracer",
    "ancestry",
    "atomic_write_text",
    "bisect_logs",
    "bisect_streams",
    "canonical",
    "convergence_stall",
    "default_rules",
    "drop_rate_slo",
    "get_observatory",
    "get_profiler",
    "get_tracer",
    "jsonable",
    "lineage_of",
    "queue_runaway",
    "read_index",
    "read_jsonl",
    "read_recording",
    "ExpositionWriter",
    "render_lineage",
    "render_prometheus",
    "render_timeseries",
    "replay_events",
    "replay_recording",
    "retransmit_storm",
    "set_observatory",
    "set_profiler",
    "set_tracer",
    "sparkline",
    "use_observatory",
    "use_profiler",
    "use_tracer",
]
