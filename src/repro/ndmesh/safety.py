"""Extended safety levels in N dimensions.

The 2-D 4-tuple ``(E, S, W, N)`` becomes ``2d`` entries: for every axis, the
number of consecutive unusable-free nodes strictly ahead in the positive and
the negative direction (:data:`repro.core.safety.UNBOUNDED` when clear to
the mesh edge).  Computed with the same prefix/suffix scans as the 2-D
version, applied per axis by rolling that axis to the front.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.safety import UNBOUNDED
from repro.ndmesh.topology import CoordND, MeshND


@dataclass(frozen=True)
class NDSafetyLevels:
    """Per-node clear distances: ``positive[axis]`` / ``negative[axis]``
    grids of shape ``mesh.shape``."""

    mesh: MeshND
    positive: tuple[np.ndarray, ...]
    negative: tuple[np.ndarray, ...]

    def level(self, coord: CoordND, axis: int, sign: int) -> int:
        """Clear hops from ``coord`` along (axis, sign)."""
        if sign not in (1, -1):
            raise ValueError(f"sign must be +1 or -1, got {sign}")
        grid = self.positive[axis] if sign == 1 else self.negative[axis]
        return int(grid[coord])

    def esl(self, coord: CoordND) -> tuple[int, ...]:
        """All ``2d`` entries, ordered ``(+0, -0, +1, -1, ...)``."""
        out: list[int] = []
        for axis in range(self.mesh.dimensions):
            out.append(int(self.positive[axis][coord]))
            out.append(int(self.negative[axis][coord]))
        return tuple(out)


def _axis_scans(blocked_front: np.ndarray, big: int, small: int) -> tuple[np.ndarray, np.ndarray]:
    """Nearest blocked index at-or-after / at-or-before along axis 0."""
    n = blocked_front.shape[0]
    index_shape = (n,) + (1,) * (blocked_front.ndim - 1)
    indices = np.arange(n).reshape(index_shape)
    after = np.where(blocked_front, indices, big)
    after = np.minimum.accumulate(after[::-1], axis=0)[::-1]
    before = np.where(blocked_front, indices, small)
    before = np.maximum.accumulate(before, axis=0)
    return after, before


def compute_nd_safety_levels(mesh: MeshND, blocked: np.ndarray) -> NDSafetyLevels:
    """Clear-distance grids for every axis and direction."""
    if blocked.shape != mesh.shape:
        raise ValueError(f"grid shape {blocked.shape} does not match mesh {mesh.shape}")
    big = UNBOUNDED + sum(mesh.shape)
    small = -big
    positive: list[np.ndarray] = []
    negative: list[np.ndarray] = []
    for axis in range(mesh.dimensions):
        front = np.moveaxis(blocked, axis, 0)
        after, before = _axis_scans(front, big, small)
        n = front.shape[0]
        pad_shape = (1,) + front.shape[1:]
        # Strictly-ahead searches: shift the inclusive scans by one.
        after_strict = np.concatenate(
            [after[1:], np.full(pad_shape, big, dtype=np.int64)], axis=0
        )
        before_strict = np.concatenate(
            [np.full(pad_shape, small, dtype=np.int64), before[:-1]], axis=0
        )
        index_shape = (n,) + (1,) * (front.ndim - 1)
        indices = np.arange(n).reshape(index_shape)
        pos = np.minimum(after_strict - indices - 1, UNBOUNDED)
        neg = np.minimum(indices - before_strict - 1, UNBOUNDED)
        positive.append(np.moveaxis(pos, 0, axis).copy())
        negative.append(np.moveaxis(neg, 0, axis).copy())
    return NDSafetyLevels(mesh=mesh, positive=tuple(positive), negative=tuple(negative))
