"""Definition 1 generalized to N dimensions.

A healthy node is disabled when its faulty/disabled neighbours span **two or
more distinct dimensions** -- the straight reading of the paper's rule.  In
2-D the converged components are exactly rectangles.  In 3-D we *expected*
non-convex stable shapes, but could not produce one: every L, U, ring, or
staircase we tried fills its bounding box (any concave corner lives in some
axis plane, where the 2-D pinch argument applies), and randomized searches
over thousands of fault sets found no component with ``fill_ratio < 1``.
We therefore report the box-ness empirically rather than assuming it:
components carry their bounding boxes and a ``fill_ratio`` diagnostic, and
the test-suite asserts the observed fill ratio of 1.0 on randomized inputs
so any future counterexample announces itself.

One 2-D property that provably does *not* carry over: distinct 3-D blocks
can sit at Chebyshev distance 1 (space-diagonal contact does not pinch any
node, unlike planar diagonal contact), so the 2-D "blocks never touch"
separation becomes "blocks never share a face or planar diagonal".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.ndmesh.topology import CoordND, MeshND


def nd_disable_fixpoint(mesh: MeshND, faulty: np.ndarray) -> np.ndarray:
    """Run the generalized disabling rule to a fixpoint (vectorised)."""
    if faulty.shape != mesh.shape:
        raise ValueError(f"grid shape {faulty.shape} does not match mesh {mesh.shape}")
    unusable = faulty.copy()
    while True:
        per_axis_hit = []
        for axis in range(mesh.dimensions):
            forward = np.zeros_like(unusable)
            backward = np.zeros_like(unusable)
            src = [slice(None)] * mesh.dimensions
            dst = [slice(None)] * mesh.dimensions
            src[axis] = slice(1, None)
            dst[axis] = slice(None, -1)
            forward[tuple(dst)] = unusable[tuple(src)]
            backward[tuple(src)] = unusable[tuple(dst)]
            per_axis_hit.append(forward | backward)
        dims_hit = np.zeros(mesh.shape, dtype=np.int8)
        for hit in per_axis_hit:
            dims_hit += hit.astype(np.int8)
        grown = unusable | (dims_hit >= 2)
        if np.array_equal(grown, unusable):
            return unusable
        unusable = grown


@dataclass(frozen=True)
class NDBlock:
    """One connected unusable component and its bounding box."""

    coords: frozenset[CoordND]
    lower: CoordND  # bounding box corner (inclusive)
    upper: CoordND  # bounding box corner (inclusive)

    @property
    def size(self) -> int:
        return len(self.coords)

    @property
    def box_volume(self) -> int:
        volume = 1
        for lo, hi in zip(self.lower, self.upper):
            volume *= hi - lo + 1
        return volume

    @property
    def fill_ratio(self) -> float:
        """1.0 means the component is exactly its bounding box (always true
        in 2-D, not guaranteed above)."""
        return self.size / self.box_volume

    def contains(self, coord: CoordND) -> bool:
        return coord in self.coords


@dataclass
class NDBlockSet:
    mesh: MeshND
    blocks: list[NDBlock]
    faulty: np.ndarray
    unusable: np.ndarray

    def __iter__(self) -> Iterator[NDBlock]:
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)

    @property
    def num_faulty(self) -> int:
        return int(self.faulty.sum())

    @property
    def num_disabled(self) -> int:
        return int(self.unusable.sum()) - self.num_faulty

    def is_unusable(self, coord: CoordND) -> bool:
        return bool(self.unusable[coord])

    def min_fill_ratio(self) -> float:
        """Diagnostic: how box-like the components are (1.0 in 2-D)."""
        if not self.blocks:
            return 1.0
        return min(block.fill_ratio for block in self.blocks)


def build_nd_blocks(mesh: MeshND, faults: Iterable[CoordND]) -> NDBlockSet:
    """Label, extract components, and package them."""
    faulty = np.zeros(mesh.shape, dtype=bool)
    for coord in faults:
        mesh.require_in_bounds(coord)
        faulty[coord] = True
    unusable = nd_disable_fixpoint(mesh, faulty)

    blocks: list[NDBlock] = []
    seen = np.zeros(mesh.shape, dtype=bool)
    for start in zip(*np.nonzero(unusable)):
        start = tuple(int(c) for c in start)
        if seen[start]:
            continue
        component: list[CoordND] = []
        stack = [start]
        seen[start] = True
        while stack:
            node = stack.pop()
            component.append(node)
            for neighbor in mesh.neighbors(node):
                if unusable[neighbor] and not seen[neighbor]:
                    seen[neighbor] = True
                    stack.append(neighbor)
        lower = tuple(min(c[axis] for c in component) for axis in range(mesh.dimensions))
        upper = tuple(max(c[axis] for c in component) for axis in range(mesh.dimensions))
        blocks.append(NDBlock(coords=frozenset(component), lower=lower, upper=upper))
    blocks.sort(key=lambda b: b.lower)
    return NDBlockSet(mesh=mesh, blocks=blocks, faulty=faulty, unusable=unusable)
