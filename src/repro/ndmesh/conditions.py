"""Sufficient safe conditions in N dimensions.

Two conditions, with very different standing:

- :func:`axis_sections_clear` is the naive generalization of Definition 3
  ("section ``[0, d_i]`` of every axis at the source is clear").  In 2-D it
  is exactly the paper's condition and is sound (Theorem 1).  In 3-D its
  soundness depends on the obstacle shapes: for *arbitrary* blocked sets it
  is **unsound** -- an anti-diagonal barrier surface pierced only at the
  axes, with small walls behind each pierce point, seals the box while
  leaving every axis clear (the test-suite builds that 13-cell
  counterexample in a 5x5x5 mesh).  Under the generalized Definition-1
  closure the randomized searches in this repository found no
  counterexample (diagonal barriers are not stable under the closure and
  swell until they either become box-like or swallow an axis), but the
  paper's planar boundary-hugging proof does not generalize, so the
  condition is offered as a *heuristic* above 2-D -- precisely the open
  edge the paper's "future work" points at.

- :func:`segment_chain_safe` generalizes soundly to every dimension.  A
  *clear segment* is a straight, axis-aligned, obstacle-free run, certified
  by one extended-safety-level entry at its start node; a chain of clear
  segments through known pivots, each segment moving toward the
  destination, concatenates into a monotone path.  This is the N-D shape of
  the paper's Extensions 2 and 3: the pivots' ESLs are the only remote
  information needed.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from repro.ndmesh.safety import NDSafetyLevels
from repro.ndmesh.topology import CoordND

__all__ = [
    "axis_sections_clear",
    "box_corner_pivots",
    "clear_segment",
    "segment_chain_safe",
]


def axis_sections_clear(
    levels: NDSafetyLevels, source: CoordND, dest: CoordND
) -> bool:
    """The naive Definition-3 generalization: every axis section clear.

    Sound in 2-D (it is Definition 3); a *heuristic* in higher dimensions --
    see the module docstring and the 3-D counterexample test.
    """
    for axis, (s, d) in enumerate(zip(source, dest)):
        offset = d - s
        if offset == 0:
            continue
        sign = 1 if offset > 0 else -1
        if abs(offset) > levels.level(source, axis, sign):
            return False
    return True


def box_corner_pivots(source: CoordND, dest: CoordND) -> list[CoordND]:
    """The corners of the source/destination box (``2^d`` points).

    Chains of clear segments through box corners are exactly the
    dimension-ordered staircase routes along the box's edges -- the natural
    pivot family for :func:`segment_chain_safe`: every corner is axis-
    aligned with ``2^(d-1)`` others, so no external alignment is needed.
    Callers typically pass these plus any broadcast pivots they hold.
    """
    import itertools

    corners = []
    for choice in itertools.product(*zip(source, dest)):
        if choice != source and choice != dest:
            corners.append(choice)
    return corners


def clear_segment(levels: NDSafetyLevels, start: CoordND, end: CoordND) -> bool:
    """True iff ``start`` and ``end`` differ along one axis and the straight
    run between them is free of blocks (certified by ``start``'s ESL)."""
    differing = [axis for axis in range(len(start)) if start[axis] != end[axis]]
    if len(differing) != 1:
        return False
    axis = differing[0]
    offset = end[axis] - start[axis]
    sign = 1 if offset > 0 else -1
    return abs(offset) <= levels.level(start, axis, sign)


def segment_chain_safe(
    levels: NDSafetyLevels,
    source: CoordND,
    dest: CoordND,
    pivots: Sequence[CoordND],
) -> bool:
    """Sound sufficient condition in any dimension.

    True iff a chain ``source -> p_1 -> ... -> dest`` of clear axis-aligned
    segments exists where every pivot lies inside the source/destination box
    (each segment is then automatically monotone, so the concatenation is a
    minimal path).  BFS over the pivot graph; the direct source -> dest
    segment and two-segment "L" chains are special cases.
    """
    lower = tuple(min(s, d) for s, d in zip(source, dest))
    upper = tuple(max(s, d) for s, d in zip(source, dest))

    def inside_box(coord: CoordND) -> bool:
        return all(lo <= c <= hi for c, lo, hi in zip(coord, lower, upper))

    waypoints = [p for p in dict.fromkeys(pivots) if inside_box(p) and p != source]
    if dest not in waypoints:
        waypoints.append(dest)

    def segment_toward_dest(current: CoordND, candidate: CoordND) -> bool:
        """The (single-axis) move must make progress toward ``dest`` --
        otherwise the concatenated path would backtrack and lose minimality."""
        differing = [axis for axis in range(len(current)) if current[axis] != candidate[axis]]
        if len(differing) != 1:
            return False
        axis = differing[0]
        move = candidate[axis] - current[axis]
        remaining = dest[axis] - current[axis]
        if remaining == 0:
            return False
        same_direction = (move > 0) == (remaining > 0)
        return same_direction and abs(move) <= abs(remaining)

    visited = {source}
    queue: deque[CoordND] = deque([source])
    while queue:
        current = queue.popleft()
        if current == dest:
            return True
        for candidate in waypoints:
            if candidate in visited:
                continue
            if segment_toward_dest(current, candidate) and clear_segment(
                levels, current, candidate
            ):
                visited.add(candidate)
                queue.append(candidate)
    return False
