"""Exact monotone-path existence in N dimensions.

A minimal path in a mesh moves every hop toward the destination, so it is a
monotone lattice path inside the source/destination box.  Reachability under

    ``reach[idx] = free[idx] and OR over axis of reach[idx - e_axis]``

decides existence exactly for any obstacle shape and any dimension; the
2-D module :mod:`repro.faults.coverage` is the specialized fast path, and
the tests assert the two agree on 2-D inputs.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.ndmesh.topology import CoordND, MeshND

__all__ = ["nd_minimal_path_exists", "nd_monotone_path", "nd_monotone_reachability"]


def _oriented_box(blocked: np.ndarray, source: CoordND, dest: CoordND) -> np.ndarray:
    """The sub-box between the endpoints, flipped so the source sits at the
    all-zeros corner and the destination at the far corner."""
    slices = []
    flips = []
    for s, d in zip(source, dest):
        lo, hi = (s, d) if s <= d else (d, s)
        slices.append(slice(lo, hi + 1))
        flips.append(s > d)
    sub = blocked[tuple(slices)]
    for axis, flip in enumerate(flips):
        if flip:
            sub = np.flip(sub, axis=axis)
    return sub


def nd_monotone_reachability(
    blocked: np.ndarray, source: CoordND, dest: CoordND
) -> np.ndarray:
    """Reachability grid over the oriented source/destination box."""
    free = ~_oriented_box(blocked, source, dest)
    reach = np.zeros(free.shape, dtype=bool)
    origin = (0,) * free.ndim
    if not free[origin]:
        return reach
    reach[origin] = True
    for idx in itertools.product(*(range(k) for k in free.shape)):
        if idx == origin or not free[idx]:
            continue
        for axis in range(free.ndim):
            if idx[axis] > 0:
                predecessor = idx[:axis] + (idx[axis] - 1,) + idx[axis + 1 :]
                if reach[predecessor]:
                    reach[idx] = True
                    break
    return reach


def nd_minimal_path_exists(blocked: np.ndarray, source: CoordND, dest: CoordND) -> bool:
    """True iff a minimal path avoids every blocked node (any dimension)."""
    if blocked[source] or blocked[dest]:
        return False
    if source == dest:
        return True
    reach = nd_monotone_reachability(blocked, source, dest)
    return bool(reach[tuple(k - 1 for k in reach.shape)])


def nd_monotone_path(
    mesh: MeshND, blocked: np.ndarray, source: CoordND, dest: CoordND
) -> list[CoordND] | None:
    """An actual minimal path (list of nodes), or ``None``.

    Backtracks through the reachability grid from the destination corner.
    """
    if blocked[source] or blocked[dest]:
        return None
    if source == dest:
        return [source]
    reach = nd_monotone_reachability(blocked, source, dest)
    corner = tuple(k - 1 for k in reach.shape)
    if not reach[corner]:
        return None

    signs = tuple(1 if d >= s else -1 for s, d in zip(source, dest))

    def to_global(idx: CoordND) -> CoordND:
        return tuple(s + sign * i for s, sign, i in zip(source, signs, idx))

    path_indices = [corner]
    idx = corner
    while idx != (0,) * len(corner):
        for axis in range(len(idx)):
            if idx[axis] > 0:
                predecessor = idx[:axis] + (idx[axis] - 1,) + idx[axis + 1 :]
                if reach[predecessor]:
                    idx = predecessor
                    path_indices.append(idx)
                    break
        else:  # pragma: no cover - reach[corner] guarantees a predecessor
            raise AssertionError("reachability grid is inconsistent")
    path_indices.reverse()
    return [to_global(idx) for idx in path_indices]
