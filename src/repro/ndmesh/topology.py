"""N-dimensional mesh topology.

A ``k_1 x ... x k_d`` mesh has one node per integer point of the box and an
edge between nodes differing by one in exactly one coordinate.  Coordinates
are plain tuples; grids are numpy arrays of matching shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

CoordND = tuple[int, ...]


@dataclass(frozen=True)
class MeshND:
    """An N-dimensional mesh (``len(shape)`` dimensions)."""

    shape: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.shape:
            raise ValueError("a mesh needs at least one dimension")
        if any(k < 1 for k in self.shape):
            raise ValueError(f"dimensions must be positive, got {self.shape}")

    @property
    def dimensions(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        total = 1
        for k in self.shape:
            total *= k
        return total

    @property
    def center(self) -> CoordND:
        return tuple(k // 2 for k in self.shape)

    def in_bounds(self, coord: CoordND) -> bool:
        if len(coord) != self.dimensions:
            return False
        return all(0 <= c < k for c, k in zip(coord, self.shape))

    def require_in_bounds(self, coord: CoordND) -> None:
        if not self.in_bounds(coord):
            raise ValueError(f"{coord} is outside the {self.shape} mesh")

    def nodes(self) -> Iterator[CoordND]:
        import itertools

        return itertools.product(*(range(k) for k in self.shape))

    def neighbors(self, coord: CoordND) -> list[CoordND]:
        self.require_in_bounds(coord)
        out: list[CoordND] = []
        for axis in range(self.dimensions):
            for delta in (-1, 1):
                candidate = self.step(coord, axis, delta)
                if candidate is not None:
                    out.append(candidate)
        return out

    def step(self, coord: CoordND, axis: int, delta: int) -> CoordND | None:
        """The node ``delta`` steps along ``axis``, or None off the mesh."""
        value = coord[axis] + delta
        if not 0 <= value < self.shape[axis]:
            return None
        return coord[:axis] + (value,) + coord[axis + 1 :]

    def distance(self, a: CoordND, b: CoordND) -> int:
        self.require_in_bounds(a)
        self.require_in_bounds(b)
        return sum(abs(x - y) for x, y in zip(a, b))

    def monotone_directions(self, current: CoordND, dest: CoordND) -> list[tuple[int, int]]:
        """(axis, sign) pairs that move ``current`` toward ``dest`` --
        the N-D preferred directions."""
        out = []
        for axis in range(self.dimensions):
            if dest[axis] > current[axis]:
                out.append((axis, 1))
            elif dest[axis] < current[axis]:
                out.append((axis, -1))
        return out

    def __str__(self) -> str:
        return "MeshND(" + "x".join(str(k) for k in self.shape) + ")"
