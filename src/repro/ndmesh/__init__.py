"""N-dimensional meshes: the paper's stated future work, implemented.

The paper closes with "Possible extensions to 3-D meshes and other
high-dimensional mesh networks will be another focus".  This package carries
the reproduction there, carefully separating what provably generalizes from
what does not:

- :mod:`repro.ndmesh.topology` -- ``k_1 x ... x k_d`` meshes, neighbours,
  Manhattan distance, monotone direction sets.
- :mod:`repro.ndmesh.blocks` -- Definition 1 generalized (a healthy node is
  disabled when its unusable neighbours span two or more dimensions).  In
  2-D the converged components are rectangles; in 3-D and above they need
  *not* be boxes, and :func:`~repro.ndmesh.blocks.build_nd_blocks` reports
  how far each component is from its bounding box instead of pretending.
- :mod:`repro.ndmesh.safety` -- extended safety levels as a ``2d``-tuple of
  clear distances, one per direction.
- :mod:`repro.ndmesh.oracle` -- the exact monotone-path existence oracle
  (dynamic programming over the source/destination box), the ground truth
  in any dimension.
- :mod:`repro.ndmesh.conditions` -- two sufficient conditions:

  * :func:`~repro.ndmesh.conditions.axis_sections_clear`, the naive
    generalization of Definition 3 ("every axis section at the source is
    clear").  Sound in 2-D -- where it *is* Definition 3 -- but unsound in
    3-D for arbitrary obstacle sets (the test-suite exhibits a 13-cell
    counterexample) and only empirically unrefuted under the Definition-1
    closure: exactly why the paper left higher dimensions as future work.
  * :func:`~repro.ndmesh.conditions.segment_chain_safe`, a condition that
    *is* sound in every dimension: a chain of axis-aligned, monotone,
    clear segments from source to destination through known pivots
    (the N-D form of the paper's Extensions 2 and 3 -- each link is
    certified by one safety-level entry at its start node).
"""

from repro.ndmesh.topology import MeshND
from repro.ndmesh.blocks import NDBlockSet, build_nd_blocks
from repro.ndmesh.safety import NDSafetyLevels, compute_nd_safety_levels
from repro.ndmesh.oracle import nd_minimal_path_exists, nd_monotone_path
from repro.ndmesh.conditions import axis_sections_clear, segment_chain_safe

__all__ = [
    "MeshND",
    "NDBlockSet",
    "NDSafetyLevels",
    "axis_sections_clear",
    "build_nd_blocks",
    "compute_nd_safety_levels",
    "nd_minimal_path_exists",
    "nd_monotone_path",
    "segment_chain_safe",
]
