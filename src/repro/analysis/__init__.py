"""Analytical models and statistics helpers.

- :mod:`repro.analysis.affected_rows` -- the paper's Theorem 2: expected
  number of affected rows/columns for ``k`` random faults (Figure 7's
  analytical curve) plus the experimental counterpart.
- :mod:`repro.analysis.statistics` -- small, dependency-free estimators
  (means, binomial confidence intervals) used by the experiment harness so
  reproduced figures come with honest error bars.
"""

from repro.analysis.affected_rows import (
    count_affected_columns,
    count_affected_rows,
    expected_affected_rows,
)
from repro.analysis.statistics import mean_and_ci, proportion_ci

__all__ = [
    "count_affected_columns",
    "count_affected_rows",
    "expected_affected_rows",
    "mean_and_ci",
    "proportion_ci",
]
