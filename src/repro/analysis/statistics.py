"""Small estimators for the experiment harness.

The paper reports point estimates only; we attach confidence intervals so
EXPERIMENTS.md can state paper-vs-measured comparisons honestly.  Normal
approximations are entirely adequate at the trial counts involved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

#: two-sided z for 95% confidence
_Z95 = 1.959963984540054


@dataclass(frozen=True)
class Estimate:
    """A point estimate with a symmetric 95% confidence half-width."""

    value: float
    half_width: float
    samples: int

    @property
    def low(self) -> float:
        return self.value - self.half_width

    @property
    def high(self) -> float:
        return self.value + self.half_width

    def __str__(self) -> str:
        return f"{self.value:.4f} ± {self.half_width:.4f} (n={self.samples})"


def mean_and_ci(values: Sequence[float]) -> Estimate:
    """Sample mean with a normal-approximation 95% CI."""
    count = len(values)
    if count == 0:
        raise ValueError("need at least one sample")
    mean = sum(values) / count
    if count == 1:
        return Estimate(value=mean, half_width=float("inf"), samples=1)
    variance = sum((v - mean) ** 2 for v in values) / (count - 1)
    half = _Z95 * math.sqrt(variance / count)
    return Estimate(value=mean, half_width=half, samples=count)


def proportion_ci(successes: int, trials: int) -> Estimate:
    """Binomial proportion with a Wilson-score 95% interval.

    The point estimate is the raw proportion (what the paper plots); the
    half-width is taken from the Wilson interval, which behaves sensibly at
    the extremes (0 or all successes) that the high-percentage curves of
    Figures 9-12 regularly hit.
    """
    if trials <= 0:
        raise ValueError("need at least one trial")
    if not 0 <= successes <= trials:
        raise ValueError(f"impossible count {successes}/{trials}")
    z2 = _Z95 * _Z95
    p = successes / trials
    denom = 1 + z2 / trials
    center = (p + z2 / (2 * trials)) / denom
    spread = (_Z95 / denom) * math.sqrt(p * (1 - p) / trials + z2 / (4 * trials * trials))
    half = max(abs(p - (center - spread)), abs((center + spread) - p))
    return Estimate(value=p, half_width=half, samples=trials)
