"""Theorem 2: the expected number of affected rows (and columns).

A row (column) is *affected* when it intersects at least one faulty block;
only nodes on affected rows/columns need to collect extended-safety-level
information (paper Sec. 4), so this number measures the footprint of the
limited-global-information model.

The paper's argument: call it a *hit* when a fault lands in a previously
clean row.  Hits partition ``k`` faults into stages; during stage ``i``
there are ``n - i + 1`` clean rows, so the stage length ``n_i`` is geometric
with success probability ``(n - i + 1) / n`` and expectation
``n / (n - i + 1)``.  The expected number of affected rows is then the
largest ``x`` whose cumulative expected stage lengths fit within ``k``::

    E[x] = min { x : sum_{i=1..x} n / (n - i + 1) >= k }

(the paper prints this as ``min{ [ k - sum_i n/(n-i+1) ] }``).  Theorem 2
also notes the count is identical under the faulty block and MCC models: a
disabled node never generates a new hit because it needs already-unusable
neighbours in both dimensions, and the test-suite verifies that invariant.
"""

from __future__ import annotations

import numpy as np


def expected_affected_rows(n: int, k: int) -> float:
    """Theorem 2's analytical value for ``k`` faults in an ``n x n`` mesh.

    Returns the stage count ``x`` at which the cumulative expected stage
    lengths first reach ``k``, linearly interpolated between stages so the
    analytical curve is smooth (the paper plots it as a continuous line).
    ``k`` may exceed the small-``k`` regime; the value saturates at ``n``.
    """
    if n < 1:
        raise ValueError("mesh side must be positive")
    if k < 0:
        raise ValueError("fault count cannot be negative")
    if k == 0:
        return 0.0
    cumulative = 0.0
    for x in range(1, n + 1):
        stage = n / (n - x + 1)
        if cumulative + stage >= k:
            # Interpolate within stage x: the fraction of the stage consumed.
            return (x - 1) + (k - cumulative) / stage
        cumulative += stage
    return float(n)


def count_affected_rows(unusable: np.ndarray) -> int:
    """Rows intersecting at least one faulty block (experimental metric).

    ``unusable`` is the blocked-node grid, indexed ``[x, y]``; a *row* is a
    fixed ``y``.
    """
    return int(unusable.any(axis=0).sum())


def count_affected_columns(unusable: np.ndarray) -> int:
    """Columns intersecting at least one faulty block."""
    return int(unusable.any(axis=1).sum())
