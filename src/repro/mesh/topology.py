"""The 2-D mesh topology.

An ``n x m`` 2-D mesh has ``n * m`` nodes addressed ``(x, y)`` with
``0 <= x < n`` and ``0 <= y < m``.  Two nodes are connected iff their
addresses differ by exactly one in exactly one dimension, so interior nodes
have degree 4 and nodes along each dimension form a linear array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.mesh.geometry import Coord, Direction, Rect, manhattan_distance


@dataclass(frozen=True)
class Mesh2D:
    """An ``n x m`` 2-D mesh (``n`` columns East-ward, ``m`` rows North-ward).

    The class is immutable and cheap: it stores only the dimensions and
    answers topological queries.  Mutable per-node state (fault status,
    safety levels, boundary annotations) lives in the fault-model and core
    layers, keyed by coordinate or held in numpy grids of shape ``(n, m)``
    indexed ``[x, y]``.
    """

    n: int
    m: int

    def __post_init__(self) -> None:
        if self.n < 1 or self.m < 1:
            raise ValueError(f"mesh dimensions must be positive, got {self.n}x{self.m}")

    # ------------------------------------------------------------------
    # Bounds and enumeration
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Total number of nodes."""
        return self.n * self.m

    @property
    def bounds(self) -> Rect:
        """The rectangle covering the entire mesh."""
        return Rect(0, self.n - 1, 0, self.m - 1)

    def in_bounds(self, coord: Coord) -> bool:
        x, y = coord
        return 0 <= x < self.n and 0 <= y < self.m

    def require_in_bounds(self, coord: Coord) -> None:
        if not self.in_bounds(coord):
            raise ValueError(f"{coord} is outside the {self.n}x{self.m} mesh")

    def nodes(self) -> Iterator[Coord]:
        """Iterate every node, column-major (x outer, y inner)."""
        for x in range(self.n):
            for y in range(self.m):
                yield (x, y)

    def index_of(self, coord: Coord) -> int:
        """Flat index of a node (row-major in x): ``x * m + y``."""
        self.require_in_bounds(coord)
        return coord[0] * self.m + coord[1]

    def coord_of(self, index: int) -> Coord:
        """Inverse of :meth:`index_of`."""
        if not 0 <= index < self.size:
            raise ValueError(f"flat index {index} out of range for {self.n}x{self.m} mesh")
        return divmod(index, self.m)

    @property
    def center(self) -> Coord:
        """The centre node (used as the simulation source in the paper)."""
        return (self.n // 2, self.m // 2)

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def neighbor(self, coord: Coord, direction: Direction) -> Coord | None:
        """The neighbour in ``direction`` or ``None`` at the mesh edge."""
        nxt = direction.step(coord)
        return nxt if self.in_bounds(nxt) else None

    def neighbors(self, coord: Coord) -> list[Coord]:
        """All existing neighbours of ``coord`` (2 to 4 of them)."""
        out = []
        for direction in Direction:
            nxt = direction.step(coord)
            if self.in_bounds(nxt):
                out.append(nxt)
        return out

    def neighbor_items(self, coord: Coord) -> list[tuple[Direction, Coord]]:
        """``(direction, neighbour)`` pairs for all existing neighbours."""
        out = []
        for direction in Direction:
            nxt = direction.step(coord)
            if self.in_bounds(nxt):
                out.append((direction, nxt))
        return out

    def are_adjacent(self, a: Coord, b: Coord) -> bool:
        return manhattan_distance(a, b) == 1

    def degree(self, coord: Coord) -> int:
        self.require_in_bounds(coord)
        x, y = coord
        deg = 4
        if x == 0 or x == self.n - 1:
            deg -= 1
        if y == 0 or y == self.m - 1:
            deg -= 1
        return deg

    # ------------------------------------------------------------------
    # Distance and preferred/spare classification (paper Sec. 2)
    # ------------------------------------------------------------------
    def distance(self, a: Coord, b: Coord) -> int:
        """Manhattan distance ``D(a, b)``."""
        self.require_in_bounds(a)
        self.require_in_bounds(b)
        return manhattan_distance(a, b)

    def preferred_directions(self, current: Coord, dest: Coord) -> list[Direction]:
        """Directions whose neighbour is closer to ``dest`` (paper Sec. 2).

        A *preferred neighbour* v of u satisfies ``D(v, d) < D(u, d)``; the
        connecting direction is a *preferred direction*.  There are at most
        two (one per dimension with a non-zero offset).
        """
        out = []
        if dest[0] > current[0]:
            out.append(Direction.EAST)
        elif dest[0] < current[0]:
            out.append(Direction.WEST)
        if dest[1] > current[1]:
            out.append(Direction.NORTH)
        elif dest[1] < current[1]:
            out.append(Direction.SOUTH)
        return out

    def spare_directions(self, current: Coord, dest: Coord) -> list[Direction]:
        """Directions whose (existing) neighbour is farther from ``dest``."""
        preferred = set(self.preferred_directions(current, dest))
        out = []
        for direction in Direction:
            if direction in preferred:
                continue
            if self.in_bounds(direction.step(current)):
                out.append(direction)
        return out

    def preferred_neighbors(self, current: Coord, dest: Coord) -> list[Coord]:
        """Existing neighbours strictly closer to ``dest``."""
        out = []
        for direction in self.preferred_directions(current, dest):
            nxt = direction.step(current)
            if self.in_bounds(nxt):
                out.append(nxt)
        return out

    def spare_neighbors(self, current: Coord, dest: Coord) -> list[Coord]:
        """Existing neighbours not closer to ``dest``."""
        return [direction.step(current) for direction in self.spare_directions(current, dest)]

    def __str__(self) -> str:
        return f"Mesh2D({self.n}x{self.m})"
