"""Canonical coordinate frames.

The paper states every definition and theorem for a source at the origin and
a destination in **quadrant I** (``xd, yd >= 0``).  The general case follows
by symmetry: reflecting the x and/or y axis maps any source/destination pair
onto that canonical setting.

:class:`Frame` captures one such mapping.  It translates the source to the
origin and optionally reflects each axis so the destination's offsets become
non-negative.  It also permutes extended-safety-level tuples accordingly
(reflecting x swaps East/West distances; reflecting y swaps North/South), so
all higher layers can be written once, for quadrant I.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mesh.geometry import Coord, Direction, Quadrant, Rect


@dataclass(frozen=True)
class Frame:
    """A translated, optionally axis-reflected view of the mesh.

    ``to_local`` maps a global coordinate into the frame;
    ``to_global`` inverts it.  With ``flip_x``/``flip_y`` chosen via
    :meth:`for_pair`, the local frame puts the source at ``(0, 0)`` and the
    destination in quadrant I.
    """

    origin: Coord
    flip_x: bool = False
    flip_y: bool = False

    @staticmethod
    def for_pair(source: Coord, dest: Coord) -> "Frame":
        """The frame that places ``source`` at the origin and ``dest`` in
        quadrant I (non-negative local offsets)."""
        return Frame(
            origin=source,
            flip_x=dest[0] < source[0],
            flip_y=dest[1] < source[1],
        )

    @property
    def quadrant(self) -> Quadrant:
        """Which global quadrant this frame's local quadrant I corresponds to."""
        if not self.flip_x and not self.flip_y:
            return Quadrant.I
        if self.flip_x and not self.flip_y:
            return Quadrant.II
        if self.flip_x and self.flip_y:
            return Quadrant.III
        return Quadrant.IV

    # ------------------------------------------------------------------
    # Coordinate mapping
    # ------------------------------------------------------------------
    def to_local(self, coord: Coord) -> Coord:
        x = coord[0] - self.origin[0]
        y = coord[1] - self.origin[1]
        if self.flip_x:
            x = -x
        if self.flip_y:
            y = -y
        return (x, y)

    def to_global(self, coord: Coord) -> Coord:
        x, y = coord
        if self.flip_x:
            x = -x
        if self.flip_y:
            y = -y
        return (x + self.origin[0], y + self.origin[1])

    def to_local_rect(self, rect: Rect) -> Rect:
        """Map a global rectangle into the frame (bounds re-sorted)."""
        ax, ay = self.to_local((rect.xmin, rect.ymin))
        bx, by = self.to_local((rect.xmax, rect.ymax))
        return Rect(min(ax, bx), max(ax, bx), min(ay, by), max(ay, by))

    def to_global_rect(self, rect: Rect) -> Rect:
        ax, ay = self.to_global((rect.xmin, rect.ymin))
        bx, by = self.to_global((rect.xmax, rect.ymax))
        return Rect(min(ax, bx), max(ax, bx), min(ay, by), max(ay, by))

    # ------------------------------------------------------------------
    # Direction mapping
    # ------------------------------------------------------------------
    def to_local_direction(self, direction: Direction) -> Direction:
        """Global direction as seen in the local frame."""
        if self.flip_x and direction.is_horizontal:
            return direction.opposite
        if self.flip_y and direction.is_vertical:
            return direction.opposite
        return direction

    def to_global_direction(self, direction: Direction) -> Direction:
        """Local direction mapped back to the global frame (an involution)."""
        return self.to_local_direction(direction)

    def to_local_esl(self, esl: tuple[float, float, float, float]) -> tuple[float, float, float, float]:
        """Permute a global ``(E, S, W, N)`` tuple into frame order.

        Reflecting x swaps the E and W entries; reflecting y swaps S and N.
        """
        e, s, w, n = esl
        if self.flip_x:
            e, w = w, e
        if self.flip_y:
            s, n = n, s
        return (e, s, w, n)
