"""Geometric primitives for 2-D meshes.

Orientation convention (matches the paper's figures): the x axis grows to the
**East** and the y axis grows to the **North**.  A node address is a pair
``(x, y)`` of non-negative integers.  Rectangles are *inclusive* on both ends,
mirroring the paper's ``[xmin : xmax, ymin : ymax]`` block notation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Sequence

Coord = tuple[int, int]


class Direction(enum.Enum):
    """The four mesh directions, ordered as in the paper's ESL tuple (E,S,W,N)."""

    EAST = (1, 0)
    SOUTH = (0, -1)
    WEST = (-1, 0)
    NORTH = (0, 1)

    @property
    def dx(self) -> int:
        return self.value[0]

    @property
    def dy(self) -> int:
        return self.value[1]

    @property
    def opposite(self) -> "Direction":
        return _OPPOSITES[self]

    def step(self, coord: Coord, hops: int = 1) -> Coord:
        """Return the coordinate ``hops`` steps away in this direction."""
        x, y = coord
        return (x + self.dx * hops, y + self.dy * hops)

    @property
    def is_horizontal(self) -> bool:
        return self.dx != 0

    @property
    def is_vertical(self) -> bool:
        return self.dy != 0

    @staticmethod
    def between(src: Coord, dst: Coord) -> "Direction":
        """Direction of the single hop from ``src`` to an adjacent ``dst``.

        Raises :class:`ValueError` if the nodes are not mesh neighbours.
        """
        dx = dst[0] - src[0]
        dy = dst[1] - src[1]
        try:
            return _BY_DELTA[(dx, dy)]
        except KeyError:
            raise ValueError(f"{src} and {dst} are not adjacent") from None


_OPPOSITES = {
    Direction.EAST: Direction.WEST,
    Direction.WEST: Direction.EAST,
    Direction.NORTH: Direction.SOUTH,
    Direction.SOUTH: Direction.NORTH,
}

_BY_DELTA = {d.value: d for d in Direction}

#: ESL tuple ordering used throughout the paper: (E, S, W, N).
ESL_ORDER: tuple[Direction, ...] = (
    Direction.EAST,
    Direction.SOUTH,
    Direction.WEST,
    Direction.NORTH,
)


class Quadrant(enum.IntEnum):
    """Quadrants of the destination relative to the source (paper Sec. 2).

    Quadrant I is North-East, II North-West, III South-West, IV South-East.
    Destinations on the axes are conventionally folded into the adjacent
    quadrant with the non-negative offset (so routing straight East is a
    degenerate quadrant-I routing).
    """

    I = 1
    II = 2
    III = 3
    IV = 4

    @property
    def uses_type_one_mcc(self) -> bool:
        """Type-one MCCs serve quadrant I/III routing; type-two serve II/IV."""
        return self in (Quadrant.I, Quadrant.III)


def quadrant_of(source: Coord, dest: Coord) -> Quadrant:
    """Quadrant of ``dest`` relative to ``source``.

    Ties (zero offsets) are folded toward quadrant I, matching the paper's
    ``xd, yd >= 0`` convention for quadrant-I routing.
    """
    dx = dest[0] - source[0]
    dy = dest[1] - source[1]
    if dx >= 0 and dy >= 0:
        return Quadrant.I
    if dx < 0 and dy >= 0:
        return Quadrant.II
    if dx < 0 and dy < 0:
        return Quadrant.III
    return Quadrant.IV


def manhattan_distance(a: Coord, b: Coord) -> int:
    """``D(a, b) = |xa - xb| + |ya - yb|`` -- the minimal hop count in a mesh."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def chebyshev_distance(a: Coord, b: Coord) -> int:
    """Max per-axis offset; used for cluster-radius fault workloads."""
    return max(abs(a[0] - b[0]), abs(a[1] - b[1]))


@dataclass(frozen=True, order=True)
class Rect:
    """An inclusive axis-aligned rectangle ``[xmin : xmax, ymin : ymax]``.

    This is the paper's representation of a faulty block.  All bounds are
    inclusive, so a single node ``(x, y)`` is the rectangle
    ``Rect(x, x, y, y)``.
    """

    xmin: int
    xmax: int
    ymin: int
    ymax: int

    def __post_init__(self) -> None:
        if self.xmin > self.xmax or self.ymin > self.ymax:
            raise ValueError(f"degenerate rectangle {self!r}")

    @staticmethod
    def bounding(coords: Sequence[Coord]) -> "Rect":
        """Smallest rectangle containing every coordinate in ``coords``."""
        if not coords:
            raise ValueError("cannot bound an empty coordinate set")
        xs = [c[0] for c in coords]
        ys = [c[1] for c in coords]
        return Rect(min(xs), max(xs), min(ys), max(ys))

    @property
    def width(self) -> int:
        return self.xmax - self.xmin + 1

    @property
    def height(self) -> int:
        return self.ymax - self.ymin + 1

    @property
    def area(self) -> int:
        return self.width * self.height

    @property
    def sw_corner(self) -> Coord:
        """South-West node of the rectangle itself (not the boundary corner)."""
        return (self.xmin, self.ymin)

    @property
    def ne_corner(self) -> Coord:
        return (self.xmax, self.ymax)

    def contains(self, coord: Coord) -> bool:
        x, y = coord
        return self.xmin <= x <= self.xmax and self.ymin <= y <= self.ymax

    def contains_rect(self, other: "Rect") -> bool:
        return (
            self.xmin <= other.xmin
            and other.xmax <= self.xmax
            and self.ymin <= other.ymin
            and other.ymax <= self.ymax
        )

    def intersects(self, other: "Rect") -> bool:
        return not (
            other.xmax < self.xmin
            or self.xmax < other.xmin
            or other.ymax < self.ymin
            or self.ymax < other.ymin
        )

    def touches_or_intersects(self, other: "Rect") -> bool:
        """True if the rectangles intersect or are edge/corner adjacent."""
        return not (
            other.xmax + 1 < self.xmin
            or self.xmax + 1 < other.xmin
            or other.ymax + 1 < self.ymin
            or self.ymax + 1 < other.ymin
        )

    def union(self, other: "Rect") -> "Rect":
        return Rect(
            min(self.xmin, other.xmin),
            max(self.xmax, other.xmax),
            min(self.ymin, other.ymin),
            max(self.ymax, other.ymax),
        )

    def expand(self, margin: int) -> "Rect":
        """Grow the rectangle by ``margin`` on every side (may go negative)."""
        return Rect(
            self.xmin - margin,
            self.xmax + margin,
            self.ymin - margin,
            self.ymax + margin,
        )

    def clip(self, other: "Rect") -> "Rect | None":
        """Intersection rectangle, or ``None`` if disjoint."""
        if not self.intersects(other):
            return None
        return Rect(
            max(self.xmin, other.xmin),
            min(self.xmax, other.xmax),
            max(self.ymin, other.ymin),
            min(self.ymax, other.ymax),
        )

    def coords(self) -> Iterator[Coord]:
        """Iterate every node inside the rectangle (column-major)."""
        for x in range(self.xmin, self.xmax + 1):
            for y in range(self.ymin, self.ymax + 1):
                yield (x, y)

    def column_range(self) -> range:
        return range(self.xmin, self.xmax + 1)

    def row_range(self) -> range:
        return range(self.ymin, self.ymax + 1)

    def spans_columns(self, xlo: int, xhi: int) -> bool:
        """True if the rectangle covers every column of ``[xlo, xhi]``."""
        return self.xmin <= xlo and xhi <= self.xmax

    def spans_rows(self, ylo: int, yhi: int) -> bool:
        """True if the rectangle covers every row of ``[ylo, yhi]``."""
        return self.ymin <= ylo and yhi <= self.ymax

    def __str__(self) -> str:  # paper notation
        return f"[{self.xmin}:{self.xmax}, {self.ymin}:{self.ymax}]"
