"""2-D mesh substrate: topology, geometry, and coordinate frames.

This package provides the interconnection-network substrate that every other
layer of :mod:`repro` builds on.  It deliberately contains *no* fault-model or
routing logic; it only answers geometric and topological questions about an
``n x m`` 2-D mesh:

- :class:`~repro.mesh.topology.Mesh2D` -- the mesh itself (bounds, neighbours,
  Manhattan distance, node enumeration).
- :class:`~repro.mesh.geometry.Rect` -- inclusive axis-aligned rectangles used
  to describe faulty blocks ``[xmin:xmax, ymin:ymax]``.
- :class:`~repro.mesh.geometry.Direction` -- the four mesh directions
  (East/South/West/North) in the paper's orientation (x grows East, y grows
  North).
- :class:`~repro.mesh.frames.Frame` -- a translated/reflected coordinate frame
  that maps an arbitrary source/destination pair onto the paper's canonical
  "source at origin, destination in quadrant I" setting.
"""

from repro.mesh.geometry import (
    Direction,
    Quadrant,
    Rect,
    chebyshev_distance,
    manhattan_distance,
    quadrant_of,
)
from repro.mesh.topology import Mesh2D
from repro.mesh.frames import Frame

__all__ = [
    "Direction",
    "Frame",
    "Mesh2D",
    "Quadrant",
    "Rect",
    "chebyshev_distance",
    "manhattan_distance",
    "quadrant_of",
]
