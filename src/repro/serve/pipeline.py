"""Asyncio query pipeline: admission control, deadlines, backoff.

:class:`QueryPipeline` is the robustness shell around
:class:`~repro.serve.service.RoutingService`.  Three defences keep it
answering under load instead of collapsing:

- **Admission control.**  A bounded queue between :meth:`submit` and the
  worker pool; when it is full the request is shed immediately with an
  explicit ``overloaded`` result -- the client learns in O(1) that the
  service chose not to queue it, rather than discovering it by timeout.
- **Deadline budgets.**  Every request carries an absolute deadline
  (``deadline_s`` from submission).  A worker that pops an
  already-expired request sheds it (``deadline_exceeded``) without
  paying for the answer; retries never sleep past the deadline.
- **Backoff on staleness.**  With ``max_staleness`` set, a snapshot too
  far behind the engine raises inside the service; the worker retries
  with exponential backoff (waiting out the refresher), and when the
  deadline budget runs out it serves the *stale* snapshot anyway -- a
  degraded answer whose ``staleness`` field says exactly how far behind
  it was, never a silent wrong answer and never an error.

A heartbeat task samples queue depth, shed/arrival deltas, and snapshot
staleness into the :class:`~repro.serve.service.ServiceBreaker`; while
the breaker is open, workers force the degraded tier (block-model
answers, no path witnesses) and the refresher skips the expensive MCC
recompute, which is what lets the backlog drain.
"""

from __future__ import annotations

import asyncio
import collections
from dataclasses import dataclass, field
from typing import Any

from repro.mesh.geometry import Coord
from repro.obs.metrics import Histogram
from repro.parallel.cache import StaleArtifactError
from repro.serve.service import QueryAnswer, QueryError, RoutingService, ServiceBreaker

__all__ = ["QueryPipeline", "QueryRequest", "QueryResult"]


@dataclass(frozen=True)
class QueryRequest:
    """One admitted query with its absolute deadline (loop time)."""

    source: Coord
    dest: Coord
    model: str
    want_path: bool
    deadline: float
    submitted: float


@dataclass(frozen=True)
class QueryResult:
    """Terminal outcome of one submitted query.

    ``status`` is the overload-semantics contract: ``ok`` (answer
    attached), ``overloaded`` (shed at admission -- queue full or
    draining), ``deadline_exceeded`` (expired before a worker reached
    it), ``bad_request`` (malformed), ``error`` (unexpected failure).
    """

    status: str
    answer: QueryAnswer | None = None
    error: str | None = None
    retries: int = 0
    latency_s: float = field(default=0.0)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def jsonable(self) -> dict[str, Any]:
        body: dict[str, Any] = {"status": self.status, "retries": self.retries,
                                "latency_ms": self.latency_s * 1e3}
        if self.answer is not None:
            body["answer"] = self.answer.jsonable()
        if self.error is not None:
            body["error"] = self.error
        return body


class QueryPipeline:
    """Bounded-queue worker pool answering queries against one service."""

    def __init__(
        self,
        service: RoutingService,
        *,
        queue_limit: int = 256,
        workers: int = 4,
        deadline_s: float = 0.050,
        max_staleness: int | None = 4,
        backoff_base_s: float = 0.001,
        backoff_cap_s: float = 0.016,
        refresh_delay_s: float = 0.002,
        heartbeat_s: float = 0.010,
        breaker: ServiceBreaker | None = None,
        latency: Histogram | None = None,
    ):
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.service = service
        # The pipeline owns refresh cadence: ingestion stays O(affected)
        # and the refresher coalesces bursts into one snapshot rebuild.
        service.auto_refresh = False
        self.queue_limit = queue_limit
        self.workers = workers
        self.deadline_s = deadline_s
        self.max_staleness = max_staleness
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.refresh_delay_s = refresh_delay_s
        self.heartbeat_s = heartbeat_s
        self.breaker = breaker if breaker is not None else ServiceBreaker()
        self.latency = latency if latency is not None else Histogram()
        self.counters: collections.Counter[str] = collections.Counter()
        self.accepting = False
        self._queue: asyncio.Queue | None = None
        self._dirty: asyncio.Event | None = None
        self._tasks: list[asyncio.Task] = []

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> "QueryPipeline":
        if self._tasks:
            raise RuntimeError("pipeline already started")
        self._queue = asyncio.Queue(self.queue_limit)
        self._dirty = asyncio.Event()
        self.accepting = True
        self._tasks = [
            asyncio.create_task(self._worker(), name=f"serve-worker-{i}")
            for i in range(self.workers)
        ]
        self._tasks.append(asyncio.create_task(self._refresher(), name="serve-refresher"))
        self._tasks.append(asyncio.create_task(self._heartbeat(), name="serve-heartbeat"))
        return self

    async def drain(self, grace_s: float = 5.0) -> bool:
        """Stop admitting, finish the backlog (bounded), stop the tasks.

        Returns True when every queued request completed within the
        grace period; either way the pipeline is stopped afterwards and
        late stragglers are cancelled.
        """
        self.accepting = False
        drained = True
        if self._queue is not None and self._queue.qsize() > 0:
            try:
                await asyncio.wait_for(self._queue.join(), timeout=grace_s)
            except asyncio.TimeoutError:
                drained = False
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []
        return drained

    # -- submission ----------------------------------------------------
    async def submit(
        self,
        source: Coord,
        dest: Coord,
        *,
        model: str = "block",
        want_path: bool = True,
        deadline_s: float | None = None,
    ) -> QueryResult:
        """Admit (or shed) one query and await its result."""
        if self._queue is None:
            raise RuntimeError("pipeline not started")
        loop = asyncio.get_running_loop()
        self.counters["arrived"] += 1
        if not self.accepting:
            self.counters["shed_overload"] += 1
            return QueryResult(status="overloaded", error="draining")
        now = loop.time()
        request = QueryRequest(
            source=source, dest=dest, model=model, want_path=want_path,
            deadline=now + (deadline_s if deadline_s is not None else self.deadline_s),
            submitted=now,
        )
        future: asyncio.Future[QueryResult] = loop.create_future()
        try:
            self._queue.put_nowait((request, future))
        except asyncio.QueueFull:
            self.counters["shed_overload"] += 1
            return QueryResult(status="overloaded", error="queue full")
        return await future

    def ingest_fault(self, event: str, coord: Coord) -> Any:
        """Apply one fault event; the refresher picks up the new generation.

        The engine update itself is synchronous and O(affected); snapshot
        publication is deferred (coalesced), so a burst of events costs
        one rebuild, and queries in the gap see an honest ``staleness``.
        """
        report = self.service.apply_fault(event, coord)
        self.counters["faults_ingested"] += 1
        if self._dirty is not None:
            self._dirty.set()
        return report

    # -- internals -----------------------------------------------------
    async def _worker(self) -> None:
        assert self._queue is not None
        while True:
            request, future = await self._queue.get()
            try:
                if not future.done():
                    future.set_result(await self._process(request))
            except Exception as error:  # defensive: a worker must not die
                self.counters["errors"] += 1
                if not future.done():
                    future.set_result(QueryResult(status="error", error=repr(error)))
            finally:
                self._queue.task_done()

    async def _process(self, request: QueryRequest) -> QueryResult:
        loop = asyncio.get_running_loop()
        if loop.time() >= request.deadline:
            self.counters["shed_deadline"] += 1
            return QueryResult(status="deadline_exceeded", error="expired in queue")
        degraded = self.breaker.open
        retries = 0
        backoff = self.backoff_base_s
        while True:
            try:
                answer = self.service.answer(
                    request.source, request.dest, model=request.model,
                    want_path=request.want_path,
                    max_staleness=None if degraded else self.max_staleness,
                    degraded=degraded,
                )
                break
            except QueryError as error:
                self.counters["bad_requests"] += 1
                return QueryResult(status="bad_request", error=str(error))
            except StaleArtifactError:
                if self._dirty is not None:
                    self._dirty.set()  # make sure a refresh is coming
                delay = min(backoff, request.deadline - loop.time())
                if delay <= 0:
                    # Budget exhausted: degrade to the stale snapshot
                    # rather than shed -- the answer carries its honest
                    # generation and staleness.
                    answer = self.service.answer(
                        request.source, request.dest, model=request.model,
                        want_path=request.want_path, max_staleness=None,
                        degraded=True,
                    )
                    self.counters["stale_served"] += 1
                    break
                retries += 1
                self.counters["retries"] += 1
                await asyncio.sleep(delay)
                backoff = min(backoff * 2, self.backoff_cap_s)
        latency = loop.time() - request.submitted
        self.latency.observe(latency)
        self.counters["served"] += 1
        if answer.degraded:
            self.counters["degraded"] += 1
        if answer.staleness > 0:
            self.counters["stale_answers"] += 1
        return QueryResult(status="ok", answer=answer, retries=retries, latency_s=latency)

    async def _refresher(self) -> None:
        assert self._dirty is not None
        while True:
            await self._dirty.wait()
            self._dirty.clear()
            # Coalesce: let a burst of ingest_fault calls land before
            # paying for one snapshot rebuild covering all of them.
            await asyncio.sleep(self.refresh_delay_s)
            self.service.refresh(include_mcc=not self.breaker.open)

    async def _heartbeat(self) -> None:
        while True:
            await asyncio.sleep(self.heartbeat_s)
            self.pulse()

    def pulse(self) -> bool:
        """One breaker evaluation over the current load signals."""
        qsize = self._queue.qsize() if self._queue is not None else 0
        shed = self.counters["shed_overload"] + self.counters["shed_deadline"]
        open_ = self.breaker.observe({
            "serve.queue_depth": qsize / self.queue_limit,
            "serve.arrived": float(self.counters["arrived"]),
            "serve.shed": float(shed),
            "serve.staleness": float(self.service.staleness()),
            "serve.degraded": float(self.counters["degraded"]),
        })
        if not open_ and self.service.mcc_model:
            # Recovered: queue a full (MCC-capable) snapshot rebuild if
            # the latest refresh was degraded.
            snapshot = self.service.snapshot()
            if snapshot.mcc_levels is None and self._dirty is not None:
                self._dirty.set()
        return open_

    # -- reporting -----------------------------------------------------
    def stats(self) -> dict[str, Any]:
        arrived = self.counters["arrived"]
        shed = self.counters["shed_overload"] + self.counters["shed_deadline"]
        served = self.counters["served"]
        return {
            "counters": dict(self.counters),
            "queue_depth": self._queue.qsize() if self._queue is not None else 0,
            "queue_limit": self.queue_limit,
            "accepting": self.accepting,
            "shed_fraction": shed / arrived if arrived else 0.0,
            "degraded_fraction": (
                self.counters["degraded"] / served if served else 0.0
            ),
            "error_fraction": (
                self.counters["errors"] / arrived if arrived else 0.0
            ),
            "latency": self.latency.summary(),
            "breaker": self.breaker.state(),
            "service": self.service.stats(),
        }
