"""Routability answers against live fault state (the serve core).

:class:`RoutingService` owns an :class:`~repro.faults.incremental.
IncrementalFaultEngine` and answers the paper's question -- "is (s, d)
minimally routable, and by which strategy?" -- from an immutable
:class:`ServeSnapshot` of that engine's state.  The snapshot is the
torn-read defence: fault arrivals mutate the engine's grids *in place*
(that is what makes them O(affected)), so queries never touch the live
engine.  They grab the current snapshot reference once (a single atomic
read under the GIL) and evaluate the whole decision cascade against that
frozen generation; :meth:`RoutingService.refresh` builds a new snapshot
from the engine and publishes it with one reference assignment.

The gap between the engine generation and the published snapshot is the
query's ``staleness``.  Callers choose what staleness means:

- ``max_staleness=None`` serves whatever snapshot is current (the field
  still reports how far behind it is);
- a bounded ``max_staleness`` raises
  :class:`~repro.parallel.cache.StaleArtifactError` when the snapshot is
  too old, which the async pipeline turns into a backoff-and-retry
  against the refresher, degrading to the stale answer only when the
  request's deadline budget runs out.

Degradation tiers (the circuit breaker's levers):

1. **Full service** -- block-model and MCC-model answers, each with a
   routed path witness cached per generation in an
   :class:`~repro.parallel.cache.ArtifactCache`.
2. **Degraded** (:class:`ServiceBreaker` open) -- refreshes skip the
   O(n*m) MCC-level recompute, so MCC queries are answered from the
   block model with ``degraded=True``; path witnesses are skipped.
   Block-model verdicts stay exact: the safe conditions are evaluated
   on the snapshot either way.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Iterable

import numpy as np

from repro.core.conditions import Decision, DecisionKind, safe_source_decision
from repro.core.extensions import (
    extension1_decision,
    extension2_decision,
    extension3_decision,
)
from repro.core.pivots import recursive_center_pivots
from repro.core.routing import WuRouter, route_with_decision
from repro.core.safety import SafetyLevels, compute_safety_levels
from repro.faults.blocks import BlockSet
from repro.faults.incremental import IncrementalFaultEngine, UpdateReport
from repro.faults.mcc import MCCType
from repro.mesh.geometry import Coord, Rect, manhattan_distance
from repro.mesh.topology import Mesh2D
from repro.obs.alerts import AlertEngine, AlertRule, RatioRule, ThresholdRule
from repro.obs.timeseries import SampleStore
from repro.parallel.cache import ArtifactCache, StaleArtifactError
from repro.routing.router import RoutingError

__all__ = [
    "QueryAnswer",
    "QueryError",
    "RoutingService",
    "ServeSnapshot",
    "ServiceBreaker",
    "default_breaker_rules",
]

#: Strategy label per decision kind -- which rung of the paper's
#: escalation (Definition 3, then Extensions 1-3, then Extension 1's
#: sub-minimal rule) justified the verdict.
_STRATEGY_BY_KIND = {
    DecisionKind.SOURCE_SAFE: "definition3",
    DecisionKind.PREFERRED_NEIGHBOR_SAFE: "extension1",
    DecisionKind.AXIS_NODE_SAFE: "extension2",
    DecisionKind.PIVOT_SAFE: "extension3",
    DecisionKind.SPARE_NEIGHBOR_SAFE: "extension1-sub-minimal",
}


class QueryError(ValueError):
    """A malformed query (endpoint outside the mesh, unknown model)."""


@dataclass(frozen=True)
class ServeSnapshot:
    """One generation's frozen artifacts; everything a query reads.

    Arrays are private copies (the engine mutates its own in place), so
    a snapshot stays valid forever -- an in-flight query keeps using the
    generation it grabbed even while newer snapshots are published.
    ``mcc_levels`` is None when the snapshot was built degraded (MCC
    recompute skipped under pressure).
    """

    generation: int
    blocked: np.ndarray
    levels: SafetyLevels
    block_set: BlockSet
    mcc_blocked: np.ndarray | None = None
    mcc_levels: SafetyLevels | None = None


@dataclass(frozen=True)
class QueryAnswer:
    """One served routability answer, self-describing about its basis.

    ``generation`` is the snapshot generation the answer is *for*;
    ``staleness`` counts engine generations that had already landed when
    the answer was computed (0 = answered on the newest state).
    ``degraded`` marks answers produced below full service: an MCC query
    answered from the block model, or a skipped path witness.
    """

    source: Coord
    dest: Coord
    model: str  # model requested: "block" | "mcc"
    model_used: str  # model actually answered from
    verdict: str  # DecisionKind value, "unsafe", or "blocked-endpoint"
    strategy: str  # cascade rung that fired, or "none"
    routable: bool  # some safe condition ensured a path
    minimal: bool  # ... and that path is minimal (not the +2 detour)
    via: Coord | None
    path: tuple[Coord, ...] | None
    distance: int
    generation: int
    staleness: int
    degraded: bool

    def jsonable(self) -> dict[str, Any]:
        return {
            "source": list(self.source),
            "dest": list(self.dest),
            "model": self.model,
            "model_used": self.model_used,
            "verdict": self.verdict,
            "strategy": self.strategy,
            "routable": self.routable,
            "minimal": self.minimal,
            "via": list(self.via) if self.via is not None else None,
            "path": [list(c) for c in self.path] if self.path is not None else None,
            "distance": self.distance,
            "generation": self.generation,
            "staleness": self.staleness,
            "degraded": self.degraded,
        }


def default_breaker_rules() -> tuple[AlertRule, ...]:
    """The serve-layer SLO rules the circuit breaker latches on.

    Same rule machinery as :func:`repro.obs.alerts.default_rules`, over
    the serve heartbeat's sample rows instead of simulator ticks.
    """
    return (
        ThresholdRule(
            "serve-queue-runaway", "serve.queue_depth", ">=", 0.9,
            for_ticks=2,
            description="admission queue >= 90% full for 2 heartbeats",
        ),
        RatioRule(
            "serve-shed-slo", "serve.shed", "serve.arrived", 0.10,
            window=8.0, floor=4.0,
            description="more than 10% of arrivals shed over the window",
        ),
        ThresholdRule(
            "serve-staleness", "serve.staleness", ">=", 16.0,
            for_ticks=2,
            description="snapshot >= 16 generations behind the engine",
        ),
    )


class ServiceBreaker:
    """Latching degraded-mode switch driven by alert rules.

    Heartbeat rows go into a private :class:`SampleStore`; the
    :class:`AlertEngine` (the same latching evaluator the observatory
    uses) decides breaching.  The breaker *trips* the moment any rule
    fires and only *closes* after ``recovery_ticks`` consecutive healthy
    evaluations -- hysteresis so a borderline load doesn't flap the
    service between tiers.
    """

    def __init__(
        self,
        rules: Iterable[AlertRule] | None = None,
        recovery_ticks: int = 3,
        capacity: int = 512,
    ):
        if recovery_ticks < 1:
            raise ValueError(f"recovery_ticks must be >= 1, got {recovery_ticks}")
        self.store = SampleStore(capacity=capacity)
        self.alerts = AlertEngine(
            tuple(rules) if rules is not None else default_breaker_rules()
        )
        self.recovery_ticks = recovery_ticks
        self.open = False
        self.trips = 0
        self._healthy_streak = 0
        self._tick = 0

    def observe(self, row: dict[str, float]) -> bool:
        """Feed one heartbeat row; returns the (possibly new) open state."""
        self._tick += 1
        self.store.append(float(self._tick), row)
        self.alerts.evaluate(float(self._tick), self.store)
        if self.alerts.active:
            if not self.open:
                self.trips += 1
            self.open = True
            self._healthy_streak = 0
        elif self.open:
            self._healthy_streak += 1
            if self._healthy_streak >= self.recovery_ticks:
                self.open = False
                self._healthy_streak = 0
        return self.open

    def state(self) -> dict[str, Any]:
        return {
            "open": self.open,
            "trips": self.trips,
            "active": list(self.alerts.active),
            "healthy_streak": self._healthy_streak,
            "recovery_ticks": self.recovery_ticks,
        }


class RoutingService:
    """Routability queries with generation fencing over a live fault engine.

    Thread-safety model: one writer at a time (:meth:`apply_fault` /
    :meth:`refresh` serialize on an internal lock); any number of
    readers (:meth:`answer`) race freely against them, because readers
    only ever dereference the published snapshot.  The asyncio pipeline
    runs everything on one loop anyway; the lock makes the service safe
    to drive from the threaded :class:`~repro.obs.server.MetricsServer`
    handlers too.
    """

    def __init__(
        self,
        mesh: Mesh2D,
        faults: Iterable[Coord] = (),
        *,
        mcc_model: bool = True,
        auto_refresh: bool = True,
        witness_cache_size: int = 4096,
    ):
        self.mesh = mesh
        self.mcc_model = mcc_model
        self.auto_refresh = auto_refresh
        mcc_types = (MCCType.TYPE_ONE,) if mcc_model else ()
        self.engine = IncrementalFaultEngine(mesh, faults, mcc_types=mcc_types)
        self._lock = threading.Lock()
        self._witnesses = ArtifactCache(witness_cache_size)
        self.refreshes = 0
        self.degraded_refreshes = 0
        self.witness_failures = 0
        self._snapshot = self._build_snapshot(include_mcc=mcc_model)

    # -- state publication --------------------------------------------
    @property
    def generation(self) -> int:
        return self.engine.generation

    def snapshot(self) -> ServeSnapshot:
        """The currently published snapshot (atomic reference read)."""
        return self._snapshot

    def staleness(self) -> int:
        """Generations the published snapshot lags the engine by."""
        return self.engine.generation - self._snapshot.generation

    def _build_snapshot(self, include_mcc: bool) -> ServeSnapshot:
        eng = self.engine
        levels = SafetyLevels(
            self.mesh,
            eng.levels.east.copy(),
            eng.levels.south.copy(),
            eng.levels.west.copy(),
            eng.levels.north.copy(),
        )
        mcc_blocked = mcc_levels = None
        if include_mcc and self.mcc_model:
            mcc_blocked = eng.mcc_set(MCCType.TYPE_ONE).blocked.copy()
            mcc_levels = compute_safety_levels(self.mesh, mcc_blocked)
        return ServeSnapshot(
            generation=eng.generation,
            blocked=eng.unusable.copy(),
            levels=levels,
            block_set=eng.block_set(),
            mcc_blocked=mcc_blocked,
            mcc_levels=mcc_levels,
        )

    def refresh(self, *, include_mcc: bool = True) -> ServeSnapshot:
        """Publish a fresh snapshot of the engine state.

        ``include_mcc=False`` is the degraded tier: the O(n*m) MCC-level
        recompute is skipped, so the refresh costs only array copies and
        MCC queries fall back to the block model until a full refresh.
        No-op when the published snapshot is already current *and* at
        least as capable (a full snapshot is never replaced by a
        degraded one of the same generation).
        """
        with self._lock:
            current = self._snapshot
            want_mcc = include_mcc and self.mcc_model
            if current.generation == self.engine.generation and not (
                want_mcc and current.mcc_levels is None
            ):
                return current
            snapshot = self._build_snapshot(include_mcc=include_mcc)
            self.refreshes += 1
            if self.mcc_model and snapshot.mcc_levels is None:
                self.degraded_refreshes += 1
            self._snapshot = snapshot
            return snapshot

    def apply_fault(self, event: str, coord: Coord) -> UpdateReport:
        """Apply one fault arrival/revival through the incremental engine.

        The engine update is O(affected) and atomic w.r.t. queries by
        construction: queries read the published snapshot, which still
        describes the pre-event generation until the next refresh.  With
        ``auto_refresh`` (the default) the refresh happens here, inline;
        the pipeline turns it off and coalesces refreshes instead.
        """
        with self._lock:
            report = self.engine.apply(event, coord)
        if self.auto_refresh:
            self.refresh()
        return report

    # -- queries -------------------------------------------------------
    def answer(
        self,
        source: Coord,
        dest: Coord,
        *,
        model: str = "block",
        want_path: bool = True,
        max_staleness: int | None = None,
        degraded: bool = False,
    ) -> QueryAnswer:
        """Answer one routability query from the published snapshot.

        Raises :class:`QueryError` for malformed queries and
        :class:`~repro.parallel.cache.StaleArtifactError` when the
        snapshot lags the engine by more than ``max_staleness``
        generations.  ``degraded=True`` forces the degraded tier for
        this answer (the pipeline sets it while the breaker is open):
        MCC queries downgrade to the block model and the path witness is
        skipped.
        """
        if model not in ("block", "mcc"):
            raise QueryError(f"unknown model {model!r} (use 'block' or 'mcc')")
        for endpoint, name in ((source, "source"), (dest, "dest")):
            if not self.mesh.in_bounds(endpoint):
                raise QueryError(f"{name} {endpoint} is outside {self.mesh}")

        snapshot = self._snapshot  # single atomic read: the fence
        staleness = self.engine.generation - snapshot.generation
        if max_staleness is not None and staleness > max_staleness:
            raise StaleArtifactError(
                ("serve-snapshot",), snapshot.generation, self.engine.generation
            )

        model_used = model
        is_degraded = degraded
        levels, blocked = snapshot.levels, snapshot.blocked
        if model == "mcc":
            if degraded or snapshot.mcc_levels is None:
                model_used, is_degraded = "block", True
            else:
                levels, blocked = snapshot.mcc_levels, snapshot.mcc_blocked

        def finish(
            verdict: str,
            strategy: str,
            decision: Decision | None,
            path: tuple[Coord, ...] | None,
        ) -> QueryAnswer:
            routable = decision is not None and decision.ensures_sub_minimal
            return QueryAnswer(
                source=source,
                dest=dest,
                model=model,
                model_used=model_used,
                verdict=verdict,
                strategy=strategy,
                routable=routable,
                minimal=decision is not None and decision.ensures_minimal,
                via=decision.via if decision is not None else None,
                path=path,
                distance=manhattan_distance(source, dest),
                generation=snapshot.generation,
                staleness=staleness,
                degraded=is_degraded,
            )

        if blocked[source] or blocked[dest]:
            return finish("blocked-endpoint", "none", None, None)

        decision = self._cascade(levels, blocked, source, dest)
        if decision is None:
            return finish("unsafe", "none", None, None)
        path = None
        if want_path and not is_degraded and model_used == "block":
            path = self._witness(snapshot, decision)
        return finish(
            decision.kind.value, _STRATEGY_BY_KIND[decision.kind], decision, path
        )

    def _cascade(
        self,
        levels: SafetyLevels,
        blocked: np.ndarray,
        source: Coord,
        dest: Coord,
    ) -> Decision | None:
        """The paper's escalation: Def-3, Ext-1/2/3 minimal, Ext-1 sub-minimal."""
        decision = safe_source_decision(levels, source, dest)
        if decision.kind is not DecisionKind.UNSAFE:
            return decision
        decision = extension1_decision(
            self.mesh, levels, blocked, source, dest, allow_sub_minimal=False
        )
        if decision.kind is not DecisionKind.UNSAFE:
            return decision
        decision = extension2_decision(self.mesh, levels, source, dest, segment_size=None)
        if decision.kind is not DecisionKind.UNSAFE:
            return decision
        bbox = Rect(
            min(source[0], dest[0]), max(source[0], dest[0]),
            min(source[1], dest[1]), max(source[1], dest[1]),
        )
        decision = extension3_decision(
            self.mesh, levels, blocked, source, dest,
            recursive_center_pivots(bbox, 3),
        )
        if decision.kind is not DecisionKind.UNSAFE:
            return decision
        decision = extension1_decision(self.mesh, levels, blocked, source, dest)
        if decision.kind is not DecisionKind.UNSAFE:
            return decision
        return None

    def _witness(
        self, snapshot: ServeSnapshot, decision: Decision
    ) -> tuple[Coord, ...] | None:
        """A routed path realizing ``decision``, cached per generation.

        Cache entries are generation-tagged; a hit from an older
        generation revalidates by checking every node against *this*
        snapshot's blocked grid (the :class:`~repro.simulator.traffic.
        PathPolicy` trick), so a served witness is always consistent
        with the generation the answer claims.
        """
        key = (decision.source, decision.dest, decision.kind.value, decision.via)

        def build() -> tuple[Coord, ...]:
            path = route_with_decision(
                WuRouter(self.mesh, snapshot.block_set), decision,
                blocked=snapshot.blocked,
            )
            return path.nodes

        def revalidate(nodes: tuple[Coord, ...], tag: int | None) -> bool:
            return not any(bool(snapshot.blocked[node]) for node in nodes)

        try:
            return self._witnesses.get_or_build(
                key, build, generation=snapshot.generation, revalidate=revalidate
            )
        except RoutingError:
            # A sufficient condition fired but the router could not
            # realize it -- defensive only; tallied, never raised to the
            # client (the verdict stands, the witness is just absent).
            self.witness_failures += 1
            return None

    def stats(self) -> dict[str, Any]:
        return {
            "generation": self.engine.generation,
            "snapshot_generation": self._snapshot.generation,
            "staleness": self.staleness(),
            "refreshes": self.refreshes,
            "degraded_refreshes": self.degraded_refreshes,
            "witness_failures": self.witness_failures,
            "witness_cache": self._witnesses.stats(),
        }
