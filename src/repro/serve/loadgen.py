"""Closed-loop load generator: QPS ramps under live fault churn.

:func:`run_qps_sweep` is the ``serve.qps_sweep`` bench workload's body:
it stands up a :class:`~repro.serve.service.RoutingService` +
:class:`~repro.serve.pipeline.QueryPipeline` in-process (no HTTP -- the
sweep measures the serving pipeline, not socket overhead), then drives
staged QPS ramps while a seeded :class:`~repro.chaos.ChaosSchedule`
injects crash/revive events *between* queries.  Each stage records
p50/p95/p99 submit-to-answer latency and the degraded/shed/stale/error
fractions, so throughput and tail latency under fault churn are
benchmarked, CI-gated numbers.

Query pairs, model mix, and the chaos schedule all derive from one
seed; wall-clock latencies naturally vary run to run, which is why the
CI gate bounds them generously (p99 budget + shed ceiling) instead of
comparing exact values.
"""

from __future__ import annotations

import asyncio
from typing import Any, Sequence

import numpy as np

from repro.chaos.schedule import ChaosSchedule
from repro.faults.injection import uniform_faults
from repro.mesh.topology import Mesh2D
from repro.serve.pipeline import QueryPipeline
from repro.serve.service import RoutingService

__all__ = ["run_qps_sweep"]

#: (queries-per-second, query count) per ramp stage.
DEFAULT_STAGES = ((500, 150), (2000, 300), (8000, 450))
QUICK_STAGES = ((500, 60), (2000, 120), (8000, 180))


def _percentile_ms(values: list[float], q: float) -> float | None:
    if not values:
        return None
    return float(np.percentile(np.asarray(values), q)) * 1e3


def run_qps_sweep(
    side: int = 24,
    faults: int = 16,
    seed: int = 2002,
    *,
    stages: Sequence[tuple[float, int]] = DEFAULT_STAGES,
    chaos_events: int = 12,
    mcc_fraction: float = 0.25,
    deadline_s: float = 0.050,
    max_staleness: int = 2,
    queue_limit: int = 128,
    workers: int = 4,
    want_path: bool = True,
) -> dict[str, Any]:
    """Run the staged sweep; returns the per-stage + total report dict."""
    mesh = Mesh2D(side, side)
    rng = np.random.default_rng(seed)
    initial = uniform_faults(mesh, faults, rng, forbidden={mesh.center})
    service = RoutingService(mesh, initial)

    # Endpoints drawn from nodes usable at t0; chaos may disable some
    # mid-run, which is the point -- those queries come back
    # ``blocked-endpoint`` on an honest generation, not as errors.
    usable = [
        (x, y) for x in range(side) for y in range(side)
        if not service.engine.unusable[x, y]
    ]
    total_queries = sum(count for _, count in stages)
    picks = rng.integers(0, len(usable), size=(total_queries, 2))
    models = rng.random(total_queries) < mcc_fraction
    schedule = ChaosSchedule.random(
        mesh, rng, events=chaos_events, horizon=max(2.0, float(total_queries)),
        revive_fraction=0.5, forbidden=set(initial),
    )
    # Map each chaos event's tick in [0, horizon) onto a query index, so
    # fault churn lands mid-stage regardless of wall-clock speed.
    events_by_index: dict[int, list] = {}
    horizon = max(schedule.horizon, 1.0)
    for event in schedule:
        index = min(int(event.time / horizon * total_queries), total_queries - 1)
        events_by_index.setdefault(index, []).append(event)

    async def _sweep() -> dict[str, Any]:
        pipeline = QueryPipeline(
            service, queue_limit=queue_limit, workers=workers,
            deadline_s=deadline_s, max_staleness=max_staleness,
        )
        await pipeline.start()
        loop = asyncio.get_running_loop()
        stage_reports = []
        cursor = 0
        try:
            for qps, count in stages:
                before = dict(pipeline.counters)
                tasks: list[asyncio.Task] = []
                start = loop.time()
                for i in range(count):
                    target = start + i / qps
                    delay = target - loop.time()
                    if delay > 0:
                        await asyncio.sleep(delay)
                    index = cursor + i
                    for event in events_by_index.get(index, ()):
                        try:
                            pipeline.ingest_fault(event.action, event.coord)
                        except ValueError:
                            pass  # already applied by block formation
                    a, b = picks[index]
                    tasks.append(asyncio.create_task(pipeline.submit(
                        usable[a], usable[b],
                        model="mcc" if models[index] else "block",
                        want_path=want_path,
                    )))
                results = await asyncio.gather(*tasks)
                cursor += count
                latencies = [r.latency_s for r in results if r.ok]
                shed = sum(
                    r.status in ("overloaded", "deadline_exceeded") for r in results
                )
                errors = sum(r.status == "error" for r in results)
                degraded = sum(
                    1 for r in results if r.ok and r.answer.degraded
                )
                stale = sum(
                    1 for r in results if r.ok and r.answer.staleness > 0
                )
                delta = {
                    k: pipeline.counters[k] - before.get(k, 0)
                    for k in pipeline.counters
                }
                stage_reports.append({
                    "qps": qps,
                    "queries": count,
                    "ok": len(latencies),
                    "shed": shed,
                    "errors": errors,
                    "degraded": degraded,
                    "stale": stale,
                    "shed_fraction": shed / count,
                    "degraded_fraction": degraded / count,
                    "error_fraction": errors / count,
                    "retries": delta.get("retries", 0),
                    "p50_ms": _percentile_ms(latencies, 50),
                    "p95_ms": _percentile_ms(latencies, 95),
                    "p99_ms": _percentile_ms(latencies, 99),
                })
        finally:
            await pipeline.drain(5.0)
        return {
            "config": {
                "side": side, "faults": faults, "seed": seed,
                "stages": [list(s) for s in stages],
                "chaos_events": chaos_events, "mcc_fraction": mcc_fraction,
                "deadline_ms": deadline_s * 1e3, "max_staleness": max_staleness,
                "queue_limit": queue_limit, "workers": workers,
            },
            "stages": stage_reports,
            "totals": pipeline.stats(),
        }

    return asyncio.run(_sweep())
