"""Routing as a service: async query serving over live fault state.

The serving layer the engines were built for -- it answers the paper's
question ("is (s, d) minimally routable, and by which strategy?") over
HTTP against an :class:`~repro.faults.incremental.IncrementalFaultEngine`
that keeps absorbing fault arrivals and revivals underneath it, and it
is designed robustness-first: every failure mode has an explicit,
observable response instead of a collapse.

- :mod:`repro.serve.service` -- :class:`RoutingService`: immutable
  generation-fenced snapshots (never a torn read), the Def-3/Ext-1/2/3
  decision cascade, cached path witnesses, degradation tiers, and the
  alert-rule-driven :class:`ServiceBreaker`;
- :mod:`repro.serve.pipeline` -- :class:`QueryPipeline`: bounded-queue
  admission control, per-request deadline budgets, exponential-backoff
  retry for transiently-stale snapshots, heartbeat-fed breaker;
- :mod:`repro.serve.http` -- :class:`ServeApp`: the asyncio HTTP front
  end (``/query``, ``/fault``, ``/healthz``, ``/readyz``, ``/metrics``)
  with SIGTERM/SIGINT graceful drain;
- :mod:`repro.serve.loadgen` -- :func:`run_qps_sweep`: the closed-loop
  QPS-ramp-under-chaos generator behind the ``serve.qps_sweep`` bench
  workload and its CI latency gate.
"""

from repro.serve.http import ServeApp, run_app
from repro.serve.loadgen import run_qps_sweep
from repro.serve.pipeline import QueryPipeline, QueryRequest, QueryResult
from repro.serve.service import (
    QueryAnswer,
    QueryError,
    RoutingService,
    ServeSnapshot,
    ServiceBreaker,
    default_breaker_rules,
)

__all__ = [
    "QueryAnswer",
    "QueryError",
    "QueryPipeline",
    "QueryRequest",
    "QueryResult",
    "RoutingService",
    "ServeApp",
    "ServeSnapshot",
    "ServiceBreaker",
    "default_breaker_rules",
    "run_app",
    "run_qps_sweep",
]
